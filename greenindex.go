// Package greenindex is the public API of The Green Index (TGI) toolkit: a
// reproduction of "The Green Index: A Metric for Evaluating System-Wide
// Energy Efficiency in HPC Systems" (Subramaniam & Feng, IPDPS Workshops
// 2012) as a reusable Go library.
//
// TGI condenses a benchmark suite that stresses different subsystems (CPU,
// memory, I/O) into one energy-efficiency number, relative to a reference
// system:
//
//	EE_i  = Performance_i / Power_i
//	REE_i = EE_i / EE_i(reference)
//	TGI   = Σ W_i · REE_i,  Σ W_i = 1
//
// # Quick start
//
//	test := []greenindex.Measurement{
//	    {Benchmark: "HPL", Metric: "GFLOPS", Performance: 890, Power: 2900, Time: 3400},
//	    {Benchmark: "STREAM", Metric: "MBPS", Performance: 180000, Power: 2400, Time: 700},
//	    {Benchmark: "IOzone", Metric: "MBPS", Performance: 380, Power: 2100, Time: 800},
//	}
//	ref := []greenindex.Measurement{ /* same benchmarks on the reference system */ }
//	res, err := greenindex.Compute(test, ref, greenindex.ArithmeticMean, nil)
//	fmt.Println(res.TGI)
//
// Measurements can come from anywhere — a wall-plug meter on real hardware,
// or this module's simulated clusters and benchmarks (see RunSuite and the
// Fire/SystemG machine models), which is how the paper's evaluation is
// reproduced offline.
package greenindex

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/suite"
)

// Measurement is one benchmark's observation on one system. See
// core.Measurement for field semantics.
type Measurement = core.Measurement

// Components carries the per-benchmark breakdown behind a TGI value.
type Components = core.Components

// Scheme selects how the TGI weighting factors are assigned.
type Scheme = core.Scheme

// Weighting schemes (paper Section III).
const (
	// ArithmeticMean assigns equal weights to every benchmark.
	ArithmeticMean = core.ArithmeticMean
	// TimeWeighted weights each benchmark by its execution time.
	TimeWeighted = core.TimeWeighted
	// EnergyWeighted weights each benchmark by its energy consumption.
	EnergyWeighted = core.EnergyWeighted
	// PowerWeighted weights each benchmark by its mean power draw.
	PowerWeighted = core.PowerWeighted
	// Custom uses caller-provided weights (normalised to sum to one).
	Custom = core.Custom
)

// Compute evaluates TGI for a suite of measurements against the reference
// system's measurements using performance-per-watt efficiency.
func Compute(test, ref []Measurement, s Scheme, customWeights []float64) (*Components, error) {
	return core.Compute(test, ref, s, customWeights)
}

// EE returns a measurement's energy efficiency (performance per watt).
func EE(m Measurement) (float64, error) { return core.EE(m) }

// REE returns a measurement's efficiency relative to the reference
// system's on the same benchmark.
func REE(test, ref Measurement) (float64, error) { return core.REE(test, ref) }

// Spec is a cluster machine description for the simulated measurement path.
type Spec = cluster.Spec

// Fire returns the paper's system under test: 8 nodes, 2× AMD Opteron 6134,
// 128 cores, shared NFS-style storage backend.
func Fire() *Spec { return cluster.Fire() }

// SystemG returns the paper's reference system: 128 Mac Pro nodes with 2×
// quad-core Xeon X5462, 1024 cores, QDR InfiniBand, local disks.
func SystemG() *Spec { return cluster.SystemG() }

// GreenGPU returns a GPU-accelerated cluster spec (the platform class the
// paper's future work targets).
func GreenGPU() *Spec { return cluster.GreenGPU() }

// SuiteResult is a full benchmark-suite run at one process count.
type SuiteResult = suite.Result

// RunSuite executes the simulated HPL + STREAM + IOzone suite on spec at
// the given process count, metering each run with a simulated Watts Up?
// PRO-class wall meter, and returns the three measurements plus metadata.
func RunSuite(spec *Spec, procs int) (*SuiteResult, error) {
	return suite.Run(suite.DefaultConfig(spec, procs))
}

// SweepSuite runs the suite at each process count in procs.
func SweepSuite(spec *Spec, procs []int) ([]*SuiteResult, error) {
	return suite.Sweep(spec, procs)
}

// SweepSuiteParallel is SweepSuite on a worker pool: up to workers
// process counts simulate concurrently. Every sweep cell is an
// independent, deterministically-seeded computation, so the results are
// byte-identical to SweepSuite's regardless of worker count.
func SweepSuiteParallel(spec *Spec, procs []int, workers int) ([]*SuiteResult, error) {
	return suite.SweepParallel(spec, procs, workers)
}

// Workloads returns the canonical names of every registered benchmark
// workload, sorted — the vocabulary RunCustomSuite accepts.
func Workloads() []string { return suite.Workloads() }

// RunCustomSuite executes an explicit ordered benchmark list (composed
// from Workloads; names match case- and separator-insensitively) on spec
// at the given process count. This is how a suite opts into workloads
// beyond the default sets, such as the b_eff interconnect probe:
//
//	res, err := greenindex.RunCustomSuite(spec, 64, "HPL", "STREAM", "beff")
func RunCustomSuite(spec *Spec, procs int, benchmarks ...string) (*SuiteResult, error) {
	cfg := suite.DefaultConfig(spec, procs)
	cfg.Benchmarks = benchmarks
	return suite.Run(cfg)
}

// RunExtendedSuite executes the seven-benchmark extended suite (HPL,
// DGEMM, STREAM, PTRANS, RandomAccess, FFT, IOzone) — full HPC
// Challenge-style subsystem coverage, as the paper's introduction
// motivates.
func RunExtendedSuite(spec *Spec, procs int) (*SuiteResult, error) {
	return suite.RunExtendedOn(spec, procs)
}

// Aggregator selects the mean that folds weighted REEs into TGI.
type Aggregator = core.Aggregator

// Aggregation means (see core.Aggregate).
const (
	// Arithmetic is the paper's Equation 4.
	Arithmetic = core.Arithmetic
	// Harmonic hugs the worst subsystem.
	Harmonic = core.Harmonic
	// Geometric is the scale-free SPEC-style fold.
	Geometric = core.Geometric
)

// ComputeAggregated is Compute with a selectable aggregation mean.
func ComputeAggregated(a Aggregator, test, ref []Measurement, s Scheme, customWeights []float64) (*Components, error) {
	return core.ComputeAggregated(a, test, ref, s, customWeights)
}

// Facility models power drawn outside the computer system (UPS losses,
// cooling, fixed machine-room overhead) for center-wide TGI — the paper's
// future-work extension.
type Facility = power.FacilitySpec

// TypicalDatacenter returns a mid-2000s machine room (PUE ≈ 1.5 at load).
func TypicalDatacenter() Facility { return power.TypicalDatacenter() }

// RunSuiteCenterWide is RunSuite with the facility model applied to the
// metered power, yielding center-wide measurements.
func RunSuiteCenterWide(spec *Spec, procs int, f Facility) (*SuiteResult, error) {
	cfg := suite.DefaultConfig(spec, procs)
	cfg.Facility = &f
	return suite.Run(cfg)
}
