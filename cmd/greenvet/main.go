// Command greenvet runs the module's determinism & layering analyzer
// suite (internal/analysis) over the source tree — the machine check
// behind every byte-identical-artifact guarantee this reproduction
// makes.
//
// Usage:
//
//	greenvet ./...                      # analyze the whole module
//	greenvet ./internal/sim ./cmd/...   # analyze selected packages
//	greenvet -list                      # print analyzers and the rule table
//
// Findings print as `file:line: analyzer: message` and make the exit
// status nonzero, so `make lint` and CI fail on drift. Justified
// exceptions carry a `//greenvet:allow <analyzer> -- <reason>` comment
// on or directly above the flagged line. The same suite runs inside
// `go test ./internal/analysis`, so there is no CI-only enforcement gap.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer registry and per-package rule config, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: greenvet [-list] [packages]\n\n"+
			"Packages are ./-relative patterns (default ./...). Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := analysis.DefaultConfig()
	if *list {
		printList(os.Stdout, cfg)
		return
	}
	findings, err := run(cfg, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "greenvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// run loads the enclosing module and analyzes the packages matched by
// the ./-relative argument patterns (everything when none are given).
func run(cfg analysis.Config, args []string) ([]analysis.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := resolvePatterns(mod, args)
	if err != nil {
		return nil, err
	}
	return analysis.Run(mod, cfg, paths)
}

// resolvePatterns maps go-tool-style package patterns (./..., ./cmd/...,
// ./internal/sim) to loaded import paths. nil means "all packages".
func resolvePatterns(mod *analysis.Module, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	var paths []string
	for _, arg := range args {
		pat := filepath.ToSlash(arg)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == ".":
			return nil, nil
		default:
			if !strings.HasPrefix(pat, mod.Path) {
				pat = mod.Path + "/" + pat
			}
			n := 0
			for _, p := range mod.PackagePaths() {
				if matched(pat, p) {
					paths = append(paths, p)
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("pattern %q matches no packages", arg)
			}
		}
	}
	return paths, nil
}

func matched(pattern, path string) bool {
	if base, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == base || strings.HasPrefix(path, base+"/")
	}
	return pattern == path
}

// printList mirrors `greenbench -list`: first the analyzer registry,
// then the package → rule-set table, so the tool is self-describing.
func printList(w io.Writer, cfg analysis.Config) {
	fmt.Fprintln(w, "Analyzers:")
	for _, a := range analysis.Registry() {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w, "\nPackage rules (first match wins):")
	for _, r := range cfg.Packages {
		fmt.Fprintf(w, "  %-28s %s\n", r.Match, strings.Join(r.Analyzers, ","))
		if len(r.ForbidImports) > 0 {
			fmt.Fprintf(w, "  %-28s   forbid: %s\n", "", strings.Join(r.ForbidImports, ", "))
		}
	}
	fmt.Fprintf(w, "\nSuppression: `%s <analyzer> -- <reason>` on or above the flagged line.\n",
		analysis.AllowPrefix)
}
