// Command greenvet runs the module's determinism & layering analyzer
// suite (internal/analysis) over the source tree — the machine check
// behind every byte-identical-artifact guarantee this reproduction
// makes.
//
// Usage:
//
//	greenvet ./...                      # analyze the whole module
//	greenvet ./internal/sim ./cmd/...   # analyze selected packages
//	greenvet -list                      # print analyzers and the rule table
//	greenvet -json ./...                # NDJSON findings, one object per line
//	greenvet -github ./...              # GitHub Actions ::error annotations
//	greenvet -alloc                     # run only the allocation-budget gate
//
// Findings print as `file:line: analyzer: message` and make the exit
// status nonzero, so `make lint` and CI fail on drift. -json emits one
// NDJSON object per finding for machine consumers (CI artifacts), and
// -github emits workflow ::error annotations so findings land on the PR
// diff. Justified exceptions carry a `//greenvet:allow <analyzer> --
// <reason>` comment on or directly above the flagged line (or above the
// statement containing it). The same suite runs inside `go test
// ./internal/analysis`, so there is no CI-only enforcement gap.
//
// -alloc runs the allocation-budget gate instead of the analyzers: it
// rebuilds the budgeted packages with -gcflags=-m and fails when a
// package's heap-escape count exceeds its pinned ceiling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer registry and per-package rule config, then exit")
	asJSON := flag.Bool("json", false, "emit findings as NDJSON (one object per line) on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	alloc := flag.Bool("alloc", false, "run only the allocation-budget gate (go build -gcflags=-m)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: greenvet [-list] [-json] [-github] [-alloc] [packages]\n\n"+
			"Packages are ./-relative patterns (default ./...). Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := analysis.DefaultConfig()
	if *list {
		printList(os.Stdout, cfg)
		return
	}

	var findings []analysis.Finding
	var root string
	var err error
	if *alloc {
		findings, root, err = runAlloc()
	} else {
		findings, root, err = run(cfg, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenvet:", err)
		os.Exit(2)
	}
	emit(os.Stdout, findings, root, *asJSON, *github)
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "greenvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// emit prints findings in the selected format. JSON and annotation
// modes address files relative to the module root, so the output is
// stable across checkouts and usable from CI.
func emit(w io.Writer, findings []analysis.Finding, root string, asJSON, github bool) {
	for _, f := range findings {
		switch {
		case asJSON:
			enc, _ := json.Marshal(jsonFinding{
				File:     relPath(root, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
			fmt.Fprintln(w, string(enc))
		case github:
			fmt.Fprintln(w, githubAnnotation(root, f))
		default:
			fmt.Fprintln(w, f)
		}
	}
}

// jsonFinding is the NDJSON shape: one finding per line, fields stable
// for downstream tooling.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command, so CI surfaces it inline on the PR diff.
func githubAnnotation(root string, f analysis.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		escapeProperty(relPath(root, f.Pos.Filename)), f.Pos.Line, f.Pos.Column,
		escapeProperty("greenvet "+f.Analyzer), escapeData(f.Message))
}

// escapeData escapes an annotation message per the workflow-command
// rules: %, CR and LF.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty additionally escapes the property separators.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// relPath makes file paths module-root-relative where possible.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// moduleRoot locates the enclosing module from the working directory.
func moduleRoot() (string, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	return analysis.FindModuleRoot(cwd)
}

// run loads the enclosing module and analyzes the packages matched by
// the ./-relative argument patterns (everything when none are given).
func run(cfg analysis.Config, args []string) ([]analysis.Finding, string, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, "", err
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return nil, "", err
	}
	paths, err := resolvePatterns(mod, args)
	if err != nil {
		return nil, "", err
	}
	findings, err := analysis.Run(mod, cfg, paths)
	return findings, root, err
}

// runAlloc runs the allocation-budget gate against the default budgets.
func runAlloc() ([]analysis.Finding, string, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, "", err
	}
	findings, err := analysis.RunAllocBudget(root, analysis.DefaultAllocBudgets())
	return findings, root, err
}

// resolvePatterns maps go-tool-style package patterns (./..., ./cmd/...,
// ./internal/sim) to loaded import paths. nil means "all packages".
func resolvePatterns(mod *analysis.Module, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	var paths []string
	for _, arg := range args {
		pat := filepath.ToSlash(arg)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == ".":
			return nil, nil
		default:
			if !strings.HasPrefix(pat, mod.Path) {
				pat = mod.Path + "/" + pat
			}
			n := 0
			for _, p := range mod.PackagePaths() {
				if matched(pat, p) {
					paths = append(paths, p)
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("pattern %q matches no packages", arg)
			}
		}
	}
	return paths, nil
}

func matched(pattern, path string) bool {
	if base, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == base || strings.HasPrefix(path, base+"/")
	}
	return pattern == path
}

// printList mirrors `greenbench -list`: first the analyzer registry,
// then the package → rule-set table, so the tool is self-describing.
func printList(w io.Writer, cfg analysis.Config) {
	fmt.Fprintln(w, "Analyzers:")
	for _, a := range analysis.Registry() {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w, "\nAllocation budgets (-alloc):")
	for _, b := range analysis.DefaultAllocBudgets() {
		fmt.Fprintf(w, "  %-20s %d heap-escape sites\n", b.Pkg, b.Budget)
	}
	fmt.Fprintln(w, "\nPackage rules (first match wins):")
	for _, r := range cfg.Packages {
		fmt.Fprintf(w, "  %-28s %s\n", r.Match, strings.Join(r.Analyzers, ","))
		if len(r.ForbidImports) > 0 {
			fmt.Fprintf(w, "  %-28s   forbid: %s\n", "", strings.Join(r.ForbidImports, ", "))
		}
	}
	fmt.Fprintf(w, "\nSuppression: `%s <analyzer> -- <reason>` on or above the flagged line.\n",
		analysis.AllowPrefix)
}
