package main

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var testMod = sync.OnceValues(func() (*analysis.Module, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	return analysis.LoadModule(root)
})

// TestRunCleanTree mirrors `go run ./cmd/greenvet ./...`: the committed
// tree must produce zero findings under the default rule table.
func TestRunCleanTree(t *testing.T) {
	findings, err := run(analysis.DefaultConfig(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestResolvePatterns(t *testing.T) {
	mod, err := testMod()
	if err != nil {
		t.Fatal(err)
	}

	if paths, err := resolvePatterns(mod, nil); err != nil || paths != nil {
		t.Errorf("no args must mean all packages, got %v, %v", paths, err)
	}
	if paths, err := resolvePatterns(mod, []string{"./..."}); err != nil || paths != nil {
		t.Errorf("./... must mean all packages, got %v, %v", paths, err)
	}

	paths, err := resolvePatterns(mod, []string{"./internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "repro/internal/sim" {
		t.Errorf("./internal/sim resolved to %v", paths)
	}

	paths, err = resolvePatterns(mod, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 || !containsString(paths, "repro/internal/sim") {
		t.Errorf("./internal/... resolved to %v", paths)
	}

	if _, err := resolvePatterns(mod, []string{"./does/not/exist"}); err == nil {
		t.Error("pattern matching no packages must error")
	}
}

func TestPrintList(t *testing.T) {
	var buf bytes.Buffer
	printList(&buf, analysis.DefaultConfig())
	out := buf.String()
	for _, a := range analysis.Registry() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output is missing analyzer %q", a.Name)
		}
	}
	for _, want := range []string{"Package rules", "forbid:", "repro/internal/sim", analysis.AllowPrefix} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output is missing %q", want)
		}
	}
}

func TestMatched(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"repro/internal/sim", "repro/internal/sim", true},
		{"repro/internal/...", "repro/internal/sim", true},
		{"repro/internal/...", "repro/internals", false},
		{"repro/cmd", "repro/cmd/greenvet", false},
	}
	for _, tc := range cases {
		if got := matched(tc.pattern, tc.path); got != tc.want {
			t.Errorf("matched(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
