package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var testMod = sync.OnceValues(func() (*analysis.Module, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	return analysis.LoadModule(root)
})

// TestRunCleanTree mirrors `go run ./cmd/greenvet ./...`: the committed
// tree must produce zero findings under the default rule table.
func TestRunCleanTree(t *testing.T) {
	findings, root, err := run(analysis.DefaultConfig(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if root == "" {
		t.Error("run must report the module root for path relativization")
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestEmitFormats pins the two machine-readable output shapes: NDJSON
// (one object per line, root-relative paths) and GitHub Actions
// annotations (escaped workflow commands).
func TestEmitFormats(t *testing.T) {
	findings := []analysis.Finding{{
		Pos:      token.Position{Filename: "/mod/internal/sim/engine.go", Line: 42, Column: 7},
		Analyzer: "detclock",
		Message:  "use of time.Now: 100% forbidden\nsecond line",
	}}

	var buf bytes.Buffer
	emit(&buf, findings, "/mod", true, false)
	var got jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := jsonFinding{File: "internal/sim/engine.go", Line: 42, Col: 7,
		Analyzer: "detclock", Message: "use of time.Now: 100% forbidden\nsecond line"}
	if got != want {
		t.Errorf("json finding = %+v, want %+v", got, want)
	}

	buf.Reset()
	emit(&buf, findings, "/mod", false, true)
	ann := strings.TrimSpace(buf.String())
	// Properties escape : and , on top of the data escapes (%, CR, LF);
	// the data section keeps colons literal.
	wantAnn := "::error file=internal/sim/engine.go,line=42,col=7,title=greenvet detclock" +
		"::use of time.Now: 100%25 forbidden%0Asecond line"
	if ann != wantAnn {
		t.Errorf("annotation:\n got %s\nwant %s", ann, wantAnn)
	}
}

func TestResolvePatterns(t *testing.T) {
	mod, err := testMod()
	if err != nil {
		t.Fatal(err)
	}

	if paths, err := resolvePatterns(mod, nil); err != nil || paths != nil {
		t.Errorf("no args must mean all packages, got %v, %v", paths, err)
	}
	if paths, err := resolvePatterns(mod, []string{"./..."}); err != nil || paths != nil {
		t.Errorf("./... must mean all packages, got %v, %v", paths, err)
	}

	paths, err := resolvePatterns(mod, []string{"./internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "repro/internal/sim" {
		t.Errorf("./internal/sim resolved to %v", paths)
	}

	paths, err = resolvePatterns(mod, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 || !containsString(paths, "repro/internal/sim") {
		t.Errorf("./internal/... resolved to %v", paths)
	}

	if _, err := resolvePatterns(mod, []string{"./does/not/exist"}); err == nil {
		t.Error("pattern matching no packages must error")
	}
}

func TestPrintList(t *testing.T) {
	var buf bytes.Buffer
	printList(&buf, analysis.DefaultConfig())
	out := buf.String()
	for _, a := range analysis.Registry() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output is missing analyzer %q", a.Name)
		}
	}
	for _, want := range []string{"Package rules", "forbid:", "repro/internal/sim", analysis.AllowPrefix} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output is missing %q", want)
		}
	}
}

func TestMatched(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"repro/internal/sim", "repro/internal/sim", true},
		{"repro/internal/...", "repro/internal/sim", true},
		{"repro/internal/...", "repro/internals", false},
		{"repro/cmd", "repro/cmd/greenvet", false},
	}
	for _, tc := range cases {
		if got := matched(tc.pattern, tc.path); got != tc.want {
			t.Errorf("matched(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
