package main

// Sharded sweeps: -shards N partitions the process axis across N
// supervised greenbench worker processes (crash isolation), then renders
// the campaign from the merged journal. The split of responsibilities:
//
//   - internal/shard owns supervision mechanics: launching, heartbeat
//     watchdog, retry with backoff, bisection, quarantine decisions.
//   - internal/suite owns the deterministic half: journal segments,
//     their axis-order merge, and the resume machinery that turns the
//     merged journal into results/trace/metrics byte-identical to a
//     single-process sequential run.
//   - internal/campaign glues them (SuperviseShards): seeds segments on
//     resume, merges worker segments, records quarantined cells. It is
//     shared with the daemon, so CLI and server shard jobs behave
//     identically.
//   - This file keeps what only the CLI knows: worker argv construction
//     and the bridge from shard lifecycle events onto the live plane.

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/ops"
	"repro/internal/shard"
	"repro/internal/suite"
)

// shardMonitor bridges supervisor lifecycle events to the live plane and
// dumps the flight recorder when a shard is lost — the post-mortem ring
// then holds the campaign's last moments alongside the loss itself.
type shardMonitor struct {
	hub *live.Hub
	ls  *liveState
}

func (m shardMonitor) ShardStarted(shard, attempt, cells int) {
	m.hub.ShardStarted(shard, attempt, cells)
}

func (m shardMonitor) ShardLost(shard int, reason string) {
	m.hub.ShardLost(shard, reason)
	m.ls.dump(fmt.Sprintf("shard %d lost: %s", shard, reason))
}

func (m shardMonitor) ShardFinished(shard int) { m.hub.ShardFinished(shard) }

func (m shardMonitor) ShardQuarantined(shard, procs int, reason string) {
	m.hub.ShardQuarantined(shard, procs, reason)
}

// superviseShards runs the sweep's axis as o.shards supervised worker
// processes and leaves the canonical journal holding every cell: the
// workers' merged segments plus StatusQuarantined records for cells lost
// to a poison shard. The caller then renders the campaign through the
// ordinary resume path.
func superviseShards(o *options, spec *cluster.Spec, pl cluster.Placement, benches []string, axis []int, ls *liveState) error {
	path := o.journalFile()
	if path == "" {
		return fmt.Errorf("-shards needs a checkpoint journal: pass -o or -journal")
	}
	start := o.workerCommand
	if start == nil {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving worker executable: %w", err)
		}
		start = func(t shard.Task, segment string) (*exec.Cmd, error) {
			cmd := exec.Command(exe, workerArgs(*o, benches, t, segment)...)
			cmd.Stderr = os.Stderr
			return cmd, nil
		}
	}
	// The supervisor timeline rides along as a second monitor: lifecycle
	// events fan out to both the live plane and the wall-clock trace, and
	// neither can perturb the deterministic artefacts (the journal merge
	// never sees them).
	mon := shard.Monitor(shardMonitor{hub: ls.Hub(), ls: ls})
	var tl *ops.Timeline
	if o.opsTracePath != "" {
		tl = ops.NewTimeline()
		mon = shard.Monitors(mon, tl)
	}
	err := campaign.SuperviseShards(campaign.ShardPlan{
		JournalPath:      path,
		Spec:             spec,
		Placement:        pl,
		Benchmarks:       benches,
		Axis:             axis,
		Shards:           o.shards,
		Resume:           o.resume,
		Start:            start,
		HeartbeatTimeout: o.shardTimeout,
		MaxRetries:       o.shardRetries,
		Log:              os.Stderr,
		Monitor:          mon,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if tl != nil {
		if werr := tl.WriteFile(o.opsTracePath); werr != nil {
			fmt.Fprintf(os.Stderr, "greenbench: ops timeline write failed: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s (supervisor timeline, wall-clock)\n", o.opsTracePath)
		}
	}
	return err
}

// workerArgs builds the argv of one shard worker: the hidden worker-mode
// flags plus the subset of the parent's flags that decide what the cells
// compute. Flags that only shape parent-side output (-o, -trace, -serve,
// …) are deliberately absent — a worker's sole artifact is its segment.
func workerArgs(o options, benches []string, t shard.Task, segment string) []string {
	procs := make([]string, len(t.Procs))
	for i, p := range t.Procs {
		procs[i] = strconv.Itoa(p)
	}
	tick := o.shardTimeout / 5
	if tick <= 0 {
		tick = time.Second
	}
	args := []string{
		"-shard-worker", strconv.Itoa(t.Shard),
		"-shard-axis", strings.Join(procs, ","),
		"-journal", segment,
		"-shard-tick", tick.String(),
		"-placement", o.placement,
		"-bench", strings.Join(benches, ","),
	}
	if o.specPath != "" {
		args = append(args, "-spec", o.specPath)
	} else {
		args = append(args, "-system", o.system)
	}
	if o.traced() {
		// The parent will replay cell traces and metric ops out of the
		// merged journal; the workers must record them.
		args = append(args, "-shard-trace")
	}
	if o.faultsPath != "" {
		args = append(args, "-faults", o.faultsPath)
	}
	if o.retries > 0 {
		args = append(args, "-retries", strconv.Itoa(o.retries))
	}
	if o.timeout > 0 {
		args = append(args, "-timeout", strconv.FormatFloat(o.timeout, 'g', -1, 64))
	}
	if o.cellPause > 0 {
		args = append(args, "-cellpause", o.cellPause.String())
	}
	return args
}

// parseAxis decodes the worker's -shard-axis value.
func parseAxis(s string) ([]int, error) {
	var axis []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := strconv.Atoi(part)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-shard-axis entry %q is not a process count", part)
		}
		axis = append(axis, p)
	}
	if len(axis) == 0 {
		return nil, fmt.Errorf("-shard-axis %q holds no process counts", s)
	}
	return axis, nil
}

// runShardWorker is greenbench's hidden worker mode: run the assigned
// axis slice sequentially, checkpoint every cell (with its cell-relative
// trace and metric ops when the parent asked for observability) into the
// private journal segment, and heartbeat on stdout. Stdout belongs to
// the supervisor's watchdog — no results are printed. The segment is
// opened in resume mode unconditionally, so a relaunched worker skips
// everything its predecessor checkpointed.
func runShardWorker(o options, spec *cluster.Spec, pl cluster.Placement, benches []string, plan *faults.Plan) error {
	axis, err := parseAxis(o.shardAxis)
	if err != nil {
		return err
	}
	if o.journalPath == "" {
		return fmt.Errorf("shard worker needs -journal (its segment file)")
	}
	pf, err := faults.ProcFaultFromEnv()
	if err != nil {
		return err
	}
	journal, err := suite.OpenJournal(o.journalPath)
	if err != nil {
		return err
	}
	if err := journal.Bind(benches); err != nil {
		return err
	}
	var tracer *obs.Tracer
	if o.shardTrace {
		tracer = obs.NewTracer()
	}

	beats := shard.NewBeatWriter(os.Stdout, o.shardWorker)
	total := len(axis) * len(benches)
	beats.Hello(total)
	stop := shard.StartTicks(beats, o.shardTick)
	defer stop()
	var done atomic.Int64
	fire := func(d int) {
		if pf.Fires(o.shardWorker, d) {
			stop()
			pf.Fire(beats.Mute)
		}
	}
	fire(0)

	_, err = suite.RunSweepPlan(suite.SweepPlan{
		Axis:    axis,
		Workers: 1,
		Trace:   tracer,
		Configure: func(ctx suite.CellContext) (suite.Config, error) {
			if o.cellPause > 0 {
				time.Sleep(o.cellPause)
			}
			cfg := suite.DefaultConfig(spec, ctx.Procs)
			cfg.Placement = pl
			cfg.Benchmarks = benches
			cfg.Faults = plan
			cfg.Retry = o.retryPolicy()
			key := func(b string) string {
				return suite.CellKey(spec.Name, ctx.Procs, pl.String(), b)
			}
			origin := ctx.Origin
			mark := ctx.Rec.Mark()
			cfg.Lookup = func(b string) (suite.BenchmarkRun, bool) {
				run, ok := journal.Lookup(key(b))
				if ok && ctx.Rec != nil {
					if tr, hasTrace := journal.LookupTrace(key(b)); hasTrace {
						ctx.Rec.Replay(obs.ShiftedSpans(tr.Spans, origin),
							obs.ShiftedEvents(tr.Events, origin))
						ctx.Rec.ReplayOps(tr.Ops)
						mark = ctx.Rec.Mark()
					}
				}
				return run, ok
			}
			cfg.OnBenchmark = func(b string, run suite.BenchmarkRun) error {
				if ctx.Rec != nil {
					spans, events := ctx.Rec.Since(mark)
					ops := ctx.Rec.OpsSince(mark)
					mark = ctx.Rec.Mark()
					journal.SetTrace(key(b), suite.CellTrace{
						Spans:  obs.ShiftedSpans(spans, -ctx.Origin),
						Events: obs.ShiftedEvents(events, -ctx.Origin),
						Ops:    ops,
					})
				}
				if err := journal.Record(key(b), run); err != nil {
					return err
				}
				d := int(done.Add(1))
				beats.Cell(key(b), d, total)
				fire(d)
				return nil
			}
			return cfg, nil
		},
	})
	if err != nil {
		return err
	}
	beats.Done()
	return nil
}
