package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/shard"
)

// startDaemon runs greenbench -daemon in-process on an ephemeral port
// and returns its base URL. The daemon stops (and run returns) at test
// cleanup.
func startDaemon(t *testing.T, o options) string {
	t.Helper()
	addrCh := make(chan string, 1)
	o.daemon = "127.0.0.1:0"
	if o.maxJobs == 0 {
		o.maxJobs = 2
	}
	o.workers = 1
	o.daemonStop = make(chan struct{})
	o.onServe = func(addr string) { addrCh <- addr }
	errCh := make(chan error, 1)
	go func() { errCh <- run(o) }()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started serving")
	}
	t.Cleanup(func() {
		close(o.daemonStop)
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon did not shut down")
		}
	})
	return base
}

func submitJob(t *testing.T, base string, spec campaign.JobSpec) campaign.Status {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, body)
	}
	var st campaign.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJob(t *testing.T, base, id string) campaign.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, resp.StatusCode, body)
		}
		var st campaign.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonArtifactsMatchCLI is the byte-identity golden: the same
// campaign submitted to the daemon and run from the CLI must produce
// identical results, trace and metrics files. The report differs only
// if observability state leaked between planes — compare it too.
func TestDaemonArtifactsMatchCLI(t *testing.T) {
	dir := t.TempDir()

	// CLI run.
	cli := options{
		system: "testbed", sweep: true, workers: 1, placement: "cyclic",
		out:         filepath.Join(dir, "cli.json"),
		tracePath:   filepath.Join(dir, "cli.trace.json"),
		metricsPath: filepath.Join(dir, "cli.metrics.json"),
		reportPath:  filepath.Join(dir, "cli.report.txt"),
	}
	if err := run(cli); err != nil {
		t.Fatal(err)
	}

	// Same campaign through the daemon.
	base := startDaemon(t, options{daemonDir: filepath.Join(dir, "jobs")})
	st := submitJob(t, base, campaign.JobSpec{System: "testbed", Sweep: true})
	st = waitJob(t, base, st.ID)
	if st.State != campaign.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	for _, pair := range []struct{ what, cliPath, jobFile string }{
		{"results", cli.out, campaign.ResultsFile},
		{"trace", cli.tracePath, campaign.TraceFile},
		{"metrics", cli.metricsPath, campaign.MetricsFile},
		{"report", cli.reportPath, campaign.ReportFile},
	} {
		mustEqualFiles(t, pair.what, pair.cliPath, filepath.Join(st.Dir, pair.jobFile))
	}

	// The report is also served over HTTP, byte-identical to the file.
	resp, err := http.Get(base + "/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want, err := os.ReadFile(cli.reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Error("served report differs from the CLI report")
	}
}

// TestDaemonStreamsAndCancels: two jobs at once — stream the first's
// events mid-run, cancel the second, and watch /metrics track both.
func TestDaemonStreamsAndCancels(t *testing.T) {
	dir := t.TempDir()
	base := startDaemon(t, options{daemonDir: filepath.Join(dir, "jobs"), maxJobs: 1})

	first := submitJob(t, base, campaign.JobSpec{Name: "streamed", System: "testbed", Sweep: true, CellPauseMS: 20})
	second := submitJob(t, base, campaign.JobSpec{Name: "doomed", System: "testbed"})
	if second.State != campaign.StateQueued {
		t.Fatalf("second job state = %s, want queued behind max-jobs 1", second.State)
	}

	// Stream the first job's events while it runs.
	streamed := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/jobs/" + first.ID + "/events")
		if err != nil {
			streamed <- -1
			return
		}
		defer resp.Body.Close()
		n := 0
		buf := make([]byte, 4096)
		for {
			k, err := resp.Body.Read(buf)
			n += bytes.Count(buf[:k], []byte("\n"))
			if err != nil {
				break
			}
		}
		streamed <- n
	}()

	// Cancel the queued job.
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+second.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job: %d", resp.StatusCode)
	}
	if st := waitJob(t, base, second.ID); st.State != campaign.StateCancelled {
		t.Fatalf("cancelled job state = %s", st.State)
	}

	if st := waitJob(t, base, first.ID); st.State != campaign.StateDone {
		t.Fatalf("first job ended %s: %s", st.State, st.Error)
	}
	select {
	case n := <-streamed:
		if n <= 0 {
			t.Fatalf("streamed %d event lines, want > 0", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not end after the job finished")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`campaign_jobs{state="done"} 1`,
		`campaign_jobs{state="cancelled"} 1`,
		"campaign_jobs_total 2",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q\n%s", want, metrics)
		}
	}
}

// TestDaemonShardedJobMatchesCLI runs a sharded job through the daemon
// (workers re-enter this test binary) and checks the artefacts against
// the plain sequential CLI run — the sharded daemon path must not change
// a single byte either.
func TestDaemonShardedJobMatchesCLI(t *testing.T) {
	dir := t.TempDir()
	seqOut, seqTrace, seqMetrics := sequentialBaseline(t, dir)

	worker := func(w campaign.WorkerSpec) (*exec.Cmd, error) {
		procs := make([]string, len(w.Task.Procs))
		for i, p := range w.Task.Procs {
			procs[i] = strconv.Itoa(p)
		}
		env, err := json.Marshal(workerEnv{
			Shard: w.Task.Shard, Axis: strings.Join(procs, ","), Journal: w.Segment,
			System: w.System, Bench: strings.Join(w.Benchmarks, ","), Placement: w.Placement,
			Trace: w.Traced, Tick: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(os.Args[0], "-test.run=TestShardWorkerProcess$")
		cmd.Env = append(os.Environ(), workerEnvVar+"="+string(env))
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
	base := startDaemon(t, options{daemonDir: filepath.Join(dir, "jobs"), daemonWorker: worker})
	st := submitJob(t, base, campaign.JobSpec{System: "testbed", Sweep: true, Shards: 2})
	st = waitJob(t, base, st.ID)
	if st.State != campaign.StateDone {
		t.Fatalf("sharded job ended %s: %s", st.State, st.Error)
	}
	if len(st.Shards) != 2 {
		t.Errorf("status lists %d shards, want 2: %+v", len(st.Shards), st.Shards)
	}
	for _, s := range st.Shards {
		if s.State != "finished" {
			t.Errorf("shard %d state = %q, want finished", s.Shard, s.State)
		}
	}
	mustEqualFiles(t, "results", seqOut, filepath.Join(st.Dir, campaign.ResultsFile))
	mustEqualFiles(t, "trace", seqTrace, filepath.Join(st.Dir, campaign.TraceFile))
	mustEqualFiles(t, "metrics", seqMetrics, filepath.Join(st.Dir, campaign.MetricsFile))
}

// TestDaemonWorkerArgsMirrorCLIWorkerArgs pins the daemon's shard-worker
// argv to the CLI's: both front ends must drive the hidden worker mode
// identically, or sharded daemon jobs would diverge from -shards runs.
func TestDaemonWorkerArgsMirrorCLIWorkerArgs(t *testing.T) {
	o := options{
		system: "testbed", placement: "cyclic", sweep: true, shards: 2,
		retries: 3, timeout: 9.5, cellPause: 20 * time.Millisecond,
		faultsPath: "plan.json", tracePath: "t.json",
		shardTimeout: 10 * time.Second,
	}
	benches := []string{"hpl", "stream"}
	task := shard.Task{Shard: 1, Procs: []int{4, 8}}
	cliArgs := workerArgs(o, benches, task, "seg.journal")
	daemonArgs := daemonWorkerArgs(campaign.WorkerSpec{
		Task: task, Segment: "seg.journal",
		System: "testbed", Placement: "cyclic", Benchmarks: benches,
		Traced: true, Retries: 3, TimeoutSeconds: 9.5,
		CellPause: 20 * time.Millisecond, FaultsFile: "plan.json",
		Tick: 2 * time.Second,
	})
	if strings.Join(cliArgs, " ") != strings.Join(daemonArgs, " ") {
		t.Errorf("worker argv diverged:\n cli:    %v\n daemon: %v", cliArgs, daemonArgs)
	}
}

// TestDaemonOpsEndpoints scrapes the operational surface of a working
// daemon: /statusz aggregates, verbose /healthz, and the ops series
// appended to /metrics.
func TestDaemonOpsEndpoints(t *testing.T) {
	dir := t.TempDir()
	base := startDaemon(t, options{daemonDir: filepath.Join(dir, "jobs"), opsSample: time.Minute})
	st := submitJob(t, base, campaign.JobSpec{System: "testbed"})
	if waitJob(t, base, st.ID).State != campaign.StateDone {
		t.Fatal("job did not finish")
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}

	var statusz struct {
		OpsEnabled  bool           `json:"ops_enabled"`
		JobsByState map[string]int `json:"jobs_by_state"`
		Ops         *struct {
			Queue struct {
				JobsRun uint64 `json:"jobs_finished_total"`
			} `json:"queue"`
			Runtime struct {
				Goroutines int `json:"goroutines"`
			} `json:"runtime"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(get("/statusz"), &statusz); err != nil {
		t.Fatalf("statusz not JSON: %v", err)
	}
	if !statusz.OpsEnabled || statusz.Ops == nil {
		t.Fatal("daemon default must have the ops plane enabled")
	}
	if statusz.JobsByState["done"] != 1 || statusz.Ops.Queue.JobsRun != 1 {
		t.Errorf("statusz job aggregates wrong: %+v", statusz)
	}
	if statusz.Ops.Runtime.Goroutines < 1 {
		t.Error("statusz runtime sample empty (sampler should prime it)")
	}

	var health struct {
		Status    string `json:"status"`
		Slots     int    `json:"slots"`
		Accepting bool   `json:"accepting"`
	}
	if err := json.Unmarshal(get("/healthz?verbose=1"), &health); err != nil {
		t.Fatalf("verbose healthz not JSON: %v", err)
	}
	if health.Status != "ok" || health.Slots != 2 || !health.Accepting {
		t.Errorf("verbose healthz = %+v", health)
	}

	metrics := string(get("/metrics"))
	for _, want := range []string{
		`ops_http_requests_total{route="POST /jobs",code="202"} 1`,
		`ops_http_request_seconds_bucket{route="GET /jobs/{id}",le="+Inf"}`,
		"campaign_slots 2",
		"campaign_jobs_finished_total 1",
		"ops_runtime_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDaemonNoOpsMatchesOpsArtifacts pins the inertness invariant at the
// daemon level: the same job with -no-ops and with the default ops plane
// produces byte-identical artefacts, and -no-ops strips the ops surface.
func TestDaemonNoOpsMatchesOpsArtifacts(t *testing.T) {
	dir := t.TempDir()
	runJob := func(tag string, noOps bool) string {
		base := startDaemon(t, options{daemonDir: filepath.Join(dir, tag), noOps: noOps})
		st := submitJob(t, base, campaign.JobSpec{System: "testbed", Sweep: true})
		st = waitJob(t, base, st.ID)
		if st.State != campaign.StateDone {
			t.Fatalf("%s job ended %s: %s", tag, st.State, st.Error)
		}
		if noOps {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			metrics, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(metrics), "ops_http_requests_total") {
				t.Error("-no-ops daemon still renders ops series")
			}
		}
		return st.Dir
	}
	opsDir := runJob("with-ops", false)
	plainDir := runJob("no-ops", true)
	for _, name := range []string{campaign.ResultsFile, campaign.TraceFile, campaign.MetricsFile, campaign.ReportFile} {
		mustEqualFiles(t, name, filepath.Join(opsDir, name), filepath.Join(plainDir, name))
	}
}
