package main

// Daemon mode: greenbench -daemon ADDR turns this process into the
// multi-tenant campaign server (internal/campaign). Job specs arrive
// over HTTP, each job runs in its own directory with its own journal,
// tracer and live hub, and the whole lifecycle is observable: states,
// progress, per-job NDJSON event streams, Prometheus metrics, reports.
// This file only wires flags into the campaign package and supplies the
// one thing the package cannot know — how to exec this binary as a
// shard worker.

import (
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs/live"
	"repro/internal/obs/ops"
)

// runDaemon runs the campaign server until a signal (or the test stop
// hook) asks it to shut down.
func runDaemon(o options) error {
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	worker := o.daemonWorker
	if worker == nil {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving worker executable: %w", err)
		}
		worker = func(w campaign.WorkerSpec) (*exec.Cmd, error) {
			cmd := exec.Command(exe, daemonWorkerArgs(w)...)
			cmd.Stderr = os.Stderr
			return cmd, nil
		}
	}
	flightCap := o.flightrecSize
	if flightCap == 0 {
		flightCap = live.DefaultFlightCapacity
	}
	// The ops plane is on by default (-no-ops turns it off): request
	// metrics, queue telemetry, runtime self-samples and per-job
	// supervisor timelines. It observes wall-clock behaviour only — job
	// artefacts stay byte-identical either way.
	var tel *ops.Telemetry
	if !o.noOps {
		tel = ops.New()
		tel.StartRuntimeSampler(o.opsSample, func(s ops.RuntimeSample) {
			logger.Info("runtime sample",
				"goroutines", s.Goroutines,
				"heap_alloc_bytes", s.HeapAllocBytes,
				"heap_objects", s.HeapObjects,
				"gc_total", s.NumGC,
				"gc_pause_total_seconds", s.GCPauseTotalSeconds,
				"open_fds", s.OpenFDs)
		})
		defer tel.Close()
	}
	mgr, err := campaign.NewManager(campaign.ManagerConfig{
		Dir:              o.daemonDir,
		MaxConcurrent:    o.maxJobs,
		FlightCapacity:   flightCap,
		Logger:           logger,
		Worker:           worker,
		HeartbeatTimeout: o.shardTimeout,
		ShardRetries:     o.shardRetries,
		Ops:              tel,
	})
	if err != nil {
		return err
	}
	srv, err := campaign.NewServer(campaign.ServerConfig{
		Addr:    o.daemon,
		Manager: mgr,
		Logger:  logger,
		Pprof:   o.pprof,
		Ops:     tel,
	})
	if err != nil {
		mgr.Close()
		return err
	}
	logger.Info("campaign server listening",
		"addr", srv.Addr(), "dir", o.daemonDir, "max_jobs", o.maxJobs, "pprof", o.pprof, "ops", !o.noOps)
	fmt.Fprintf(os.Stderr, "campaign server on http://%s (POST /jobs; /metrics /healthz /statusz /buildinfo)\n", srv.Addr())
	if o.onServe != nil {
		o.onServe(srv.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("shutting down", "signal", sig.String())
	case <-o.daemonStop: // nil channel (no hook) blocks forever
		logger.Info("shutting down", "signal", "stop hook")
	}
	signal.Stop(sigs)
	// Server first (no new submissions, streams end), then the manager
	// (cancels queued jobs, lets running ones abort at a cell boundary).
	srv.Close()
	mgr.Close()
	logger.Info("campaign server stopped")
	return nil
}

// daemonWorkerArgs builds the argv of one daemon shard worker — the same
// hidden worker-mode flags workerArgs builds for a CLI sharded sweep,
// sourced from the job spec instead of the parent's flags.
func daemonWorkerArgs(w campaign.WorkerSpec) []string {
	procs := make([]string, len(w.Task.Procs))
	for i, p := range w.Task.Procs {
		procs[i] = strconv.Itoa(p)
	}
	args := []string{
		"-shard-worker", strconv.Itoa(w.Task.Shard),
		"-shard-axis", strings.Join(procs, ","),
		"-journal", w.Segment,
		"-shard-tick", w.Tick.String(),
		"-placement", w.Placement,
		"-bench", strings.Join(w.Benchmarks, ","),
	}
	if w.SpecFile != "" {
		args = append(args, "-spec", w.SpecFile)
	} else {
		args = append(args, "-system", w.System)
	}
	if w.Traced {
		args = append(args, "-shard-trace")
	}
	if w.FaultsFile != "" {
		args = append(args, "-faults", w.FaultsFile)
	}
	if w.Retries > 0 {
		args = append(args, "-retries", strconv.Itoa(w.Retries))
	}
	if w.TimeoutSeconds > 0 {
		args = append(args, "-timeout", strconv.FormatFloat(w.TimeoutSeconds, 'g', -1, 64))
	}
	if w.CellPause > 0 {
		args = append(args, "-cellpause", w.CellPause.String())
	}
	return args
}
