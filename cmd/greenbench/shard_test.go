package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/shard"
)

// workerEnv carries a shard worker's configuration to the helper process
// through the environment — options has unexported fields, so the hook
// serialises this exported mirror instead.
type workerEnv struct {
	Shard     int
	Axis      string
	Journal   string
	System    string
	Bench     string
	Placement string
	Trace     bool
	Tick      time.Duration
}

const workerEnvVar = "GREENBENCH_SHARD_WORKER_ENV"

// TestShardWorkerProcess is not a test: it is the shard worker child the
// supervisor e2e tests launch (exec'ing a real greenbench binary would
// exec the test binary here, so the worker re-enters through this body).
func TestShardWorkerProcess(t *testing.T) {
	raw := os.Getenv(workerEnvVar)
	if raw == "" {
		return
	}
	var w workerEnv
	if err := json.Unmarshal([]byte(raw), &w); err != nil {
		fmt.Fprintln(os.Stderr, "worker env:", err)
		os.Exit(99)
	}
	err := run(options{
		system: w.System, bench: w.Bench, placement: w.Placement,
		workers: 1, journalPath: w.Journal,
		shardWorker: w.Shard, shardAxis: w.Axis,
		shardTrace: w.Trace, shardTick: w.Tick,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testWorkerCommand is the supervisor Start hook used by the e2e tests:
// it launches this test binary as the worker process.
func testWorkerCommand(o options, benches string) func(shard.Task, string) (*exec.Cmd, error) {
	return func(task shard.Task, segment string) (*exec.Cmd, error) {
		procs := make([]string, len(task.Procs))
		for i, p := range task.Procs {
			procs[i] = strconv.Itoa(p)
		}
		env, err := json.Marshal(workerEnv{
			Shard: task.Shard, Axis: strings.Join(procs, ","), Journal: segment,
			System: o.system, Bench: benches, Placement: "cyclic",
			Trace: o.traced(), Tick: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(os.Args[0], "-test.run=TestShardWorkerProcess$")
		cmd.Env = append(os.Environ(), workerEnvVar+"="+string(env))
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

// sequentialBaseline runs the unfaulted single-process sequential sweep
// and returns its results, trace and metrics paths.
func sequentialBaseline(t *testing.T, dir string) (out, trace, metrics string) {
	t.Helper()
	out = filepath.Join(dir, "seq.json")
	trace = filepath.Join(dir, "seq.trace.json")
	metrics = filepath.Join(dir, "seq.metrics.json")
	err := run(options{
		system: "testbed", sweep: true, workers: 1, placement: "cyclic",
		out: out, tracePath: trace, metricsPath: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, trace, metrics
}

// mustEqualFiles asserts two artifact files are byte-identical.
func mustEqualFiles(t *testing.T, what, a, b string) {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("%s differs between sequential and sharded runs", what)
	}
}

func shardedOptions(dir, tag string, shards int) options {
	o := options{
		system: "testbed", sweep: true, workers: 1, placement: "cyclic", shards: shards,
		out:         filepath.Join(dir, tag+".json"),
		tracePath:   filepath.Join(dir, tag+".trace.json"),
		metricsPath: filepath.Join(dir, tag+".metrics.json"),
	}
	o.workerCommand = testWorkerCommand(o, "paper")
	return o
}

func TestShardedSweepMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	seqOut, seqTrace, seqMetrics := sequentialBaseline(t, dir)
	for _, shards := range []int{2, 3} {
		o := shardedOptions(dir, fmt.Sprintf("sh%d", shards), shards)
		if err := run(o); err != nil {
			t.Fatalf("%d-shard sweep: %v", shards, err)
		}
		mustEqualFiles(t, "results", seqOut, o.out)
		mustEqualFiles(t, "trace", seqTrace, o.tracePath)
		mustEqualFiles(t, "metrics", seqMetrics, o.metricsPath)
		if segs, _ := filepath.Glob(filepath.Join(dir, "*.shard-*")); len(segs) != 0 {
			t.Errorf("%d-shard sweep left segments behind: %v", shards, segs)
		}
		if _, err := os.Stat(o.out + ".journal"); !os.IsNotExist(err) {
			t.Errorf("%d-shard sweep left its journal behind", shards)
		}
	}
}

// TestShardedSweepWithOpsTrace: -ops-trace must record a valid
// wall-clock supervisor timeline without changing one byte of the
// deterministic artefacts (the inertness invariant, CLI flavour).
func TestShardedSweepWithOpsTrace(t *testing.T) {
	dir := t.TempDir()
	seqOut, seqTrace, seqMetrics := sequentialBaseline(t, dir)
	o := shardedOptions(dir, "opstrace", 2)
	o.opsTracePath = filepath.Join(dir, "supervisor.trace.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, "results", seqOut, o.out)
	mustEqualFiles(t, "trace", seqTrace, o.tracePath)
	mustEqualFiles(t, "metrics", seqMetrics, o.metricsPath)

	check, err := obs.ValidateChromeTraceFile(o.opsTracePath)
	if err != nil {
		t.Fatalf("supervisor timeline invalid: %v", err)
	}
	// One attempt span per shard on a healthy run.
	if check.Spans < 2 {
		t.Errorf("timeline has %d spans, want one per shard (2)", check.Spans)
	}
	data, err := os.ReadFile(o.opsTracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard 0", "shard 1", "attempt 1", `"outcome": "finished"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("timeline missing %q", want)
		}
	}
}

func TestShardedSweepSurvivesWorkerSIGKILL(t *testing.T) {
	// Shard 1 is SIGKILLed after checkpointing two cells; the marker
	// makes the fault transient, so the supervisor's relaunch completes
	// the shard and the campaign's artifacts stay byte-identical to the
	// unfaulted sequential run.
	dir := t.TempDir()
	seqOut, seqTrace, seqMetrics := sequentialBaseline(t, dir)
	marker := filepath.Join(dir, "killed-once")
	t.Setenv(faults.ProcFaultEnv, "shard=1;after=2;mode=sigkill;marker="+marker)
	o := shardedOptions(dir, "killed", 2)
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatal("the injected SIGKILL never fired")
	}
	mustEqualFiles(t, "results", seqOut, o.out)
	mustEqualFiles(t, "trace", seqTrace, o.tracePath)
	mustEqualFiles(t, "metrics", seqMetrics, o.metricsPath)
}

func TestShardedSweepQuarantinesAndResumes(t *testing.T) {
	// Shard 1 dies on every launch (no marker): the supervisor bisects,
	// quarantines its axis points, and the campaign degrades to a partial
	// result with the journal kept. A plain -resume without the fault
	// re-runs the quarantined cells and converges to the unfaulted
	// sequential artifacts, byte for byte.
	dir := t.TempDir()
	seqOut, seqTrace, seqMetrics := sequentialBaseline(t, dir)
	t.Setenv(faults.ProcFaultEnv, "shard=1;after=0;mode=exit")
	o := shardedOptions(dir, "poisoned", 2)
	o.shardRetries = -1 // no relaunch budget: straight to bisection
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	outBytes, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(outBytes), `"quarantined"`) {
		t.Fatal("degraded campaign does not mark quarantined cells in its output")
	}
	journal := o.out + ".journal"
	if _, err := os.Stat(journal); err != nil {
		t.Fatal("journal not kept after a quarantine-degraded campaign")
	}

	os.Unsetenv(faults.ProcFaultEnv)
	re := options{
		system: "testbed", sweep: true, workers: 1, placement: "cyclic", resume: true,
		out: o.out, tracePath: o.tracePath, metricsPath: o.metricsPath,
	}
	if err := run(re); err != nil {
		t.Fatal(err)
	}
	mustEqualFiles(t, "results", seqOut, re.out)
	mustEqualFiles(t, "trace", seqTrace, re.tracePath)
	mustEqualFiles(t, "metrics", seqMetrics, re.metricsPath)
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Error("journal not removed after the resume completed the campaign")
	}
}

func TestValidateCLI(t *testing.T) {
	valid := options{workers: 1}
	if err := validateCLI(valid); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		o    options
		want string
	}{
		{"zero workers", options{workers: 0}, "-workers"},
		{"negative retries", options{workers: 1, retries: -1}, "-retries"},
		{"negative timeout", options{workers: 1, timeout: -5}, "-timeout"},
		{"negative shards", options{workers: 1, shards: -1}, "-shards"},
		{"shards without sweep", options{workers: 1, shards: 2, out: "x.json"}, "-sweep"},
		{"shards without journal", options{workers: 1, shards: 2, sweep: true}, "journal"},
		{"worker axis without journal", options{workers: 1, shardAxis: "1,2"}, "-journal"},
		{"flightrec-size too small", options{workers: 1, flightrecSize: 1}, "-flightrec-size"},
		{"flightrec-size too large", options{workers: 1, flightrecSize: 1 << 30}, "-flightrec-size"},
		{"daemon with native", options{workers: 1, daemon: ":0", native: true, maxJobs: 1}, "-native"},
		{"daemon as shard worker", options{workers: 1, daemon: ":0", shardAxis: "1,2", journalPath: "j", maxJobs: 1}, "-shard-axis"},
		{"daemon zero max-jobs", options{workers: 1, daemon: ":0"}, "-max-jobs"},
		{"daemon zero ops-sample", options{workers: 1, daemon: ":0", maxJobs: 1}, "-ops-sample"},
		{"ops-trace without shards", options{workers: 1, opsTracePath: "t.json"}, "-ops-trace"},
	} {
		err := validateCLI(tc.o)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
