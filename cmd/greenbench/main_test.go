package main

import (
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/suite"
)

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"fire", "Fire", "systemg", "greengpu", "gpu", "sicortex", "testbed"} {
		spec, err := specByName(name)
		if err != nil || spec == nil {
			t.Errorf("specByName(%q) = %v, %v", name, spec, err)
		}
	}
	if _, err := specByName("cray"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRunOnePoint(t *testing.T) {
	out := filepath.Join(t.TempDir(), "one.json")
	if err := run(options{system: "testbed", procs: 4, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Procs != 4 || len(rs[0].Runs) != 3 {
		t.Errorf("results = %+v", rs)
	}
}

func TestRunExtendedFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ext.json")
	if err := run(options{system: "testbed", procs: 8, extended: true, out: out, placement: "block"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Runs) != 7 {
		t.Errorf("extended run has %d benchmarks", len(rs[0].Runs))
	}
	if rs[0].Placement != "block" {
		t.Errorf("placement = %s", rs[0].Placement)
	}
}

func TestRunSweepScalesAxis(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	if err := run(options{system: "testbed", sweep: true, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("sweep points = %d", len(rs))
	}
	if rs[len(rs)-1].Procs != 8 { // testbed has 8 cores
		t.Errorf("last point procs = %d", rs[len(rs)-1].Procs)
	}
}

func TestRunDefaultsToAllCores(t *testing.T) {
	out := filepath.Join(t.TempDir(), "def.json")
	if err := run(options{system: "testbed", out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Procs != 8 {
		t.Errorf("default procs = %d, want 8", rs[0].Procs)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(options{system: "nope", procs: 1, placement: "cyclic"}); err == nil {
		t.Error("bad system accepted")
	}
	if err := run(options{system: "testbed", procs: 1, placement: "diagonal"}); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestRunWithSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := cluster.SaveSpec(specPath, cluster.Testbed()); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run(options{specPath: specPath, procs: 4, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].System != "Testbed" {
		t.Errorf("system = %s", rs[0].System)
	}
}

func TestRunNativeMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "host.json")
	if err := run(options{native: true, watts: 100, procs: 2, out: out}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].System != "host" || len(rs[0].Runs) != 8 {
		t.Errorf("native result = %+v", rs[0])
	}
	// Without watts it must refuse.
	if err := run(options{native: true}); err == nil {
		t.Error("native run without watts accepted")
	}
}
