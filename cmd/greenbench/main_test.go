package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/suite"
)

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"fire", "Fire", "systemg", "greengpu", "gpu", "sicortex", "testbed"} {
		spec, err := specByName(name)
		if err != nil || spec == nil {
			t.Errorf("specByName(%q) = %v, %v", name, spec, err)
		}
	}
	if _, err := specByName("cray"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestRunOnePoint(t *testing.T) {
	out := filepath.Join(t.TempDir(), "one.json")
	if err := run(options{system: "testbed", procs: 4, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Procs != 4 || len(rs[0].Runs) != 3 {
		t.Errorf("results = %+v", rs)
	}
}

func TestRunExtendedFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ext.json")
	if err := run(options{system: "testbed", procs: 8, extended: true, out: out, placement: "block"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Runs) != 7 {
		t.Errorf("extended run has %d benchmarks", len(rs[0].Runs))
	}
	if rs[0].Placement != "block" {
		t.Errorf("placement = %s", rs[0].Placement)
	}
}

func TestRunSweepScalesAxis(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	if err := run(options{system: "testbed", sweep: true, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("sweep points = %d", len(rs))
	}
	if rs[len(rs)-1].Procs != 8 { // testbed has 8 cores
		t.Errorf("last point procs = %d", rs[len(rs)-1].Procs)
	}
}

func TestRunDefaultsToAllCores(t *testing.T) {
	out := filepath.Join(t.TempDir(), "def.json")
	if err := run(options{system: "testbed", out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Procs != 8 {
		t.Errorf("default procs = %d, want 8", rs[0].Procs)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(options{system: "nope", procs: 1, placement: "cyclic"}); err == nil {
		t.Error("bad system accepted")
	}
	if err := run(options{system: "testbed", procs: 1, placement: "diagonal"}); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestRunWithSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := cluster.SaveSpec(specPath, cluster.Testbed()); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run(options{specPath: specPath, procs: 4, out: out, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].System != "Testbed" {
		t.Errorf("system = %s", rs[0].System)
	}
}

func TestRunWithFaultPlanRecovers(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	plan := &faults.Plan{
		Crashes: []faults.Crash{{Benchmark: "HPL", Node: 1, At: 100, Attempt: 0}},
	}
	if err := faults.Save(planPath, plan); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	err := run(options{system: "testbed", procs: 4, out: out, placement: "cyclic",
		faultsPath: planPath, retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Degraded {
		t.Fatalf("run with one retry degraded: %v", rs[0].Warnings)
	}
	if rs[0].Runs[0].Status != suite.StatusRecovered {
		t.Errorf("HPL = %+v, want recovered", rs[0].Runs[0])
	}
	// Without the retry the same plan degrades the run instead of erroring.
	outDeg := filepath.Join(dir, "deg.json")
	err = run(options{system: "testbed", procs: 4, out: outDeg, placement: "cyclic",
		faultsPath: planPath})
	if err != nil {
		t.Fatal(err)
	}
	rs, err = suite.LoadJSON(outDeg)
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Degraded || rs[0].Runs[0].Status != suite.StatusFailed {
		t.Errorf("retry-less crashed run = %+v, want degraded", rs[0])
	}
	if got := len(rs[0].Measurements()); got != 2 {
		t.Errorf("survivors = %d, want 2", got)
	}
}

func TestRunSweepResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	// The uninterrupted sweep is the ground truth.
	full := filepath.Join(dir, "full.json")
	if err := run(options{system: "testbed", sweep: true, out: full, placement: "cyclic"}); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(full + ".journal"); !os.IsNotExist(err) {
		t.Error("journal not removed after a completed sweep")
	}
	// Simulate an interrupted sweep: checkpoint the first axis points by
	// hand, exactly as a killed process would have left them.
	resumed := filepath.Join(dir, "resumed.json")
	journal, err := suite.OpenJournal(resumed + ".journal")
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Testbed()
	for _, p := range []int{1, 2, 3} { // testbed: 8 cores -> axis 1..8
		r, err := suite.Run(suite.DefaultConfig(spec, p))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range r.Runs {
			key := suite.CellKey(spec.Name, p, "cyclic", b.Measurement.Benchmark)
			if err := journal.Record(key, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Resume completes the remaining cells and must produce the identical
	// output file.
	if err := run(options{system: "testbed", sweep: true, out: resumed,
		placement: "cyclic", resume: true}); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(wantBytes) {
		t.Error("resumed sweep output differs from uninterrupted sweep")
	}
	if _, err := os.Stat(resumed + ".journal"); !os.IsNotExist(err) {
		t.Error("journal not removed after the resumed sweep completed")
	}
}

func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	plan := &faults.Plan{
		Seed:      7,
		Crashes:   []faults.Crash{{Benchmark: "HPL", Node: 1, At: 100, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.8},
		Meter:     &faults.Meter{DropRate: 0.05},
	}
	if err := faults.Save(planPath, plan); err != nil {
		t.Fatal(err)
	}
	// Ground truth: the same scenario untraced.
	plain := filepath.Join(dir, "plain.json")
	if err := run(options{system: "testbed", procs: 4, out: plain, placement: "cyclic",
		faultsPath: planPath, retries: 1}); err != nil {
		t.Fatal(err)
	}
	traced := filepath.Join(dir, "traced.json")
	tracePath := filepath.Join(dir, "run.trace.json")
	metricsPath := filepath.Join(dir, "run.metrics.json")
	reportPath := filepath.Join(dir, "run.report.txt")
	if err := run(options{system: "testbed", procs: 4, out: traced, placement: "cyclic",
		faultsPath: planPath, retries: 1,
		tracePath: tracePath, metricsPath: metricsPath, reportPath: reportPath}); err != nil {
		t.Fatal(err)
	}
	// Tracing is inert: the results JSON is byte-identical.
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(traced)
	if string(a) != string(b) {
		t.Error("tracing changed the results JSON")
	}
	chk, err := obs.ValidateChromeTraceFile(tracePath)
	if err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}
	if chk.Spans == 0 || chk.Instants == 0 {
		t.Errorf("trace = %+v, want spans and fault events", chk)
	}
	m, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"suite.attempts", "faults.crashes", "meter.windows"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	rep, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HPL", "recovered", "retries", "energy"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRunSweepResumeReplaysTrace(t *testing.T) {
	dir := t.TempDir()
	// The uninterrupted traced sweep is the ground truth.
	full := filepath.Join(dir, "full.json")
	fullTrace := filepath.Join(dir, "full.trace.json")
	if err := run(options{system: "testbed", sweep: true, out: full,
		placement: "cyclic", tracePath: fullTrace}); err != nil {
		t.Fatal(err)
	}
	wantTrace, err := os.ReadFile(fullTrace)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt a traced sweep after three axis points by running it with a
	// checkpoint hook that aborts, exactly as a killed process would.
	resumed := filepath.Join(dir, "resumed.json")
	err = run(options{system: "testbed", sweep: true, out: resumed,
		placement: "cyclic", tracePath: filepath.Join(dir, "partial.trace.json"),
		journalPath: resumed + ".journal", interruptAfter: 9})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted sweep did not stop: %v", err)
	}
	// Resume must replay the journaled cells' spans and produce the
	// identical trace file.
	resumedTrace := filepath.Join(dir, "resumed.trace.json")
	if err := run(options{system: "testbed", sweep: true, out: resumed,
		placement: "cyclic", resume: true, tracePath: resumedTrace,
		journalPath: resumed + ".journal"}); err != nil {
		t.Fatal(err)
	}
	gotTrace, err := os.ReadFile(resumedTrace)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotTrace) != string(wantTrace) {
		t.Error("resumed sweep trace differs from uninterrupted sweep trace")
	}
	// And the results themselves still match the untraced contract.
	a, _ := os.ReadFile(full)
	b, _ := os.ReadFile(resumed)
	if string(a) != string(b) {
		t.Error("resumed sweep output differs from uninterrupted sweep")
	}
}

func TestRunCorruptInputFiles(t *testing.T) {
	dir := t.TempDir()
	badSpec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(badSpec, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(options{specPath: badSpec, procs: 2, placement: "cyclic"})
	if err == nil {
		t.Error("corrupt spec accepted")
	} else if !strings.Contains(err.Error(), "spec.json") {
		t.Errorf("spec error does not name the file: %v", err)
	}
	badPlan := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(badPlan, []byte(`{"crash_prob": "high"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(options{system: "testbed", procs: 2, placement: "cyclic", faultsPath: badPlan})
	if err == nil {
		t.Error("corrupt fault plan accepted")
	} else if !strings.Contains(err.Error(), "not a valid fault plan") {
		t.Errorf("unhelpful fault-plan error: %v", err)
	}
}

func TestRunNativeMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "host.json")
	if err := run(options{native: true, watts: 100, procs: 2, out: out}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].System != "host" || len(rs[0].Runs) != 8 {
		t.Errorf("native result = %+v", rs[0])
	}
	// Without watts it must refuse.
	if err := run(options{native: true}); err == nil {
		t.Error("native run without watts accepted")
	}
}

func TestRunListFlag(t *testing.T) {
	if err := run(options{list: true}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunBenchFlagComposesSuite(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "custom.json")
	if err := run(options{system: "testbed", procs: 4, out: out,
		placement: "cyclic", bench: "hpl,beff"}); err != nil {
		t.Fatal(err)
	}
	rs, err := suite.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Runs) != 2 {
		t.Fatalf("custom suite ran %d benchmarks, want 2", len(rs[0].Runs))
	}
	if got := rs[0].Runs[0].Measurement.Benchmark; got != "HPL" {
		t.Errorf("first benchmark = %q, want HPL", got)
	}
	if got := rs[0].Runs[1].Measurement.Benchmark; got != "b_eff" {
		t.Errorf("second benchmark = %q, want b_eff", got)
	}
	// The named sets resolve too.
	ext := filepath.Join(dir, "ext.json")
	if err := run(options{system: "testbed", procs: 4, out: ext,
		placement: "cyclic", bench: "extended"}); err != nil {
		t.Fatal(err)
	}
	if rs, err = suite.LoadJSON(ext); err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Runs) != 7 {
		t.Errorf("-bench extended ran %d benchmarks, want 7", len(rs[0].Runs))
	}
	// Unknown names and conflicting flags fail loudly.
	if err := run(options{system: "testbed", procs: 4, placement: "cyclic",
		bench: "hpl,linpack"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(options{system: "testbed", procs: 4, placement: "cyclic",
		bench: "hpl", extended: true}); err == nil {
		t.Error("-bench together with -extended accepted")
	}
}

func TestRunSweepParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	plan := &faults.Plan{
		Seed:      7,
		Crashes:   []faults.Crash{{Benchmark: "HPL", Node: 1, At: 100, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.8},
		Meter:     &faults.Meter{DropRate: 0.05},
	}
	if err := faults.Save(planPath, plan); err != nil {
		t.Fatal(err)
	}
	read := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for _, tc := range []struct {
		name       string
		faultsPath string
		retries    int
	}{
		{"clean", "", 0},
		{"faulty", planPath, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqOut := filepath.Join(dir, tc.name+".seq.json")
			seqTrace := filepath.Join(dir, tc.name+".seq.trace.json")
			seqMetrics := filepath.Join(dir, tc.name+".seq.metrics.json")
			if err := run(options{system: "testbed", sweep: true, out: seqOut,
				placement: "cyclic", faultsPath: tc.faultsPath, retries: tc.retries,
				tracePath: seqTrace, metricsPath: seqMetrics}); err != nil {
				t.Fatal(err)
			}
			parOut := filepath.Join(dir, tc.name+".par.json")
			parTrace := filepath.Join(dir, tc.name+".par.trace.json")
			parMetrics := filepath.Join(dir, tc.name+".par.metrics.json")
			if err := run(options{system: "testbed", sweep: true, workers: 4, out: parOut,
				placement: "cyclic", faultsPath: tc.faultsPath, retries: tc.retries,
				tracePath: parTrace, metricsPath: parMetrics}); err != nil {
				t.Fatal(err)
			}
			if read(seqOut) != read(parOut) {
				t.Error("-workers 4 sweep output differs from sequential")
			}
			if read(seqTrace) != read(parTrace) {
				t.Error("-workers 4 campaign trace differs from sequential")
			}
			if read(seqMetrics) != read(parMetrics) {
				t.Error("-workers 4 campaign metrics differ from sequential")
			}
		})
	}
}

func TestRunSweepParallelResumeReplaysTrace(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	fullTrace := filepath.Join(dir, "full.trace.json")
	if err := run(options{system: "testbed", sweep: true, out: full,
		placement: "cyclic", tracePath: fullTrace}); err != nil {
		t.Fatal(err)
	}
	// Interrupt a sequential traced sweep, then finish it on four workers:
	// the journal's cell-relative traces are scheduler-invariant.
	resumed := filepath.Join(dir, "resumed.json")
	err := run(options{system: "testbed", sweep: true, out: resumed,
		placement: "cyclic", tracePath: filepath.Join(dir, "partial.trace.json"),
		journalPath: resumed + ".journal", interruptAfter: 9})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted sweep did not stop: %v", err)
	}
	resumedTrace := filepath.Join(dir, "resumed.trace.json")
	if err := run(options{system: "testbed", sweep: true, workers: 4, out: resumed,
		placement: "cyclic", resume: true, tracePath: resumedTrace,
		journalPath: resumed + ".journal"}); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(fullTrace)
	got, _ := os.ReadFile(resumedTrace)
	if string(got) != string(want) {
		t.Error("parallel-resumed sweep trace differs from uninterrupted sweep trace")
	}
	a, _ := os.ReadFile(full)
	b, _ := os.ReadFile(resumed)
	if string(a) != string(b) {
		t.Error("parallel-resumed sweep output differs from uninterrupted sweep")
	}
}

func TestRunSweepJournalRefusesDifferentBenchList(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep.json")
	journalPath := out + ".journal"
	err := run(options{system: "testbed", sweep: true, out: out,
		placement: "cyclic", journalPath: journalPath, interruptAfter: 6})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted sweep did not stop: %v", err)
	}
	// Resuming with another suite composition must fail with a clear error
	// instead of mixing incomparable measurements.
	err = run(options{system: "testbed", sweep: true, out: out,
		placement: "cyclic", journalPath: journalPath, resume: true,
		bench: "extended"})
	if err == nil {
		t.Fatal("journal accepted a different benchmark list")
	}
	if !strings.Contains(err.Error(), "benchmarks") || !strings.Contains(err.Error(), "delete") {
		t.Errorf("unhelpful benchmark-mismatch error: %v", err)
	}
	// The original composition still resumes cleanly.
	if err := run(options{system: "testbed", sweep: true, out: out,
		placement: "cyclic", journalPath: journalPath, resume: true}); err != nil {
		t.Fatal(err)
	}
}
