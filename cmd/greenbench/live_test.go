package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs/live"
)

// writeFaultPlan saves the standard crashy test plan and returns its path.
func writeFaultPlan(t *testing.T, dir string) string {
	t.Helper()
	planPath := filepath.Join(dir, "plan.json")
	plan := &faults.Plan{
		Crashes:   []faults.Crash{{Benchmark: "HPL", Node: 1, At: 100, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.9},
	}
	if err := faults.Save(planPath, plan); err != nil {
		t.Fatal(err)
	}
	return planPath
}

// TestRunLiveIsInert is the cmd-level inertness gate for the wall-clock
// plane: a sweep with -serve, -progress and -events enabled must produce
// byte-identical results JSON, Chrome trace and metrics snapshot to the
// same sweep with the live plane off.
func TestRunLiveIsInert(t *testing.T) {
	dir := t.TempDir()
	planPath := writeFaultPlan(t, dir)

	runOnce := func(name string, withLive bool) (res, trace, metrics []byte) {
		out := filepath.Join(dir, name+".json")
		tracePath := filepath.Join(dir, name+".trace.json")
		metricsPath := filepath.Join(dir, name+".metrics.json")
		o := options{
			system: "testbed", sweep: true, workers: 2, out: out,
			placement: "cyclic", faultsPath: planPath, retries: 2,
			tracePath: tracePath, metricsPath: metricsPath,
		}
		if withLive {
			// Wall-clock pacing widens the mid-run polling window; the
			// inertness comparison below doubles as proof that the pause
			// never reaches the virtual plane.
			o.cellPause = 10 * time.Millisecond
		}
		var pollErr error
		var polled ProgressPoll
		var wg sync.WaitGroup
		if withLive {
			o.serve = "127.0.0.1:0"
			o.progressEvery = 10 * time.Millisecond
			o.eventsPath = filepath.Join(dir, name+".events.ndjson")
			o.onServe = func(addr string) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					polled, pollErr = pollProgress(addr, 2*time.Second)
				}()
			}
		}
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if pollErr != nil {
			t.Fatalf("%s: polling /progress: %v", name, pollErr)
		}
		if withLive {
			if polled.Last.CellsTotal != 8 {
				t.Errorf("/progress cells_total = %d, want 8", polled.Last.CellsTotal)
			}
			if !polled.SawMetrics {
				t.Error("/metrics never answered during the run")
			}
			// The NDJSON event log must be non-empty valid JSON lines.
			b, err := os.ReadFile(o.eventsPath)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(string(b)), "\n")
			if len(lines) == 0 || lines[0] == "" {
				t.Fatal("event log is empty")
			}
			for i, ln := range lines {
				var e live.Event
				if err := json.Unmarshal([]byte(ln), &e); err != nil {
					t.Fatalf("event log line %d not JSON: %v", i, err)
				}
			}
		}
		read := func(p string) []byte {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		return read(out), read(tracePath), read(metricsPath)
	}

	baseRes, baseTrace, baseMetrics := runOnce("plain", false)
	liveRes, liveTrace, liveMetrics := runOnce("live", true)
	if !bytes.Equal(liveRes, baseRes) {
		t.Error("live plane changed the results JSON")
	}
	if !bytes.Equal(liveTrace, baseTrace) {
		t.Error("live plane changed the Chrome trace")
	}
	if !bytes.Equal(liveMetrics, baseMetrics) {
		t.Error("live plane changed the metrics snapshot")
	}
}

// ProgressPoll summarises what pollProgress saw.
type ProgressPoll struct {
	Last       live.ProgressSnapshot
	Polls      int
	SawMetrics bool
	// ServerClosed reports that the server went away between polls. run()
	// only shuts the server down after the campaign finishes, so this
	// implies completion even when the final done=true snapshot was missed.
	ServerClosed bool
}

// pollProgress polls /progress (and /metrics once) until the snapshot
// reports done, the server closes, or the deadline passes.
func pollProgress(addr string, deadline time.Duration) (ProgressPoll, error) {
	var out ProgressPoll
	base := "http://" + addr
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(base + "/progress")
		if err != nil {
			if out.Polls > 0 {
				out.ServerClosed = true
				return out, nil
			}
			return out, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		var p live.ProgressSnapshot
		if err := json.Unmarshal(b, &p); err != nil {
			return out, fmt.Errorf("bad /progress payload %q: %v", b, err)
		}
		out.Last = p
		out.Polls++
		if !out.SawMetrics {
			if mr, err := http.Get(base + "/metrics"); err == nil {
				mb, _ := io.ReadAll(mr.Body)
				mr.Body.Close()
				if strings.Contains(string(mb), "live_cells_total") {
					out.SawMetrics = true
				}
			}
		}
		if p.Done {
			return out, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return out, fmt.Errorf("run did not finish within %v (last: %+v)", deadline, out.Last)
}

// TestRunAbortDumpsFlightRecorder: a sweep aborted mid-run (via the
// interrupt test hook) must leave a flight-recorder dump holding the
// campaign's recent events.
func TestRunAbortDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	flight := filepath.Join(dir, "flight.json")
	err := run(options{
		system: "testbed", sweep: true, out: out, placement: "cyclic",
		flightPath:     flight,
		interruptAfter: 2,
	})
	if err == nil {
		t.Fatal("expected the interrupt hook to abort the sweep")
	}
	b, err := os.ReadFile(flight)
	if err != nil {
		t.Fatalf("no flight dump after abort: %v", err)
	}
	var d live.FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("flight dump not JSON: %v", err)
	}
	if !strings.HasPrefix(d.Reason, "abort: ") {
		t.Errorf("dump reason = %q, want abort:", d.Reason)
	}
	if len(d.Events) == 0 || d.TotalEvents == 0 {
		t.Fatalf("flight dump is empty: %+v", d)
	}
	// The dump must contain mirrored record traffic, not just lifecycle.
	kinds := map[live.Kind]bool{}
	for _, e := range d.Events {
		kinds[e.Kind] = true
	}
	if !kinds[live.KindMeterWindow] && !kinds[live.KindAttempt] {
		t.Errorf("dump kinds = %v, want mirrored spans (meter windows / attempts)", kinds)
	}
}

// TestRunSingleRunLiveLifecycle: a non-sweep invocation is a one-cell
// campaign on the live plane.
func TestRunSingleRunLiveLifecycle(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")
	var got ProgressPoll
	var pollErr error
	var wg sync.WaitGroup
	err := run(options{
		system: "testbed", procs: 4, out: out, placement: "cyclic",
		serve:     "127.0.0.1:0",
		cellPause: 30 * time.Millisecond,
		onServe: func(addr string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, pollErr = pollProgress(addr, 2*time.Second)
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if pollErr != nil {
		t.Fatal(pollErr)
	}
	if got.Last.CellsTotal != 1 {
		t.Errorf("final progress = %+v, want cells_total 1", got.Last)
	}
	if !got.Last.Done && !got.ServerClosed {
		t.Errorf("poller saw neither done nor server shutdown: %+v", got)
	}
	if got.Last.Done && got.Last.CellsDone != 1 {
		t.Errorf("final progress = %+v, want 1/1 done", got.Last)
	}
}
