// Command greenbench runs the simulated TGI benchmark suite (HPL, STREAM,
// IOzone behind a wall-plug meter) on one of the built-in cluster models
// and writes the measurements as JSON — the input format of cmd/tgi.
//
// Usage:
//
//	greenbench -system fire -procs 128 -o fire.json
//	greenbench -system systemg -procs 1024 -o ref.json
//	greenbench -system fire -sweep -o sweep.json      # the paper's axis
//	greenbench -spec mycluster.json -o mine.json      # user-defined machine
//	greenbench -native -watts 120 -o host.json        # real run on this host
//
// Suite composition and scheduling:
//
//	greenbench -list                                  # registered workloads
//	greenbench -system fire -bench extended -o x.json # seven-benchmark suite
//	greenbench -system fire -bench hpl,beff -o x.json # custom ordered suite
//	greenbench -system fire -sweep -workers 4 -o s.json  # parallel sweep
//
// Sweep cells are independent deterministic computations, so -workers N
// runs them concurrently with output byte-identical to -workers 1.
//
// Resilience:
//
//	greenbench -system fire -faults plan.json -retries 3 -o fire.json
//	greenbench -system fire -sweep -o sweep.json              # interrupted…
//	greenbench -system fire -sweep -o sweep.json -resume      # …picks up here
//
// A sweep with -o checkpoints every completed (procs, benchmark) cell to
// <out>.journal; -resume skips the checkpointed cells, so a resumed sweep
// produces the identical output file. The journal records the sweep's
// benchmark list and refuses to resume a differently-composed sweep. It
// is removed once the final JSON is safely written.
//
// Crash isolation:
//
//	greenbench -system fire -sweep -shards 4 -o sweep.json
//	greenbench -system fire -sweep -shards 4 -shard-timeout 60s -shard-retries 3 -o s.json
//
// -shards N splits the sweep axis across N independent worker processes,
// each checkpointing to its own journal segment and heartbeating to the
// supervising parent. A worker that crashes or goes silent is killed and
// relaunched with backoff; a shard that keeps dying is bisected down to
// the poison cell, which is quarantined while the rest of the campaign
// completes as a partial result (journal kept; a later -resume without
// the crash re-runs just the quarantined cells). Segments merge in axis
// order, so sharded output is byte-identical to -shards 0 at any count.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/native"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/shard"
	"repro/internal/suite"
	"repro/internal/units"
)

func specByName(name string) (*cluster.Spec, error) {
	switch strings.ToLower(name) {
	case "fire":
		return cluster.Fire(), nil
	case "systemg":
		return cluster.SystemG(), nil
	case "greengpu", "gpu":
		return cluster.GreenGPU(), nil
	case "sicortex":
		return cluster.SiCortex(), nil
	case "testbed":
		return cluster.Testbed(), nil
	default:
		return nil, fmt.Errorf("unknown system %q (want fire, systemg, greengpu, sicortex or testbed)", name)
	}
}

func main() {
	system := flag.String("system", "fire", "cluster model: fire, systemg, greengpu, testbed")
	specPath := flag.String("spec", "", "JSON machine-spec file (overrides -system)")
	nativeRun := flag.Bool("native", false, "run the real benchmark suite on this host")
	watts := flag.Float64("watts", 0, "host wall power for -native (from your meter)")
	procs := flag.Int("procs", 0, "MPI process count (default: all cores)")
	sweep := flag.Bool("sweep", false, "run the paper's process sweep instead of one point")
	extended := flag.Bool("extended", false, "run the seven-benchmark extended suite")
	benchList := flag.String("bench", "", "ordered comma-separated benchmark list, or 'paper'/'extended' (default: paper; see -list)")
	workers := flag.Int("workers", 1, "concurrent sweep cells (output is byte-identical to -workers 1)")
	list := flag.Bool("list", false, "list the registered benchmark workloads and exit")
	out := flag.String("o", "", "output JSON path (default: stdout summary only)")
	placement := flag.String("placement", "cyclic", "process placement: cyclic or block")
	faultsPath := flag.String("faults", "", "JSON fault-plan file to inject (see internal/faults)")
	retries := flag.Int("retries", 0, "retries per benchmark after an injected failure")
	timeout := flag.Float64("timeout", 0, "per-benchmark virtual-time limit in seconds (0: none)")
	resume := flag.Bool("resume", false, "skip (procs, benchmark) cells checkpointed in the journal")
	journalPath := flag.String("journal", "", "sweep checkpoint journal (default: <out>.journal)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the campaign")
	metricsPath := flag.String("metrics", "", "write campaign metrics (counters, gauges, histograms) as JSON")
	reportPath := flag.String("report", "", "write the human-readable run report ('-': stdout)")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :8080; /metrics, /progress, /events)")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr at this wall-clock interval (e.g. 2s; 0: off)")
	eventsPath := flag.String("events", "", "append the live event stream to this file as NDJSON")
	flightPath := flag.String("flightrec", "", "flight-recorder dump path on interrupt/abort (default: <out>.flightrec.json)")
	flightrecSize := flag.Int("flightrec-size", live.DefaultFlightCapacity,
		fmt.Sprintf("flight-recorder ring capacity in events (%d..%d)", live.MinFlightCapacity, live.MaxFlightCapacity))
	cellPause := flag.Duration("cellpause", 0, "wall-clock pause before each sweep cell (demo/e2e pacing; virtual results unaffected)")
	shards := flag.Int("shards", 0, "run the sweep as this many supervised worker processes (crash isolation; needs -sweep and -o/-journal)")
	shardTimeout := flag.Duration("shard-timeout", 30*time.Second, "kill and relaunch a shard worker whose heartbeat is silent this long")
	shardRetries := flag.Int("shard-retries", 2, "relaunches per lost shard before bisecting to the poison cell (negative: none)")
	shardWorker := flag.Int("shard-worker", 0, "internal: shard index when running as a supervised worker")
	shardAxis := flag.String("shard-axis", "", "internal: comma-separated process counts this worker owns (enables worker mode)")
	shardTrace := flag.Bool("shard-trace", false, "internal: journal cell traces and metric ops in the worker")
	shardTick := flag.Duration("shard-tick", time.Second, "internal: worker heartbeat interval")
	daemon := flag.String("daemon", "", "run as a multi-tenant campaign server on this address (e.g. :8080; POST /jobs)")
	daemonDir := flag.String("daemon-dir", "greenbench-jobs", "campaign server: directory for per-job journals and artefacts")
	maxJobs := flag.Int("max-jobs", 2, "campaign server: jobs running concurrently (others queue)")
	pprofFlag := flag.Bool("pprof", false, "campaign server: mount net/http/pprof under /debug/pprof")
	opsTrace := flag.String("ops-trace", "", "write the sharded sweep's wall-clock supervisor timeline (Chrome trace) to this path")
	noOps := flag.Bool("no-ops", false, "campaign server: disable the wall-clock operational telemetry plane")
	opsSample := flag.Duration("ops-sample", 10*time.Second, "campaign server: runtime self-sample interval (goroutines, heap, GC, fds)")
	flag.Parse()

	o := options{
		system: *system, specPath: *specPath, native: *nativeRun, watts: *watts,
		procs: *procs, sweep: *sweep, extended: *extended, bench: *benchList,
		workers: *workers, list: *list, out: *out, placement: *placement,
		faultsPath: *faultsPath, retries: *retries, timeout: *timeout,
		resume: *resume, journalPath: *journalPath,
		tracePath: *tracePath, metricsPath: *metricsPath, reportPath: *reportPath,
		serve: *serve, progressEvery: *progressEvery, eventsPath: *eventsPath,
		flightPath: *flightPath, flightrecSize: *flightrecSize, cellPause: *cellPause,
		shards: *shards, shardTimeout: *shardTimeout, shardRetries: *shardRetries,
		shardWorker: *shardWorker, shardAxis: *shardAxis, shardTrace: *shardTrace,
		shardTick: *shardTick,
		daemon:    *daemon, daemonDir: *daemonDir, maxJobs: *maxJobs, pprof: *pprofFlag,
		opsTracePath: *opsTrace, noOps: *noOps, opsSample: *opsSample,
	}
	if err := validateCLI(o); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}

// validateCLI rejects nonsensical flag combinations up front with
// actionable messages, before any journal or telemetry state is touched.
// It guards the CLI only — run() keeps accepting zero values so it stays
// directly drivable from tests.
func validateCLI(o options) error {
	if o.workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d (use -workers 1 for the sequential schedule)", o.workers)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d (0 runs each benchmark once)", o.retries)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v (0 disables the per-benchmark limit)", o.timeout)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", o.shards)
	}
	if o.shards > 1 {
		if !o.sweep {
			return fmt.Errorf("-shards %d needs -sweep: only a process sweep can be partitioned across worker processes", o.shards)
		}
		if o.journalFile() == "" {
			return fmt.Errorf("-shards needs a checkpoint journal: pass -o or -journal so shard segments have somewhere to merge")
		}
	}
	if o.shardAxis != "" && o.journalPath == "" {
		return fmt.Errorf("-shard-axis is internal to sharded sweeps and needs -journal (run greenbench -sweep -shards N instead)")
	}
	if o.flightrecSize != 0 && o.flightrecSize != live.DefaultFlightCapacity {
		if err := live.CheckFlightCapacity(o.flightrecSize); err != nil {
			return fmt.Errorf("-flightrec-size: %v", err)
		}
	}
	if o.daemon != "" {
		if o.native {
			return fmt.Errorf("-daemon and -native are mutually exclusive: the daemon runs simulated campaigns submitted over HTTP")
		}
		if o.shardAxis != "" {
			return fmt.Errorf("-daemon and -shard-axis are mutually exclusive: a shard worker cannot also be the server")
		}
		if o.maxJobs < 1 {
			return fmt.Errorf("-max-jobs must be at least 1, got %d", o.maxJobs)
		}
		if !o.noOps && o.opsSample <= 0 {
			return fmt.Errorf("-ops-sample must be positive, got %v (or pass -no-ops to disable operational telemetry)", o.opsSample)
		}
	}
	if o.opsTracePath != "" && o.shards < 2 {
		return fmt.Errorf("-ops-trace records the shard supervisor's wall-clock timeline and needs -shards of at least 2")
	}
	return nil
}

type options struct {
	system      string
	specPath    string
	native      bool
	watts       float64
	procs       int
	sweep       bool
	extended    bool
	bench       string
	workers     int
	list        bool
	out         string
	placement   string
	faultsPath  string
	retries     int
	timeout     float64
	resume      bool
	journalPath string
	tracePath   string
	metricsPath string
	reportPath  string
	// Live telemetry (wall-clock plane; see internal/obs/live).
	serve         string
	progressEvery time.Duration
	eventsPath    string
	flightPath    string
	flightrecSize int
	cellPause     time.Duration
	// Campaign-server mode (wall-clock plane; see internal/campaign).
	// A non-empty daemon address turns this invocation into the
	// multi-tenant job server instead of running one campaign.
	daemon    string
	daemonDir string
	maxJobs   int
	pprof     bool
	// Operational telemetry (wall-clock plane; see internal/obs/ops).
	// opsTracePath asks a CLI sharded sweep for its supervisor timeline;
	// noOps inverts the daemon's default-on ops plane (zero value keeps
	// it enabled, so tests building options literals get it for free);
	// opsSample paces the daemon's runtime self-sampler.
	opsTracePath string
	noOps        bool
	opsSample    time.Duration
	// Sharded sweeps (wall-clock plane; see internal/shard). shards > 1
	// runs the sweep as supervised OS worker processes; a non-empty
	// shardAxis switches this invocation into worker mode.
	shards       int
	shardTimeout time.Duration
	shardRetries int
	shardWorker  int
	shardAxis    string
	shardTrace   bool
	shardTick    time.Duration
	// workerCommand overrides how the supervisor builds a shard worker
	// process — a test hook so e2e tests can re-enter the test binary
	// instead of exec'ing a real greenbench.
	workerCommand func(t shard.Task, segment string) (*exec.Cmd, error)
	// interruptAfter aborts a sweep after N checkpointed cells — a test
	// hook simulating a killed process (the journal stays behind).
	interruptAfter int
	// onServe, when set, receives the live (or campaign) server's bound
	// address as soon as it is listening — a test hook for ephemeral-port
	// (:0) serving.
	onServe func(addr string)
	// daemonStop, when set, shuts the daemon down when closed — a test
	// hook standing in for SIGINT/SIGTERM.
	daemonStop chan struct{}
	// daemonWorker overrides the daemon's shard-worker factory — a test
	// hook so e2e tests can re-enter the test binary.
	daemonWorker campaign.WorkerFactory
}

// traced reports whether any observability output was requested. The
// tracer only exists when it is: instrumentation is off by default and
// provably inert (see internal/obs).
func (o options) traced() bool {
	return o.tracePath != "" || o.metricsPath != "" || o.reportPath != ""
}

// liveEnabled reports whether any wall-clock telemetry was requested.
// Like tracing, the live plane only exists when asked for — and even
// then it is inert: results, trace and metrics stay byte-identical.
func (o options) liveEnabled() bool {
	return o.serve != "" || o.progressEvery > 0 || o.eventsPath != "" || o.flightPath != ""
}

// flightFile resolves where a flight-recorder dump lands: an explicit
// -flightrec wins, otherwise it derives from -o.
func (o options) flightFile() string {
	if o.flightPath != "" {
		return o.flightPath
	}
	if o.out != "" {
		return o.out + ".flightrec.json"
	}
	return "greenbench.flightrec.json"
}

// liveState bundles the wall-clock telemetry machinery for one
// invocation: the hub, the optional HTTP server, NDJSON event log,
// periodic progress printer, and the SIGINT flight-dump handler. All
// methods are safe on a nil *liveState (telemetry off).
type liveState struct {
	o      options
	hub    *live.Hub
	server *live.Server
	events *os.File
	log    *live.EventLog
	stop   chan struct{} // ends the progress ticker and signal handler
	sigs   chan os.Signal
}

// Hub returns the hub to thread into the suite (nil when telemetry is
// off — the scheduler and Tap treat that as "record nothing").
func (ls *liveState) Hub() *live.Hub {
	if ls == nil {
		return nil
	}
	return ls.hub
}

// setupLive starts the requested live plane. snapshot supplies /metrics
// with the campaign registry view (empty when the run is untraced).
func setupLive(o options, snapshot func() obs.Snapshot) (*liveState, error) {
	if !o.liveEnabled() {
		return nil, nil
	}
	flightCap := o.flightrecSize
	if flightCap == 0 {
		flightCap = live.DefaultFlightCapacity
	}
	ls := &liveState{o: o, hub: live.NewHub(live.WithFlightCapacity(flightCap)), stop: make(chan struct{})}
	if o.serve != "" {
		srv, err := live.NewServer(o.serve, ls.hub, snapshot)
		if err != nil {
			return nil, err
		}
		ls.server = srv
		fmt.Fprintf(os.Stderr, "live telemetry on http://%s (/metrics /progress /events)\n", srv.Addr())
		if o.onServe != nil {
			o.onServe(srv.Addr())
		}
	}
	if o.eventsPath != "" {
		f, err := os.Create(o.eventsPath)
		if err != nil {
			ls.shutdown()
			return nil, err
		}
		ls.events = f
		ls.log = live.StartEventLog(ls.hub.Bus(), f, 1024)
	}
	if o.progressEvery > 0 {
		go func() {
			t := time.NewTicker(o.progressEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Fprintln(os.Stderr, ls.hub.Progress().String())
				case <-ls.stop:
					return
				}
			}
		}()
	}
	// A SIGINT mid-campaign dumps the flight recorder before dying, so an
	// interrupted sweep leaves its last moments on disk next to the
	// journal it also leaves behind.
	ls.sigs = make(chan os.Signal, 1)
	signal.Notify(ls.sigs, os.Interrupt)
	go func() {
		select {
		case <-ls.sigs:
			ls.dump("sigint")
			os.Exit(130)
		case <-ls.stop:
		}
	}()
	return ls, nil
}

// dump writes the flight recorder to the resolved dump path.
func (ls *liveState) dump(reason string) {
	if ls == nil {
		return
	}
	path := ls.o.flightFile()
	if err := ls.hub.DumpFlight(path, reason); err != nil {
		fmt.Fprintf(os.Stderr, "greenbench: flight dump failed: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s (flight recorder, reason: %s)\n", path, reason)
}

// shutdown tears the live plane down: final progress line, server close,
// event-log flush.
func (ls *liveState) shutdown() {
	if ls == nil {
		return
	}
	signal.Stop(ls.sigs)
	close(ls.stop)
	if ls.o.progressEvery > 0 {
		fmt.Fprintln(os.Stderr, ls.hub.Progress().String())
	}
	if ls.server != nil {
		ls.server.Close()
	}
	if ls.log != nil {
		ls.log.Close()
		if n := ls.log.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "greenbench: event log dropped %d event(s) (writer too slow)\n", n)
		}
	}
	if ls.events != nil {
		ls.events.Close()
	}
}

// retryPolicy translates the CLI knobs into a suite.RetryPolicy. Retries
// wait through a 30-virtual-second backoff (doubling per retry), the
// reboot/drain delay of a real campaign.
func (o options) retryPolicy() suite.RetryPolicy {
	return suite.RetryPolicy{
		MaxAttempts: o.retries + 1,
		Backoff:     units.Seconds(30),
		Timeout:     units.Seconds(o.timeout),
	}
}

// benchNames resolves -bench / -extended into the canonical ordered
// benchmark list ("paper" and nil both mean the paper's three).
func benchNames(o options) ([]string, error) {
	if o.bench != "" && o.extended {
		return nil, fmt.Errorf("-bench and -extended are mutually exclusive (use -bench extended)")
	}
	raw := o.bench
	switch strings.ToLower(raw) {
	case "":
		if o.extended {
			return suite.ExtendedOrder, nil
		}
		return suite.PaperOrder(), nil
	case "paper":
		return suite.PaperOrder(), nil
	case "extended":
		return suite.ExtendedOrder, nil
	}
	var names []string
	for _, part := range strings.Split(raw, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	resolved, err := bench.Resolve(names)
	if err != nil {
		return nil, err
	}
	return resolved, nil
}

// listWorkloads prints the registry: every benchmark -bench accepts.
func listWorkloads() error {
	inPaper := map[string]bool{}
	for _, n := range suite.PaperOrder() {
		inPaper[n] = true
	}
	inExtended := map[string]bool{}
	for _, n := range suite.ExtendedOrder {
		inExtended[n] = true
	}
	for _, name := range suite.Workloads() {
		w, ok := bench.Lookup(name)
		if !ok {
			return fmt.Errorf("registry lists unknown workload %q", name)
		}
		var sets []string
		if inPaper[name] {
			sets = append(sets, "paper")
		}
		if inExtended[name] {
			sets = append(sets, "extended")
		}
		line := fmt.Sprintf("%-13s %s", name, w.Metric())
		if len(sets) > 0 {
			line += "  (" + strings.Join(sets, ", ") + ")"
		}
		fmt.Println(line)
	}
	return nil
}

func run(o options) error {
	system, procs, sweep, out, placement :=
		o.system, o.procs, o.sweep, o.out, o.placement
	if o.list {
		return listWorkloads()
	}
	if o.native {
		return runNative(o)
	}
	if o.daemon != "" {
		return runDaemon(o)
	}
	benches, err := benchNames(o)
	if err != nil {
		return err
	}
	var spec *cluster.Spec
	if o.specPath != "" {
		if spec, err = cluster.LoadSpec(o.specPath); err != nil {
			return err
		}
	} else if spec, err = specByName(system); err != nil {
		return err
	}
	var pl cluster.Placement
	switch strings.ToLower(placement) {
	case "cyclic":
		pl = cluster.Cyclic
	case "block":
		pl = cluster.Block
	default:
		return fmt.Errorf("unknown placement %q", placement)
	}

	var plan *faults.Plan
	if o.faultsPath != "" {
		if plan, err = faults.Load(o.faultsPath); err != nil {
			return err
		}
	}

	// Worker mode: this process is one shard of a supervised sweep. It
	// runs its axis slice against its own journal segment, heartbeats on
	// stdout, and never writes user-facing output — the parent does.
	if o.shardAxis != "" {
		return runShardWorker(o, spec, pl, benches, plan)
	}

	var tracer *obs.Tracer
	if o.traced() {
		tracer = obs.NewTracer()
	}
	snapshot := func() obs.Snapshot {
		if tracer == nil {
			return obs.Snapshot{}
		}
		return tracer.Registry().Snapshot()
	}
	ls, err := setupLive(o, snapshot)
	if err != nil {
		return err
	}
	defer ls.shutdown()
	defer func() {
		if p := recover(); p != nil {
			ls.dump(fmt.Sprintf("panic: %v", p))
			panic(p)
		}
	}()
	cs := suite.CampaignSpec{
		Spec:        spec,
		Placement:   pl,
		Benchmarks:  benches,
		Faults:      plan,
		Retry:       o.retryPolicy(),
		Sweep:       sweep,
		Procs:       procs,
		Workers:     o.workers,
		JournalPath: o.journalFile(),
		Resume:      o.resume,
		Trace:       tracer,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Render: func(results []*suite.Result) error {
			printResults(os.Stdout, results)
			// campaign.Artifacts is the single results-to-disk code path,
			// shared with the daemon: that is what makes a job submitted
			// over HTTP byte-identical to the same campaign run here.
			return campaign.Artifacts{
				Results:   out,
				Trace:     o.tracePath,
				Metrics:   o.metricsPath,
				Report:    o.reportPath,
				ReportOut: os.Stdout,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			}.Write(tracer, results)
		},
	}
	if hub := ls.Hub(); hub != nil {
		cs.Live = hub
	}
	if o.cellPause > 0 {
		cs.PauseCell = func() { time.Sleep(o.cellPause) }
	}
	if o.interruptAfter > 0 {
		cs.AfterCell = func(done int64) error {
			if done >= int64(o.interruptAfter) {
				return fmt.Errorf("sweep interrupted after %d cell(s) (test hook)", done)
			}
			return nil
		}
	}
	if sweep && o.shards > 1 {
		cs.Supervise = func(axis []int) error {
			return superviseShards(&o, spec, pl, benches, axis, ls)
		}
	}
	outcome, err := suite.RunCampaign(cs)
	if err != nil {
		ls.dump("abort: " + err.Error())
		return err
	}
	if outcome.JournalKept != "" {
		fmt.Fprintf(os.Stderr,
			"%d cell(s) quarantined; journal %s kept — re-run with -resume to retry them\n",
			outcome.Quarantined, outcome.JournalKept)
	}
	return nil
}

// printResults renders the per-run summary lines of a campaign.
func printResults(w *os.File, results []*suite.Result) {
	for _, r := range results {
		header := fmt.Sprintf("%s procs=%d placement=%s", r.System, r.Procs, r.Placement)
		if r.Degraded {
			header += "  [DEGRADED]"
		}
		fmt.Fprintln(w, header)
		for _, b := range r.Runs {
			m := b.Measurement
			if b.Status == suite.StatusQuarantined {
				fmt.Fprintf(w, "  %-7s QUARANTINED (shard worker lost): %s\n",
					m.Benchmark, b.Error)
				continue
			}
			if !b.OK() {
				fmt.Fprintf(w, "  %-7s FAILED after %d attempt(s): %s\n",
					m.Benchmark, b.Retries+1, b.Error)
				continue
			}
			line := fmt.Sprintf("  %-7s perf=%.5g %s  power=%s  time=%s  energy=%s",
				m.Benchmark, m.Performance, m.Metric, m.Power, m.Time, m.EnergyJoules())
			if b.Status == suite.StatusRecovered {
				line += fmt.Sprintf("  [recovered after %d retry(ies), %s wasted]",
					b.Retries, b.WastedTime)
			}
			if b.GapsFilled > 0 || b.OutliersRejected > 0 {
				line += fmt.Sprintf("  [meter repair: %d gap(s), %d outlier(s)]",
					b.GapsFilled, b.OutliersRejected)
			}
			fmt.Fprintln(w, line)
		}
	}
}

// journalFile resolves the sweep journal path: an explicit -journal wins,
// otherwise it is derived from -o. Without either there is nothing durable
// to checkpoint against.
func (o options) journalFile() string {
	if o.journalPath != "" {
		return o.journalPath
	}
	if o.out != "" {
		return o.out + ".journal"
	}
	return ""
}

// runNative executes the real suite on the host and writes it in the same
// JSON format, so cmd/tgi can consume host runs and simulated runs alike.
func runNative(o options) error {
	res, err := native.Run(native.Config{Power: units.Watts(o.watts), Procs: o.procs})
	if err != nil {
		return err
	}
	r := &suite.Result{System: "host", Procs: o.procs, Placement: "native"}
	for _, m := range res.Measurements {
		fmt.Printf("  %-13s perf=%.5g %s  time=%s  (%s)\n",
			m.Benchmark, m.Performance, m.Metric, m.Time, res.Details[m.Benchmark])
		r.Runs = append(r.Runs, suite.BenchmarkRun{Measurement: m})
	}
	if o.out != "" {
		if err := suite.SaveJSON(o.out, []*suite.Result{r}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", o.out)
	}
	return nil
}
