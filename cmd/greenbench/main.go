// Command greenbench runs the simulated TGI benchmark suite (HPL, STREAM,
// IOzone behind a wall-plug meter) on one of the built-in cluster models
// and writes the measurements as JSON — the input format of cmd/tgi.
//
// Usage:
//
//	greenbench -system fire -procs 128 -o fire.json
//	greenbench -system systemg -procs 1024 -o ref.json
//	greenbench -system fire -sweep -o sweep.json      # the paper's axis
//	greenbench -spec mycluster.json -o mine.json      # user-defined machine
//	greenbench -native -watts 120 -o host.json        # real run on this host
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/native"
	"repro/internal/suite"
	"repro/internal/units"
)

func specByName(name string) (*cluster.Spec, error) {
	switch strings.ToLower(name) {
	case "fire":
		return cluster.Fire(), nil
	case "systemg":
		return cluster.SystemG(), nil
	case "greengpu", "gpu":
		return cluster.GreenGPU(), nil
	case "sicortex":
		return cluster.SiCortex(), nil
	case "testbed":
		return cluster.Testbed(), nil
	default:
		return nil, fmt.Errorf("unknown system %q (want fire, systemg, greengpu, sicortex or testbed)", name)
	}
}

func main() {
	system := flag.String("system", "fire", "cluster model: fire, systemg, greengpu, testbed")
	specPath := flag.String("spec", "", "JSON machine-spec file (overrides -system)")
	nativeRun := flag.Bool("native", false, "run the real benchmark suite on this host")
	watts := flag.Float64("watts", 0, "host wall power for -native (from your meter)")
	procs := flag.Int("procs", 0, "MPI process count (default: all cores)")
	sweep := flag.Bool("sweep", false, "run the paper's process sweep instead of one point")
	extended := flag.Bool("extended", false, "run the seven-benchmark extended suite")
	out := flag.String("o", "", "output JSON path (default: stdout summary only)")
	placement := flag.String("placement", "cyclic", "process placement: cyclic or block")
	flag.Parse()

	if err := run(options{
		system: *system, specPath: *specPath, native: *nativeRun, watts: *watts,
		procs: *procs, sweep: *sweep, extended: *extended, out: *out, placement: *placement,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}

type options struct {
	system    string
	specPath  string
	native    bool
	watts     float64
	procs     int
	sweep     bool
	extended  bool
	out       string
	placement string
}

func run(o options) error {
	system, procs, sweep, extended, out, placement :=
		o.system, o.procs, o.sweep, o.extended, o.out, o.placement
	if o.native {
		return runNative(o)
	}
	var spec *cluster.Spec
	var err error
	if o.specPath != "" {
		if spec, err = cluster.LoadSpec(o.specPath); err != nil {
			return err
		}
	} else if spec, err = specByName(system); err != nil {
		return err
	}
	var pl cluster.Placement
	switch strings.ToLower(placement) {
	case "cyclic":
		pl = cluster.Cyclic
	case "block":
		pl = cluster.Block
	default:
		return fmt.Errorf("unknown placement %q", placement)
	}

	execute := suite.Run
	if extended {
		execute = suite.RunExtended
	}
	var results []*suite.Result
	if sweep {
		axis := suite.FireSweep()
		if spec.TotalCores() != 128 {
			// Scale the canonical axis to this machine's core count.
			axis = nil
			for i := 1; i <= 8; i++ {
				axis = append(axis, spec.TotalCores()*i/8)
			}
		}
		for _, p := range axis {
			cfg := suite.DefaultConfig(spec, p)
			cfg.Placement = pl
			r, err := execute(cfg)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
	} else {
		if procs == 0 {
			procs = spec.TotalCores()
		}
		cfg := suite.DefaultConfig(spec, procs)
		cfg.Placement = pl
		r, err := execute(cfg)
		if err != nil {
			return err
		}
		results = []*suite.Result{r}
	}

	for _, r := range results {
		fmt.Printf("%s procs=%d placement=%s\n", r.System, r.Procs, r.Placement)
		for _, b := range r.Runs {
			m := b.Measurement
			fmt.Printf("  %-7s perf=%.5g %s  power=%s  time=%s  energy=%s\n",
				m.Benchmark, m.Performance, m.Metric, m.Power, m.Time, m.EnergyJoules())
		}
	}
	if out != "" {
		if err := suite.SaveJSON(out, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d run(s))\n", out, len(results))
	}
	return nil
}

// runNative executes the real suite on the host and writes it in the same
// JSON format, so cmd/tgi can consume host runs and simulated runs alike.
func runNative(o options) error {
	res, err := native.Run(native.Config{Power: units.Watts(o.watts), Procs: o.procs})
	if err != nil {
		return err
	}
	r := &suite.Result{System: "host", Procs: o.procs, Placement: "native"}
	for _, m := range res.Measurements {
		fmt.Printf("  %-13s perf=%.5g %s  time=%s  (%s)\n",
			m.Benchmark, m.Performance, m.Metric, m.Time, res.Details[m.Benchmark])
		r.Runs = append(r.Runs, suite.BenchmarkRun{Measurement: m})
	}
	if o.out != "" {
		if err := suite.SaveJSON(o.out, []*suite.Result{r}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", o.out)
	}
	return nil
}
