// Command figures regenerates every table and figure of the paper's
// evaluation section from the simulated clusters and prints them, together
// with the shape checks that define a successful reproduction.
//
// Usage:
//
//	figures            # everything: Figures 2-6, Tables I-II, checks
//	figures -fig 5     # one figure (2, 3, 4, 5 or 6)
//	figures -table 2   # one table (1 or 2)
//	figures -checks    # only the verification checklist
//	figures -csv       # emit tables as CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/paper"
	"repro/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "render one figure (1-6)")
	table := flag.Int("table", 0, "render one table (1-2)")
	checks := flag.Bool("checks", false, "only run the reproduction checks")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	if err := run(*fig, *table, *checks, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig, table int, checksOnly, csv bool) error {
	fmt.Fprintln(os.Stderr, "running the Fire sweep and the SystemG reference (simulated)...")
	d, err := paper.NewDataset()
	if err != nil {
		return err
	}
	all := fig == 0 && table == 0 && !checksOnly

	renderTable := func(t *report.Table) error {
		if csv {
			return t.CSV(os.Stdout)
		}
		err := t.Render(os.Stdout)
		fmt.Println()
		return err
	}

	if all || fig == 1 {
		fmt.Println(paper.Fig1(cluster.Fire()))
	}
	if all || fig == 2 {
		if err := d.Fig2().Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || fig == 3 {
		if err := d.Fig3().Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || fig == 4 {
		pts, chart, err := paper.Fig4(cluster.Fire())
		if err != nil {
			return err
		}
		if err := chart.Render(os.Stdout); err != nil {
			return err
		}
		t := &report.Table{Headers: []string{"Nodes", "Throughput", "Power", "MBPS/Watt"}}
		for _, p := range pts {
			t.AddRow(fmt.Sprintf("%d", p.Nodes), p.Rate.String(), p.Power.String(),
				fmt.Sprintf("%.4f", p.EEMBpsW))
		}
		if err := renderTable(t); err != nil {
			return err
		}
	}
	if all || fig == 5 {
		if err := d.Fig5().Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || fig == 6 {
		if err := d.Fig6().Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || table == 1 {
		if err := renderTable(d.Table1()); err != nil {
			return err
		}
	}
	if all || table == 2 {
		t2, err := d.Table2()
		if err != nil {
			return err
		}
		if err := renderTable(t2); err != nil {
			return err
		}
		fmt.Println("(paper prose: PCC of TGI_AM with IOzone/STREAM/HPL = .99/.96/.58)")
		fmt.Println()
	}
	if all || checksOnly {
		fmt.Println("Reproduction checks:")
		failed := 0
		for _, c := range d.Verify() {
			status := "PASS"
			if !c.Passed {
				status = "FAIL"
				failed++
			}
			fmt.Printf("  [%s] %-40s %s\n", status, c.Name, c.Detail)
		}
		if failed > 0 {
			return fmt.Errorf("%d reproduction check(s) failed", failed)
		}
	}
	return nil
}
