package main

import "testing"

// The checks path runs the entire reproduction pipeline and fails if any
// shape assertion regresses — the same gate cmd/figures -checks gives users.
func TestChecksPass(t *testing.T) {
	if err := run(0, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSelections(t *testing.T) {
	for fig := 1; fig <= 6; fig++ {
		if err := run(fig, 0, false, false); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
	for table := 1; table <= 2; table++ {
		if err := run(0, table, false, true); err != nil {
			t.Errorf("table %d (csv): %v", table, err)
		}
	}
}
