package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// opts builds the default option set the old positional tests used.
func opts(system string, procs int, bench string, interval float64, seed uint64) options {
	return options{system: system, procs: procs, bench: bench, interval: interval, seed: seed}
}

func TestRunAllBenchmarks(t *testing.T) {
	for _, bench := range []string{"hpl", "stream", "iozone"} {
		var sb, errb strings.Builder
		if err := run(opts("testbed", 4, bench, 1, 1), &sb, &errb); err != nil {
			t.Errorf("%s: %v", bench, err)
			continue
		}
		out := sb.String()
		if !strings.HasPrefix(out, "seconds,watts\n") {
			t.Errorf("%s: missing CSV header", bench)
		}
		lines := strings.Count(out, "\n")
		if lines < 3 {
			t.Errorf("%s: only %d lines", bench, lines)
		}
		if !strings.Contains(errb.String(), "powersim:") {
			t.Errorf("%s: summary missing from stderr", bench)
		}
	}
}

func TestRunDefaultsProcs(t *testing.T) {
	var sb, errb strings.Builder
	if err := run(opts("testbed", 0, "stream", 1, 1), &sb, &errb); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var sb, errb strings.Builder
	if err := run(opts("nope", 1, "hpl", 1, 1), &sb, &errb); err == nil {
		t.Error("bad system accepted")
	}
	if err := run(opts("testbed", 1, "linpack2", 1, 1), &sb, &errb); err == nil {
		t.Error("bad benchmark accepted")
	}
	if err := run(opts("testbed", 1, "hpl", 0, 1), &sb, &errb); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestIntervalControlsSampleCount(t *testing.T) {
	var fine, coarse, errb strings.Builder
	if err := run(opts("testbed", 4, "iozone", 1, 1), &fine, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(opts("testbed", 4, "iozone", 60, 1), &coarse, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(fine.String(), "\n") <= strings.Count(coarse.String(), "\n") {
		t.Error("finer interval did not produce more samples")
	}
}

func TestQuietSuppressesSummary(t *testing.T) {
	o := opts("testbed", 4, "stream", 1, 1)
	o.quiet = true
	var sb, errb strings.Builder
	if err := run(o, &sb, &errb); err != nil {
		t.Fatal(err)
	}
	if errb.Len() != 0 {
		t.Errorf("-quiet still wrote a summary: %q", errb.String())
	}
	if !strings.HasPrefix(sb.String(), "seconds,watts\n") {
		t.Error("-quiet dropped the CSV stream too")
	}
}

func TestReportFileRoutesSummary(t *testing.T) {
	dir := t.TempDir()
	o := opts("testbed", 4, "hpl", 1, 1)
	o.reportPath = filepath.Join(dir, "run.report.txt")
	var sb, errb strings.Builder
	if err := run(o, &sb, &errb); err != nil {
		t.Fatal(err)
	}
	if errb.Len() != 0 {
		t.Errorf("-report still wrote the summary to stderr: %q", errb.String())
	}
	b, err := os.ReadFile(o.reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"powersim: HPL on", "mean power", "energy"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report file missing %q:\n%s", want, b)
		}
	}
}

// TestReportIncludesMeterPercentiles: when instrumentation is on, the
// run summary carries a percentile row for the meter window histogram.
func TestReportIncludesMeterPercentiles(t *testing.T) {
	dir := t.TempDir()
	o := opts("testbed", 4, "hpl", 1, 1)
	o.metricsPath = filepath.Join(dir, "run.metrics.json")
	o.reportPath = filepath.Join(dir, "run.report.txt")
	var sb, errb strings.Builder
	if err := run(o, &sb, &errb); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"meter window seconds (virtual)", "meter.window_seconds", "p50_s"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report missing %q:\n%s", want, b)
		}
	}
	// Without instrumentation there is no histogram and no table.
	o2 := opts("testbed", 4, "hpl", 1, 1)
	o2.reportPath = filepath.Join(dir, "plain.report.txt")
	if err := run(o2, &sb, &errb); err != nil {
		t.Fatal(err)
	}
	p, err := os.ReadFile(o2.reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(p), "p50_s") {
		t.Errorf("uninstrumented report still shows percentiles:\n%s", p)
	}
}

func TestTraceAndMetricsOutputs(t *testing.T) {
	dir := t.TempDir()
	o := opts("testbed", 4, "iozone", 1, 1)
	o.quiet = true
	o.tracePath = filepath.Join(dir, "run.trace.json")
	o.metricsPath = filepath.Join(dir, "run.metrics.json")
	var plain, traced, errb strings.Builder
	if err := run(opts("testbed", 4, "iozone", 1, 1), &plain, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(o, &traced, &errb); err != nil {
		t.Fatal(err)
	}
	// Instrumentation is inert: the CSV stream is byte-identical.
	if plain.String() != traced.String() {
		t.Error("tracing changed the sampled CSV output")
	}
	chk, err := obs.ValidateChromeTraceFile(o.tracePath)
	if err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}
	if chk.Spans == 0 {
		t.Error("trace holds no spans (expected at least the meter window)")
	}
	m, err := os.ReadFile(o.metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"meter.windows", "meter.samples"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}
