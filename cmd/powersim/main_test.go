package main

import (
	"strings"
	"testing"
)

func TestRunAllBenchmarks(t *testing.T) {
	for _, bench := range []string{"hpl", "stream", "iozone"} {
		var sb strings.Builder
		if err := run("testbed", 4, bench, 1, 1, &sb); err != nil {
			t.Errorf("%s: %v", bench, err)
			continue
		}
		out := sb.String()
		if !strings.HasPrefix(out, "seconds,watts\n") {
			t.Errorf("%s: missing CSV header", bench)
		}
		lines := strings.Count(out, "\n")
		if lines < 3 {
			t.Errorf("%s: only %d lines", bench, lines)
		}
	}
}

func TestRunDefaultsProcs(t *testing.T) {
	var sb strings.Builder
	if err := run("testbed", 0, "stream", 1, 1, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var sb strings.Builder
	if err := run("nope", 1, "hpl", 1, 1, &sb); err == nil {
		t.Error("bad system accepted")
	}
	if err := run("testbed", 1, "linpack2", 1, 1, &sb); err == nil {
		t.Error("bad benchmark accepted")
	}
	if err := run("testbed", 1, "hpl", 0, 1, &sb); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestIntervalControlsSampleCount(t *testing.T) {
	var fine, coarse strings.Builder
	if err := run("testbed", 4, "iozone", 1, 1, &fine); err != nil {
		t.Fatal(err)
	}
	if err := run("testbed", 4, "iozone", 60, 1, &coarse); err != nil {
		t.Fatal(err)
	}
	if strings.Count(fine.String(), "\n") <= strings.Count(coarse.String(), "\n") {
		t.Error("finer interval did not produce more samples")
	}
}
