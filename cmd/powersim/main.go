// Command powersim streams the simulated wall-plug meter's samples for one
// benchmark run as CSV (seconds, watts) — the raw signal the rest of the
// pipeline integrates, in the same form a Watts Up? PRO logger would emit.
//
// Usage:
//
//	powersim -system fire -procs 128 -bench hpl
//	powersim -system fire -procs 64 -bench stream -interval 1 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hpl"
	"repro/internal/iozone"
	"repro/internal/power"
	"repro/internal/stream"
	"repro/internal/units"
)

func main() {
	system := flag.String("system", "fire", "cluster model: fire, systemg, greengpu, testbed")
	procs := flag.Int("procs", 0, "MPI process count (default: all cores)")
	bench := flag.String("bench", "hpl", "benchmark: hpl, stream, iozone")
	interval := flag.Float64("interval", 1, "meter sampling interval, seconds")
	seed := flag.Uint64("seed", 42, "meter noise seed")
	flag.Parse()

	if err := run(*system, *procs, *bench, *interval, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "powersim:", err)
		os.Exit(1)
	}
}

func run(system string, procs int, bench string, interval float64, seed uint64, out io.Writer) error {
	var spec *cluster.Spec
	switch strings.ToLower(system) {
	case "fire":
		spec = cluster.Fire()
	case "systemg":
		spec = cluster.SystemG()
	case "greengpu", "gpu":
		spec = cluster.GreenGPU()
	case "testbed":
		spec = cluster.Testbed()
	default:
		return fmt.Errorf("unknown system %q", system)
	}
	if procs == 0 {
		procs = spec.TotalCores()
	}

	var profile *cluster.LoadProfile
	switch strings.ToLower(bench) {
	case "hpl":
		res, err := hpl.Simulate(hpl.DefaultModelConfig(spec, procs))
		if err != nil {
			return err
		}
		profile = res.Profile
	case "stream":
		res, err := stream.Simulate(stream.DefaultModelConfig(spec, procs))
		if err != nil {
			return err
		}
		profile = res.Profile
	case "iozone":
		nodes := (procs + spec.Node.Cores() - 1) / spec.Node.Cores()
		if nodes > spec.Nodes {
			nodes = spec.Nodes
		}
		res, err := iozone.Simulate(iozone.DefaultModelConfig(spec, nodes))
		if err != nil {
			return err
		}
		profile = res.Profile
	default:
		return fmt.Errorf("unknown benchmark %q (want hpl, stream or iozone)", bench)
	}

	model, err := power.NewModel(spec)
	if err != nil {
		return err
	}
	cfg := power.WattsUpPRO(seed)
	cfg.Interval = units.Seconds(interval)
	meter, err := power.NewMeter(cfg)
	if err != nil {
		return err
	}
	trace, err := meter.Measure(model, profile)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, "seconds,watts")
	for _, s := range trace.Samples() {
		fmt.Fprintf(w, "%.3f,%.1f\n", float64(s.At), float64(s.Power))
	}
	energy, err := trace.Energy()
	if err != nil {
		return err
	}
	mean, _ := trace.MeanPower()
	fmt.Fprintf(os.Stderr, "%s on %s (%d procs): %d samples, mean %s, energy %s\n",
		strings.ToUpper(bench), spec.Name, procs, trace.Len(), mean, energy)
	return nil
}
