// Command powersim streams the simulated wall-plug meter's samples for one
// benchmark run as CSV (seconds, watts) — the raw signal the rest of the
// pipeline integrates, in the same form a Watts Up? PRO logger would emit.
//
// Usage:
//
//	powersim -system fire -procs 128 -bench hpl
//	powersim -system fire -procs 64 -bench stream -interval 1 > trace.csv
//	powersim -system fire -bench hpl -quiet -trace run.trace.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hpl"
	"repro/internal/iozone"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/units"
)

func main() {
	system := flag.String("system", "fire", "cluster model: fire, systemg, greengpu, testbed")
	procs := flag.Int("procs", 0, "MPI process count (default: all cores)")
	bench := flag.String("bench", "hpl", "benchmark: hpl, stream, iozone")
	interval := flag.Float64("interval", 1, "meter sampling interval, seconds")
	seed := flag.Uint64("seed", 42, "meter noise seed")
	quiet := flag.Bool("quiet", false, "suppress the run summary on stderr")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the metered run")
	metricsPath := flag.String("metrics", "", "write meter metrics (counters, histograms) as JSON")
	reportPath := flag.String("report", "", "write the run summary to a file instead of stderr")
	flag.Parse()

	if err := run(options{
		system: *system, procs: *procs, bench: *bench,
		interval: *interval, seed: *seed, quiet: *quiet,
		tracePath: *tracePath, metricsPath: *metricsPath, reportPath: *reportPath,
	}, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "powersim:", err)
		os.Exit(1)
	}
}

type options struct {
	system      string
	procs       int
	bench       string
	interval    float64
	seed        uint64
	quiet       bool
	tracePath   string
	metricsPath string
	reportPath  string
}

// traced reports whether observability output was requested; the tracer
// only exists when it is (instrumentation is inert and off by default).
func (o options) traced() bool { return o.tracePath != "" || o.metricsPath != "" }

// run emits the sampled trace as CSV on out and the run summary on errw
// (or the -report file), honouring the observability flags.
func run(o options, out, errw io.Writer) error {
	var spec *cluster.Spec
	switch strings.ToLower(o.system) {
	case "fire":
		spec = cluster.Fire()
	case "systemg":
		spec = cluster.SystemG()
	case "greengpu", "gpu":
		spec = cluster.GreenGPU()
	case "testbed":
		spec = cluster.Testbed()
	default:
		return fmt.Errorf("unknown system %q", o.system)
	}
	procs := o.procs
	if procs == 0 {
		procs = spec.TotalCores()
	}

	var profile *cluster.LoadProfile
	switch strings.ToLower(o.bench) {
	case "hpl":
		res, err := hpl.Simulate(hpl.DefaultModelConfig(spec, procs))
		if err != nil {
			return err
		}
		profile = res.Profile
	case "stream":
		res, err := stream.Simulate(stream.DefaultModelConfig(spec, procs))
		if err != nil {
			return err
		}
		profile = res.Profile
	case "iozone":
		nodes := (procs + spec.Node.Cores() - 1) / spec.Node.Cores()
		if nodes > spec.Nodes {
			nodes = spec.Nodes
		}
		res, err := iozone.Simulate(iozone.DefaultModelConfig(spec, nodes))
		if err != nil {
			return err
		}
		profile = res.Profile
	default:
		return fmt.Errorf("unknown benchmark %q (want hpl, stream or iozone)", o.bench)
	}

	model, err := power.NewModel(spec)
	if err != nil {
		return err
	}
	cfg := power.WattsUpPRO(o.seed)
	cfg.Interval = units.Seconds(o.interval)
	meter, err := power.NewMeter(cfg)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if o.traced() {
		tracer = obs.NewTracer()
		meter.Instrument(tracer)
	}
	trace, err := meter.Measure(model, profile)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintln(w, "seconds,watts")
	for _, s := range trace.Samples() {
		fmt.Fprintf(w, "%.3f,%.1f\n", float64(s.At), float64(s.Power))
	}
	energy, err := trace.Energy()
	if err != nil {
		return err
	}
	mean, _ := trace.MeanPower()
	peak, _ := trace.PeakPower()

	if o.tracePath != "" {
		if err := obs.WriteChromeTraceFile(o.tracePath, tracer.Spans(), tracer.Events()); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if o.metricsPath != "" {
		if err := tracer.Registry().Snapshot().WriteFile(o.metricsPath); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}

	var percentiles []report.PercentileRow
	if tracer != nil {
		for _, h := range tracer.Registry().Snapshot().Histograms {
			if h.Name != "meter.window_seconds" || h.Count == 0 {
				continue
			}
			p50, ok := h.Quantile(0.50)
			if !ok {
				continue
			}
			p95, _ := h.Quantile(0.95)
			p99, _ := h.Quantile(0.99)
			percentiles = append(percentiles, report.PercentileRow{
				Bench: h.Name, Count: h.Count, P50: p50, P95: p95, P99: p99,
			})
		}
	}

	rep := &report.RunReport{
		Title: fmt.Sprintf("powersim: %s on %s", strings.ToUpper(o.bench), spec.Name),
		Rows: []report.RunRow{{
			System:    spec.Name,
			Procs:     procs,
			Bench:     strings.ToUpper(o.bench),
			Status:    "ok",
			MeanWatts: float64(mean),
			PeakWatts: float64(peak),
			Seconds:   float64(profile.Duration()),
			EnergyJ:   float64(energy),
		}},
		Percentiles:     percentiles,
		PercentileTitle: "meter window seconds (virtual)",
		Summary: []report.KV{
			{Key: "samples", Value: fmt.Sprintf("%d", trace.Len())},
			{Key: "interval", Value: fmt.Sprintf("%g s", o.interval)},
			{Key: "mean power", Value: mean.String()},
			{Key: "energy", Value: energy.String()},
		},
	}
	if o.reportPath != "" {
		f, err := os.Create(o.reportPath)
		if err != nil {
			return err
		}
		if err := rep.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if !o.quiet {
		if err := rep.Render(errw); err != nil {
			return err
		}
	}
	return nil
}
