// Command tgi computes The Green Index from suite-result JSON files (as
// written by cmd/greenbench).
//
// Usage:
//
//	tgi -results fire.json -ref ref.json
//	tgi -results fire.json -ref ref.json -scheme energy
//	tgi -results fire.json -ref ref.json -scheme custom -weights 0.5,0.3,0.2
//	tgi -results fire.json -ref ref.json -mean harmonic
//
// When the results file holds a sweep, one TGI line is printed per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/suite"
)

func schemeByName(name string) (core.Scheme, error) {
	switch strings.ToLower(name) {
	case "am", "arithmetic", "arithmetic-mean":
		return core.ArithmeticMean, nil
	case "time":
		return core.TimeWeighted, nil
	case "energy":
		return core.EnergyWeighted, nil
	case "power":
		return core.PowerWeighted, nil
	case "custom":
		return core.Custom, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want am, time, energy, power or custom)", name)
	}
}

func aggregatorByName(name string) (core.Aggregator, error) {
	switch strings.ToLower(name) {
	case "", "arithmetic", "am":
		return core.Arithmetic, nil
	case "harmonic", "hm":
		return core.Harmonic, nil
	case "geometric", "gm":
		return core.Geometric, nil
	default:
		return 0, fmt.Errorf("unknown mean %q (want arithmetic, harmonic or geometric)", name)
	}
}

func parseWeights(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	resultsPath := flag.String("results", "", "system-under-test results JSON (required)")
	refPath := flag.String("ref", "", "reference-system results JSON (required)")
	schemeName := flag.String("scheme", "am", "weighting: am, time, energy, power, custom")
	meanName := flag.String("mean", "arithmetic", "aggregation mean: arithmetic, harmonic, geometric")
	weightsArg := flag.String("weights", "", "comma-separated custom weights (scheme=custom)")
	verbose := flag.Bool("v", false, "print the per-benchmark breakdown")
	flag.Parse()

	if err := run(*resultsPath, *refPath, *schemeName, *meanName, *weightsArg, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "tgi:", err)
		os.Exit(1)
	}
}

func run(resultsPath, refPath, schemeName, meanName, weightsArg string, verbose bool) error {
	if resultsPath == "" || refPath == "" {
		return fmt.Errorf("both -results and -ref are required")
	}
	scheme, err := schemeByName(schemeName)
	if err != nil {
		return err
	}
	agg, err := aggregatorByName(meanName)
	if err != nil {
		return err
	}
	weights, err := parseWeights(weightsArg)
	if err != nil {
		return err
	}
	if scheme == core.Custom && weights == nil {
		return fmt.Errorf("-scheme custom requires -weights")
	}
	results, err := suite.LoadJSON(resultsPath)
	if err != nil {
		return err
	}
	refs, err := suite.LoadJSON(refPath)
	if err != nil {
		return err
	}
	if len(refs) != 1 {
		return fmt.Errorf("reference file must hold exactly one run, has %d", len(refs))
	}
	refMs := refs[0].Measurements()

	t := &report.Table{
		Title:   fmt.Sprintf("TGI (%v weights) vs reference %s", scheme, refs[0].System),
		Headers: []string{"System", "Procs", "TGI"},
	}
	for _, r := range results {
		var c *core.Components
		if r.Degraded {
			// A degraded suite run lost benchmarks to unrecovered faults:
			// compute the partial TGI over the survivors, with the weights
			// renormalised (custom weights stay positional over the full
			// expected list).
			c, err = core.ComputePartialAggregated(agg, r.Measurements(), refMs,
				scheme, weights, r.Benchmarks())
		} else {
			c, err = core.ComputeAggregated(agg, r.Measurements(), refMs, scheme, weights)
		}
		if err != nil {
			return fmt.Errorf("%s procs=%d: %w", r.System, r.Procs, err)
		}
		tgiCell := fmt.Sprintf("%.4f", c.TGI)
		if c.Degraded {
			tgiCell += fmt.Sprintf(" (degraded: missing %s)", strings.Join(c.Missing, ", "))
		}
		t.AddRow(r.System, fmt.Sprintf("%d", r.Procs), tgiCell)
		if verbose {
			for i, b := range c.Benchmarks {
				t.AddRow("  "+b, "",
					fmt.Sprintf("EE=%.4g REE=%.4f W=%.3f", c.EE[i], c.REE[i], c.Weights[i]))
			}
		}
	}
	return t.Render(os.Stdout)
}
