package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/suite"
)

func TestSchemeByName(t *testing.T) {
	cases := map[string]core.Scheme{
		"am":              core.ArithmeticMean,
		"AM":              core.ArithmeticMean,
		"arithmetic":      core.ArithmeticMean,
		"arithmetic-mean": core.ArithmeticMean,
		"time":            core.TimeWeighted,
		"energy":          core.EnergyWeighted,
		"power":           core.PowerWeighted,
		"custom":          core.Custom,
	}
	for in, want := range cases {
		got, err := schemeByName(in)
		if err != nil || got != want {
			t.Errorf("schemeByName(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := schemeByName("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestParseWeights(t *testing.T) {
	ws, err := parseWeights("0.5, 0.3,0.2")
	if err != nil || len(ws) != 3 || ws[0] != 0.5 || ws[2] != 0.2 {
		t.Errorf("parseWeights = %v, %v", ws, err)
	}
	if ws, err := parseWeights(""); err != nil || ws != nil {
		t.Errorf("empty weights = %v, %v", ws, err)
	}
	if _, err := parseWeights("1,x"); err == nil {
		t.Error("bad weight accepted")
	}
}

func writeRun(t *testing.T, spec *cluster.Spec, procs int, path string) {
	t.Helper()
	r, err := suite.Run(suite.DefaultConfig(spec, procs))
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.SaveJSON(path, []*suite.Result{r}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	testPath := filepath.Join(dir, "fire.json")
	refPath := filepath.Join(dir, "ref.json")
	writeRun(t, cluster.Testbed(), 8, testPath)
	writeRun(t, cluster.Testbed(), 8, refPath)
	for _, scheme := range []string{"am", "time", "energy", "power"} {
		if err := run(testPath, refPath, scheme, "arithmetic", "", true); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
	if err := run(testPath, refPath, "custom", "geometric", "1,2,3", false); err != nil {
		t.Errorf("custom: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "am", "arithmetic", "", false); err == nil {
		t.Error("missing paths accepted")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "r.json")
	writeRun(t, cluster.Testbed(), 4, p)
	if err := run(p, p, "custom", "arithmetic", "", false); err == nil {
		t.Error("custom without weights accepted")
	}
	if err := run(p, filepath.Join(dir, "missing.json"), "am", "arithmetic", "", false); err == nil {
		t.Error("missing reference accepted")
	}
	// Reference file with more than one run is rejected.
	multi := filepath.Join(dir, "multi.json")
	rs, err := suite.Sweep(cluster.Testbed(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.SaveJSON(multi, rs); err != nil {
		t.Fatal(err)
	}
	if err := run(p, multi, "am", "arithmetic", "", false); err == nil {
		t.Error("multi-run reference accepted")
	}
}

func TestRunDegradedResultsGetPartialTGI(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	writeRun(t, cluster.Testbed(), 8, refPath)
	// A run whose STREAM benchmark died without retries: tgi must fall back
	// to the partial TGI over the survivors instead of erroring out.
	cfg := suite.DefaultConfig(cluster.Testbed(), 4)
	cfg.Faults = &faults.Plan{
		Crashes: []faults.Crash{{Benchmark: "STREAM", Node: 0, At: 50, Attempt: 0}},
	}
	r, err := suite.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("fixture run not degraded")
	}
	degPath := filepath.Join(dir, "deg.json")
	if err := suite.SaveJSON(degPath, []*suite.Result{r}); err != nil {
		t.Fatal(err)
	}
	if err := run(degPath, refPath, "am", "arithmetic", "", true); err != nil {
		t.Errorf("degraded results rejected: %v", err)
	}
	// Custom weights stay positional over the full three-benchmark list.
	if err := run(degPath, refPath, "custom", "arithmetic", "0.5,0.3,0.2", false); err != nil {
		t.Errorf("custom weights over degraded results: %v", err)
	}
}

func TestRunCorruptResultsFile(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	writeRun(t, cluster.Testbed(), 4, refPath)
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`[{"system": "fire", "runs": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(corrupt, refPath, "am", "arithmetic", "", false)
	if err == nil {
		t.Fatal("truncated results file accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "corrupt.json") || !strings.Contains(msg, "malformed JSON") {
		t.Errorf("unhelpful truncation error: %v", err)
	}
	if strings.Contains(msg, "\n") {
		t.Errorf("error is not one line: %q", msg)
	}
	// Wrong-type damage gets a field-level description.
	wrongType := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrongType, []byte(`[{"system": 42}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(wrongType, refPath, "am", "arithmetic", "", false)
	if err == nil {
		t.Fatal("type-damaged results file accepted")
	}
	if !strings.Contains(err.Error(), "system") {
		t.Errorf("type error does not name the field: %v", err)
	}
}

func TestAggregatorByName(t *testing.T) {
	for in, want := range map[string]core.Aggregator{
		"": core.Arithmetic, "arithmetic": core.Arithmetic, "am": core.Arithmetic,
		"harmonic": core.Harmonic, "hm": core.Harmonic,
		"geometric": core.Geometric, "GM": core.Geometric,
	} {
		got, err := aggregatorByName(in)
		if err != nil || got != want {
			t.Errorf("aggregatorByName(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := aggregatorByName("median"); err == nil {
		t.Error("bogus mean accepted")
	}
}

func TestRunHarmonicMean(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "r.json")
	writeRun(t, cluster.Testbed(), 8, p)
	if err := run(p, p, "am", "harmonic", "", false); err != nil {
		t.Fatal(err)
	}
}
