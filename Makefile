# Tier-1 gate and developer conveniences. `make check` is what CI runs.

GO ?= go

.PHONY: build vet test race fmt-check check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet test race fmt-check
