# Tier-1 gate and developer conveniences. `make check` is what CI runs.

GO ?= go

.PHONY: build vet test race fmt-check check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet test race fmt-check

# Benchmark the hot paths (engine dispatch, trace repair, suite sweep)
# and keep the machine-readable trajectory in BENCH_obs.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineDispatch|BenchmarkRepair|BenchmarkSweep' \
		-benchtime 1x -json \
		./internal/sim ./internal/series ./internal/suite > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | sed 's/"Output":"//' || true
