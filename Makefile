# Tier-1 gate and developer conveniences. `make check` is what CI runs.

GO ?= go

.PHONY: build vet test race fmt-check lint vet-alloc check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) run ./cmd/greenvet ./...

# Determinism & layering analyzer suite (stdlib-only). Findings are
# `file:line: analyzer: message`; exceptions need a
# `//greenvet:allow <analyzer> -- <reason>` comment.
lint:
	$(GO) run ./cmd/greenvet ./...

# Allocation-budget gate: rebuilds the budgeted hot-path packages with
# -gcflags=-m and fails when a package's heap-escape count exceeds its
# pinned ceiling (see `greenvet -list` for the budgets).
vet-alloc:
	$(GO) run ./cmd/greenvet -alloc

check: build vet lint vet-alloc test race fmt-check

# Benchmark the hot paths (engine dispatch, trace repair, suite sweep)
# and keep the machine-readable trajectory in BENCH_obs.json; then run
# the scheduler's cells×workers matrix (the paper's 9-cell axis plus a
# 32-cell production axis, each at 1/2/4/8 workers) alongside the
# classic sequential-vs-4-workers pair into BENCH_sweep.json. The
# -benchtime counts are pinned so successive runs are comparable;
# allocation counters come from b.ReportAllocs() in the benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineDispatch|BenchmarkRepair|BenchmarkSweep' \
		-benchtime 1x -json \
		./internal/sim ./internal/series ./internal/suite > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | sed 's/"Output":"//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkSweepAxis(Sequential|Parallel)|BenchmarkSweepMatrix' \
		-benchtime 10x -json \
		./internal/suite > BENCH_sweep.json
	@grep -o '"Output":"BenchmarkSweep[^"]*' BENCH_sweep.json | sed 's/"Output":"//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkBusPublish|BenchmarkTapSpan|BenchmarkHubProgress' \
		-benchtime 100000x -json \
		./internal/obs/live > BENCH_live.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_live.json | sed 's/"Output":"//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkLoadModule|BenchmarkAnalyzerSuite|BenchmarkCallGraph' \
		-benchtime 1x -json \
		./internal/analysis > BENCH_vet.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_vet.json | sed 's/"Output":"//' || true
