# Tier-1 gate and developer conveniences. `make check` is what CI runs.

GO ?= go

.PHONY: build vet test race fmt-check lint check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) run ./cmd/greenvet ./...

# Determinism & layering analyzer suite (stdlib-only). Findings are
# `file:line: analyzer: message`; exceptions need a
# `//greenvet:allow <analyzer> -- <reason>` comment.
lint:
	$(GO) run ./cmd/greenvet ./...

check: build vet lint test race fmt-check

# Benchmark the hot paths (engine dispatch, trace repair, suite sweep)
# and keep the machine-readable trajectory in BENCH_obs.json; then run
# the same full-axis campaign on one worker and on four, side by side,
# into BENCH_sweep.json — the scheduler's wall-clock win, measured.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineDispatch|BenchmarkRepair|BenchmarkSweep' \
		-benchtime 1x -json \
		./internal/sim ./internal/series ./internal/suite > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | sed 's/"Output":"//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkSweepAxis(Sequential|Parallel)' \
		-benchtime 3x -json \
		./internal/suite > BENCH_sweep.json
	@grep -o '"Output":"BenchmarkSweepAxis[^"]*' BENCH_sweep.json | sed 's/"Output":"//' || true
	$(GO) test -run '^$$' -bench 'BenchmarkBusPublish|BenchmarkTapSpan|BenchmarkHubProgress' \
		-benchtime 100000x -json \
		./internal/obs/live > BENCH_live.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_live.json | sed 's/"Output":"//' || true
