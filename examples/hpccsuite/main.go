// Full seven-benchmark TGI: the HPC Challenge-style suite the paper's
// introduction motivates ("there are seven different benchmark tests in
// the suite, and each of them reports their own individual performance
// using their own metrics").
//
// The run covers compute (HPL, DGEMM), memory bandwidth (STREAM), memory
// latency (RandomAccess), interconnect (PTRANS), mixed compute/all-to-all
// (FFT) and I/O (IOzone) — seven incommensurable metrics (GFLOPS, MB/s,
// GUPS) folded into one TGI number via the relative-efficiency step.
//
//	go run ./examples/hpccsuite
package main

import (
	"fmt"
	"log"
	"os"

	greenindex "repro"
	"repro/internal/report"
	"repro/internal/suite"
)

func main() {
	ref, err := suite.RunExtendedOn(greenindex.SystemG(), 1024)
	if err != nil {
		log.Fatal(err)
	}
	test, err := suite.RunExtendedOn(greenindex.Fire(), 128)
	if err != nil {
		log.Fatal(err)
	}

	res, err := greenindex.Compute(test.Measurements(), ref.Measurements(),
		greenindex.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:   "Seven-benchmark TGI: Fire (128 cores) vs SystemG reference (1024 cores)",
		Headers: []string{"Benchmark", "Fire perf", "Fire power", "Ref perf", "REE"},
	}
	refMs := ref.Measurements()
	for i, m := range test.Measurements() {
		t.AddRow(m.Benchmark,
			fmt.Sprintf("%.4g %s", m.Performance, m.Metric),
			m.Power.String(),
			fmt.Sprintf("%.4g %s", refMs[i].Performance, refMs[i].Metric),
			fmt.Sprintf("%.3f", res.REE[i]))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTGI over 7 benchmarks (equal weights) = %.4f\n", res.TGI)

	// Compare against the paper's three-benchmark TGI on the same machines.
	ref3, err := greenindex.RunSuite(greenindex.SystemG(), 1024)
	if err != nil {
		log.Fatal(err)
	}
	test3, err := greenindex.RunSuite(greenindex.Fire(), 128)
	if err != nil {
		log.Fatal(err)
	}
	res3, err := greenindex.Compute(test3.Measurements(), ref3.Measurements(),
		greenindex.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TGI over the paper's 3 benchmarks      = %.4f\n", res3.TGI)
	fmt.Println("\nWider coverage moves the single number: the extra subsystems")
	fmt.Println("(interconnect, memory latency) each pull TGI toward their own REE —")
	fmt.Println("the number is only as meaningful as the suite behind it, which is")
	fmt.Println("the paper's argument for benchmark-suite-based rankings.")
}
