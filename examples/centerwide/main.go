// Center-wide TGI: fold the facility — UPS losses, cooling, fixed
// machine-room overhead — into the energy-efficiency comparison, the
// paper's future-work extension ("we would like to extend [the] TGI metric
// to give a center-wide view of the energy efficiency by including
// components such as cooling infrastructure").
//
// The scenario: the same Fire cluster evaluated in two rooms — an
// efficient modern room (high-COP chilled water, 95% UPS) and a legacy
// room (COP 2, 88% UPS, heavy fixed overhead). Identical hardware, visibly
// different center-wide TGI.
//
//	go run ./examples/centerwide
package main

import (
	"fmt"
	"log"
	"os"

	greenindex "repro"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/suite"
)

func runWith(spec *greenindex.Spec, procs int, fac *power.FacilitySpec) *suite.Result {
	cfg := suite.DefaultConfig(spec, procs)
	cfg.Facility = fac
	res, err := suite.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	modern := &power.FacilitySpec{COP: 5, UPSEff: 0.95, FixedWatts: 500}
	legacy := &power.FacilitySpec{COP: 2, UPSEff: 0.88, FixedWatts: 3000}

	// The reference stays an IT-level measurement (as published), so the
	// facility differences show up entirely in the systems under test.
	ref := runWith(greenindex.SystemG(), 1024, nil)

	rows := []struct {
		name string
		fac  *power.FacilitySpec
	}{
		{"IT only (paper's setup)", nil},
		{"modern room", modern},
		{"legacy room", legacy},
	}
	t := &report.Table{
		Title:   "Center-wide TGI of Fire (128 cores) vs IT-level SystemG reference",
		Headers: []string{"Metering boundary", "HPL power", "PUE@HPL", "TGI"},
	}
	for _, row := range rows {
		res := runWith(greenindex.Fire(), 128, row.fac)
		c, err := greenindex.Compute(res.Measurements(), ref.Measurements(),
			greenindex.ArithmeticMean, nil)
		if err != nil {
			log.Fatal(err)
		}
		hpl := res.Measurements()[0]
		pue := "1.00"
		if row.fac != nil {
			itRes := runWith(greenindex.Fire(), 128, nil)
			p, err := row.fac.PUE(itRes.Measurements()[0].Power)
			if err != nil {
				log.Fatal(err)
			}
			pue = fmt.Sprintf("%.2f", p)
		}
		t.AddRow(row.name, hpl.Power.String(), pue, fmt.Sprintf("%.3f", c.TGI))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe metric pipeline is unchanged — only the metering boundary moved.")
	fmt.Println("A site choosing between rooms (or between clusters in different")
	fmt.Println("rooms) can rank center-wide efficiency with the same single number.")
}
