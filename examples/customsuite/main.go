// Custom suite composition + parallel sweeps: pick the workloads TGI
// aggregates, then scale the campaign across a worker pool.
//
// The workload registry decouples the suite layer from any fixed
// benchmark list. Here we build an interconnect-aware suite — the
// paper's three subsystem probes plus the opt-in b_eff ring-bandwidth
// workload — compute TGI over it, and then run a full process-count
// sweep on four workers. Every sweep cell is seeded independently, so
// the parallel schedule reproduces the sequential results exactly.
//
//	go run ./examples/customsuite
package main

import (
	"encoding/json"
	"fmt"
	"log"

	greenindex "repro"
)

func main() {
	// The registry's vocabulary: every workload RunCustomSuite accepts.
	fmt.Println("Registered workloads:", greenindex.Workloads())

	// 1. Compose a four-benchmark suite. Names are matched case- and
	// separator-insensitively ("beff" resolves to "b_eff"), and the
	// order given here is the order the suite runs and reports.
	suiteOf := []string{"HPL", "STREAM", "IOzone", "beff"}
	ref, err := greenindex.RunCustomSuite(greenindex.SystemG(), 1024, suiteOf...)
	if err != nil {
		log.Fatal(err)
	}
	test, err := greenindex.RunCustomSuite(greenindex.Fire(), 128, suiteOf...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFire @ 128 cores, interconnect-aware suite:")
	for _, m := range test.Measurements() {
		fmt.Printf("  %-7s %10.4g %-6s at %s over %s\n",
			m.Benchmark, m.Performance, m.Metric, m.Power, m.Time)
	}

	// 2. TGI works over any benchmark set, as long as test and reference
	// ran the same one — the relative-efficiency step cancels the units.
	res, err := greenindex.Compute(test.Measurements(), ref.Measurements(),
		greenindex.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTGI(Fire vs SystemG, incl. b_eff) = %.4f\n", res.TGI)

	// 3. Sweep the whole axis on a worker pool. Cells are independent,
	// deterministically-seeded simulations, so four workers produce the
	// same bytes one worker would — just sooner.
	axis := []int{8, 16, 32, 64, 128}
	parallel, err := greenindex.SweepSuiteParallel(greenindex.Fire(), axis, 4)
	if err != nil {
		log.Fatal(err)
	}
	sequential, err := greenindex.SweepSuite(greenindex.Fire(), axis)
	if err != nil {
		log.Fatal(err)
	}
	pb, _ := json.Marshal(parallel)
	sb, _ := json.Marshal(sequential)
	fmt.Printf("\nSweep over %v on 4 workers: %d results, byte-identical to sequential: %v\n",
		axis, len(parallel), string(pb) == string(sb))
	for _, r := range parallel {
		hpl := r.Runs[0].Measurement
		fmt.Printf("  p=%-3d HPL %8.4g %s at %s\n",
			r.Procs, hpl.Performance, hpl.Metric, hpl.Power)
	}
}
