// Traced campaign walkthrough: run a fault-injected TGI sweep with the
// observability pipeline on, and emit every artefact it produces —
//
//   - a Chrome trace_event timeline (load it in chrome://tracing or
//     Perfetto) where each benchmark, retry attempt, backoff wait and
//     meter window is a span and each injected fault a flagged instant,
//   - a metrics snapshot (counters, gauges, histograms) as JSON,
//   - the human-readable run report breaking the campaign down into the
//     time, energy, retries and meter repairs behind each TGI input.
//
// The example validates its own trace with the schema checker before
// exiting, so CI can run it as an end-to-end test of the exporters:
//
//	go run ./examples/traced -dir /tmp/traced
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/units"
)

func main() {
	dir := flag.String("dir", ".", "directory for the emitted artefacts")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// A scenario with something to see: a scheduled node crash on HPL's
	// first attempt (forcing a backoff + retry), a guaranteed straggler,
	// and a lossy, glitchy meter (driving the repair pass).
	plan := &faults.Plan{
		Seed:      11,
		Crashes:   []faults.Crash{{Benchmark: suite.BenchHPL, Node: 1, At: 50, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.9},
		Meter:     &faults.Meter{DropRate: 0.08, GlitchRate: 0.02, GlitchWatts: 400},
	}

	tracer := obs.NewTracer()
	var results []*suite.Result
	var cursor units.Seconds
	for _, procs := range []int{2, 4, 8} {
		cfg := suite.SeededConfig(cluster.Testbed(), procs, 23)
		cfg.Faults = plan
		cfg.Retry = suite.RetryPolicy{MaxAttempts: 3, Backoff: 30}
		cfg.Trace = tracer
		cfg.TraceAt = cursor // runs lay out end to end on one timeline
		r, err := suite.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cursor = r.TraceEnd
		results = append(results, r)
	}

	tracePath := filepath.Join(*dir, "campaign.trace.json")
	if err := obs.WriteChromeTraceFile(tracePath, tracer.Spans(), tracer.Events()); err != nil {
		log.Fatal(err)
	}
	metricsPath := filepath.Join(*dir, "campaign.metrics.json")
	if err := tracer.Registry().Snapshot().WriteFile(metricsPath); err != nil {
		log.Fatal(err)
	}
	reportPath := filepath.Join(*dir, "campaign.report.txt")
	f, err := os.Create(reportPath)
	if err != nil {
		log.Fatal(err)
	}
	rep := suite.BuildReport("traced campaign: Testbed sweep under faults", results)
	if err := rep.Render(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// Self-check: the emitted trace must satisfy the trace_event schema
	// and actually show the injected faults and retries.
	chk, err := obs.ValidateChromeTraceFile(tracePath)
	if err != nil {
		log.Fatalf("emitted trace is invalid: %v", err)
	}
	if chk.Spans == 0 || chk.Instants == 0 || chk.Tracks < 3 {
		log.Fatalf("trace is implausibly empty: %+v", chk)
	}

	fmt.Printf("wrote %s (%d spans, %d fault/repair events, %d tracks)\n",
		tracePath, chk.Spans, chk.Instants, chk.Tracks)
	fmt.Printf("wrote %s\n", metricsPath)
	fmt.Printf("wrote %s\n\n", reportPath)
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nopen the trace in chrome://tracing or https://ui.perfetto.dev")
}
