// Campaign: drive the multi-tenant campaign server end to end, the way
// an external client would.
//
// The example starts a campaign Manager + Server in-process on a
// loopback port, then speaks plain HTTP to it: submits two concurrent
// jobs (a paced sweep and a single-point run), streams the sweep's
// NDJSON event feed while both execute, submits-and-cancels a third job
// stuck in the queue, and scrapes /metrics as the job states settle.
//
// It self-checks the server's core promises: per-job observability is
// isolated (each stream only carries its own job's events), a cancelled
// job lands in the cancelled state without disturbing its neighbours,
// and the Prometheus exposition tracks every state transition.
//
//	go run ./examples/campaign
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
)

func main() {
	dir, err := os.MkdirTemp("", "campaign-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := campaign.NewManager(campaign.ManagerConfig{
		Dir:           dir,
		MaxConcurrent: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	srv, err := campaign.NewServer(campaign.ServerConfig{Addr: "127.0.0.1:0", Manager: mgr})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	fmt.Printf("campaign server on %s\n\n", base)

	// Two tenants share the daemon: a paced sweep and a quick point run.
	// cell_pause_ms paces the wall clock only — the virtual results are
	// the same as an unpaced run's.
	sweep := submit(base, `{"name":"sweep","system":"testbed","sweep":true,"cell_pause_ms":40}`)
	point := submit(base, `{"name":"point","system":"testbed","benchmarks":["hpl"],"procs":2}`)
	fmt.Printf("submitted %s (%s) and %s (%s)\n", sweep.ID, sweep.Name, point.ID, point.Name)

	// Stream the sweep's events while it runs. The stream replays the
	// flight recorder first, then follows live, and ends on its own once
	// the job is terminal.
	events := make(chan int, 1)
	go func() { events <- streamEvents(base, sweep.ID) }()

	// A third job, then second thoughts. With both slots busy it queues
	// and the cancel lands on the spot; if a slot freed first, the cancel
	// interrupts it mid-run instead — either way it ends cancelled.
	doomed := submit(base, `{"name":"doomed","system":"testbed","sweep":true,"cell_pause_ms":40}`)
	del, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+doomed.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("cancelled %s (%d)\n\n", doomed.ID, resp.StatusCode)

	// Watch the job table until every job is terminal.
	for {
		all := jobs(base)
		settled := true
		for _, j := range all {
			if !j.State.Terminal() {
				settled = false
			}
		}
		if settled {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	streamed := <-events

	// Self-checks: isolation and lifecycle did what the server promises.
	final := map[string]campaign.Status{}
	for _, j := range jobs(base) {
		final[j.Name] = j
		fmt.Printf("%s  %-6s state=%-9s cells=%d/%d artefacts=%v\n",
			j.ID, j.Name, j.State, j.Progress.CellsDone, j.Progress.CellsTotal, j.Artifacts)
	}
	if final["sweep"].State != campaign.StateDone || final["point"].State != campaign.StateDone {
		log.Fatalf("jobs did not finish: sweep=%s point=%s", final["sweep"].State, final["point"].State)
	}
	if final["doomed"].State != campaign.StateCancelled {
		log.Fatalf("cancelled job ended %s, want cancelled", final["doomed"].State)
	}
	if got := final["sweep"].Progress.EventsPublished; uint64(streamed) != got {
		log.Fatalf("streamed %d events, the sweep's hub published %d — observability leaked", streamed, got)
	}
	if final["point"].Progress.CellsTotal != 1 {
		log.Fatalf("point job saw %d cells, want its own single cell", final["point"].Progress.CellsTotal)
	}

	report, err := fetch(base + "/jobs/" + final["sweep"].ID + "/report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreport (first line): %s\n", strings.SplitN(report, "\n", 2)[0])

	metrics, err := fetch(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	for _, want := range []string{
		`campaign_jobs{state="done"} 2`,
		`campaign_jobs{state="cancelled"} 1`,
		"campaign_jobs_total 3",
	} {
		if !strings.Contains(metrics, want) {
			log.Fatalf("/metrics missing %q", want)
		}
		fmt.Println("metrics:", want)
	}
	fmt.Println("\nok: two tenants ran isolated, one cancel landed, metrics tracked it all")
}

// submit POSTs a job spec and returns the accepted status.
func submit(base, spec string) campaign.Status {
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("POST /jobs: %d %s", resp.StatusCode, body)
	}
	var st campaign.Status
	if err := json.Unmarshal(body, &st); err != nil {
		log.Fatal(err)
	}
	return st
}

// jobs GETs the full job table.
func jobs(base string) []campaign.Status {
	body, err := fetch(base + "/jobs")
	if err != nil {
		log.Fatal(err)
	}
	var out struct {
		Jobs []campaign.Status `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		log.Fatal(err)
	}
	return out.Jobs
}

// streamEvents consumes one job's NDJSON event stream to its natural
// end and returns how many events arrived.
func streamEvents(base, id string) int {
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		n++
	}
	return n
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
