// Rank a fleet of clusters two ways — by the Green500's traditional HPL
// FLOPS/W and by TGI — and show where the two metrics disagree.
//
// This is the paper's motivating scenario: a procurement decision based on
// LINPACK-only efficiency can pick a machine whose memory and I/O
// subsystems are power hogs. Ranking the same fleet under TGI (which folds
// in STREAM and IOzone) surfaces the difference.
//
//	go run ./examples/rankclusters
package main

import (
	"fmt"
	"log"
	"os"

	greenindex "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/green500"
	"repro/internal/suite"
)

func main() {
	// The fleet: three machine generations, each measured with the full
	// suite at its full core count.
	specs := []*greenindex.Spec{
		greenindex.Fire(),
		greenindex.SystemG(),
		greenindex.GreenGPU(),
		cluster.SiCortex(), // low-power many-core: poor peak, strong efficiency
	}
	var entries []green500.Entry
	for _, s := range specs {
		run, err := suite.Run(suite.DefaultConfig(s, s.TotalCores()))
		if err != nil {
			log.Fatalf("%s: %v", s.Name, err)
		}
		entries = append(entries, green500.Entry{
			System:       s.Name,
			Measurements: run.Measurements(),
		})
	}

	// Ranking 1: FLOPS/W from the HPL run alone (the Green500 way).
	flops, err := green500.RankByFlopsPerWatt(entries)
	if err != nil {
		log.Fatal(err)
	}
	if err := green500.Render("Green500-style list (HPL only)", "MFLOPS/W", flops).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Ranking 2: TGI against SystemG as the common reference.
	var ref []core.Measurement
	for _, e := range entries {
		if e.System == "SystemG" {
			ref = e.Measurements
		}
	}
	tgi, err := green500.RankByTGI(entries, ref, core.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := green500.Render("TGI list (HPL + STREAM + IOzone, reference: SystemG)", "TGI", tgi).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if moved := green500.Disagreements(flops, tgi); len(moved) > 0 {
		fmt.Printf("\nSystems whose rank changes under TGI: %v\n", moved)
		fmt.Println("— the single-benchmark metric and the suite-wide metric disagree,")
		fmt.Println("which is exactly the gap the paper's metric is built to expose.")
	} else {
		fmt.Println("\nBoth metrics agree on this fleet.")
	}
}
