// Weight sensitivity: evaluate one system's TGI under a spectrum of weight
// profiles, from CPU-centric to memory-centric.
//
// The paper's Section II argues that the weighting factors let a user
// "assign a higher weighting factor for the memory benchmark if we are
// evaluating a supercomputer to execute a memory-intensive application."
// This example makes that concrete: Fire's DDR3 memory system is far more
// efficient than the FSB-era reference, so a memory-heavy workload profile
// makes Fire look much greener than a CPU- or I/O-heavy one.
//
//	go run ./examples/memoryweighted
package main

import (
	"fmt"
	"log"
	"os"

	greenindex "repro"
	"repro/internal/report"
)

func main() {
	refRun, err := greenindex.RunSuite(greenindex.SystemG(), 1024)
	if err != nil {
		log.Fatal(err)
	}
	testRun, err := greenindex.RunSuite(greenindex.Fire(), 128)
	if err != nil {
		log.Fatal(err)
	}
	test, ref := testRun.Measurements(), refRun.Measurements()

	// Weight profiles for different production workloads; order is
	// (HPL=CPU, STREAM=memory, IOzone=I/O), each summing to one.
	profiles := []struct {
		name    string
		weights []float64
	}{
		{"equal (arithmetic mean)", []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		{"CPU-bound solver", []float64{0.7, 0.2, 0.1}},
		{"memory-bound CFD", []float64{0.2, 0.7, 0.1}},
		{"I/O-bound checkpointer", []float64{0.15, 0.15, 0.7}},
		{"balanced simulation", []float64{0.4, 0.4, 0.2}},
	}

	t := &report.Table{
		Title:   "TGI of Fire vs SystemG under different workload weight profiles",
		Headers: []string{"Workload profile", "W(HPL)", "W(STREAM)", "W(IOzone)", "TGI"},
	}
	for _, p := range profiles {
		res, err := greenindex.Compute(test, ref, greenindex.Custom, p.weights)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(p.name,
			fmt.Sprintf("%.2f", p.weights[0]),
			fmt.Sprintf("%.2f", p.weights[1]),
			fmt.Sprintf("%.2f", p.weights[2]),
			fmt.Sprintf("%.3f", res.TGI))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe same machine spans a wide TGI range depending on what the user")
	fmt.Println("runs: procurement for a memory-bound workload reaches the opposite")
	fmt.Println("conclusion from procurement for an I/O-bound one.")
}
