// Quickstart: compute The Green Index for one system against a reference.
//
// This example reproduces the paper's headline computation end to end using
// the built-in simulated clusters: run the three-benchmark suite (HPL for
// CPU, STREAM for memory, IOzone for I/O) behind a simulated wall-plug
// meter on both machines, then aggregate the relative efficiencies into a
// single number.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	greenindex "repro"
)

func main() {
	// 1. Measure the reference system (SystemG, 1024 cores) — the paper's
	// Table I. On real hardware these numbers would come from a wall meter.
	refRun, err := greenindex.RunSuite(greenindex.SystemG(), 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reference measurements (SystemG @ 1024 cores):")
	for _, m := range refRun.Measurements() {
		fmt.Printf("  %-7s %10.4g %-6s at %s over %s\n",
			m.Benchmark, m.Performance, m.Metric, m.Power, m.Time)
	}

	// 2. Measure the system under test (Fire, all 128 cores).
	testRun, err := greenindex.RunSuite(greenindex.Fire(), 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSystem under test (Fire @ 128 cores):")
	for _, m := range testRun.Measurements() {
		fmt.Printf("  %-7s %10.4g %-6s at %s over %s\n",
			m.Benchmark, m.Performance, m.Metric, m.Power, m.Time)
	}

	// 3. Aggregate into TGI with equal (arithmetic-mean) weights.
	res, err := greenindex.Compute(testRun.Measurements(), refRun.Measurements(),
		greenindex.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPer-benchmark breakdown:")
	for i, b := range res.Benchmarks {
		fmt.Printf("  %-7s EE=%-10.4g relative EE=%-8.4f weight=%.3f\n",
			b, res.EE[i], res.REE[i], res.Weights[i])
	}
	fmt.Printf("\nTGI(Fire vs SystemG) = %.4f\n", res.TGI)
	fmt.Println("A value above 1 means Fire is more energy-efficient, system-wide,")
	fmt.Println("than the reference — and the per-benchmark rows show which")
	fmt.Println("subsystem is responsible (here I/O drags, memory carries).")
}
