// Livewatch: watch a fault-injected parallel sweep through its own live
// telemetry endpoints while it runs.
//
// The example wires a live.Hub into a SweepPlan, serves /metrics,
// /progress and /events on a loopback port, and then — playing the role
// of an external dashboard — polls its own /progress over HTTP until the
// campaign reports done, printing each snapshot as it converges. Each
// cell is paced by a short wall-clock pause so there is something to
// watch; the pause never touches the virtual plane, so the sweep's
// results are the same as an unpaced, unwatched run.
//
// It self-checks what the paper's two-plane design promises: the ETA
// estimate converges to zero, every cell completes, the injected crash
// shows up as a retry on the live plane, and the Prometheus exposition
// answers mid-run.
//
//	go run ./examples/livewatch
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/suite"
)

func main() {
	// The same crashy scenario the traced example uses: one scheduled
	// node crash on HPL (forcing a backoff + retry) and a guaranteed
	// straggler, swept across four process counts, two cells at a time.
	plan := &faults.Plan{
		Seed:      11,
		Crashes:   []faults.Crash{{Benchmark: suite.BenchHPL, Node: 1, At: 50, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.9},
	}

	tracer := obs.NewTracer()
	hub := live.NewHub()
	srv, err := live.NewServer("127.0.0.1:0", hub, func() obs.Snapshot {
		return tracer.Registry().Snapshot()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("live telemetry on http://%s (metrics, progress, events)\n\n", srv.Addr())

	sweep := suite.SweepPlan{
		Axis:    []int{2, 4, 6, 8},
		Workers: 2,
		Trace:   tracer,
		Live:    hub,
		Configure: func(ctx suite.CellContext) (suite.Config, error) {
			time.Sleep(80 * time.Millisecond) // pacing only; virtual plane unaffected
			cfg := suite.SeededConfig(cluster.Testbed(), ctx.Procs, 23)
			cfg.Faults = plan
			cfg.Retry = suite.RetryPolicy{MaxAttempts: 3, Backoff: 30}
			return cfg, nil
		},
	}

	done := make(chan error, 1)
	go func() {
		_, err := suite.RunSweepPlan(sweep)
		done <- err
	}()

	// Play the dashboard: poll our own /progress until the campaign is
	// done, remembering the ETA trajectory.
	var last live.ProgressSnapshot
	var etas []float64
	for {
		p, err := fetchProgress(srv.Addr())
		if err != nil {
			log.Fatalf("polling /progress: %v", err)
		}
		if p.CellsDone != last.CellsDone || p.Done != last.Done {
			fmt.Println(p.String())
		}
		last = p
		if p.ETASeconds >= 0 {
			etas = append(etas, p.ETASeconds)
		}
		if p.Done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// Self-checks: the live plane saw the whole campaign.
	if last.CellsTotal != 4 || last.CellsDone != 4 {
		log.Fatalf("progress ended at %d/%d, want 4/4", last.CellsDone, last.CellsTotal)
	}
	if last.Retries == 0 {
		log.Fatal("the injected HPL crash never surfaced as a live retry")
	}
	if len(etas) == 0 || etas[len(etas)-1] != 0 {
		log.Fatalf("ETA never converged to zero: %v", etas)
	}
	prom, err := fetchBody("http://" + srv.Addr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	for _, want := range []string{"live_cells_done 4", "suite_attempts"} {
		if !strings.Contains(prom, want) {
			log.Fatalf("/metrics missing %q", want)
		}
	}

	fmt.Printf("\nETA trajectory (s): %v\n", etas)
	fmt.Printf("events published: %d, dropped: %d\n", last.EventsPublished, last.EventsDropped)
	fmt.Println("ok: live plane watched the whole sweep without touching it")
}

// fetchProgress GETs and decodes one /progress snapshot.
func fetchProgress(addr string) (live.ProgressSnapshot, error) {
	var p live.ProgressSnapshot
	body, err := fetchBody("http://" + addr + "/progress")
	if err != nil {
		return p, err
	}
	err = json.Unmarshal([]byte(body), &p)
	return p, err
}

func fetchBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
