// Fault-sensitivity study: how robust is a TGI campaign to node crashes?
//
// This is an extension beyond the paper, which assumes every benchmark
// completes cleanly behind the meter. Here the same Fire-vs-SystemG
// evaluation (64 processes against the 1024-core reference) is repeated
// under increasing per-attempt node-crash probability. The resilient
// runner retries each crashed benchmark up to three times with
// exponential backoff; a benchmark that still fails degrades the run to a
// partial TGI over the survivors (weights renormalised).
//
// The quantity of interest is the TGI error: because retries replay the
// deterministic benchmark models, a recovered run reproduces the fault-free
// TGI exactly — only runs that lose a benchmark outright drift, and the
// drift is the renormalisation error of the partial metric, not noise.
//
//	go run ./examples/faultstudy
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/suite"
	"repro/internal/units"
)

func main() {
	ref, err := suite.Run(suite.DefaultConfig(cluster.SystemG(), 1024))
	if err != nil {
		log.Fatal(err)
	}
	refMs := ref.Measurements()

	clean, err := suite.Run(suite.DefaultConfig(cluster.Fire(), 64))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := core.Compute(clean.Measurements(), refMs, core.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title: fmt.Sprintf("TGI under node crashes — Fire p=64 vs SystemG (fault-free TGI %.4f)",
			baseline.TGI),
		Headers: []string{"CrashProb", "Retries", "Outcome", "Wasted", "TGI", "TGI error"},
	}
	for _, prob := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		// Two arms per probability: a single-attempt campaign (crashes
		// degrade the run) and a resilient one with up to three retries.
		for _, policy := range []suite.RetryPolicy{
			{MaxAttempts: 1},
			{MaxAttempts: 4, Backoff: 30},
		} {
			// Vary the seed per probability so each row is an independent
			// campaign, not a nested subset of the previous one.
			cfg := suite.DefaultConfig(cluster.Fire(), 64)
			cfg.Faults = &faults.Plan{Seed: 2026 + uint64(prob*100), CrashProb: prob}
			cfg.Retry = policy
			res, err := suite.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			var retries int
			var wasted units.Seconds
			outcome := "clean"
			for _, b := range res.Runs {
				retries += b.Retries
				wasted += b.WastedTime
			}
			if retries > 0 {
				outcome = "recovered"
			}
			if res.Degraded {
				outcome = fmt.Sprintf("degraded (%d/%d survived)",
					len(res.Measurements()), len(res.Runs))
			}
			probCell := fmt.Sprintf("%.1f", prob)
			retryCell := fmt.Sprintf("%d of %d", retries, policy.MaxAttempts-1)
			c, err := core.ComputePartial(res.Measurements(), refMs,
				core.ArithmeticMean, nil, res.Benchmarks())
			if err != nil {
				// Every benchmark died even after retries: no TGI at all.
				t.AddRow(probCell, retryCell, "lost", wasted.String(), "-", "-")
				continue
			}
			t.AddRow(
				probCell,
				retryCell,
				outcome,
				wasted.String(),
				fmt.Sprintf("%.4f", c.TGI),
				fmt.Sprintf("%.2f%%", 100*math.Abs(c.TGI-baseline.TGI)/baseline.TGI),
			)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRetried-and-recovered runs reproduce the fault-free TGI exactly;")
	fmt.Println("only runs that lose a benchmark show a renormalisation error.")
}
