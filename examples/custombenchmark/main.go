// Extend the TGI suite with additional and custom benchmarks, measured
// natively on the host.
//
// TGI is "neither limited by the metrics used in each benchmark nor by the
// number of benchmarks" (paper, Section IV-A). This example runs the
// toolkit's native benchmark implementations on the host — the real
// distributed LU factorisation (HPL), the real STREAM triad kernel, and the
// IOzone-style write test against the in-memory filesystem — plus a
// user-defined sort benchmark, and folds all four into one TGI against a
// recorded reference.
//
// Host power cannot be measured without a meter, so both systems use an
// assumed constant draw; the point here is the suite-extension mechanics
// (mixed metrics, four components, custom weights), not absolute watts.
//
//	go run ./examples/custombenchmark
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	greenindex "repro"
	"repro/internal/hpl"
	"repro/internal/iozone"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/units"
)

// assumedHostWatts stands in for a wall meter on this machine.
const assumedHostWatts = 120

// measureSort is the user-defined benchmark: keys sorted per second.
func measureSort() (opsPerSec float64, elapsed units.Seconds) {
	const n = 1 << 20
	rng := sim.NewRNG(7)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	start := time.Now()
	sort.Float64s(keys)
	el := time.Since(start)
	return n / el.Seconds(), units.FromDuration(el)
}

func main() {
	var test []greenindex.Measurement

	// 1. Native HPL: a real distributed LU over the in-process MPI runtime,
	// residual-verified.
	hplRes, err := hpl.Run(hpl.Config{N: 384, NB: 32, Procs: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !hplRes.Passed {
		log.Fatalf("HPL residual check failed: %v", hplRes.Residual)
	}
	fmt.Printf("HPL     : N=%d grid %dx%d  %.2f GFLOPS  residual %.3f (passed)\n",
		hplRes.N, hplRes.P, hplRes.Q, hplRes.GFLOPS, hplRes.Residual)
	test = append(test, greenindex.Measurement{
		Benchmark: "HPL", Metric: "GFLOPS",
		Performance: hplRes.GFLOPS, Power: assumedHostWatts,
		Time: units.FromDuration(hplRes.Elapsed),
	})

	// 2. Native STREAM triad.
	st, err := stream.Run(stream.Triad, stream.Config{N: 1 << 21, Trials: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STREAM  : triad best %s over %d trials\n", st.Best, st.Trials)
	test = append(test, greenindex.Measurement{
		Benchmark: "STREAM", Metric: "MBPS",
		Performance: float64(st.Best) / 1e6, Power: assumedHostWatts,
		Time: st.BestTime * units.Seconds(st.Trials),
	})

	// 3. IOzone write test against the in-memory block filesystem.
	dev, err := storage.NewMemDevice(1 << 15)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := storage.NewFS(dev)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := iozone.NewFSTarget(fs, "bench.dat")
	if err != nil {
		log.Fatal(err)
	}
	ioRes, err := iozone.Run(tgt, iozone.Config{FileBytes: 32 << 20, RecordBytes: 1 << 20}, iozone.Write)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IOzone  : write %s (1 MiB records)\n", ioRes[0].Rate)
	test = append(test, greenindex.Measurement{
		Benchmark: "IOzone", Metric: "MBPS",
		Performance: float64(ioRes[0].Rate) / 1e6, Power: assumedHostWatts,
		Time: ioRes[0].Elapsed,
	})

	// 4. The custom benchmark: TGI accepts any (name, metric, perf, power,
	// time) tuple.
	ops, el := measureSort()
	fmt.Printf("Sort    : %.4g keys/s\n", ops)
	test = append(test, greenindex.Measurement{
		Benchmark: "Sort", Metric: "keys/s",
		Performance: ops, Power: assumedHostWatts, Time: el,
	})

	// Reference values recorded on a (hypothetical) older lab machine.
	ref := []greenindex.Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 0.8, Power: 180, Time: 30},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 4000, Power: 180, Time: 20},
		{Benchmark: "IOzone", Metric: "MBPS", Performance: 300, Power: 180, Time: 60},
		{Benchmark: "Sort", Metric: "keys/s", Performance: 2e6, Power: 180, Time: 2},
	}

	// Equal weights over four components...
	res, err := greenindex.Compute(test, ref, greenindex.ArithmeticMean, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTGI (four benchmarks, equal weights) = %.3f\n", res.TGI)
	for i, b := range res.Benchmarks {
		fmt.Printf("  %-7s REE=%.3f\n", b, res.REE[i])
	}

	// ...or emphasise the custom workload.
	res, err = greenindex.Compute(test, ref, greenindex.Custom, []float64{0.1, 0.1, 0.1, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TGI (sort-heavy custom weights)      = %.3f\n", res.TGI)
}
