package greenindex_test

import (
	"fmt"

	greenindex "repro"
)

// ExampleCompute shows TGI from hand-entered measurements — the shape of a
// real deployment, where performance comes from the benchmarks' own output
// and power from a wall meter.
func ExampleCompute() {
	test := []greenindex.Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 120, Power: 100, Time: 10},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 40, Power: 100, Time: 10},
	}
	ref := []greenindex.Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 100, Power: 100, Time: 10},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 100, Power: 100, Time: 10},
	}
	res, err := greenindex.Compute(test, ref, greenindex.ArithmeticMean, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TGI = %.2f\n", res.TGI)
	for i, b := range res.Benchmarks {
		fmt.Printf("%s REE = %.2f\n", b, res.REE[i])
	}
	// Output:
	// TGI = 0.80
	// HPL REE = 1.20
	// STREAM REE = 0.40
}

// ExampleCompute_customWeights emphasises the memory benchmark, the
// paper's example of a user-tailored weighting.
func ExampleCompute_customWeights() {
	test := []greenindex.Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 120, Power: 100, Time: 10},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 40, Power: 100, Time: 10},
	}
	ref := []greenindex.Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 100, Power: 100, Time: 10},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 100, Power: 100, Time: 10},
	}
	res, err := greenindex.Compute(test, ref, greenindex.Custom, []float64{1, 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("memory-weighted TGI = %.2f\n", res.TGI)
	// Output:
	// memory-weighted TGI = 0.60
}

// ExampleREE: the relative-efficiency building block (Equation 3).
func ExampleREE() {
	test := greenindex.Measurement{
		Benchmark: "HPL", Metric: "GFLOPS", Performance: 900, Power: 3000, Time: 100,
	}
	ref := greenindex.Measurement{
		Benchmark: "HPL", Metric: "GFLOPS", Performance: 8000, Power: 32000, Time: 100,
	}
	ree, err := greenindex.REE(test, ref)
	if err != nil {
		panic(err)
	}
	fmt.Printf("REE = %.2f\n", ree)
	// Output:
	// REE = 1.20
}
