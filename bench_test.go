// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design choices
// called out in DESIGN.md §5. Each figure bench regenerates its series and
// reports the headline numbers as benchmark metrics; run with
//
//	go test -bench=. -benchmem
//
// and the series themselves with -v (they are logged once per benchmark).
package greenindex_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/iozone"
	"repro/internal/paper"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/suite"
)

// sharedDataset caches the full reproduction run across benchmarks; each
// bench still re-derives its own figure from it every iteration.
var (
	dsOnce sync.Once
	dsVal  *paper.Dataset
	dsErr  error
)

func dataset(b *testing.B) *paper.Dataset {
	b.Helper()
	dsOnce.Do(func() { dsVal, dsErr = paper.NewDataset() })
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return dsVal
}

func logSeries(b *testing.B, name string, procs []int, ys []float64) {
	var sb strings.Builder
	for i, p := range procs {
		fmt.Fprintf(&sb, " (%d, %.4g)", p, ys[i])
	}
	b.Logf("%s:%s", name, sb.String())
}

// BenchmarkFig2HPLEfficiency regenerates Figure 2: energy efficiency of HPL
// (MFLOPS/W) versus MPI process count on the Fire cluster.
func BenchmarkFig2HPLEfficiency(b *testing.B) {
	d := dataset(b)
	var first, last float64
	for i := 0; i < b.N; i++ {
		ee := d.EE[suite.BenchHPL]
		first, last = ee[0]*1000, ee[len(ee)-1]*1000
	}
	logSeries(b, "Fig2 MFLOPS/W", d.Procs, d.EE[suite.BenchHPL])
	b.ReportMetric(first, "MFLOPSperW@p8")
	b.ReportMetric(last, "MFLOPSperW@p128")
}

// BenchmarkFig3StreamEfficiency regenerates Figure 3: STREAM efficiency
// (MB/s per W) versus MPI process count.
func BenchmarkFig3StreamEfficiency(b *testing.B) {
	d := dataset(b)
	var peak float64
	var peakAt int
	for i := 0; i < b.N; i++ {
		ee := d.EE[suite.BenchSTREAM]
		peak, peakAt = 0, 0
		for j, v := range ee {
			if v > peak {
				peak, peakAt = v, d.Procs[j]
			}
		}
	}
	logSeries(b, "Fig3 MBPS/W", d.Procs, d.EE[suite.BenchSTREAM])
	b.ReportMetric(peak, "peak-MBPSperW")
	b.ReportMetric(float64(peakAt), "peak-at-procs")
}

// BenchmarkFig4IOzoneEfficiency regenerates Figure 4: IOzone write
// efficiency versus node count (the standalone node sweep).
func BenchmarkFig4IOzoneEfficiency(b *testing.B) {
	var pts []paper.Fig4Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, _, err = paper.Fig4(cluster.Fire())
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	peak := 0
	for i, p := range pts {
		fmt.Fprintf(&sb, " (%d, %.4f)", p.Nodes, p.EEMBpsW)
		if p.EEMBpsW > pts[peak].EEMBpsW {
			peak = i
		}
	}
	b.Logf("Fig4 MBPS/W by nodes:%s", sb.String())
	b.ReportMetric(pts[peak].EEMBpsW, "peak-MBPSperW")
	b.ReportMetric(float64(pts[peak].Nodes), "peak-at-nodes")
	b.ReportMetric(float64(pts[len(pts)-1].Rate)/1e6, "saturated-MBps")
}

// BenchmarkFig5TGIArithmetic regenerates Figure 5: TGI under arithmetic-
// mean weights versus core count.
func BenchmarkFig5TGIArithmetic(b *testing.B) {
	d := dataset(b)
	var tgiMax, tgiEnd float64
	for i := 0; i < b.N; i++ {
		tgi := d.TGI[core.ArithmeticMean]
		tgiMax = 0
		for _, v := range tgi {
			tgiMax = math.Max(tgiMax, v)
		}
		tgiEnd = tgi[len(tgi)-1]
	}
	logSeries(b, "Fig5 TGI(AM)", d.Procs, d.TGI[core.ArithmeticMean])
	b.ReportMetric(tgiMax, "TGI-peak")
	b.ReportMetric(tgiEnd, "TGI@p128")
}

// BenchmarkFig6TGIWeighted regenerates Figure 6: TGI under time, energy and
// power weights.
func BenchmarkFig6TGIWeighted(b *testing.B) {
	d := dataset(b)
	var spread float64
	for i := 0; i < b.N; i++ {
		last := len(d.Procs) - 1
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range []core.Scheme{core.TimeWeighted, core.EnergyWeighted, core.PowerWeighted} {
			v := d.TGI[s][last]
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		spread = hi - lo
	}
	for _, s := range []core.Scheme{core.TimeWeighted, core.EnergyWeighted, core.PowerWeighted} {
		logSeries(b, fmt.Sprintf("Fig6 TGI(%v)", s), d.Procs, d.TGI[s])
	}
	b.ReportMetric(spread, "scheme-spread@p128")
}

// BenchmarkTable1SystemG regenerates Table I: per-benchmark performance and
// power on the reference system.
func BenchmarkTable1SystemG(b *testing.B) {
	d := dataset(b)
	var hplTF, hplKW float64
	for i := 0; i < b.N; i++ {
		for _, m := range d.Reference.Measurements() {
			if m.Benchmark == suite.BenchHPL {
				hplTF = m.Performance / 1000
				hplKW = float64(m.Power) / 1000
			}
		}
	}
	for _, m := range d.Reference.Measurements() {
		b.Logf("Table I: %-7s perf=%.5g %s power=%s", m.Benchmark, m.Performance, m.Metric, m.Power)
	}
	b.ReportMetric(hplTF, "HPL-TFLOPS")
	b.ReportMetric(hplKW, "HPL-KW")
}

// BenchmarkTable2PCC regenerates Table II: Pearson correlation between each
// benchmark's efficiency curve and TGI under each weighting scheme.
func BenchmarkTable2PCC(b *testing.B) {
	d := dataset(b)
	var rIO, rST, rHPL float64
	for i := 0; i < b.N; i++ {
		var err error
		if rIO, err = d.PCC(suite.BenchIOzone, core.ArithmeticMean); err != nil {
			b.Fatal(err)
		}
		if rST, err = d.PCC(suite.BenchSTREAM, core.ArithmeticMean); err != nil {
			b.Fatal(err)
		}
		if rHPL, err = d.PCC(suite.BenchHPL, core.ArithmeticMean); err != nil {
			b.Fatal(err)
		}
	}
	for _, bench := range []string{suite.BenchIOzone, suite.BenchSTREAM, suite.BenchHPL} {
		row := fmt.Sprintf("Table II %-7s:", bench)
		for _, s := range paper.Schemes {
			r, err := d.PCC(bench, s)
			if err != nil {
				b.Fatal(err)
			}
			row += fmt.Sprintf(" %v=%.2f", s, r)
		}
		b.Log(row)
	}
	b.ReportMetric(rIO, "PCC-AM-IOzone")
	b.ReportMetric(rST, "PCC-AM-STREAM")
	b.ReportMetric(rHPL, "PCC-AM-HPL")
}

// BenchmarkAblationMeterScope contrasts whole-cluster metering (the paper's
// Figure 1 setup, idle nodes included) with metering only the active nodes.
// Whole-cluster metering is what makes efficiency curves rise with scale;
// active-node metering flattens them (DESIGN.md §5.1).
func BenchmarkAblationMeterScope(b *testing.B) {
	var wholeSlope, activeSlope float64
	for i := 0; i < b.N; i++ {
		procsAxis := []float64{16, 48, 96, 128}
		var whole, active []float64
		for _, pf := range procsAxis {
			p := int(pf)
			// Whole cluster behind the meter.
			r, err := suite.Run(suite.DefaultConfig(cluster.Fire(), p))
			if err != nil {
				b.Fatal(err)
			}
			m := r.Measurements()[0] // HPL
			whole = append(whole, m.Performance/float64(m.Power))
			// Only the nodes the job touches behind the meter: model a
			// cluster truncated to the active node count, block placement.
			nodes := (p + 15) / 16
			spec := cluster.Fire()
			spec.Nodes = nodes
			cfg := suite.DefaultConfig(spec, p)
			cfg.Placement = cluster.Block
			r, err = suite.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m = r.Measurements()[0]
			active = append(active, m.Performance/float64(m.Power))
		}
		var err error
		wholeSlope, _, err = stats.LinearFit(procsAxis, whole)
		if err != nil {
			b.Fatal(err)
		}
		activeSlope, _, err = stats.LinearFit(procsAxis, active)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(wholeSlope*1000, "whole-slope-mEEperProc")
	b.ReportMetric(activeSlope*1000, "active-slope-mEEperProc")
	if wholeSlope <= activeSlope {
		b.Errorf("whole-cluster metering slope %v not above active-only %v", wholeSlope, activeSlope)
	}
}

// BenchmarkAblationPlacement contrasts block and cyclic placement for the
// STREAM benchmark at low process counts (DESIGN.md §5.2).
func BenchmarkAblationPlacement(b *testing.B) {
	var cyc, blk float64
	for i := 0; i < b.N; i++ {
		c := stream.DefaultModelConfig(cluster.Fire(), 8)
		rc, err := stream.Simulate(c)
		if err != nil {
			b.Fatal(err)
		}
		c.Placement = cluster.Block
		rb, err := stream.Simulate(c)
		if err != nil {
			b.Fatal(err)
		}
		cyc, blk = float64(rc.Aggregate)/1e9, float64(rb.Aggregate)/1e9
	}
	b.ReportMetric(cyc, "cyclic-GBps@p8")
	b.ReportMetric(blk, "block-GBps@p8")
}

// BenchmarkAblationPSU measures how much the PSU efficiency curve shifts
// measured energy (DESIGN.md §5.3).
func BenchmarkAblationPSU(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, err := suite.Run(suite.DefaultConfig(cluster.Fire(), 64))
		if err != nil {
			b.Fatal(err)
		}
		cfg := suite.DefaultConfig(cluster.Fire(), 64)
		m, err := power.NewModel(cluster.Fire())
		if err != nil {
			b.Fatal(err)
		}
		m.DisablePSU = true
		cfg.PowerModel = m
		ideal, err := suite.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(base.Runs[0].Measurement.EnergyJoules()) /
			float64(ideal.Runs[0].Measurement.EnergyJoules())
	}
	b.ReportMetric(ratio, "wall-to-DC-energy-ratio")
	if ratio <= 1 {
		b.Errorf("PSU losses missing: ratio %v", ratio)
	}
}

// BenchmarkAblationSampling measures the energy error introduced by the
// meter's sampling interval (DESIGN.md §5.4).
func BenchmarkAblationSampling(b *testing.B) {
	var errAt10s float64
	for i := 0; i < b.N; i++ {
		model, err := power.NewModel(cluster.Fire())
		if err != nil {
			b.Fatal(err)
		}
		res, err := stream.Simulate(stream.DefaultModelConfig(cluster.Fire(), 64))
		if err != nil {
			b.Fatal(err)
		}
		exact, err := model.ProfileTrace(res.Profile)
		if err != nil {
			b.Fatal(err)
		}
		eExact, err := exact.Energy()
		if err != nil {
			b.Fatal(err)
		}
		coarse := power.MeterConfig{Interval: 10, QuantumWatts: 0.1, NoiseStdDev: 0.5, Seed: 1}
		mt, err := power.NewMeter(coarse)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := mt.Measure(model, res.Profile)
		if err != nil {
			b.Fatal(err)
		}
		eCoarse, err := tr.Energy()
		if err != nil {
			b.Fatal(err)
		}
		errAt10s = math.Abs(float64(eCoarse-eExact)) / float64(eExact) * 100
	}
	b.ReportMetric(errAt10s, "energy-err-pct@10s")
}

// BenchmarkAblationEDP recomputes TGI with the energy-delay product as the
// per-benchmark efficiency metric instead of performance-per-watt
// (DESIGN.md §5.5; paper Section II notes TGI is metric-agnostic).
func BenchmarkAblationEDP(b *testing.B) {
	d := dataset(b)
	refMs := d.Reference.Measurements()
	var tgiPW, tgiEDP float64
	for i := 0; i < b.N; i++ {
		last := d.Results[len(d.Results)-1]
		cPW, err := core.Compute(last.Measurements(), refMs, core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		cEDP, err := core.ComputeWith(core.InverseEDP, last.Measurements(), refMs, core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		tgiPW, tgiEDP = cPW.TGI, cEDP.TGI
	}
	b.ReportMetric(tgiPW, "TGI-perf-per-watt@p128")
	b.ReportMetric(tgiEDP, "TGI-inverse-EDP@p128")
}

// BenchmarkFullReproduction times one complete dataset build: the Fire
// sweep plus the SystemG reference, metered end to end.
func BenchmarkFullReproduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := paper.NewDataset()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range d.Verify() {
			if !c.Passed {
				b.Fatalf("%s: %s", c.Name, c.Detail)
			}
		}
	}
}

// BenchmarkIOzoneNodeSweepDES exercises the discrete-event shared-backend
// path directly across the node axis.
func BenchmarkIOzoneNodeSweepDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 8; n++ {
			if _, err := iozone.Simulate(iozone.DefaultModelConfig(cluster.Fire(), n)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationFacility contrasts IT-level metering with center-wide
// metering (UPS + cooling + fixed overhead) — the paper's future-work
// extension (DESIGN.md §5.6).
func BenchmarkAblationFacility(b *testing.B) {
	var itTGI, centerTGI float64
	for i := 0; i < b.N; i++ {
		ref, err := suite.Run(suite.DefaultConfig(cluster.SystemG(), 1024))
		if err != nil {
			b.Fatal(err)
		}
		it, err := suite.Run(suite.DefaultConfig(cluster.Fire(), 128))
		if err != nil {
			b.Fatal(err)
		}
		cfg := suite.DefaultConfig(cluster.Fire(), 128)
		fac := power.TypicalDatacenter()
		cfg.Facility = &fac
		center, err := suite.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cIT, err := core.Compute(it.Measurements(), ref.Measurements(), core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		cC, err := core.Compute(center.Measurements(), ref.Measurements(), core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		itTGI, centerTGI = cIT.TGI, cC.TGI
	}
	b.ReportMetric(itTGI, "TGI-IT-boundary")
	b.ReportMetric(centerTGI, "TGI-center-wide")
}

// BenchmarkExtendedSuite runs the seven-benchmark HPCC-style suite and
// reports its TGI next to the paper's three-benchmark value (DESIGN.md
// §5.7).
func BenchmarkExtendedSuite(b *testing.B) {
	var tgi3, tgi7 float64
	for i := 0; i < b.N; i++ {
		ref3, err := suite.Run(suite.DefaultConfig(cluster.SystemG(), 1024))
		if err != nil {
			b.Fatal(err)
		}
		test3, err := suite.Run(suite.DefaultConfig(cluster.Fire(), 128))
		if err != nil {
			b.Fatal(err)
		}
		ref7, err := suite.RunExtendedOn(cluster.SystemG(), 1024)
		if err != nil {
			b.Fatal(err)
		}
		test7, err := suite.RunExtendedOn(cluster.Fire(), 128)
		if err != nil {
			b.Fatal(err)
		}
		c3, err := core.Compute(test3.Measurements(), ref3.Measurements(), core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		c7, err := core.Compute(test7.Measurements(), ref7.Measurements(), core.ArithmeticMean, nil)
		if err != nil {
			b.Fatal(err)
		}
		tgi3, tgi7 = c3.TGI, c7.TGI
	}
	b.ReportMetric(tgi3, "TGI-3-benchmarks")
	b.ReportMetric(tgi7, "TGI-7-benchmarks")
}

// BenchmarkAblationNoise reruns the reproduction under independent meter-
// noise seeds and reports the spread of the headline correlation — the
// robustness of Table II to gauge noise.
func BenchmarkAblationNoise(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, seed := range []uint64{11, 22, 33} {
			d, err := paper.NewDatasetSeeded(cluster.Fire(), cluster.SystemG(), suite.FireSweep(), seed)
			if err != nil {
				b.Fatal(err)
			}
			r, err := d.PCC(suite.BenchIOzone, core.ArithmeticMean)
			if err != nil {
				b.Fatal(err)
			}
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
	}
	b.ReportMetric(hi-lo, "PCC-IOzone-spread")
	b.ReportMetric(lo, "PCC-IOzone-min")
}

// BenchmarkAblationAggregator compares the arithmetic (paper), harmonic
// and geometric folds of the same REEs — the related-work question the
// paper cites from John (2004).
func BenchmarkAblationAggregator(b *testing.B) {
	ref, err := suite.Run(suite.DefaultConfig(cluster.SystemG(), 1024))
	if err != nil {
		b.Fatal(err)
	}
	test, err := suite.Run(suite.DefaultConfig(cluster.Fire(), 128))
	if err != nil {
		b.Fatal(err)
	}
	var am, hm, gm float64
	for i := 0; i < b.N; i++ {
		for _, agg := range []struct {
			a   core.Aggregator
			dst *float64
		}{{core.Arithmetic, &am}, {core.Harmonic, &hm}, {core.Geometric, &gm}} {
			c, err := core.ComputeAggregated(agg.a, test.Measurements(), ref.Measurements(),
				core.ArithmeticMean, nil)
			if err != nil {
				b.Fatal(err)
			}
			*agg.dst = c.TGI
		}
	}
	b.ReportMetric(am, "TGI-arithmetic")
	b.ReportMetric(hm, "TGI-harmonic")
	b.ReportMetric(gm, "TGI-geometric")
}

// BenchmarkAblationDVFS sweeps the CPU frequency ladder and reports the
// HPL energy per solve and TGI at each step — the power-aware-computing
// question (the paper's reference [11], Hsu & Feng) asked through TGI.
func BenchmarkAblationDVFS(b *testing.B) {
	ref, err := suite.Run(suite.DefaultConfig(cluster.SystemG(), 1024))
	if err != nil {
		b.Fatal(err)
	}
	factors := []float64{0.6, 0.8, 1.0}
	tgis := make([]float64, len(factors))
	energies := make([]float64, len(factors))
	for i := 0; i < b.N; i++ {
		for j, f := range factors {
			spec, err := cluster.WithFrequency(cluster.Fire(), f)
			if err != nil {
				b.Fatal(err)
			}
			r, err := suite.Run(suite.DefaultConfig(spec, 128))
			if err != nil {
				b.Fatal(err)
			}
			c, err := core.Compute(r.Measurements(), ref.Measurements(), core.ArithmeticMean, nil)
			if err != nil {
				b.Fatal(err)
			}
			tgis[j] = c.TGI
			energies[j] = float64(r.Measurements()[0].EnergyJoules()) / 1e6
		}
	}
	for j, f := range factors {
		b.Logf("f=%.1f: TGI=%.3f HPL energy=%.1f MJ", f, tgis[j], energies[j])
	}
	b.ReportMetric(tgis[0], "TGI@60pct")
	b.ReportMetric(tgis[len(tgis)-1], "TGI@100pct")
}
