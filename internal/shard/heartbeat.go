package shard

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The heartbeat protocol: a shard worker writes one JSON object per line
// (NDJSON) on its stdout, and the supervisor treats every parseable line
// as proof of life. Cell beats additionally carry progress, so logs and
// live telemetry can show how far a shard got before it was lost. Lines
// that do not parse are ignored — a worker's stray prints cannot confuse
// the supervisor, only starve it of beats.

// Beat event kinds.
const (
	BeatHello = "hello" // worker is up: total cells it owns
	BeatCell  = "cell"  // one cell checkpointed: key + done/total
	BeatTick  = "beat"  // periodic liveness while a long cell runs
	BeatDone  = "done"  // worker finished its task cleanly
)

// Beat is one heartbeat line. Seq is a monotonic per-writer sequence
// number starting at 1: the supervisor uses it to detect silently
// dropped NDJSON lines (a gap in the sequence). Zero means the line
// carries no sequence — old workers, or hand-written test beats — and
// gap tracking skips it.
type Beat struct {
	Ev    string `json:"ev"`
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Key   string `json:"key,omitempty"`
}

// ParseBeat decodes one NDJSON line; ok is false for anything that is
// not a beat (including arbitrary non-JSON output).
func ParseBeat(line []byte) (Beat, bool) {
	var b Beat
	if err := json.Unmarshal(line, &b); err != nil || b.Ev == "" {
		return Beat{}, false
	}
	return b, true
}

// BeatWriter emits heartbeat lines for one shard worker. Safe for
// concurrent use (the periodic ticker and the cell checkpoints race by
// design); each beat is one atomic Write so lines never interleave.
type BeatWriter struct {
	mu    sync.Mutex
	w     io.Writer
	shard int
	seq   uint64
	muted bool
}

// NewBeatWriter returns a writer stamping every beat with the shard
// index.
func NewBeatWriter(w io.Writer, shard int) *BeatWriter {
	return &BeatWriter{w: w, shard: shard}
}

// Hello announces the worker is up and owns total cells.
func (b *BeatWriter) Hello(total int) { b.emit(Beat{Ev: BeatHello, Total: total}) }

// Cell announces one checkpointed cell.
func (b *BeatWriter) Cell(key string, done, total int) {
	b.emit(Beat{Ev: BeatCell, Key: key, Done: done, Total: total})
}

// Tick is the periodic liveness beat.
func (b *BeatWriter) Tick() { b.emit(Beat{Ev: BeatTick}) }

// Done announces clean completion.
func (b *BeatWriter) Done() { b.emit(Beat{Ev: BeatDone}) }

// Mute permanently silences the writer — the process-fault hook's "hang"
// mode uses it to simulate a worker that is alive but stuck, the failure
// the supervisor's heartbeat timeout exists to catch.
func (b *BeatWriter) Mute() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.muted = true
	b.mu.Unlock()
}

func (b *BeatWriter) emit(beat Beat) {
	if b == nil {
		return
	}
	beat.Shard = b.shard
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.muted {
		return
	}
	// The sequence is stamped under the same lock that orders the
	// writes, so the wire order and the sequence order always agree.
	b.seq++
	beat.Seq = b.seq
	line, err := json.Marshal(beat)
	if err != nil {
		return
	}
	b.w.Write(append(line, '\n'))
}

// StartTicks emits a Tick every interval until the returned stop
// function is called — the liveness signal that keeps a worker's
// heartbeat fresh while a long cell simulates.
func StartTicks(b *BeatWriter, every time.Duration) (stop func()) {
	if b == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
