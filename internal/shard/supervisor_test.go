package shard

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		axis []int
		n    int
		want [][]int
	}{
		{[]int{1, 2, 3, 4}, 2, [][]int{{1, 2}, {3, 4}}},
		{[]int{1, 2, 3, 4, 5}, 2, [][]int{{1, 2, 3}, {4, 5}}},
		{[]int{1, 2, 3}, 5, [][]int{{1}, {2}, {3}}},
		{[]int{1, 2, 3}, 0, [][]int{{1, 2, 3}}},
		{[]int{7}, 1, [][]int{{7}}},
		{nil, 3, nil},
	} {
		tasks := Partition(tc.axis, tc.n)
		var got [][]int
		for i, task := range tasks {
			if task.Shard != i {
				t.Errorf("Partition(%v, %d): task %d has shard index %d", tc.axis, tc.n, i, task.Shard)
			}
			got = append(got, task.Procs)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Partition(%v, %d) = %v, want %v", tc.axis, tc.n, got, tc.want)
		}
	}
}

func TestParseBeatRejectsNoise(t *testing.T) {
	for _, line := range []string{"", "not json", "{}", `{"done":3}`, "[1,2]"} {
		if _, ok := ParseBeat([]byte(line)); ok {
			t.Errorf("ParseBeat(%q) accepted a non-beat line", line)
		}
	}
	b, ok := ParseBeat([]byte(`{"ev":"cell","shard":1,"key":"k","done":2,"total":4}`))
	if !ok || b.Ev != BeatCell || b.Shard != 1 || b.Key != "k" || b.Done != 2 || b.Total != 4 {
		t.Fatalf("ParseBeat round-trip lost fields: %+v ok=%v", b, ok)
	}
}

func TestBeatWriterMute(t *testing.T) {
	var buf bytes.Buffer
	w := NewBeatWriter(&buf, 3)
	w.Hello(2)
	w.Mute()
	w.Tick()
	w.Done()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("muted writer still emitted: %q", buf.String())
	}
	if b, ok := ParseBeat([]byte(lines[0])); !ok || b.Ev != BeatHello || b.Shard != 3 {
		t.Fatalf("hello beat malformed: %q", lines[0])
	}
}

// fakeWorker writes a /bin/sh worker script and returns a Start func for
// it. The script receives the shard index then the task's axis points as
// arguments; behaviour is steered through the environment:
//
//	POISON  — kill -9 itself on reaching this axis point
//	MARKER  — die (once) with SIGKILL unless this file exists, creating it
//	EXIT    — exit with this status before doing anything
//	SLEEP   — sleep this many seconds emitting nothing (heartbeat death)
func fakeWorker(t *testing.T, env ...string) func(task Task) (*exec.Cmd, error) {
	t.Helper()
	script := filepath.Join(t.TempDir(), "worker.sh")
	const body = `#!/bin/sh
shard=$1; shift
if [ -n "$EXIT" ]; then exit "$EXIT"; fi
if [ -n "$SLEEP" ]; then sleep "$SLEEP"; exit 0; fi
if [ -n "$MARKER" ] && [ ! -f "$MARKER" ]; then : > "$MARKER"; kill -9 $$; fi
printf '{"ev":"hello","shard":%d,"total":%d}\n' "$shard" "$#"
done=0
for p in "$@"; do
  if [ -n "$POISON" ] && [ "$p" = "$POISON" ]; then kill -9 $$; fi
  done=$((done + 1))
  printf '{"ev":"cell","shard":%d,"key":"cell-%d","done":%d,"total":%d}\n' "$shard" "$p" "$done" "$#"
done
printf '{"ev":"done","shard":%d}\n' "$shard"
`
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return func(task Task) (*exec.Cmd, error) {
		args := []string{script, strconv.Itoa(task.Shard)}
		for _, p := range task.Procs {
			args = append(args, strconv.Itoa(p))
		}
		cmd := exec.Command("/bin/sh", args...)
		cmd.Env = append(os.Environ(), env...)
		return cmd, nil
	}
}

// monitorLog records lifecycle callbacks as strings, for assertions.
type monitorLog struct {
	mu    sync.Mutex
	lines []string
}

func (m *monitorLog) add(s string) {
	m.mu.Lock()
	m.lines = append(m.lines, s)
	m.mu.Unlock()
}

func (m *monitorLog) ShardStarted(shard, attempt, cells int) {
	m.add(fmt.Sprintf("started %d attempt %d cells %d", shard, attempt, cells))
}
func (m *monitorLog) ShardLost(shard int, reason string) { m.add(fmt.Sprintf("lost %d", shard)) }
func (m *monitorLog) ShardFinished(shard int)            { m.add(fmt.Sprintf("finished %d", shard)) }
func (m *monitorLog) ShardQuarantined(shard, procs int, reason string) {
	m.add(fmt.Sprintf("quarantined %d procs %d", shard, procs))
}

func (m *monitorLog) has(s string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, l := range m.lines {
		if l == s {
			return true
		}
	}
	return false
}

func TestSupervisorHealthyRun(t *testing.T) {
	mon := &monitorLog{}
	rep, err := Run(Spec{
		Tasks:   Partition([]int{1, 2, 3, 4}, 2),
		Start:   fakeWorker(t),
		Backoff: 5 * time.Millisecond,
		Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 2 || rep.Losses != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("healthy run report: %+v", rep)
	}
	if rep.CellsSeen != 4 {
		t.Fatalf("CellsSeen = %d, want 4", rep.CellsSeen)
	}
	for _, want := range []string{"started 0 attempt 0 cells 2", "finished 0", "finished 1"} {
		if !mon.has(want) {
			t.Errorf("monitor missing %q: %v", want, mon.lines)
		}
	}
}

func TestSupervisorRetriesAfterSIGKILL(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "died-once")
	var log bytes.Buffer
	rep, err := Run(Spec{
		Tasks:   []Task{{Shard: 0, Procs: []int{1, 2, 3}}},
		Start:   fakeWorker(t, "MARKER="+marker),
		Backoff: 5 * time.Millisecond,
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 2 || rep.Losses != 1 {
		t.Fatalf("kill-once report: %+v", rep)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("transient SIGKILL must not quarantine: %+v", rep.Quarantined)
	}
	if rep.CellsSeen != 3 {
		t.Fatalf("CellsSeen = %d, want 3", rep.CellsSeen)
	}
	if !strings.Contains(log.String(), "signal: killed") {
		t.Errorf("loss reason not logged:\n%s", log.String())
	}
}

func TestSupervisorQuarantinesOnRetryExhaustion(t *testing.T) {
	mon := &monitorLog{}
	rep, err := Run(Spec{
		Tasks:      []Task{{Shard: 0, Procs: []int{8}}},
		Start:      fakeWorker(t, "EXIT=3"),
		MaxRetries: 1,
		Backoff:    time.Millisecond,
		Monitor:    mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 2 || rep.Losses != 2 {
		t.Fatalf("exhaustion report: %+v", rep)
	}
	want := []Quarantine{{Shard: 0, Procs: 8, Reason: "exit status 3"}}
	if !reflect.DeepEqual(rep.Quarantined, want) {
		t.Fatalf("Quarantined = %+v, want %+v", rep.Quarantined, want)
	}
	if !mon.has("quarantined 0 procs 8") {
		t.Errorf("monitor missing quarantine event: %v", mon.lines)
	}
}

func TestSupervisorKillsSilentWorker(t *testing.T) {
	start := time.Now()
	rep, err := Run(Spec{
		Tasks:            []Task{{Shard: 0, Procs: []int{1}}},
		Start:            fakeWorker(t, "SLEEP=30"),
		HeartbeatTimeout: 200 * time.Millisecond,
		MaxRetries:       -1,
		Backoff:          time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog did not kill the silent worker (took %v)", elapsed)
	}
	if rep.Losses != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("silent-worker report: %+v", rep)
	}
	if r := rep.Quarantined[0].Reason; !strings.Contains(r, "heartbeat") {
		t.Fatalf("loss reason %q does not mention the heartbeat", r)
	}
}

func TestSupervisorBisectsToPoisonCell(t *testing.T) {
	// Axis point 3 always SIGKILLs its worker. With no retry budget the
	// supervisor must bisect [1 2 3 4] down to the single poison cell,
	// quarantine exactly it, and still see every other cell complete.
	var log bytes.Buffer
	rep, err := Run(Spec{
		Tasks:      []Task{{Shard: 0, Procs: []int{1, 2, 3, 4}}},
		Start:      fakeWorker(t, "POISON=3"),
		MaxRetries: -1,
		Backoff:    time.Millisecond,
		Log:        &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Procs != 3 {
		t.Fatalf("bisection quarantined %+v, want exactly procs 3", rep.Quarantined)
	}
	if rep.CellsSeen != 3 {
		t.Fatalf("CellsSeen = %d, want 3 (cells 1, 2, 4)", rep.CellsSeen)
	}
	if !strings.Contains(log.String(), "bisecting") {
		t.Errorf("bisection not logged:\n%s", log.String())
	}
}

func TestSupervisorRunsBisectedSiblingsAfterPoison(t *testing.T) {
	// The half that does not hold the poison must finish even when it is
	// the right half — bisection explores both branches.
	rep, err := Run(Spec{
		Tasks:      []Task{{Shard: 0, Procs: []int{1, 2, 3, 4}}},
		Start:      fakeWorker(t, "POISON=1"),
		MaxRetries: -1,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Procs != 1 {
		t.Fatalf("bisection quarantined %+v, want exactly procs 1", rep.Quarantined)
	}
	if rep.CellsSeen != 3 {
		t.Fatalf("CellsSeen = %d, want 3 (cells 2, 3, 4)", rep.CellsSeen)
	}
}

func TestSupervisorRejectsBrokenSpec(t *testing.T) {
	if _, err := Run(Spec{Tasks: []Task{{Procs: []int{1}}}}); err == nil {
		t.Fatal("Run accepted a Spec without Start")
	}
}
