//go:build unix

package shard

import (
	"os/exec"
	"syscall"
)

// isolate places the worker in its own process group, so that killing a
// lost shard reaches any children it spawned. Without this, a surviving
// grandchild keeps the heartbeat pipe's write end open and the
// supervisor would block on a stream that can never speak again.
func isolate(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// kill shoots the worker's whole process group.
func kill(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	// A negative pid addresses the process group set up by isolate.
	syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
}
