package shard

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Monitor receives shard lifecycle notifications on the wall-clock
// plane. The live telemetry Hub satisfies it structurally; a nil Monitor
// is fine. Implementations must be safe for concurrent calls — shards
// are supervised in parallel.
type Monitor interface {
	// ShardStarted announces a worker launch: which shard, which attempt
	// (0 = first), how many cells the task owns.
	ShardStarted(shard, attempt, cells int)
	// ShardLost announces a worker death: exit status, kill signal, or a
	// heartbeat gone silent.
	ShardLost(shard int, reason string)
	// ShardFinished announces a task that completed cleanly.
	ShardFinished(shard int)
	// ShardQuarantined announces an axis point given up on after retries
	// and bisection.
	ShardQuarantined(shard, procs int, reason string)
}

// BisectMonitor is an optional Monitor extension: implementations also
// hear poison-cell bisection decisions. left and right are the two
// halves' axis points; treat both as read-only.
type BisectMonitor interface {
	ShardBisected(shard int, left, right []int)
}

// BeatGapMonitor is an optional Monitor extension: implementations also
// hear heartbeat sequence gaps, one call per detected gap with the
// number of lines missed.
type BeatGapMonitor interface {
	ShardBeatGap(shard, missed int)
}

// monitorList fans lifecycle events out to several monitors, including
// the optional extensions for those that implement them.
type monitorList []Monitor

func (l monitorList) ShardStarted(shard, attempt, cells int) {
	for _, m := range l {
		m.ShardStarted(shard, attempt, cells)
	}
}

func (l monitorList) ShardLost(shard int, reason string) {
	for _, m := range l {
		m.ShardLost(shard, reason)
	}
}

func (l monitorList) ShardFinished(shard int) {
	for _, m := range l {
		m.ShardFinished(shard)
	}
}

func (l monitorList) ShardQuarantined(shard, procs int, reason string) {
	for _, m := range l {
		m.ShardQuarantined(shard, procs, reason)
	}
}

func (l monitorList) ShardBisected(shard int, left, right []int) {
	for _, m := range l {
		if b, ok := m.(BisectMonitor); ok {
			b.ShardBisected(shard, left, right)
		}
	}
}

func (l monitorList) ShardBeatGap(shard, missed int) {
	for _, m := range l {
		if b, ok := m.(BeatGapMonitor); ok {
			b.ShardBeatGap(shard, missed)
		}
	}
}

// Monitors composes monitors into one, skipping nils. With zero or one
// non-nil argument it returns nil or that monitor unwrapped.
func Monitors(ms ...Monitor) Monitor {
	var list monitorList
	for _, m := range ms {
		if m != nil {
			list = append(list, m)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	return list
}

// Spec configures a supervision run.
type Spec struct {
	// Tasks are the initial shards, typically from Partition. They are
	// supervised concurrently; tasks produced by bisection run
	// sequentially within their branch, so one journal segment never has
	// two writers at once.
	Tasks []Task
	// Start builds (without starting) the worker process for a task. The
	// supervisor owns the command's stdout — the heartbeat channel — so
	// Start must leave cmd.Stdout nil. Stderr may be wired to anything.
	Start func(t Task) (*exec.Cmd, error)
	// HeartbeatTimeout kills a worker whose stdout has been silent this
	// long (default 30s). Workers tick faster than this by construction
	// (StartTicks), so only a dead, wedged or starved worker trips it.
	HeartbeatTimeout time.Duration
	// MaxRetries is how many times a task is relaunched after a loss
	// before it is bisected (or, at one cell, quarantined). Default 2;
	// negative means no retries.
	MaxRetries int
	// Backoff is the wall-clock delay before the first relaunch, doubling
	// per retry (default 250ms). Purely wall-clock pacing: it cannot
	// affect the campaign's deterministic artifacts.
	Backoff time.Duration
	// Log, when non-nil, receives one line per supervision event.
	Log io.Writer
	// Logger, when non-nil, receives the same supervision events as
	// structured records (the campaign server threads its NDJSON slog
	// handler through here). Log and Logger are independent sinks.
	Logger *slog.Logger
	// Monitor, when non-nil, receives shard lifecycle events.
	Monitor Monitor
}

// Quarantine is one axis point the supervisor gave up on.
type Quarantine struct {
	Shard  int    // originating shard
	Procs  int    // the poisoned axis point
	Reason string // the last loss that condemned it
}

// Report is the outcome of a supervision run.
type Report struct {
	// Launches counts worker processes started; Losses counts the ones
	// that died (the difference is clean completions).
	Launches int
	Losses   int
	// CellsSeen counts distinct cell keys workers reported checkpointed.
	CellsSeen int
	// BeatGaps counts heartbeat lines lost in transit, summed across all
	// workers: the shortfall whenever a beat's sequence number jumps past
	// the expected next value. Zero on a healthy run.
	BeatGaps int
	// Quarantined lists the axis points isolated by bisection and given
	// up on, in axis order. Empty means the campaign is complete.
	Quarantined []Quarantine
}

// supervisor is the mutable state of one Run.
type supervisor struct {
	spec Spec

	mu          sync.Mutex
	launches    int
	losses      int
	beatGaps    int
	cells       map[string]bool
	quarantined []Quarantine
}

func (s *supervisor) logf(format string, args ...any) {
	if s.spec.Log == nil {
		return
	}
	s.mu.Lock()
	fmt.Fprintf(s.spec.Log, "shard: "+format+"\n", args...)
	s.mu.Unlock()
}

// slog emits a structured supervision record when a Logger is attached.
func (s *supervisor) slog(level slog.Level, msg string, args ...any) {
	if s.spec.Logger == nil {
		return
	}
	s.spec.Logger.Log(context.Background(), level, msg, args...)
}

// Run supervises every task to completion or quarantine. It returns a
// hard error only when a worker cannot be constructed or started at all
// (a broken Spec, not a crashed shard); crashed shards are retried,
// bisected and ultimately quarantined instead.
func Run(spec Spec) (Report, error) {
	if spec.Start == nil {
		return Report{}, fmt.Errorf("shard: spec has no Start")
	}
	if spec.HeartbeatTimeout <= 0 {
		spec.HeartbeatTimeout = 30 * time.Second
	}
	if spec.MaxRetries < 0 {
		spec.MaxRetries = 0
	} else if spec.MaxRetries == 0 {
		spec.MaxRetries = 2
	}
	if spec.Backoff <= 0 {
		spec.Backoff = 250 * time.Millisecond
	}
	s := &supervisor{spec: spec, cells: map[string]bool{}}
	var wg sync.WaitGroup
	errs := make([]error, len(spec.Tasks))
	for i, t := range spec.Tasks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = s.supervise(t)
		}()
	}
	wg.Wait()
	rep := Report{
		Launches:  s.launches,
		Losses:    s.losses,
		CellsSeen: len(s.cells),
		BeatGaps:  s.beatGaps,
	}
	// Quarantines accumulate in completion order; report them in axis
	// order so the outcome is stable across scheduling.
	sort.Slice(s.quarantined, func(i, j int) bool {
		return s.quarantined[i].Procs < s.quarantined[j].Procs
	})
	rep.Quarantined = s.quarantined
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// supervise runs one task through its retry budget, then bisects or
// quarantines.
func (s *supervisor) supervise(t Task) error {
	if len(t.Procs) == 0 {
		return nil
	}
	var lastLoss string
	for attempt := 0; attempt <= s.spec.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(s.spec.Backoff << (attempt - 1))
			s.logf("shard %d: relaunching (attempt %d of %d) after: %s",
				t.Shard, attempt+1, s.spec.MaxRetries+1, lastLoss)
			s.slog(slog.LevelInfo, "shard relaunching",
				"shard", t.Shard, "attempt", attempt+1, "max_attempts", s.spec.MaxRetries+1, "reason", lastLoss)
		}
		if m := s.spec.Monitor; m != nil {
			m.ShardStarted(t.Shard, attempt, len(t.Procs))
		}
		loss, err := s.runOnce(t)
		if err != nil {
			return err
		}
		if loss == "" {
			if m := s.spec.Monitor; m != nil {
				m.ShardFinished(t.Shard)
			}
			return nil
		}
		lastLoss = loss
		s.mu.Lock()
		s.losses++
		s.mu.Unlock()
		s.logf("shard %d: lost worker (procs %v): %s", t.Shard, t.Procs, loss)
		s.slog(slog.LevelWarn, "shard worker lost",
			"shard", t.Shard, "procs", fmt.Sprint(t.Procs), "reason", loss)
		if m := s.spec.Monitor; m != nil {
			m.ShardLost(t.Shard, loss)
		}
	}
	if len(t.Procs) > 1 {
		// The task keeps dying: isolate the poison by bisection. The two
		// halves run sequentially — they share the shard's journal
		// segment, and a segment must never have two writers at once.
		// Completed cells are already checkpointed, so each half re-runs
		// only what its worker never finished.
		mid := len(t.Procs) / 2
		left := Task{Shard: t.Shard, Procs: t.Procs[:mid]}
		right := Task{Shard: t.Shard, Procs: t.Procs[mid:]}
		s.logf("shard %d: retries exhausted; bisecting %v into %v and %v",
			t.Shard, t.Procs, left.Procs, right.Procs)
		s.slog(slog.LevelInfo, "shard bisecting",
			"shard", t.Shard, "left", fmt.Sprint(left.Procs), "right", fmt.Sprint(right.Procs))
		if b, ok := s.spec.Monitor.(BisectMonitor); ok {
			b.ShardBisected(t.Shard, left.Procs, right.Procs)
		}
		if err := s.supervise(left); err != nil {
			return err
		}
		return s.supervise(right)
	}
	q := Quarantine{Shard: t.Shard, Procs: t.Procs[0], Reason: lastLoss}
	s.mu.Lock()
	s.quarantined = append(s.quarantined, q)
	s.mu.Unlock()
	s.logf("shard %d: quarantining poison cell procs=%d: %s", t.Shard, q.Procs, q.Reason)
	s.slog(slog.LevelWarn, "shard cell quarantined",
		"shard", t.Shard, "procs", q.Procs, "reason", q.Reason)
	if m := s.spec.Monitor; m != nil {
		m.ShardQuarantined(t.Shard, q.Procs, q.Reason)
	}
	return nil
}

// runOnce launches one worker and watches it to completion. It returns
// ("", nil) on clean exit, a loss reason for a death the supervisor
// should retry, or an error for a worker that could not start.
func (s *supervisor) runOnce(t Task) (loss string, err error) {
	cmd, err := s.spec.Start(t)
	if err != nil {
		return "", fmt.Errorf("shard %d: building worker: %w", t.Shard, err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", fmt.Errorf("shard %d: piping worker stdout: %w", t.Shard, err)
	}
	isolate(cmd)
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("shard %d: starting worker: %w", t.Shard, err)
	}
	s.mu.Lock()
	s.launches++
	s.mu.Unlock()

	// lastBeat is the wall time of the last parseable heartbeat line,
	// as UnixNano; the watchdog compares against it.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	var timedOut atomic.Bool
	watchdogDone := make(chan struct{})
	go func() {
		interval := s.spec.HeartbeatTimeout / 4
		if interval <= 0 {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				silent := time.Since(time.Unix(0, lastBeat.Load()))
				if silent > s.spec.HeartbeatTimeout {
					timedOut.Store(true)
					kill(cmd)
					return
				}
			case <-watchdogDone:
				return
			}
		}
	}()

	// Drain the heartbeat stream until the worker closes its stdout.
	// Reading must finish before Wait — Wait tears the pipe down.
	// Sequence numbers make dropped lines visible: a beat arriving with
	// seq > last+1 means the lines in between were lost in transit
	// (unsequenced beats, seq 0, are exempt from the accounting).
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var lastSeq uint64
	gaps := 0
	for sc.Scan() {
		b, ok := ParseBeat(sc.Bytes())
		if !ok {
			continue
		}
		lastBeat.Store(time.Now().UnixNano())
		if b.Seq > 0 {
			if lastSeq > 0 && b.Seq > lastSeq+1 {
				missed := int(b.Seq - lastSeq - 1)
				gaps += missed
				s.logf("shard %d: heartbeat gap: %d line(s) missing before seq %d",
					t.Shard, missed, b.Seq)
				s.slog(slog.LevelWarn, "heartbeat gap",
					"shard", t.Shard, "missed", missed, "seq", b.Seq)
				if g, ok := s.spec.Monitor.(BeatGapMonitor); ok {
					g.ShardBeatGap(t.Shard, missed)
				}
			}
			if b.Seq > lastSeq {
				lastSeq = b.Seq
			}
		}
		if b.Ev == BeatCell && b.Key != "" {
			s.mu.Lock()
			s.cells[b.Key] = true
			s.mu.Unlock()
		}
	}
	if gaps > 0 {
		s.mu.Lock()
		s.beatGaps += gaps
		s.mu.Unlock()
	}
	waitErr := cmd.Wait()
	close(watchdogDone)
	switch {
	case timedOut.Load():
		return fmt.Sprintf("heartbeat silent for over %v; worker killed", s.spec.HeartbeatTimeout), nil
	case waitErr != nil:
		return waitErr.Error(), nil
	}
	return "", nil
}
