package shard

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestBeatWriterStampsSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewBeatWriter(&buf, 0)
	w.Hello(2)
	w.Cell("a", 1, 2)
	w.Tick()
	w.Done()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 beats, got %d: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		b, ok := ParseBeat([]byte(line))
		if !ok {
			t.Fatalf("line %d is not a beat: %q", i, line)
		}
		if b.Seq != uint64(i+1) {
			t.Errorf("line %d has seq %d, want %d (sequences start at 1 and increment per line)", i, b.Seq, i+1)
		}
	}
}

// gappyWorker emits beats whose sequence numbers skip ahead, simulating
// heartbeat lines lost in transit. Every cell beat jumps the sequence by
// two, so a task with N axis points loses exactly N lines.
func gappyWorker(t *testing.T) func(task Task) (*exec.Cmd, error) {
	t.Helper()
	script := filepath.Join(t.TempDir(), "gappy.sh")
	const body = `#!/bin/sh
shard=$1; shift
printf '{"ev":"hello","shard":%d,"total":%d,"seq":1}\n' "$shard" "$#"
done=0
seq=1
for p in "$@"; do
  done=$((done + 1))
  seq=$((seq + 2))
  printf '{"ev":"cell","shard":%d,"key":"cell-%d","done":%d,"total":%d,"seq":%d}\n' "$shard" "$p" "$done" "$#" "$seq"
done
printf '{"ev":"done","shard":%d,"seq":%d}\n' "$shard" "$((seq + 1))"
`
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	return func(task Task) (*exec.Cmd, error) {
		args := []string{script, strconv.Itoa(task.Shard)}
		for _, p := range task.Procs {
			args = append(args, strconv.Itoa(p))
		}
		return exec.Command("/bin/sh", args...), nil
	}
}

// gapLog is a monitorLog that also hears the BeatGapMonitor extension.
type gapLog struct{ monitorLog }

func (m *gapLog) ShardBeatGap(shard, missed int) {
	m.add(fmt.Sprintf("gap %d missed %d", shard, missed))
}

func TestSupervisorCountsBeatGaps(t *testing.T) {
	mon := &gapLog{}
	var log bytes.Buffer
	rep, err := Run(Spec{
		Tasks:   []Task{{Shard: 0, Procs: []int{1, 2}}},
		Start:   gappyWorker(t),
		Backoff: time.Millisecond,
		Monitor: mon,
		Log:     &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	// seq goes 1, 3, 5, 6: one line missing before each of the two cell
	// beats.
	if rep.BeatGaps != 2 {
		t.Fatalf("BeatGaps = %d, want 2; log:\n%s", rep.BeatGaps, log.String())
	}
	if rep.CellsSeen != 2 || rep.Losses != 0 {
		t.Fatalf("gappy beats must not affect completion: %+v", rep)
	}
	if !strings.Contains(log.String(), "heartbeat gap") {
		t.Errorf("gap not logged:\n%s", log.String())
	}
	if !mon.has("gap 0 missed 1") {
		t.Errorf("monitor missing gap event: %v", mon.lines)
	}
}

func TestSupervisorHealthyRunHasNoBeatGaps(t *testing.T) {
	// fakeWorker emits no sequence numbers at all (Seq 0 on every beat):
	// gap tracking must stay silent rather than inventing gaps.
	rep, err := Run(Spec{
		Tasks:   Partition([]int{1, 2, 3, 4}, 2),
		Start:   fakeWorker(t),
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BeatGaps != 0 {
		t.Fatalf("BeatGaps = %d on a run without sequence numbers, want 0", rep.BeatGaps)
	}
}

func TestMonitorsFanOut(t *testing.T) {
	a, b := &gapLog{}, &monitorLog{}
	mon := Monitors(a, nil, b)
	mon.ShardStarted(1, 0, 3)
	mon.ShardFinished(1)
	for _, m := range []*monitorLog{&a.monitorLog, b} {
		for _, want := range []string{"started 1 attempt 0 cells 3", "finished 1"} {
			if !m.has(want) {
				t.Errorf("fanout member missing %q: %v", want, m.lines)
			}
		}
	}
	// Extension events reach only the members that implement them.
	mon.(BeatGapMonitor).ShardBeatGap(1, 2)
	if !a.has("gap 1 missed 2") {
		t.Errorf("extension-aware member missed the gap: %v", a.lines)
	}
}

func TestMonitorsCollapses(t *testing.T) {
	if Monitors() != nil {
		t.Error("Monitors() should be nil")
	}
	if Monitors(nil, nil) != nil {
		t.Error("Monitors(nil, nil) should be nil")
	}
	m := &monitorLog{}
	if got := Monitors(nil, m); got != Monitor(m) {
		t.Errorf("Monitors(nil, m) = %v, want the single monitor unwrapped", got)
	}
}
