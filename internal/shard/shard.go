// Package shard runs a sweep as a fleet of independent OS worker
// processes under a supervising parent — the crash-isolation layer above
// the in-process worker-pool scheduler in internal/suite.
//
// The shape follows the sharded-MPI pattern (sync rarely, exchange
// compact deltas): the parent partitions the sweep axis into shards,
// launches each shard as a child process that checkpoints every
// completed cell into its own journal segment, and only synchronises at
// the end, when the segments are merged deterministically back into the
// canonical campaign journal (suite.MergeShardJournals). A shard that
// dies — panic, nonzero exit, SIGKILL, or a heartbeat gone silent —
// loses at most its own in-flight cells: its completed cells are already
// fsynced in its segment, and the supervisor relaunches it with bounded
// backoff. A shard that keeps dying is bisected until the poison cell is
// isolated and quarantined, degrading the campaign to a partial result
// instead of failing it.
//
// This package is on the wall-clock side of the two-plane architecture:
// it may use os/exec, the wall clock, and the live telemetry plane, and
// deterministic packages must not import it (greenvet's layering rules
// enforce both directions). Everything that decides bytes — which cells
// run, what the merged journal holds, how artifacts render — lives on
// the deterministic side, in internal/suite.
package shard

// Task is one unit of supervision: a set of axis points one worker
// process must complete. Initial tasks are whole shards; bisection
// produces narrower tasks with the same Shard index.
type Task struct {
	// Shard is the index of the original shard this task descends from,
	// used for logs, heartbeat attribution and fault-hook selection.
	Shard int
	// Procs is the ordered slice of axis points the worker must run.
	Procs []int
}

// Partition splits the sweep axis into n contiguous shards of near-equal
// size, in axis order. It is a pure function of its arguments — the same
// axis and shard count always produce the same partition, which is what
// makes a sharded campaign resumable and its merged output independent
// of scheduling. Fewer axis points than shards yield one shard per
// point; n < 1 is treated as 1.
func Partition(axis []int, n int) []Task {
	if n < 1 {
		n = 1
	}
	if n > len(axis) {
		n = len(axis)
	}
	if n == 0 {
		return nil
	}
	tasks := make([]Task, 0, n)
	base, extra := len(axis)/n, len(axis)%n
	at := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		tasks = append(tasks, Task{
			Shard: i,
			Procs: append([]int(nil), axis[at:at+size]...),
		})
		at += size
	}
	return tasks
}
