//go:build !unix

package shard

import "os/exec"

// isolate is a no-op where process groups are unavailable; a killed
// worker may leave grandchildren holding the heartbeat pipe open.
func isolate(cmd *exec.Cmd) {}

// kill shoots the worker process itself.
func kill(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
}
