// Package report renders experiment output: aligned text tables, CSV, and
// ASCII line charts for the figure reproductions. It is deliberately plain —
// the harness prints the same rows and series the paper's tables and figures
// report, and diffing two runs should be possible with standard tools.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoting cells that need
// it), including the header row.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one line of an ASCII chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart is an ASCII line chart with a shared x-axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Height int // plot rows; 0 means 16
	Width  int // plot columns; 0 means 64
}

// markers assigns one glyph per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart to w: points are scaled into a Height×Width grid,
// one marker per series, with min/max annotations.
func (c *Chart) Render(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("report: empty chart %q", c.Title)
	}
	height, width := c.Height, c.Width
	if height <= 0 {
		height = 16
	}
	if width <= 0 {
		width = 64
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("report: series %q has %d points for %d x-values", s.Name, len(s.Y), len(c.X))
		}
		for _, v := range s.Y {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymax == ymin { //greenvet:allow floateq -- degenerate-axis guard: bounds collapse only when every sample is the same stored value
		ymax = ymin + 1
	}
	xmin, xmax := c.X[0], c.X[len(c.X)-1]
	if xmax == xmin { //greenvet:allow floateq -- degenerate-axis guard: bounds collapse only when every sample is the same stored value
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for i, v := range s.Y {
			col := int((c.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((v-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = mk
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%-10.4g%*s\n", strings.Repeat(" ", 11), xmin, width-10, fmt.Sprintf("%.4g", xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%sx: %s   y: %s\n", strings.Repeat(" ", 11), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s%c = %s\n", strings.Repeat(" ", 11), markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
