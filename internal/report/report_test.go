package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-longer", "22")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "Name", "alpha", "beta-longer", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Errorf("line count = %d", len(lines))
	}
	// Columns align: "Value" column starts at the same offset everywhere.
	hdr := lines[1]
	off := strings.Index(hdr, "Value")
	if !strings.HasPrefix(lines[3][off:], "1") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{Headers: []string{"A"}}
	tab.AddRow("x", "extra")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"name", "note"}}
	tab.AddRow("a", `says "hi", ok`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\na,\"says \"\"hi\"\", ok\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "T",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "up", Y: []float64{0, 1, 2, 3}},
			{Name: "down", Y: []float64{3, 2, 1, 0}},
		},
		Height: 8,
		Width:  32,
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T", "* = up", "o = down", "x: x   y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Both markers must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from plot")
	}
}

func TestChartErrors(t *testing.T) {
	var sb strings.Builder
	empty := &Chart{Title: "e"}
	if err := empty.Render(&sb); err == nil {
		t.Error("empty chart rendered")
	}
	bad := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Name: "s", Y: []float64{1}}},
	}
	if err := bad.Render(&sb); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{
		X:      []float64{1, 2, 3},
		Series: []Series{{Name: "flat", Y: []float64{5, 5, 5}}},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("flat series lost")
	}
}

func TestChartSingleX(t *testing.T) {
	c := &Chart{
		X:      []float64{7},
		Series: []Series{{Name: "pt", Y: []float64{1}}},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
