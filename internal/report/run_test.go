package report

import (
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	return &RunReport{
		Title: "campaign: fire",
		Rows: []RunRow{
			{System: "fire", Procs: 32, Bench: "HPL", Status: "ok",
				Perf: 13.7, Metric: "GFLOPS", MeanWatts: 297.2, PeakWatts: 301,
				Seconds: 516, EnergyJ: 153885},
			{System: "fire", Procs: 32, Bench: "STREAM", Status: "recovered",
				Perf: 1234, Metric: "MBPS", MeanWatts: 280, PeakWatts: 290,
				Seconds: 410, WastedSeconds: 80, EnergyJ: 114800, Retries: 1,
				GapsFilled: 2, OutliersRejected: 1},
			{System: "fire", Procs: 32, Bench: "IOzone", Status: "failed",
				Metric: "MBPS", Retries: 2, WastedSeconds: 250},
		},
		Summary: []KV{
			{"benchmarks", "3 (1 recovered, 1 failed)"},
			{"virtual time", "1256 s (330 s wasted)"},
			{"energy", "268685 J"},
		},
	}
}

func TestRunReportRender(t *testing.T) {
	var sb strings.Builder
	if err := sampleReport().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"campaign: fire",
		"system", "bench", "status", "wasted_s", "repairs",
		"recovered", "failed",
		"2g/1o",      // repair cell
		"153885",     // energy survives formatting
		"benchmarks", // summary keys
		"1256 s (330 s wasted)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Clean rows show "-" in the repair column.
	line := lineContaining(t, out, "HPL")
	if !strings.Contains(line, "-") {
		t.Errorf("clean row lacks repair placeholder: %q", line)
	}
}

func TestRunReportRenderPercentiles(t *testing.T) {
	r := sampleReport()
	r.Percentiles = []PercentileRow{
		{Bench: "HPL", Count: 3, P50: 510, P95: 540, P99: 544},
		{Bench: "STREAM", Count: 2, P50: 400, P95: 430, P99: 433},
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"attempt seconds (virtual)", "series", "p50_s", "p95_s", "p99_s",
		"510", "544", "430",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("percentile table missing %q:\n%s", want, out)
		}
	}
	// A custom caption replaces the suite default.
	r.PercentileTitle = "meter window seconds (virtual)"
	sb.Reset()
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "meter window seconds (virtual)") ||
		strings.Contains(sb.String(), "attempt seconds") {
		t.Errorf("custom percentile caption not honoured:\n%s", sb.String())
	}
}

func TestRunReportRenderNoSummary(t *testing.T) {
	r := sampleReport()
	r.Summary = nil
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "\n\n") {
		t.Error("summary-free report still has a summary gap")
	}
}

func TestRunReportDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := sampleReport().Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleReport().Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same report differ")
	}
}

func lineContaining(t *testing.T, s, sub string) string {
	t.Helper()
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	t.Fatalf("no line contains %q in:\n%s", sub, s)
	return ""
}
