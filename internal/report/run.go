package report

import (
	"fmt"
	"io"
	"strconv"
)

// RunRow is one benchmark of one suite run, flattened for the run report.
// The fields mirror suite.BenchmarkRun but stay plain so the report
// package keeps no dependency on the pipeline it describes.
type RunRow struct {
	System           string
	Procs            int
	Bench            string
	Status           string // "ok", "recovered", "failed"
	Perf             float64
	Metric           string
	MeanWatts        float64
	PeakWatts        float64
	Seconds          float64
	WastedSeconds    float64
	EnergyJ          float64
	Retries          int
	GapsFilled       int
	OutliersRejected int
}

// PercentileRow summarises one benchmark's attempt-duration histogram:
// estimated p50/p95/p99 virtual seconds across every attempt (including
// retried and failed ones) the campaign ran for that benchmark.
type PercentileRow struct {
	Bench string
	Count uint64
	P50   float64
	P95   float64
	P99   float64
}

// KV is one line of a report's summary block.
type KV struct {
	Key   string
	Value string
}

// RunReport is the human-readable breakdown of a campaign: one row per
// (run, benchmark) showing where the time and energy behind the TGI
// number went, optional per-benchmark attempt-latency percentiles, plus
// a totals block.
type RunReport struct {
	Title       string
	Rows        []RunRow
	Percentiles []PercentileRow
	// PercentileTitle overrides the percentile table's caption; empty
	// means the suite default, "attempt seconds (virtual)".
	PercentileTitle string
	Summary         []KV
}

// fnum renders a float compactly (no trailing zeros, full precision).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// repairs renders the meter-repair cell.
func repairs(gaps, outliers int) string {
	if gaps == 0 && outliers == 0 {
		return "-"
	}
	return fmt.Sprintf("%dg/%do", gaps, outliers)
}

// Render writes the report as an aligned table followed by the summary.
func (r *RunReport) Render(w io.Writer) error {
	t := Table{
		Title: r.Title,
		Headers: []string{"system", "procs", "bench", "status", "perf", "metric",
			"watts", "peak", "time_s", "wasted_s", "energy_J", "retries", "repairs"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.System,
			strconv.Itoa(row.Procs),
			row.Bench,
			row.Status,
			fnum(row.Perf),
			row.Metric,
			fnum(row.MeanWatts),
			fnum(row.PeakWatts),
			fnum(row.Seconds),
			fnum(row.WastedSeconds),
			fnum(row.EnergyJ),
			strconv.Itoa(row.Retries),
			repairs(row.GapsFilled, row.OutliersRejected),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if len(r.Percentiles) > 0 {
		title := r.PercentileTitle
		if title == "" {
			title = "attempt seconds (virtual)"
		}
		pt := Table{
			Title:   title,
			Headers: []string{"series", "count", "p50_s", "p95_s", "p99_s"},
		}
		for _, row := range r.Percentiles {
			pt.AddRow(
				row.Bench,
				strconv.FormatUint(row.Count, 10),
				fnum(row.P50),
				fnum(row.P95),
				fnum(row.P99),
			)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := pt.Render(w); err != nil {
			return err
		}
	}
	if len(r.Summary) == 0 {
		return nil
	}
	width := 0
	for _, kv := range r.Summary {
		if len(kv.Key) > width {
			width = len(kv.Key)
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, kv := range r.Summary {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}
