package native

import (
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

func TestRunRequiresPower(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("zero power accepted")
	}
}

func smallConfig() Config {
	return Config{
		Power:        100,
		Procs:        2,
		HPLSize:      128,
		StreamWords:  1 << 18,
		FFTLogN:      12,
		GUPSLogTable: 12,
		IOBytes:      4 << 20,
		Seed:         1,
	}
}

func TestRunHostSuite(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"HPL", "DGEMM", "STREAM", "FFT", "RandomAccess", "PTRANS", "b_eff", "IOzone"}
	if len(res.Measurements) != len(want) {
		t.Fatalf("got %d measurements", len(res.Measurements))
	}
	for i, m := range res.Measurements {
		if m.Benchmark != want[i] {
			t.Errorf("measurement %d = %q, want %q", i, m.Benchmark, want[i])
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Benchmark, err)
		}
		if m.Power != 100 {
			t.Errorf("%s power = %v", m.Benchmark, m.Power)
		}
		if res.Details[m.Benchmark] == "" {
			t.Errorf("%s has no detail", m.Benchmark)
		}
	}
}

func TestHostSuiteFeedsTGI(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Use the host's own run as its reference: TGI must be exactly 1.
	c, err := core.Compute(res.Measurements, res.Measurements, core.ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.TGI < 0.999 || c.TGI > 1.001 {
		t.Errorf("self-TGI = %v", c.TGI)
	}
	_ = units.Watts(0)
}

func TestSingleWorkerSkipsBeff(t *testing.T) {
	cfg := smallConfig()
	cfg.Procs = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Measurements {
		if m.Benchmark == "b_eff" {
			t.Error("b_eff present on a single-rank run")
		}
	}
}

func TestIODirOverride(t *testing.T) {
	cfg := smallConfig()
	cfg.IODir = t.TempDir()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
