// Package native runs the benchmark suite on the host machine itself —
// real kernels, real clock time — and converts the results into the
// core.Measurement tuples the TGI pipeline consumes. This is the path a
// downstream user takes with actual hardware: run the suite, read power
// from their own wall meter (or supply an assumed constant draw), compute
// TGI against a recorded reference.
//
// The host suite covers the same subsystems as the simulated one: HPL
// (the distributed LU over mpirt), DGEMM, STREAM triad, FFT, RandomAccess
// and an IOzone-style write test. Sizes default to laptop-scale so a run
// finishes in seconds; they are knobs, not benchmarks of record.
package native

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/beff"
	"repro/internal/core"
	"repro/internal/dgemm"
	"repro/internal/fft"
	"repro/internal/hpl"
	"repro/internal/iozone"
	"repro/internal/ptrans"
	"repro/internal/randomaccess"
	"repro/internal/stream"
	"repro/internal/units"
)

// Config describes one native host-suite run.
type Config struct {
	// Power is the host's wall draw during load. There is no software way
	// to read a wall meter, so the caller supplies it (from their meter,
	// RAPL export, or a datasheet estimate).
	Power units.Watts
	// Procs is the rank/worker count; 0 means GOMAXPROCS.
	Procs int
	// HPLSize is the matrix order for the LU run. 0 means 384.
	HPLSize int
	// StreamWords is the STREAM vector length. 0 means 1<<21.
	StreamWords int
	// FFTLogN is the FFT size exponent. 0 means 16.
	FFTLogN int
	// GUPSLogTable is the RandomAccess table exponent. 0 means 16.
	GUPSLogTable int
	// IOBytes is the I/O test file size. 0 means 64 MiB.
	IOBytes int64
	// IODir is the directory for the I/O test file; empty means the
	// system temp directory.
	IODir string
	Seed  uint64
}

// Result is the outcome of the host suite.
type Result struct {
	Measurements []core.Measurement
	// Details holds per-benchmark notes (grid shapes, verification status).
	Details map[string]string
}

// Run executes the host suite and returns TGI-ready measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Power <= 0 {
		return nil, errors.New("native: host power must be positive (read it from your meter)")
	}
	procs := cfg.Procs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 1 {
			procs = 1
		}
	}
	out := &Result{Details: map[string]string{}}
	add := func(name, metric string, perf float64, elapsed units.Seconds, detail string) {
		out.Measurements = append(out.Measurements, core.Measurement{
			Benchmark:   name,
			Metric:      metric,
			Performance: perf,
			Power:       cfg.Power,
			Time:        elapsed,
		})
		out.Details[name] = detail
	}

	// HPL: distributed LU over the in-process runtime.
	n := cfg.HPLSize
	if n == 0 {
		n = 384
	}
	hplRes, err := hpl.Run(hpl.Config{N: n, NB: 32, Procs: procs, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, fmt.Errorf("native: HPL: %w", err)
	}
	if !hplRes.Passed {
		return nil, fmt.Errorf("native: HPL residual %v failed", hplRes.Residual)
	}
	add("HPL", "GFLOPS", hplRes.GFLOPS, units.FromDuration(hplRes.Elapsed),
		fmt.Sprintf("N=%d grid %dx%d residual %.3f", hplRes.N, hplRes.P, hplRes.Q, hplRes.Residual))

	// DGEMM.
	dgRes, err := dgemm.Run(dgemm.Config{N: 256, Workers: procs, Trials: 2, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, fmt.Errorf("native: DGEMM: %w", err)
	}
	add("DGEMM", "GFLOPS", dgRes.GFLOPS, dgRes.BestTime,
		fmt.Sprintf("N=%d verified (max err %.2e)", dgRes.N, dgRes.MaxError))

	// STREAM triad.
	words := cfg.StreamWords
	if words == 0 {
		words = 1 << 21
	}
	stRes, err := stream.Run(stream.Triad, stream.Config{N: words, Workers: procs, Trials: 5})
	if err != nil {
		return nil, fmt.Errorf("native: STREAM: %w", err)
	}
	add("STREAM", "MBPS", float64(stRes.Best)/1e6,
		stRes.BestTime*units.Seconds(stRes.Trials),
		fmt.Sprintf("N=%d validated", stRes.N))

	// FFT.
	logn := cfg.FFTLogN
	if logn == 0 {
		logn = 16
	}
	ffRes, err := fft.Run(fft.Config{LogN: logn, Batches: procs, Trials: 3, Seed: cfg.Seed + 3})
	if err != nil {
		return nil, fmt.Errorf("native: FFT: %w", err)
	}
	if !ffRes.Passed {
		return nil, fmt.Errorf("native: FFT round-trip error %v", ffRes.MaxError)
	}
	add("FFT", "GFLOPS", ffRes.GFLOPS, ffRes.BestTime,
		fmt.Sprintf("N=%d round-trip verified", ffRes.N))

	// RandomAccess.
	logt := cfg.GUPSLogTable
	if logt == 0 {
		logt = 16
	}
	raRes, err := randomaccess.Run(randomaccess.Config{LogTableSize: logt, Workers: procs, Seed: cfg.Seed + 4})
	if err != nil {
		return nil, fmt.Errorf("native: RandomAccess: %w", err)
	}
	add("RandomAccess", "GUPS", raRes.GUPS, raRes.Elapsed,
		fmt.Sprintf("%d updates verified", raRes.Updates))

	// PTRANS: distributed transpose over the runtime. Grid side = the
	// largest square that fits the worker count.
	g := 1
	for (g+1)*(g+1) <= procs {
		g++
	}
	ptN := 128 * g
	ptRes, err := ptrans.Run(ptrans.Config{N: ptN, Grid: g, Seed: cfg.Seed + 6})
	if err != nil {
		return nil, fmt.Errorf("native: PTRANS: %w", err)
	}
	add("PTRANS", "MBPS", float64(ptRes.Rate)/1e6, units.FromDuration(ptRes.Elapsed),
		fmt.Sprintf("N=%d grid %dx%d verified", ptN, g, g))

	// b_eff: runtime latency/bandwidth (needs at least two ranks).
	if procs >= 2 {
		beRes, err := beff.Run(beff.Config{Ranks: procs, PingPongIters: 100, MessageWords: 1 << 14})
		if err != nil {
			return nil, fmt.Errorf("native: b_eff: %w", err)
		}
		add("b_eff", "MBPS", float64(beRes.Bandwidth)/1e6,
			units.Seconds(1e-3), // microbenchmark; nominal duration
			fmt.Sprintf("latency %.2v, ring %s", beRes.Latency, beRes.RingBandwidth))
	}

	// IOzone write on the host filesystem.
	ioBytes := cfg.IOBytes
	if ioBytes == 0 {
		ioBytes = 64 << 20
	}
	tgt, err := iozone.NewOSTarget(cfg.IODir)
	if err != nil {
		return nil, fmt.Errorf("native: IOzone: %w", err)
	}
	defer tgt.Close()
	ioRes, err := iozone.Run(tgt, iozone.Config{FileBytes: ioBytes, RecordBytes: 1 << 20, Seed: cfg.Seed + 5}, iozone.Write)
	if err != nil {
		return nil, fmt.Errorf("native: IOzone: %w", err)
	}
	add("IOzone", "MBPS", float64(ioRes[0].Rate)/1e6, ioRes[0].Elapsed,
		fmt.Sprintf("%d MiB file, 1 MiB records", ioBytes>>20))

	return out, nil
}
