package analysis

import (
	"strings"
)

// Layering enforces the import DAG the two-plane architecture depends
// on: deterministic packages (sim, suite, bench, core, mpirt, power,
// series, and the root API) must not import the wall-clock live plane
// (internal/obs/live) or net/http, and no internal package may import a
// cmd. Which imports are banned for which package comes from the
// Config entry's ForbidImports list, so the rule table stays in one
// place (config.go).
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "import-DAG violations (deterministic plane importing obs/live or net/http, internal importing cmd)",
	Run:  runLayering,
}

func runLayering(p *Pass) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, pat := range p.Rules.ForbidImports {
				if matchPath(pat, path) {
					p.Reportf(imp.Pos(),
						"import %q is forbidden in %s by the layering rules (pattern %q)", path, p.Path, pat)
				}
			}
		}
	}
}
