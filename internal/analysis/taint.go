package analysis

import (
	"go/ast"
	"go/types"
)

// ClockTaint is the interprocedural tier of detclock: a deterministic
// package may not *reach* a wall-clock read through any chain of static
// calls, even when every function it calls directly looks clean. The
// direct read itself is detclock's finding; clocktaint flags the call
// sites whose callees are transitively tainted, with the witness chain
// in the message. A `//greenvet:allow detclock` at the source of the
// taint (e.g. a native benchmark's timer) sanctions the whole reach, so
// one justified exception does not cascade allows up the call tree.
var ClockTaint = &Analyzer{
	Name: "clocktaint",
	Doc:  "calls whose callees transitively reach a wall-clock read (interprocedural detclock)",
}

// RandTaint is the interprocedural tier of detrand: deterministic code
// may not reach a global math/rand draw through any call chain.
var RandTaint = &Analyzer{
	Name: "randtaint",
	Doc:  "calls whose callees transitively draw from global math/rand (interprocedural detrand)",
}

// The interprocedural runners reach the registry through the call graph
// (allow-directive validation resolves analyzer names), so wiring them
// at declaration would be an initialization cycle.
func init() {
	ClockTaint.Run = runClockTaint
	RandTaint.Run = runRandTaint
}

func runClockTaint(p *Pass) {
	runTaint(p, func(g *Graph) map[*types.Func]taintStep { return g.clock }, wallClockFunc,
		"reaches the wall clock",
		"deterministic code must take durations from the virtual clock (internal/sim)")
}

func runRandTaint(p *Pass) {
	runTaint(p, func(g *Graph) map[*types.Func]taintStep { return g.rand }, globalRandFunc,
		"reaches the global math/rand source",
		"deterministic code must use internal/sim's seeded RNG")
}

// runTaint reports every call in the package whose resolved callee is in
// the graph's taint map. Direct intrinsic calls (time.Now itself) are
// the syntax-level analyzer's finding and skipped here, so the two
// tiers never double-report one line.
func runTaint(p *Pass, taintOf func(*Graph) map[*types.Func]taintStep,
	direct func(*types.Func) bool, what, rule string) {
	if p.Mod == nil || p.Info == nil {
		return
	}
	g := p.Mod.Graph()
	taint := taintOf(g)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil || direct(callee) {
				return true
			}
			if _, tainted := taint[callee]; tainted {
				p.Reportf(call.Pos(), "call to %s %s (%s): %s",
					funcLabel(callee), what, g.chain(taint, callee), rule)
			}
			return true
		})
	}
}
