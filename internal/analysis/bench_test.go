package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// BenchmarkLoadModule times the front half of a greenvet run: parsing
// and type-checking the whole module with the stdlib loader. This is
// the cost every CLI invocation pays once.
func BenchmarkLoadModule(b *testing.B) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.LoadModule(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzerSuite times the back half: the full default rule
// table — all ten analyzers, including the interprocedural taint tier —
// over an already-loaded module. The first iteration builds the call
// graph; later ones reuse it, matching how one CLI run amortizes the
// graph across packages.
func BenchmarkAnalyzerSuite(b *testing.B) {
	mod, err := loadMod()
	if err != nil {
		b.Fatal(err)
	}
	cfg := analysis.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, err := analysis.Run(mod, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("selfcheck not clean: %v", findings)
		}
	}
}

// BenchmarkCallGraph times the interprocedural substrate alone: one
// whole-module call-graph build with summaries and taint propagation.
func BenchmarkCallGraph(b *testing.B) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod.InvalidateGraph()
		if g := mod.Graph(); g == nil {
			b.Fatal("nil graph")
		}
	}
}
