package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq rejects `==` and `!=` between two computed floating-point
// operands. Simulated performance and power figures accumulate rounding
// error, so exact equality silently flips with evaluation order;
// comparisons belong in the approved tolerance helpers (internal/stats,
// e.g. stats.ApproxEqual, where this analyzer is not configured) or
// must carry an allow comment naming the exact-identity semantics
// relied on (duplicate-timestamp detection, pivot tie-breaks).
//
// Comparisons where either operand is a compile-time constant are
// sentinel checks (`if watts == 0 { watts = defaultWatts }`), not
// tolerance tests: the constant is exactly representable and the idiom
// asks "was this field ever set", so they are deliberately not flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= between floats outside the tolerance helpers in internal/stats and internal/units",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if (isFloat(p, be.X) || isFloat(p, be.Y)) && !isConstExpr(p, be.X) && !isConstExpr(p, be.Y) {
				p.Reportf(be.OpPos,
					"exact %s between floats: use a tolerance helper (internal/stats) or record the exact-identity intent with `%s floateq -- <reason>`",
					be.Op, AllowPrefix)
			}
			return true
		})
	}
}

func isConstExpr(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	return ok && tv.Value != nil
}

func isFloat(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
