package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder rejects `range` over a map whose body leaks iteration order
// into something ordered: appending to a slice, writing to an
// io.Writer, or emitting observability records. Go randomizes map
// iteration order per run, so any of these smuggles nondeterminism into
// artifacts that must be byte-identical across runs and -workers
// counts. The canonical collect-keys-then-sort pattern stays legal: a
// loop whose only effect is appending to a slice that is sorted later
// in the same function is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order leaking into slices, writers or obs records",
	Run:  runMapOrder,
}

// writeMethods are method names that, on an io.Writer implementation,
// produce ordered output.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// obsEmitMethods are the record-emitting methods of the observability
// planes (internal/obs and internal/obs/live).
var obsEmitMethods = map[string]bool{
	"Span": true, "Event": true, "Count": true, "Gauge": true,
	"Observe": true, "Publish": true,
}

// writerIface is io.Writer, synthesized so the analyzer needs no import
// resolution to recognize writers structurally.
var writerIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body: for every range over a map
// it classifies the loop body's order-sensitive effects and reports the
// loop unless the only effect is the sorted-keys idiom.
func checkMapRanges(p *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p, rs.X) {
			return true
		}
		var sortable []string // append-target keys that may be sorted later
		var reason string
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			if reason != "" {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch why := classifyEffect(p, call); why {
			case effectNone:
			case effectAppend:
				if freshInLoop(p, call.Args[0], rs.Body) {
					// Appending to a slice born this iteration (a copy
					// such as append([]T(nil), xs...)) cannot accumulate
					// order across iterations.
					break
				}
				if tgt := appendTarget(p, call); tgt != "" {
					sortable = append(sortable, tgt)
				} else {
					reason = "appends to a slice"
				}
			case effectWrite:
				reason = "writes to an io.Writer"
			case effectObs:
				reason = "emits obs records"
			}
			return true
		})
		if reason == "" {
			for _, tgt := range sortable {
				if !sortedAfter(p, fnBody, tgt, rs.End()) {
					reason = "appends to a slice"
					break
				}
			}
		}
		if reason != "" {
			p.Reportf(rs.For,
				"map iteration order %s: sort the keys first or add `%s maporder -- <reason>`", reason, AllowPrefix)
		}
		return true
	})
}

func isMapType(p *Pass, expr ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

type effect int

const (
	effectNone effect = iota
	effectAppend
	effectWrite
	effectObs
)

// classifyEffect decides whether one call inside a map-range body leaks
// iteration order.
func classifyEffect(p *Pass, call *ast.CallExpr) effect {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" && isBuiltin(p, fun) {
			return effectAppend
		}
	case *ast.SelectorExpr:
		// fmt.Fprint* — ordered output through the writer argument.
		if pkg, name, ok := usesPackageFunc(p, enclosingFile(p, call.Pos()), fun); ok {
			if pkg == "fmt" && strings.HasPrefix(name, "Fprint") {
				return effectWrite
			}
			return effectNone // other package-level call
		}
		// Method calls: io.Writer writes and obs record emission.
		if p.Info == nil {
			return effectNone
		}
		if selInfo, ok := p.Info.Selections[fun]; ok {
			name := fun.Sel.Name
			if writeMethods[name] && implementsWriter(selInfo.Recv()) {
				return effectWrite
			}
			if obsEmitMethods[name] {
				if fn, ok := selInfo.Obj().(*types.Func); ok && fn.Pkg() != nil &&
					strings.Contains(fn.Pkg().Path(), "internal/obs") {
					return effectObs
				}
			}
		}
	}
	return effectNone
}

func isBuiltin(p *Pass, id *ast.Ident) bool {
	if p.Info == nil {
		return true // syntactic benefit of the doubt
	}
	obj, ok := p.Info.Uses[id]
	if !ok {
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, writerIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), writerIface)
	}
	return false
}

// freshInLoop reports whether the append base is a slice that cannot
// outlive one loop iteration: a nil/composite literal, a conversion
// like []float64(nil), or an identifier declared inside the loop body.
func freshInLoop(p *Pass, e ast.Expr, body *ast.BlockStmt) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr: // conversion, e.g. []float64(nil)
		if len(x.Args) == 1 && p.Info != nil {
			if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() {
				return true
			}
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		if p.Info != nil {
			if obj, ok := p.Info.Uses[x]; ok && obj != nil &&
				obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
				return true
			}
		}
	}
	return false
}

// appendTarget returns a tracking key for the slice a `x = append(x,
// ...)` call grows, when the target is an identifier or a field chain
// rooted in one (`s.Counters`); "" when the target is untrackable.
func appendTarget(p *Pass, call *ast.CallExpr) string {
	if p.Info == nil || len(call.Args) == 0 {
		return ""
	}
	return exprKeyInfo(p.Info, call.Args[0])
}

// exprKeyInfo canonicalizes an identifier or selector chain to a key
// stable across occurrences: the root's resolved object plus the field
// path. The locks analyzer shares it to identify lock owners.
func exprKeyInfo(info *types.Info, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[x]; ok && obj != nil {
			return fmt.Sprintf("%p", obj)
		}
	case *ast.SelectorExpr:
		if base := exprKeyInfo(info, x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}

// sortedAfter reports whether the keyed slice is passed to a
// sort.*/slices.Sort* call after pos within the function body — the
// collect-then-sort idiom.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, key string, pos token.Pos) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := usesPackageFunc(p, enclosingFile(p, call.Pos()), sel)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if exprKeyInfo(p.Info, arg) == key {
				found = true
			}
		}
		return true
	})
	return found
}

// enclosingFile finds the parsed file containing pos.
func enclosingFile(p *Pass, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
