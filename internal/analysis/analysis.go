// Package analysis is greenvet's engine: a stdlib-only static-analysis
// suite that machine-checks the determinism and layering conventions
// every reproducibility guarantee in this module rests on. Each analyzer
// enforces one invariant (wall-clock isolation, seeded randomness,
// map-order hygiene, tolerance-based float comparison, import layering);
// a table-driven Config maps packages to the rule sets they must obey.
//
// The suite runs in two places with identical results: the cmd/greenvet
// CLI, and internal/analysis's own selfcheck test, so drift fails plain
// `go test ./...` — there is no CI-only enforcement gap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation, addressed to a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical `file:line: analyzer:
// message` form that editors and CI logs can jump from.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name is the registry key; allow comments and Config rule sets refer
	// to analyzers by this name.
	Name string
	// Doc is a one-line description shown by `greenvet -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one analyzer everything it may look at for one package.
type Pass struct {
	// Path is the package's import path.
	Path string
	// Fset maps AST positions back to file:line.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, in filename order.
	Files []*ast.File
	// Info carries type information. Identifiers that failed to resolve
	// have no entry; analyzers fall back to syntax where they can.
	Info *types.Info
	// Mod is the enclosing module; the interprocedural analyzers reach
	// the call graph and cross-package summaries through it.
	Mod *Module
	// Rules is the rule set Config matched for this package.
	Rules Rules

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos. Findings suppressed by a
// `//greenvet:allow` comment are filtered after the pass runs.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Registry lists every analyzer in deterministic run order: the five
// syntax-level checks from the original suite, then the interprocedural
// tier (clocktaint/randtaint over the call graph, goroleak over the
// blocks-forever summaries) and the concurrency analyzers.
func Registry() []*Analyzer {
	return []*Analyzer{DetClock, DetRand, MapOrder, FloatEq, Layering,
		ClockTaint, RandTaint, GoroLeak, Locks, NonBlock}
}

// ByName returns the registered analyzer with that name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Registry() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies cfg to every loaded package whose import path is in paths
// (all packages when paths is nil) and returns the surviving findings
// sorted by file, line, column and analyzer. Malformed or misspelled
// `//greenvet:allow` comments are themselves reported, so a typo cannot
// silently disable a rule.
func Run(mod *Module, cfg Config, paths []string) ([]Finding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, p := range paths {
		want[p] = true
	}
	var findings []Finding
	for _, path := range mod.PackagePaths() {
		if paths != nil && !want[path] {
			continue
		}
		rules, ok := cfg.RulesFor(path)
		if !ok {
			continue
		}
		findings = append(findings, RunPackage(mod, mod.Package(path), rules)...)
	}
	sortFindings(findings)
	return findings, nil
}

// RunPackage applies one rule set to one loaded package — the unit the
// fixture tests drive directly — returning allow-filtered findings in
// position order. Rules.Analyzers must already be validated.
func RunPackage(mod *Module, pkg *Package, rules Rules) []Finding {
	var findings []Finding
	allows := collectAllows(mod.Fset, pkg.Files, &findings)
	var raw []Finding
	for _, name := range rules.Analyzers {
		a := ByName(name)
		if a == nil {
			continue // Config.Validate rejects unknown names up front
		}
		pass := &Pass{
			Path:     pkg.Path,
			Fset:     mod.Fset,
			Files:    pkg.Files,
			Info:     pkg.Info,
			Mod:      mod,
			Rules:    rules,
			analyzer: a.Name,
			findings: &raw,
		}
		a.Run(pass)
	}
	for _, f := range raw {
		if !allows.suppresses(f) {
			findings = append(findings, f)
		}
	}
	sortFindings(findings)
	return findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// usesPackageFunc reports whether sel is a selector on the package
// imported as pkgPath (e.g. `time.Now` for "time"), returning the
// selected name. It resolves through type info when available and falls
// back to the file's import table otherwise.
func usesPackageFunc(p *Pass, file *ast.File, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if p.Info != nil {
		if obj, found := p.Info.Uses[id]; found {
			pn, isPkg := obj.(*types.PkgName)
			if !isPkg {
				return "", "", false
			}
			return pn.Imported().Path(), sel.Sel.Name, true
		}
	}
	// Syntactic fallback: match the identifier against import specs.
	if file == nil {
		return "", "", false
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		} else {
			local = path[strings.LastIndex(path, "/")+1:]
		}
		if local == id.Name {
			return path, sel.Sel.Name, true
		}
	}
	return "", "", false
}
