package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural tier: a module-wide call graph over
// the loader's go/types information, with per-function summaries
// (reads-wall-clock, touches-global-rand, spawns-goroutine,
// locks-held-at-exit) propagated across package boundaries. The
// clocktaint/randtaint analyzers consume the taint maps, goroleak
// consumes the blocks-forever map, and the locks analyzer shares the
// lock walker that fills in locksHeldAtExit.
//
// Resolution is static: a call through a function value or an interface
// method has no body to summarize and contributes no edge. That keeps
// the graph sound for the repo's direct-call style and cheap enough to
// rebuild inside `go test ./internal/analysis`.

// edge is one static call out of a function body (function literals
// nested in the body count as the enclosing function's calls).
type edge struct {
	callee *types.Func
	pos    token.Pos
	// spawned marks `go f(...)` — the callee runs on its own goroutine,
	// so the caller does not block in it.
	spawned bool
	// cutClock/cutRand record that a `//greenvet:allow` directive for
	// the clock/rand wall covers this call's line: the justification
	// recorded at the source cuts taint propagation, so one sanctioned
	// wall-clock read does not demand an allow at every transitive
	// caller.
	cutClock bool
	cutRand  bool
	// cutLeak likewise cuts goroleak blocking propagation.
	cutLeak bool
}

// funcNode is the call-graph record for one function with a body.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	edges []edge

	// Summary bits, computed over the function's own statements
	// (nested function literals are separate functions and excluded).
	spawnsGoroutine bool
	// shutdownSignal: the body can learn it should stop — it receives
	// from a channel, selects, ranges over a channel, or calls
	// (*sync.WaitGroup).Done/Wait or context's Done.
	shutdownSignal bool
	// unboundedLoop: a `for` with no condition; such a loop only exits
	// through an explicit escape, so without a shutdown signal the
	// function runs forever.
	unboundedLoop bool
	loopPos       token.Pos
	// locksHeldAtExit: the lock walker found a path that returns with a
	// sync.Mutex/RWMutex still held.
	locksHeldAtExit bool
}

// taintStep is one link of a witness chain: the next function on the
// path to the intrinsic, or (when via is nil) the intrinsic itself.
type taintStep struct {
	via *types.Func
	ext string // terminal label, e.g. "time.Now"; set when via is nil
	pos token.Pos
}

// callerRef is a reverse edge used during propagation.
type callerRef struct {
	caller *funcNode
	e      edge
}

// Graph is the module-wide call graph plus the propagated summaries.
type Graph struct {
	nodes map[*types.Func]*funcNode
	order []*funcNode // deterministic build order for propagation

	// clock/rand map every function that can reach a wall-clock read /
	// global math/rand draw to the first step of a witness chain.
	clock map[*types.Func]taintStep
	rand  map[*types.Func]taintStep
	// blocks maps functions that never return (an unbounded loop with
	// no shutdown signal, reached through plain calls) to a witness.
	blocks map[*types.Func]taintStep
}

// Graph returns the module's call graph, building it on first use.
// CheckDir invalidates the cache so fixture packages registered later
// are included.
func (m *Module) Graph() *Graph {
	if m.graph == nil {
		m.graph = m.buildGraph()
	}
	return m.graph
}

func (m *Module) buildGraph() *Graph {
	g := &Graph{
		nodes:  map[*types.Func]*funcNode{},
		clock:  map[*types.Func]taintStep{},
		rand:   map[*types.Func]taintStep{},
		blocks: map[*types.Func]taintStep{},
	}
	for _, pkg := range m.allPackages() {
		if pkg.Info == nil {
			continue
		}
		var discard []Finding
		allows := collectAllows(m.Fset, pkg.Files, &discard)
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{fn: fn, decl: fd, pkg: pkg}
				n.collect(m.Fset, pkg.Info, allows)
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	g.propagate()
	return g
}

// allPackages returns every loaded package — the module tree in sorted
// import-path order, then CheckDir'd fixture packages in registration
// order — so graph construction is deterministic.
func (m *Module) allPackages() []*Package {
	var pkgs []*Package
	for _, path := range m.PackagePaths() {
		pkgs = append(pkgs, m.pkgs[path])
	}
	for _, path := range m.extraOrder {
		pkgs = append(pkgs, m.extras[path])
	}
	return pkgs
}

// collect walks one function body filling in edges and summary bits.
func (n *funcNode) collect(fset *token.FileSet, info *types.Info, allows allowSet) {
	spawned := map[*ast.CallExpr]bool{}
	ast.Inspect(n.decl.Body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			spawned[x.Call] = true
		case *ast.CallExpr:
			callee := calleeOf(info, x)
			if callee == nil {
				return true
			}
			pos := fset.Position(x.Pos())
			n.edges = append(n.edges, edge{
				callee:   callee,
				pos:      x.Pos(),
				spawned:  spawned[x],
				cutClock: allows.coversLine(pos, DetClock.Name) || allows.coversLine(pos, ClockTaint.Name),
				cutRand:  allows.coversLine(pos, DetRand.Name) || allows.coversLine(pos, RandTaint.Name),
				cutLeak:  allows.coversLine(pos, GoroLeak.Name),
			})
		}
		return true
	})
	n.spawnsGoroutine = len(spawned) > 0
	n.shutdownSignal = bodyHasShutdownSignal(info, n.decl.Body)
	n.unboundedLoop, n.loopPos = bodyUnboundedLoop(n.decl.Body)
	w := &lockWalker{info: info, deferred: map[string]bool{}, report: func(token.Pos, string, ...any) {}}
	n.locksHeldAtExit = w.heldAtExit(n.decl.Body)
}

// calleeOf resolves the static callee of a call expression: a
// package-level function, a method on a concrete receiver, or nil for
// calls through function values, interfaces, conversions and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// wallClockFunc reports whether fn is a package-level time function that
// reads or waits on the wall clock.
func wallClockFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		fn.Type().(*types.Signature).Recv() == nil && wallClockFuncs[fn.Name()]
}

// globalRandFunc reports whether fn is a package-level math/rand
// function drawing from (or reseeding) the process-global source.
// Methods on an explicitly constructed *rand.Rand are deterministic and
// excluded by the receiver check.
func globalRandFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return !randConstructors[fn.Name()]
}

// bodyHasShutdownSignal reports whether the function's own statements
// (not nested literals) contain a way to learn the goroutine should
// stop: a channel receive, a select, a range over a channel, or a
// sync.WaitGroup Done/Wait (the spawner can join it).
func bodyHasShutdownSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if isChanType(info, x.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					name, path := fn.Name(), fn.Pkg().Path()
					if (path == "sync" && (name == "Done" || name == "Wait")) ||
						(path == "context" && name == "Done") {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// bodyUnboundedLoop reports a `for` with no condition and no escaping
// exit — no return, no break leaving the loop, no goto — in the
// function's own statements (nested literals excluded) and where it is.
// A `for { ... if done { return } }` event loop is bounded; only a loop
// control flow can never leave counts.
func bodyUnboundedLoop(body *ast.BlockStmt) (bool, token.Pos) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopCanExit(x) {
				found, pos = true, x.For
			}
		}
		return true
	})
	return found, pos
}

// loopCanExit reports whether control can leave the loop body: a return
// anywhere in it, an unlabeled break not captured by a nested loop,
// switch or select, a labeled break, or a goto (assumed outward —
// conservative toward not reporting).
func loopCanExit(loop *ast.ForStmt) bool {
	exits := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil || exits {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch x.Tok {
			case token.BREAK:
				if x.Label != nil || depth == 0 {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			walk(c, depth)
			return false
		})
	}
	for _, s := range loop.Body.List {
		walk(s, 0)
	}
	return exits
}

func isChanType(info *types.Info, expr ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// propagate seeds the taint maps from intrinsic calls and walks them
// backwards over the call graph, recording a witness chain step at each
// hop. Worklists and caller lists are built in graph order, so chains
// and findings are deterministic.
func (g *Graph) propagate() {
	callers := map[*types.Func][]callerRef{}
	for _, n := range g.order {
		for _, e := range n.edges {
			if _, internal := g.nodes[e.callee]; internal {
				callers[e.callee] = append(callers[e.callee], callerRef{caller: n, e: e})
			}
		}
	}

	// Wall-clock and global-rand taint: any edge suffices to carry it.
	var clockSeeds, randSeeds []*funcNode
	for _, n := range g.order {
		for _, e := range n.edges {
			if _, tainted := g.clock[n.fn]; !tainted && !e.cutClock && wallClockFunc(e.callee) {
				g.clock[n.fn] = taintStep{ext: funcLabel(e.callee), pos: e.pos}
				clockSeeds = append(clockSeeds, n)
			}
			if _, tainted := g.rand[n.fn]; !tainted && !e.cutRand && globalRandFunc(e.callee) {
				g.rand[n.fn] = taintStep{ext: funcLabel(e.callee), pos: e.pos}
				randSeeds = append(randSeeds, n)
			}
		}
	}
	flow := func(taint map[*types.Func]taintStep, seeds []*funcNode, cut func(callerRef) bool) {
		queue := seeds
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, ref := range callers[n.fn] {
				if cut(ref) {
					continue
				}
				if _, done := taint[ref.caller.fn]; done {
					continue
				}
				taint[ref.caller.fn] = taintStep{via: n.fn, pos: ref.e.pos}
				queue = append(queue, ref.caller)
			}
		}
	}
	flow(g.clock, clockSeeds, func(r callerRef) bool { return r.e.cutClock })
	flow(g.rand, randSeeds, func(r callerRef) bool { return r.e.cutRand })

	// Blocks-forever: an unbounded loop with no shutdown signal, reached
	// through plain (non-go) calls by functions that themselves have no
	// shutdown signal of their own.
	var blockSeeds []*funcNode
	for _, n := range g.order {
		if n.unboundedLoop && !n.shutdownSignal {
			g.blocks[n.fn] = taintStep{ext: "an unbounded for loop", pos: n.loopPos}
			blockSeeds = append(blockSeeds, n)
		}
	}
	flow(g.blocks, blockSeeds, func(r callerRef) bool {
		return r.e.spawned || r.e.cutLeak || r.caller.shutdownSignal
	})
}

// chain renders the witness path from fn to the intrinsic, e.g.
// "suite.run -> bench.measure -> time.Now".
func (g *Graph) chain(taint map[*types.Func]taintStep, fn *types.Func) string {
	var parts []string
	for cur := fn; ; {
		parts = append(parts, funcLabel(cur))
		step, ok := taint[cur]
		if !ok {
			break
		}
		if step.via == nil {
			parts = append(parts, step.ext)
			break
		}
		cur = step.via
	}
	return strings.Join(parts, " -> ")
}

// funcLabel renders a compact pkg.Func / pkg.Type.Method label.
func funcLabel(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name
	}
	path := fn.Pkg().Path()
	return path[strings.LastIndex(path, "/")+1:] + "." + name
}
