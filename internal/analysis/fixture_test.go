package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// loadMod loads the enclosing module once for the whole test binary —
// fixtures and the selfcheck share the parse/type-check work.
var loadMod = sync.OnceValues(func() (*analysis.Module, error) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		return nil, err
	}
	fixtures, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		return nil, err
	}
	mod.SetFixtureRoot(fixtures)
	return mod, nil
})

// wantRe pulls the quoted expectation regexes out of a `// want "…"`
// comment; several quoted patterns on one line mean several findings.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var quoteRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants maps fixture line numbers to expected-finding regexes.
func parseWants(t *testing.T, path string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]string{}
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quoteRe.FindAllStringSubmatch(m[1], -1) {
			wants[i+1] = append(wants[i+1], q[1])
		}
	}
	return wants
}

// runFixture checks one testdata package against its rule set: every
// `// want` expectation must be produced, and every produced finding
// must be expected — positive and negative cases in one pass.
func runFixture(t *testing.T, name string, rules analysis.Rules) {
	t.Helper()
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := mod.CheckDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture must type-check cleanly: %v", terr)
	}
	findings := analysis.RunPackage(mod, pkg, rules)

	wants := map[string][]string{} // "file:line" -> pending regexes
	file := filepath.Join(dir, name+".go")
	for line, res := range parseWants(t, file) {
		wants[fmt.Sprintf("%s:%d", file, line)] = res
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got := f.Analyzer + ": " + f.Message
		matched := false
		pending := wants[key]
		for i, pat := range pending {
			if regexp.MustCompile(pat).MatchString(got) {
				wants[key] = append(pending[:i], pending[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", key, got)
		}
	}
	for key, pending := range wants {
		for _, pat := range pending {
			t.Errorf("missing finding at %s matching %q", key, pat)
		}
	}
}

func TestDetClockFixture(t *testing.T) {
	runFixture(t, "detclock", analysis.Rules{Match: "fixture/detclock", Analyzers: []string{"detclock"}})
}

func TestDetRandFixture(t *testing.T) {
	runFixture(t, "detrand", analysis.Rules{Match: "fixture/detrand", Analyzers: []string{"detrand"}})
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, "maporder", analysis.Rules{Match: "fixture/maporder", Analyzers: []string{"maporder"}})
}

func TestEventPoolFixture(t *testing.T) {
	// The pooled-event arena pattern from internal/sim's hot path,
	// checked under both walls at once: map-drained heap rebuilds and
	// global-rand pool scrambling are flagged, the free-list and
	// collect-then-sort idioms are not.
	runFixture(t, "eventpool", analysis.Rules{
		Match:     "fixture/eventpool",
		Analyzers: []string{"maporder", "detrand"},
	})
}

func TestFloatEqFixture(t *testing.T) {
	runFixture(t, "floateq", analysis.Rules{Match: "fixture/floateq", Analyzers: []string{"floateq"}})
}

func TestLayeringFixture(t *testing.T) {
	runFixture(t, "layering", analysis.Rules{
		Match:         "fixture/layering",
		Analyzers:     []string{"layering"},
		ForbidImports: []string{"repro/internal/obs/live", "net/http", "repro/cmd/..."},
	})
}

func TestShardWallFixture(t *testing.T) {
	// The shard process wall, under the deterministic packages' own
	// forbid list: importing the crash-isolation layer or os/exec is
	// flagged, importing the deterministic merge path (suite) is not.
	rules, ok := analysis.DefaultConfig().RulesFor("repro/internal/suite")
	if !ok {
		t.Fatal("no rules for repro/internal/suite")
	}
	rules.Match = "fixture/shardwall"
	rules.Analyzers = []string{"layering"}
	runFixture(t, "shardwall", rules)
}

func TestClockTaintFixture(t *testing.T) {
	// detclock runs alongside clocktaint and must stay silent: this
	// package never reads the clock directly, so every finding is the
	// interprocedural tier's — the cross-package reach detclock misses.
	runFixture(t, "clocktaint", analysis.Rules{
		Match:     "fixture/clocktaint",
		Analyzers: []string{"detclock", "clocktaint"},
	})
}

func TestRandTaintFixture(t *testing.T) {
	runFixture(t, "randtaint", analysis.Rules{
		Match:     "fixture/randtaint",
		Analyzers: []string{"detrand", "randtaint"},
	})
}

func TestGoroLeakFixture(t *testing.T) {
	runFixture(t, "goroleak", analysis.Rules{Match: "fixture/goroleak", Analyzers: []string{"goroleak"}})
}

func TestLocksFixture(t *testing.T) {
	runFixture(t, "locks", analysis.Rules{Match: "fixture/locks", Analyzers: []string{"locks"}})
}

func TestNonBlockFixture(t *testing.T) {
	runFixture(t, "nonblock", analysis.Rules{Match: "fixture/nonblock", Analyzers: []string{"nonblock"}})
}

func TestAllowExtentFixture(t *testing.T) {
	// Statement-extent suppression: a directive above (or trailing on)
	// a multi-line statement covers its whole extent and nothing past it.
	runFixture(t, "allowext", analysis.Rules{Match: "fixture/allowext", Analyzers: []string{"detclock"}})
}

func TestAllowFixture(t *testing.T) {
	// Malformed/misspelled suppressions are findings even with no
	// analyzers configured: a typo must not silently disable a rule.
	runFixture(t, "allow", analysis.Rules{Match: "fixture/allow", Analyzers: []string{"detclock"}})
}

// TestBuildConstraintsFilterFiles pins the loader's build-tag handling:
// a platform-variant file pair (//go:build unix / //go:build !unix)
// declaring the same function must load as ONE file, not two duplicate
// declarations — exactly one side of the pair builds on any platform.
func TestBuildConstraintsFilterFiles(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name, constraint string) {
		src := "//go:build " + constraint + "\n\npackage pair\n\nfunc which() string { return \"" + constraint + "\" }\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("pair_unix.go", "unix")
	write("pair_other.go", "!unix")
	pkg, err := mod.CheckDir(dir, "fixture/pair")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files of the pair, want exactly 1", len(pkg.Files))
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("constraint-filtered pair must type-check cleanly: %v", terr)
	}
}

// TestInjectedViolation pins the failure mode end to end: a fresh file
// with a wall-clock read, checked under the deterministic rule set,
// must produce a file:line-addressed detclock finding.
func TestInjectedViolation(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := "package probe\n\nimport \"time\"\n\nfunc now() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.CheckDir(dir, "fixture/probe")
	if err != nil {
		t.Fatal(err)
	}
	rules, ok := analysis.DefaultConfig().RulesFor("repro/internal/sim")
	if !ok {
		t.Fatal("no rules for repro/internal/sim")
	}
	rules.Match = "fixture/probe"
	findings := analysis.RunPackage(mod, pkg, rules)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "detclock" || f.Pos.Line != 5 || !strings.Contains(f.Pos.Filename, "probe.go") {
		t.Fatalf("finding not addressed to probe.go:5 detclock: %s", f)
	}
}

// TestInjectedTaintViolation pins the interprocedural failure mode end
// to end: a fresh package with NO direct wall-clock read, calling a
// helper in another package that reaches time.Now two calls deep, must
// produce exactly one clocktaint finding — and no detclock one.
func TestInjectedTaintViolation(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := "package probe\n\nimport \"fixture/clockhelper\"\n\nfunc lag() int64 { return clockhelper.Wrapped() }\n"
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.CheckDir(dir, "fixture/taintprobe")
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("probe must type-check cleanly: %v", terr)
	}
	rules, ok := analysis.DefaultConfig().RulesFor("repro/internal/sim")
	if !ok {
		t.Fatal("no rules for repro/internal/sim")
	}
	rules.Match = "fixture/taintprobe"
	findings := analysis.RunPackage(mod, pkg, rules)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "clocktaint" || f.Pos.Line != 5 {
		t.Fatalf("finding not addressed to probe.go:5 clocktaint: %s", f)
	}
	if !strings.Contains(f.Message, "clockhelper.Wrapped -> clockhelper.Stamp -> time.Now") {
		t.Errorf("message lacks the witness chain: %s", f.Message)
	}
}

// TestInjectedLeakViolation does the same for goroleak under the
// concurrent-plane rule set.
func TestInjectedLeakViolation(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := "package probe\n\nfunc leak() {\n\tgo func() {\n\t\tfor {\n\t\t\twork()\n\t\t}\n\t}()\n}\n\nfunc work() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.CheckDir(dir, "fixture/leakprobe")
	if err != nil {
		t.Fatal(err)
	}
	rules, ok := analysis.DefaultConfig().RulesFor("repro/internal/campaign")
	if !ok {
		t.Fatal("no rules for repro/internal/campaign")
	}
	rules.Match = "fixture/leakprobe"
	findings := analysis.RunPackage(mod, pkg, rules)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "goroleak" || f.Pos.Line != 4 {
		t.Fatalf("finding not addressed to probe.go:4 goroleak: %s", f)
	}
}
