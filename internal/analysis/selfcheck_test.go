package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestSelfCheck is the enforcement gate: it runs greenvet's full rule
// table over this module, so any determinism or layering drift fails
// plain `go test ./...` with a file:line-addressed message — the same
// output `go run ./cmd/greenvet ./...` would print.
func TestSelfCheck(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(mod, analysis.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSelfCheckCoverage guards the gate itself: every package in the
// module must be matched by some rule entry, and the loader must
// actually be seeing the tree (a walk bug that loads two packages would
// otherwise make TestSelfCheck pass vacuously).
func TestSelfCheckCoverage(t *testing.T) {
	mod, err := loadMod()
	if err != nil {
		t.Fatal(err)
	}
	cfg := analysis.DefaultConfig()
	paths := mod.PackagePaths()
	if len(paths) < 20 {
		t.Errorf("loader found only %d packages; the module has far more — walk is broken", len(paths))
	}
	for _, p := range paths {
		if _, ok := cfg.RulesFor(p); !ok {
			t.Errorf("no rule entry matches package %s; DefaultConfig must cover the whole module", p)
		}
	}
	for _, mustHave := range []string{"repro/internal/sim", "repro/internal/suite", "repro/internal/obs/live", "repro/cmd/greenvet"} {
		if mod.Package(mustHave) == nil {
			t.Errorf("loader did not find %s", mustHave)
		}
	}
	for _, pkgPath := range paths {
		pkg := mod.Package(pkgPath)
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkgPath, terr)
		}
	}
}
