package analysis

import (
	"go/ast"
)

// randConstructors are math/rand top-level names that build a local,
// explicitly seeded generator rather than drawing from the global
// source. They stay legal; everything else at package level is a draw
// from (or a mutation of) process-global state and is rejected.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// DetRand rejects the global math/rand source in deterministic
// packages. Global draws interleave across goroutines and call sites,
// so results stop being a pure function of the experiment seed; all
// randomness must come from internal/sim's splitmix64 RNG (NewRNG,
// Fork) or an explicitly seeded local generator.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "global math/rand draws in deterministic packages (use internal/sim's seeded RNG)",
	Run:  runDetRand,
}

func runDetRand(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := usesPackageFunc(p, file, sel)
			if !ok {
				return true
			}
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			if randConstructors[name] {
				return true
			}
			p.Reportf(sel.Pos(),
				"global math/rand draw rand.%s: deterministic code must use internal/sim's seeded RNG", name)
			return true
		})
	}
}
