package analysis

import (
	"strings"
	"testing"
)

func TestValidateUnknownAnalyzer(t *testing.T) {
	cfg := Config{Packages: []Rules{
		{Match: "repro/internal/sim", Analyzers: []string{"detclock", "nosuch"}},
	}}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("config with unknown analyzer validated")
	}
	if !strings.Contains(err.Error(), `unknown analyzer "nosuch"`) {
		t.Errorf("error does not name the bad analyzer: %v", err)
	}
	if !strings.Contains(err.Error(), "detclock") {
		t.Errorf("error does not list the known analyzers: %v", err)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			"empty match",
			Config{Packages: []Rules{{Match: "", Analyzers: []string{"detclock"}}}},
			"empty Match",
		},
		{
			"duplicate match",
			Config{Packages: []Rules{
				{Match: "repro/internal/sim", Analyzers: []string{"detclock"}},
				{Match: "repro/internal/sim", Analyzers: []string{"detrand"}},
			}},
			"duplicate",
		},
		{
			"forbid without layering",
			Config{Packages: []Rules{
				{Match: "repro/internal/sim", Analyzers: []string{"detclock"}, ForbidImports: []string{"net/http"}},
			}},
			"does not run the layering analyzer",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("config validated; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig does not validate: %v", err)
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"repro/internal/sim", "repro/internal/sim", true},
		{"repro/internal/sim", "repro/internal/simx", false},
		{"repro/internal/...", "repro/internal/sim", true},
		{"repro/internal/...", "repro/internal", true},
		{"repro/internal/...", "repro/internals", false},
		{"repro/cmd/...", "repro/cmd/greenvet", true},
		{"repro", "repro/internal/sim", false},
	}
	for _, tc := range cases {
		if got := matchPath(tc.pattern, tc.path); got != tc.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", tc.pattern, tc.path, got, tc.want)
		}
	}
}

// TestRulesForPrecedence pins the layering posture of the default table:
// specific entries beat the internal/... wildcard, the live plane is
// exempt from detclock, and the deterministic core may not import it.
func TestRulesForPrecedence(t *testing.T) {
	cfg := DefaultConfig()

	sim, ok := cfg.RulesFor("repro/internal/sim")
	if !ok {
		t.Fatal("no rules for repro/internal/sim")
	}
	if !hasString(sim.Analyzers, "detclock") || !hasString(sim.ForbidImports, "repro/internal/obs/live") {
		t.Errorf("sim rules lack the deterministic posture: %+v", sim)
	}
	if !hasString(sim.Analyzers, "clocktaint") || !hasString(sim.Analyzers, "randtaint") || !hasString(sim.Analyzers, "locks") {
		t.Errorf("sim rules lack the interprocedural tier: %+v", sim)
	}

	live, ok := cfg.RulesFor("repro/internal/obs/live")
	if !ok {
		t.Fatal("no rules for repro/internal/obs/live")
	}
	if hasString(live.Analyzers, "detclock") || hasString(live.Analyzers, "clocktaint") {
		t.Errorf("obs/live must be exempt from the wall-clock analyzers: %+v", live)
	}
	if !hasString(live.Analyzers, "goroleak") || !hasString(live.Analyzers, "nonblock") {
		t.Errorf("obs/live must run the concurrency analyzers: %+v", live)
	}

	cmd, ok := cfg.RulesFor("repro/cmd/greenvet")
	if !ok {
		t.Fatal("no rules for repro/cmd/greenvet")
	}
	if hasString(cmd.Analyzers, "detclock") {
		t.Errorf("cmd/* must be exempt from detclock: %+v", cmd)
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Registry() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName of an unknown name must return nil")
	}
	if len(seen) != 10 {
		t.Errorf("registry has %d analyzers, want 10", len(seen))
	}
}

func hasString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
