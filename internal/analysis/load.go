package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Module is the analyzed module: every package parsed and type-checked,
// using only the standard library (go/parser, go/types, go/importer) so
// the module itself stays zero-dependency.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset owns all source positions.
	Fset *token.FileSet

	pkgs     map[string]*Package
	checking map[string]bool
	imp      *chainImporter

	// extras are packages loaded through CheckDir (fixture testdata),
	// kept in registration order so the call graph can include them
	// deterministically. fixtureRoot, when set, lets the importer
	// resolve `fixture/<name>` imports to sibling testdata directories.
	extras      map[string]*Package
	extraOrder  []string
	fixtureRoot string
	graph       *Graph
}

// Package is one parsed, type-checked package. Test files are excluded:
// greenvet's invariants guard the artifact-producing plane, and the
// detclock allowlist exempts _test.go by construction.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints; analysis proceeds on
	// partial information, falling back to syntax where types are missing.
	TypeErrors []error
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadModule discovers, parses and type-checks every package under root.
func LoadModule(root string) (*Module, error) {
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:     root,
		Path:     modPath,
		Fset:     token.NewFileSet(),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
		extras:   map[string]*Package{},
	}
	m.imp = newChainImporter(m)
	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		path := m.importPath(dir)
		if _, err := m.parseDir(dir, path); err != nil {
			return nil, err
		}
	}
	for _, path := range m.PackagePaths() {
		if _, err := m.check(path); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// PackagePaths returns the module's package import paths, sorted.
func (m *Module) PackagePaths() []string {
	paths := make([]string, 0, len(m.pkgs))
	for p := range m.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Package returns the loaded package with that import path, or nil.
func (m *Module) Package(path string) *Package { return m.pkgs[path] }

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// packageDirs walks the module tree for directories holding non-test Go
// files, skipping testdata, vendor and hidden directories.
func (m *Module) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// goFileNames lists dir's non-test Go files that build on this platform,
// sorted. Files excluded by a //go:build constraint are skipped exactly
// as the go tool would skip them — otherwise platform-variant file pairs
// (foo_unix.go / foo_other.go) would load together and type-check as
// duplicate declarations.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if !buildsHere(filepath.Join(dir, n)) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// buildsHere reports whether the file's //go:build line (if any) selects
// it for the analyzing platform. A file that cannot be read or whose
// constraint cannot be parsed is included, so the parser and checker get
// to report the real problem.
func buildsHere(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true
		}
		return expr.Eval(buildTagSatisfied)
	}
	return true
}

// unixGOOS mirrors the go tool's "unix" build-tag membership.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildTagSatisfied evaluates one build tag for the analyzing platform:
// the host GOOS/GOARCH, the "unix" alias, and any go1.x version tag
// (the toolchain compiling this analyzer is the one that would compile
// the analyzed file).
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	return strings.HasPrefix(tag, "go1.")
}

func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// parseDir parses dir's non-test files into a registered Package.
func (m *Module) parseDir(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// check type-checks the registered package at path (and, through the
// importer, its module-internal dependencies first).
func (m *Module) check(path string) (*Package, error) {
	pkg, ok := m.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown package %q", path)
	}
	if pkg.Types != nil {
		return pkg, nil
	}
	if m.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	m.checking[path] = true
	defer delete(m.checking, path)

	info := newInfo()
	conf := types.Config{
		Importer: m.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, pkg.Files, info) // errors land in TypeErrors
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// SetFixtureRoot points the importer at a directory of fixture
// packages: an import of "fixture/<name>" from a CheckDir'd package
// resolves to <root>/<name>, loaded through CheckDir on demand. Tests
// use this so a fixture can exercise cross-package analysis.
func (m *Module) SetFixtureRoot(root string) { m.fixtureRoot = root }

// InvalidateGraph drops the cached call graph so the next Graph call
// rebuilds it — benchmarks use it to time whole builds.
func (m *Module) InvalidateGraph() { m.graph = nil }

// CheckDir parses and type-checks a directory outside the module tree
// (fixture testdata) under the given import path, resolving imports
// through the module. The package does not join the module's rule-table
// walk, but it is registered with the call graph so interprocedural
// analyzers see across fixture package boundaries.
func (m *Module) CheckDir(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	// Register before type-checking so fixture-to-fixture import cycles
	// fail in the checker instead of recursing in the importer.
	if _, seen := m.extras[path]; !seen {
		m.extraOrder = append(m.extraOrder, path)
	}
	m.extras[path] = pkg
	m.graph = nil // the call graph must pick up the new package
	info := newInfo()
	conf := types.Config{
		Importer: m.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// chainImporter resolves module-internal imports by type-checking them
// in place, and everything else through the toolchain's export data with
// a from-source fallback — stdlib only, no golang.org/x/tools.
type chainImporter struct {
	m      *Module
	gc     types.Importer
	source types.Importer
	cache  map[string]*types.Package
}

func newChainImporter(m *Module) *chainImporter {
	return &chainImporter{
		m:      m,
		gc:     importer.ForCompiler(m.Fset, "gc", nil),
		source: importer.ForCompiler(m.Fset, "source", nil),
		cache:  map[string]*types.Package{},
	}
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ci.m.Path || strings.HasPrefix(path, ci.m.Path+"/") {
		pkg, err := ci.m.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, ok := ci.m.extras[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: fixture import cycle through %q", path)
		}
		return pkg.Types, nil
	}
	if ci.m.fixtureRoot != "" {
		if rest, ok := strings.CutPrefix(path, "fixture/"); ok {
			pkg, err := ci.m.CheckDir(filepath.Join(ci.m.fixtureRoot, rest), path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if pkg, ok := ci.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := ci.gc.Import(path)
	if err != nil {
		pkg, err = ci.source.Import(path)
	}
	if err != nil {
		return nil, err
	}
	ci.cache[path] = pkg
	return pkg, nil
}
