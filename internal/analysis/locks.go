package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locks enforces mutex hygiene in every configured package:
//
//   - a sync.Mutex/RWMutex (or a struct containing one) must not cross
//     a function signature by value — the copy locks independently of
//     the original, which silently voids mutual exclusion;
//   - a Lock/RLock must be released on every return path (a deferred
//     Unlock counts for all of them);
//   - a lock must not be held across a blocking channel send — the
//     send parks the goroutine with the lock held, and every other
//     locker deadlocks behind a slow receiver. Sends in a select with
//     a default clause are non-blocking and legal.
//
// The walker is structural, not a full CFG: it tracks held locks
// through blocks, if/else, loops, switch and select, merging branch
// states conservatively (held on any surviving path counts as held).
// break/continue/goto paths are dropped rather than modeled.
var Locks = &Analyzer{
	Name: "locks",
	Doc:  "mutex copied by value, Lock without Unlock on a return path, lock held across a blocking send",
	Run:  runLocks,
}

func runLocks(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkLockSignature(p, fn)
				if fn.Body != nil {
					newLockWalker(p).walkFunc(fn.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own lock scope, analyzed when the
				// inspection reaches it.
				newLockWalker(p).walkFunc(fn.Body)
			}
			return true
		})
	}
}

// checkLockSignature flags receivers, parameters and results whose type
// carries a mutex by value.
func checkLockSignature(p *Pass, fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if name := mutexInside(tv.Type, map[types.Type]bool{}); name != "" {
				p.Reportf(field.Type.Pos(),
					"%s copies %s by value: the copy locks independently of the original — pass a pointer", what, name)
			}
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
}

// mutexInside returns the name of the sync lock type reachable from t
// without an indirection ("" when none): sync.Mutex / sync.RWMutex
// itself, or a struct/array holding one by value.
func mutexInside(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := mutexInside(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return mutexInside(u.Elem(), seen)
	}
	return ""
}

// lockState maps a lock key ("<owner>/w" or "<owner>/r") to the
// position of the Lock call that acquired it.
type lockState map[string]token.Pos

// lockWalker tracks held mutexes through one function's statements.
type lockWalker struct {
	fset     *token.FileSet
	info     *types.Info
	deferred map[string]bool // keys released by a `defer …Unlock()`
	report   func(pos token.Pos, format string, args ...any)
	reported map[token.Pos]bool
}

func newLockWalker(p *Pass) *lockWalker {
	w := &lockWalker{fset: p.Fset, info: p.Info, deferred: map[string]bool{}, reported: map[token.Pos]bool{}}
	w.report = func(pos token.Pos, format string, args ...any) {
		if w.reported[pos] {
			return
		}
		w.reported[pos] = true
		p.Reportf(pos, format, args...)
	}
	return w
}

// walkFunc checks one function body, reporting unreleased locks at the
// offending Lock call.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	held, terminated := w.stmts(body.List, lockState{})
	if !terminated {
		w.checkExit(held)
	}
}

// heldAtExit is the summary variant used by the call graph: it runs the
// same walk with reporting disabled (the report func is preset) and
// says whether any path leaves a lock held.
func (w *lockWalker) heldAtExit(body *ast.BlockStmt) bool {
	leaked := false
	inner := w.report
	w.report = func(pos token.Pos, format string, args ...any) {
		leaked = true
		inner(pos, format, args...)
	}
	w.walkFunc(body)
	return leaked
}

// checkExit reports every lock still held (and not covered by a
// deferred Unlock) when control leaves the function.
func (w *lockWalker) checkExit(held lockState) {
	for key, pos := range held {
		if !w.deferred[key] {
			w.report(pos, "Lock is not released on every return path: add an Unlock before the return or defer it")
		}
	}
}

// stmts walks a statement list with the given incoming lock state and
// returns the state after the list plus whether the list terminates
// (returns or branches away) on every path through it.
func (w *lockWalker) stmts(list []ast.Stmt, held lockState) (lockState, bool) {
	h := cloneLocks(held)
	for _, st := range list {
		var term bool
		h, term = w.stmt(st, h)
		if term {
			return h, true
		}
	}
	return h, false
}

func (w *lockWalker) stmt(st ast.Stmt, held lockState) (lockState, bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := w.mutexOp(call); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
			}
		}
	case *ast.DeferStmt:
		w.registerDefer(s.Call)
	case *ast.ReturnStmt:
		w.checkExit(held)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the path's
		// state is dropped rather than modeled.
		return held, true
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		thenH, thenT := w.stmts(s.Body.List, held)
		elseH, elseT := cloneLocks(held), false
		if s.Else != nil {
			elseH, elseT = w.stmt(s.Else, cloneLocks(held))
		}
		return mergeLocks(thenH, thenT, elseH, elseT)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		bodyH, _ := w.stmts(s.Body.List, held)
		return unionLocks(held, bodyH), false
	case *ast.RangeStmt:
		bodyH, _ := w.stmts(s.Body.List, held)
		return unionLocks(held, bodyH), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.clauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.clauses(s.Body.List, held)
	case *ast.SelectStmt:
		w.checkSelectSends(s, held)
		return w.clauses(s.Body.List, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Arrow,
				"channel send while holding a lock (held since line %d): a slow receiver parks this goroutine with the lock held — send after Unlock or use select+default",
				w.lockLine(held))
		}
	case *ast.GoStmt:
		// Spawning while locked is fine; the new goroutine starts with
		// its own empty lock state.
	}
	return held, false
}

// clauses walks switch/select case bodies, each starting from the
// incoming state, and merges the surviving branches. Without a default
// clause the zero-case path keeps the incoming state alive.
func (w *lockWalker) clauses(list []ast.Stmt, held lockState) (lockState, bool) {
	after := lockState{}
	hasDefault, anyLive := false, false
	for _, c := range list {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			hasDefault = hasDefault || cc.List == nil
			body = cc.Body
		case *ast.CommClause:
			hasDefault = hasDefault || cc.Comm == nil
			body = cc.Body
		default:
			continue
		}
		h, term := w.stmts(body, cloneLocks(held))
		if !term {
			after = unionLocks(after, h)
			anyLive = true
		}
	}
	if !hasDefault {
		after = unionLocks(after, held)
		anyLive = true
	}
	return after, !anyLive
}

// checkSelectSends flags send cases of a blocking select (one with no
// default) entered while a lock is held.
func (w *lockWalker) checkSelectSends(sel *ast.SelectStmt, held lockState) {
	if len(held) == 0 {
		return
	}
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if hasDefault {
		return
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			w.report(send.Arrow,
				"channel send while holding a lock (held since line %d): a slow receiver parks this goroutine with the lock held — send after Unlock or use select+default",
				w.lockLine(held))
		}
	}
}

// lockLine returns the smallest Lock position line in held, so the
// message is deterministic when several locks are held.
func (w *lockWalker) lockLine(held lockState) int {
	min := token.Pos(0)
	for _, pos := range held {
		if min == 0 || pos < min {
			min = pos
		}
	}
	if w.fset == nil || min == 0 {
		return 0
	}
	return w.fset.Position(min).Line
}

// registerDefer records Unlocks scheduled by a defer — directly
// (`defer mu.Unlock()`) or inside a deferred literal.
func (w *lockWalker) registerDefer(call *ast.CallExpr) {
	if key, method, ok := w.mutexOp(call); ok {
		if method == "Unlock" || method == "RUnlock" {
			w.deferred[key] = true
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, method, ok := w.mutexOp(c); ok && (method == "Unlock" || method == "RUnlock") {
				w.deferred[key] = true
			}
			return true
		})
	}
}

// mutexOp recognizes a call as a sync mutex operation and returns a
// stable key for the lock owner plus the method name. The read and
// write sides of an RWMutex pair independently.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	owner := exprKeyInfo(w.info, sel.X)
	if owner == "" {
		owner = "anon"
	}
	kind := "/w"
	if name == "RLock" || name == "RUnlock" {
		kind = "/r"
	}
	return owner + kind, name, true
}

func cloneLocks(h lockState) lockState {
	out := make(lockState, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// unionLocks merges two surviving paths: held on either counts as held,
// keeping the earlier Lock position for stable messages.
func unionLocks(a, b lockState) lockState {
	out := cloneLocks(a)
	for k, v := range b {
		if cur, ok := out[k]; !ok || v < cur {
			out[k] = v
		}
	}
	return out
}

// mergeLocks combines an if/else pair, dropping terminated branches.
func mergeLocks(aH lockState, aT bool, bH lockState, bT bool) (lockState, bool) {
	switch {
	case aT && bT:
		return lockState{}, true
	case aT:
		return bH, false
	case bT:
		return aH, false
	default:
		return unionLocks(aH, bH), false
	}
}
