package analysis

import (
	"go/ast"
)

// NonBlock machine-checks the live plane's core claim: publishing can
// never stall the scheduler. Every channel send in a package this
// analyzer is configured for (internal/obs/live) must be a case of a
// `select` that has a `default` clause — the drop-instead-of-block
// idiom the bus is built on. A bare send, or a send in a select without
// default, blocks when the peer is slow, which is exactly the failure
// the "non-blocking bus" guarantee rules out.
var NonBlock = &Analyzer{
	Name: "nonblock",
	Doc:  "channel sends outside select+default in the non-blocking live publish paths",
	Run:  runNonBlock,
}

func runNonBlock(p *Pass) {
	for _, file := range p.Files {
		nonBlocking := map[*ast.SendStmt]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					nonBlocking[send] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !nonBlocking[send] {
				p.Reportf(send.Arrow,
					"blocking channel send in a non-blocking publish path: use `select { case ch <- v: default: }` so a slow subscriber drops instead of stalling")
			}
			return true
		})
	}
}
