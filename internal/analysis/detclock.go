package analysis

import (
	"go/ast"
)

// wallClockFuncs are package time functions that read or wait on the
// wall clock. Pure construction/conversion helpers (time.Duration
// arithmetic, time.Unix, time.Date) are deterministic and stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// DetClock rejects wall-clock reads in deterministic packages. Every
// artifact byte must be a pure function of configuration and seed;
// durations come from the virtual clock (internal/sim), never the host.
// The wall clock belongs to internal/obs/live, cmd/*, examples/* and
// _test.go files — packages this analyzer is simply not configured for.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc:  "wall-clock reads (time.Now/Since/Sleep/After/...) outside the wall-clock allowlist",
	Run:  runDetClock,
}

func runDetClock(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := usesPackageFunc(p, file, sel)
			if !ok || pkg != "time" || !wallClockFuncs[name] {
				return true
			}
			p.Reportf(sel.Pos(),
				"use of time.%s: deterministic code must take durations from the virtual clock (internal/sim), not the wall clock", name)
			return true
		})
	}
}
