package analysis

import (
	"go/ast"
)

// GoroLeak codifies the concurrent plane's leak-freedom claim as a
// static wall: a goroutine launched in the supervising layers
// (internal/campaign, internal/shard, internal/obs/live,
// internal/obs/ops) must have a reachable shutdown path. A goroutine
// body — the literal itself, or the resolved callee's body, including
// functions it reaches through plain calls — that spins in an unbounded
// `for` with no way to learn it should stop (no channel receive, no
// select, no range over a channel, no WaitGroup Done/Wait) outlives
// every Close and fails the server-close leak tests only when a test
// happens to look; this makes it a lint instead.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines with an unbounded loop and no shutdown path (ctx/done receive, select, WaitGroup)",
}

// Wired in init for the same reason as ClockTaint: the graph build
// resolves analyzer names, so Run cannot reference the registry at
// declaration time.
func init() { GoroLeak.Run = runGoroLeak }

func runGoroLeak(p *Pass) {
	if p.Mod == nil || p.Info == nil {
		return
	}
	g := p.Mod.Graph()
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoroutine(p, g, gs)
			return true
		})
	}
}

// checkGoroutine inspects one `go` statement. A literal is analyzed in
// place; a named callee through its call-graph node. Either way, calls
// out of the body are checked against the graph's blocks-forever map,
// so a goroutine that parks in a helper's infinite loop three calls
// down is still caught.
func checkGoroutine(p *Pass, g *Graph, gs *ast.GoStmt) {
	const fix = "give it a shutdown path (ctx/done channel receive, select, or WaitGroup) or bound the loop"
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if bodyHasShutdownSignal(p.Info, lit.Body) {
			return
		}
		if looping, _ := bodyUnboundedLoop(lit.Body); looping {
			p.Reportf(gs.Go, "goroutine loops forever with no shutdown path: %s", fix)
			return
		}
		// The literal itself is loop-free: it leaks only by blocking in
		// a callee that never returns.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.Info, call)
			if callee == nil {
				return true
			}
			if _, blocks := g.blocks[callee]; blocks {
				p.Reportf(gs.Go, "goroutine never exits: %s blocks in %s: %s",
					funcLabel(callee), g.chain(g.blocks, callee), fix)
			}
			return true
		})
		return
	}
	callee := calleeOf(p.Info, gs.Call)
	if callee == nil {
		return // function value or interface method: no body to judge
	}
	if _, blocks := g.blocks[callee]; blocks {
		p.Reportf(gs.Go, "goroutine never exits: %s blocks in %s: %s",
			funcLabel(callee), g.chain(g.blocks, callee), fix)
	}
}
