// Fixture for the pooled-event scheduler pattern: a generation-checked
// free-list arena addressed by an index heap, as internal/sim's hot
// path uses. The deterministic walls hold against its tempting
// shortcuts — draining a map of pending events leaks iteration order
// into the schedule, and "spreading out" pool reuse or event times
// with global math/rand is a hidden seed. The intrusive free-list,
// seq-numbered tie-break and collect-then-sort idioms pass clean.
package eventpool

import (
	"math/rand"
	"sort"
)

type event struct {
	at  float64
	seq uint64
	gen uint32
	fn  func()
}

type pool struct {
	arena []event
	free  []int32
	heap  []int32
	seq   uint64
}

// alloc pops the free list or grows the arena — pure LIFO recycling,
// no randomness, so replays are exact.
func (p *pool) alloc(at float64, fn func()) int32 {
	var idx int32
	if n := len(p.free); n > 0 {
		idx = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.arena = append(p.arena, event{})
		idx = int32(len(p.arena) - 1)
	}
	e := &p.arena[idx]
	e.at, e.fn = at, fn
	e.seq = p.seq
	e.gen++
	p.seq++
	return idx
}

// badDrainPending rebuilds the heap from a map of pending events: the
// heap's sift order then depends on map iteration order, so two runs
// schedule tied events differently.
func badDrainPending(p *pool, pending map[int32]float64) {
	for idx := range pending { // want "map iteration order appends to a slice"
		p.heap = append(p.heap, idx)
	}
}

// badScrambleFree "spreads wear" across the arena with the global
// generator — an unseeded draw that changes which slot every later
// Schedule hands out.
func badScrambleFree(p *pool) {
	rand.Shuffle(len(p.free), func(i, j int) { // want "global math/rand draw rand.Shuffle"
		p.free[i], p.free[j] = p.free[j], p.free[i]
	})
}

// badJitter perturbs an event time from the global generator.
func badJitter(p *pool, idx int32) {
	p.arena[idx].at += rand.Float64() // want "global math/rand draw rand.Float64"
}

// okDrainSorted is the deterministic rebuild: collect the map's keys,
// sort, then push in index order.
func okDrainSorted(p *pool, pending map[int32]float64) {
	idxs := make([]int32, 0, len(pending))
	for idx := range pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	p.heap = append(p.heap, idxs...)
}

// okSeededJitter draws from an explicitly seeded local generator — a
// pure function of the seed, so replays still agree.
func okSeededJitter(p *pool, idx int32, seed int64) {
	r := rand.New(rand.NewSource(seed))
	p.arena[idx].at += r.Float64()
}

// okOrderInsensitive folds the map into a scalar; no order escapes.
func okOrderInsensitive(pending map[int32]float64) float64 {
	var sum float64
	for _, at := range pending {
		sum += at
	}
	return sum
}

// okAllowed carries a justified suppression through the wall.
func okAllowed(p *pool, pending map[int32]float64) {
	//greenvet:allow maporder -- fixture: heap is re-sifted before use, order irrelevant
	for idx := range pending {
		p.heap = append(p.heap, idx)
	}
}
