// Fixture for suppression-extent hygiene: a directive above (or
// trailing on the first line of) a statement covers the statement's
// whole line extent — and nothing past it. A directive naming a
// different analyzer covers nothing here.
package allowext

import "time"

//greenvet:allow detclock -- fixture: covers the whole var block
var (
	stampA = time.Now().UnixNano()
	stampB = time.Now().UnixNano()
)

func okMultiline() int64 {
	//greenvet:allow detclock -- fixture: covers the full statement extent
	return combine(
		time.Now().UnixNano(),
		time.Now().UnixNano(),
	)
}

func okTrailing() int64 {
	return combine( //greenvet:allow detclock -- fixture: trailing on the statement's first line
		time.Now().UnixNano(),
		0,
	)
}

func badBeyondStatement() int64 {
	//greenvet:allow detclock -- fixture: covers only the next statement
	x := int64(1)
	return x + time.Now().UnixNano() // want "use of time.Now"
}

func badWrongAnalyzer() int64 {
	//greenvet:allow detrand -- fixture: names a different analyzer
	return combine(
		time.Now().UnixNano(), // want "use of time.Now"
		0,
	)
}

func combine(a, b int64) int64 { return a + b }
