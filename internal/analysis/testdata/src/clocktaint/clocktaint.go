// Fixture for the interprocedural clocktaint analyzer. This package
// never imports `time`, so the syntax-level detclock analyzer — also
// running here — finds NOTHING; every expected finding below is
// clocktaint's, which is the proof that the cross-package reach is
// invisible to the single-function tier.
package clocktaint

import "fixture/clockhelper"

func viaHelper() int64 {
	return clockhelper.Wrapped() // want "clocktaint: call to clockhelper.Wrapped reaches the wall clock .clockhelper.Wrapped -> clockhelper.Stamp -> time.Now."
}

func viaLocal() int64 {
	return local() // want "clocktaint: call to clocktaint.local reaches the wall clock"
}

func local() int64 {
	return clockhelper.Stamp() // want "clocktaint: call to clockhelper.Stamp reaches the wall clock"
}

func okPure() int {
	return clockhelper.Pure(21)
}

func okSanctioned() int64 {
	// The helper's read carries its own allow directive; the cut stops
	// the taint from cascading here.
	return clockhelper.Sanctioned()
}

func okAllowedCall() int64 {
	//greenvet:allow clocktaint -- fixture: justified transitive reach
	return clockhelper.Wrapped()
}
