// Helper package for the randtaint fixture: the global math/rand draw
// hides behind an exported wrapper in a different package.
package randhelper

import "math/rand"

// Draw pulls from the process-global source directly.
func Draw() float64 { return rand.Float64() }

// Wrapped reaches the global source only transitively.
func Wrapped() float64 { return Draw() / 2 }

// Seeded draws from an explicit seeded generator — deterministic, so
// callers are not tainted by it.
func Seeded(r *rand.Rand) float64 {
	if r == nil {
		return 0
	}
	return r.Float64()
}
