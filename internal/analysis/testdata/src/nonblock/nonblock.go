// Fixture for the nonblock analyzer: in a configured package every
// channel send must be a case of a select with a default clause — the
// drop-instead-of-block idiom of the live bus.
package nonblock

func badBareSend(ch chan int) {
	ch <- 1 // want "nonblock: blocking channel send in a non-blocking publish path"
}

func badSelectNoDefault(ch chan int, done chan struct{}) {
	select {
	case ch <- 2: // want "nonblock: blocking channel send in a non-blocking publish path"
	case <-done:
	}
}

func okSelectDefault(ch chan int) {
	select {
	case ch <- 3:
	default:
	}
}

func okSelectDefaultMultiCase(ch chan int, done chan struct{}) {
	select {
	case ch <- 4:
	case <-done:
	default:
	}
}
