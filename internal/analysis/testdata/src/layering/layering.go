// Fixture for the layering analyzer: a deterministic-plane package
// importing the live plane, net/http or a cmd is rejected; neutral
// imports are not. The rule set under test forbids
// repro/internal/obs/live, net/http and repro/cmd/... .
package layering

import (
	"net/http" // want "forbidden"
	"sort"

	"repro/internal/obs/live" // want "forbidden"
	"repro/internal/units"
)

var _ = http.StatusOK
var _ = live.DefaultFlightCapacity
var _ units.Seconds
var _ = sort.Strings
