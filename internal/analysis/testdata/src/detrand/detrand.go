// Fixture for the detrand analyzer: global math/rand draws are
// rejected; explicitly seeded local generators are not.
package detrand

import "math/rand"

func bad() {
	_ = rand.Intn(8)                   // want "global math/rand draw rand.Intn"
	_ = rand.Float64()                 // want "global math/rand draw rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand draw rand.Shuffle"
}

func badValueUse() func() float64 {
	return rand.Float64 // want "global math/rand draw rand.Float64"
}

func okSeededLocal() int {
	// A local generator with an explicit seed is a pure function of it.
	r := rand.New(rand.NewSource(17))
	return r.Intn(8)
}

func okAllowed() int {
	return rand.Intn(8) //greenvet:allow detrand -- fixture: justified global draw
}
