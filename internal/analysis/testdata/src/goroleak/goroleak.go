// Fixture for the goroleak analyzer: goroutines must have a reachable
// shutdown path. Leaks are reported at the `go` statement whether the
// unbounded loop is in the literal itself, in a named callee, or two
// plain calls down the graph.
package goroleak

import "sync"

func badLiteral() {
	go func() { // want "goroleak: goroutine loops forever with no shutdown path"
		for {
			step()
		}
	}()
}

func badNamed() {
	go pump() // want "goroleak: goroutine never exits: goroleak.pump blocks in goroleak.pump -> an unbounded for loop"
}

func pump() {
	for {
		step()
	}
}

func badTransitive() {
	go func() { // want "goroleak: goroutine never exits: goroleak.wrapped blocks in goroleak.wrapped -> goroleak.spin"
		wrapped()
	}()
}

func wrapped() { spin() }

func spin() {
	for {
		step()
	}
}

func okDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			step()
		}
	}()
}

func okWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			step()
		}
	}()
}

func okRange(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

func okNamedWithDone(done chan struct{}) {
	go ticker(done)
}

func ticker(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		}
	}
}

func okExitingLoop() {
	go func() {
		for {
			if step() == 0 {
				return
			}
		}
	}()
}

func step() int { return 0 }

func use(int) {}
