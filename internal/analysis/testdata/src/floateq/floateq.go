// Fixture for the floateq analyzer: exact ==/!= between computed
// floats is rejected; constant sentinel checks, integer comparisons and
// allow comments are not.
package floateq

type watts float64

func bad(a, b float64) bool {
	return a == b // want "exact == between floats"
}

func badNeq(a, b float64) bool {
	return a != b // want "exact != between floats"
}

func badNamedType(a, b watts) bool {
	return a == b // want "exact == between floats"
}

func okSentinel(w float64) float64 {
	// Comparison against a compile-time constant is an unset-field
	// check, deliberately not flagged.
	if w == 0 {
		w = 2900
	}
	return w
}

func okInts(a, b int) bool {
	return a == b
}

func okOrdering(a, b float64) bool {
	return a < b
}

func okAllowed(a, b float64) bool {
	return a == b //greenvet:allow floateq -- fixture: exact identity intended
}
