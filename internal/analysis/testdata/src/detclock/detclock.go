// Fixture for the detclock analyzer: wall-clock reads are rejected,
// deterministic time construction is not, and allow comments suppress.
package detclock

import "time"

func bad() {
	_ = time.Now()                  // want "use of time.Now"
	time.Sleep(time.Millisecond)    // want "use of time.Sleep"
	_ = time.Since(time.Time{})     // want "use of time.Since"
	<-time.After(time.Second)       // want "use of time.After"
	_ = time.Tick(time.Second)      // want "use of time.Tick"
	_ = time.NewTicker(time.Second) // want "use of time.NewTicker"
}

func badValueUse() func() time.Time {
	return time.Now // want "use of time.Now"
}

func okConstruction() time.Duration {
	// Pure construction and conversion are deterministic.
	d := 3 * time.Second
	_ = time.Unix(0, 0)
	_ = time.Date(2012, 5, 21, 0, 0, 0, 0, time.UTC)
	return d
}

func okAllowed() time.Time {
	//greenvet:allow detclock -- fixture: justified wall-clock read
	return time.Now()
}

func okAllowedSameLine() time.Time {
	return time.Now() //greenvet:allow detclock -- fixture: justified wall-clock read
}
