// Fixture for suppression-comment hygiene: malformed or misspelled
// `//greenvet:allow` directives are findings in their own right.
package allow

import "time"

//greenvet:allow detclock // want "malformed suppression"
func missingReason() time.Time {
	return time.Now() // want "use of time.Now"
}

//greenvet:allow detclok -- typo in the analyzer name // want "unknown analyzer detclok"
func misspelled() time.Time {
	return time.Now() // want "use of time.Now"
}

// A well-formed directive reaches its own line and the next one only;
// two lines down it no longer suppresses.
//
//greenvet:allow detclock -- fixture: reaches only one line down
func tooFarAbove() time.Time {
	return time.Now() // want "use of time.Now"
}
