// Helper package for the clocktaint fixture: the wall-clock read hides
// behind exported functions in a DIFFERENT package, where detclock's
// single-function view cannot see it from the caller's side.
package clockhelper

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrapped reaches the clock only transitively, through Stamp.
func Wrapped() int64 { return Stamp() + 1 }

// Pure never touches the clock.
func Pure(x int) int { return 2 * x }

// Sanctioned reads the clock under an allow directive: the justified
// exception cuts the taint at its source, so callers stay clean.
func Sanctioned() int64 {
	//greenvet:allow detclock -- fixture: sanctioned native timer
	return time.Now().UnixNano()
}
