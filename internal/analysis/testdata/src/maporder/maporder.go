// Fixture for the maporder analyzer: map iteration leaking order into
// slices, writers or obs records is rejected; the collect-then-sort
// idiom, per-iteration copies and order-insensitive bodies are not.
package maporder

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/obs"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order appends to a slice"
		out = append(out, k)
	}
	return out
}

func badWriter(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want "map iteration order writes to an io.Writer"
		buf.WriteString(k)
	}
}

func badFprintf(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m { // want "map iteration order writes to an io.Writer"
		fmt.Fprintf(buf, "%s=%d\n", k, v)
	}
}

func badObs(m map[string]float64, rec obs.Recorder) {
	for name, v := range m { // want "map iteration order emits obs records"
		rec.Gauge(name, v)
	}
}

func okSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okFreshCopyPerIteration(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, vs := range m {
		out[k] = append([]float64(nil), vs...)
	}
	return out
}

func okOrderInsensitive(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func okSliceRange(xs []string, buf *bytes.Buffer) {
	// Ranging a slice is ordered; only maps are flagged.
	for _, x := range xs {
		buf.WriteString(x)
	}
}

func okAllowed(m map[string]int) []string {
	var out []string
	//greenvet:allow maporder -- fixture: order genuinely irrelevant here
	for k := range m {
		out = append(out, k)
	}
	return out
}
