// Fixture for the shard process wall: a deterministic-plane package may
// not import the crash-isolation layer (repro/internal/shard) or spawn
// processes (os/exec) — everything that decides bytes must stay
// process-free. The deterministic merge path (internal/suite) remains
// importable. The rule set under test is the deterministic packages'
// ForbidImports list.
package shardwall

import (
	"os/exec" // want "forbidden"
	"sort"

	"repro/internal/shard" // want "forbidden"
	"repro/internal/suite"
)

var _ = exec.ErrNotFound
var _ shard.Task
var _ suite.CellTrace
var _ = sort.Ints
