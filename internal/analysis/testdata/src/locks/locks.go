// Fixture for the locks analyzer: mutexes crossing signatures by value,
// Locks not released on every return path, and locks held across
// blocking channel sends.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type rwbox struct {
	mu sync.RWMutex
	v  int
}

func byValueParam(mu sync.Mutex) { // want "locks: parameter copies sync.Mutex by value"
	mu.Lock()
	mu.Unlock()
}

func byValueStruct(c counter) int { // want "locks: parameter copies sync.Mutex by value"
	return c.n
}

func (c counter) byValueReceiver() int { // want "locks: receiver copies sync.Mutex by value"
	return c.n
}

func byValueResult() counter { // want "locks: result copies sync.Mutex by value"
	return counter{}
}

func badEarlyReturn(c *counter, x int) int {
	c.mu.Lock() // want "locks: Lock is not released on every return path"
	if x > 0 {
		return x
	}
	c.mu.Unlock()
	return 0
}

func badFallOff(c *counter) {
	c.mu.Lock() // want "locks: Lock is not released on every return path"
	c.n++
}

func badRead(b *rwbox, x int) int {
	b.mu.RLock() // want "locks: Lock is not released on every return path"
	if x > 0 {
		return b.v
	}
	b.mu.RUnlock()
	return 0
}

func badSendWhileLocked(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "locks: channel send while holding a lock"
	c.mu.Unlock()
}

func badSelectSendNoDefault(c *counter, ch chan int, done chan struct{}) {
	c.mu.Lock()
	select {
	case ch <- c.n: // want "locks: channel send while holding a lock"
	case <-done:
	}
	c.mu.Unlock()
}

func okDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func okDeferredLiteral(c *counter) int {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	return c.n
}

func okSequential(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func okBothBranches(c *counter, x int) int {
	c.mu.Lock()
	if x > 0 {
		c.mu.Unlock()
		return x
	}
	c.mu.Unlock()
	return 0
}

func okReadWritePair(b *rwbox) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func okSendAfterUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func okSelectDefaultSend(c *counter, ch chan int) {
	c.mu.Lock()
	select {
	case ch <- c.n:
	default:
	}
	c.mu.Unlock()
}
