// Fixture for the interprocedural randtaint analyzer: the package never
// imports math/rand, detrand (also running) finds nothing, yet the
// process-global source is reachable through the helper package.
package randtaint

import "fixture/randhelper"

func viaHelper() float64 {
	return randhelper.Wrapped() // want "randtaint: call to randhelper.Wrapped reaches the global math/rand source .randhelper.Wrapped -> randhelper.Draw -> rand.Float64."
}

func viaDirectHelper() float64 {
	return randhelper.Draw() // want "randtaint: call to randhelper.Draw reaches the global math/rand source"
}

func okSeeded() float64 {
	return randhelper.Seeded(nil)
}
