package analysis

import (
	"fmt"
	"strings"
)

// Rules is the rule set one package must obey.
type Rules struct {
	// Match selects packages by import path: either an exact path or a
	// `prefix/...` pattern covering the prefix and everything below it.
	Match string
	// Analyzers names the checks to run, in run order.
	Analyzers []string
	// ForbidImports lists import paths (exact or `prefix/...`) the
	// layering analyzer rejects for matched packages.
	ForbidImports []string
}

// Config maps packages to rule sets. The first entry whose Match covers
// a package's import path wins, so specific entries go before wildcards.
type Config struct {
	Packages []Rules
}

// matchPath reports whether pattern covers path.
func matchPath(pattern, path string) bool {
	if base, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == base || strings.HasPrefix(path, base+"/")
	}
	return pattern == path
}

// RulesFor returns the rule set for the package with that import path.
func (c Config) RulesFor(path string) (Rules, bool) {
	for _, r := range c.Packages {
		if matchPath(r.Match, path) {
			return r, true
		}
	}
	return Rules{}, false
}

// Validate rejects configs that reference unknown analyzers, repeat a
// match pattern, or attach import bans to a rule set that never runs the
// layering analyzer (a silent no-op otherwise).
func (c Config) Validate() error {
	seen := map[string]bool{}
	for _, r := range c.Packages {
		if r.Match == "" {
			return fmt.Errorf("analysis: config entry with empty Match")
		}
		if seen[r.Match] {
			return fmt.Errorf("analysis: duplicate config entry for %q", r.Match)
		}
		seen[r.Match] = true
		hasLayering := false
		for _, name := range r.Analyzers {
			if ByName(name) == nil {
				return fmt.Errorf("analysis: %q: unknown analyzer %q (known: %s)",
					r.Match, name, strings.Join(analyzerNames(), ", "))
			}
			if name == Layering.Name {
				hasLayering = true
			}
		}
		if len(r.ForbidImports) > 0 && !hasLayering {
			return fmt.Errorf("analysis: %q forbids imports but does not run the layering analyzer", r.Match)
		}
	}
	return nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range Registry() {
		names = append(names, a.Name)
	}
	return names
}

// Deterministic packages: every byte of their output must be a pure
// function of configuration and seed. They get the full rule set and may
// not import the wall-clock live plane, net/http, or any cmd.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/suite",
	"repro/internal/bench",
	"repro/internal/core",
	"repro/internal/mpirt",
	"repro/internal/power",
	"repro/internal/series",
}

// DefaultConfig is the module's own rule table, the one cmd/greenvet and
// the selfcheck test enforce.
//
//   - Deterministic packages (sim, suite, bench, core, mpirt, power,
//     series), everything under internal/ not classified otherwise, and
//     the root package obey the full deterministic rule set — the
//     syntax-level walls plus the interprocedural clocktaint/randtaint
//     tier, so a wall-clock read can not hide behind a helper in
//     another package — and must not import internal/obs/live or
//     net/http.
//   - internal/obs/live, internal/shard, internal/campaign,
//     internal/obs/ops, cmd/* and examples/* legitimately touch the
//     wall clock, so detclock/clocktaint are off there (as they are in
//     _test.go files, which the loader never parses). The four
//     concurrent-surface packages instead run goroleak: every goroutine
//     they launch must have a reachable shutdown path.
//   - internal/obs/live additionally runs nonblock: channel sends in
//     the publish paths must be select+default, so the "non-blocking
//     bus" claim is machine-checked rather than test-sampled.
//   - locks (mutex by value, Lock without Unlock on a return path, lock
//     held across a blocking send) runs module-wide.
//   - internal/shard is the crash-isolation layer: it may spawn worker
//     processes (os/exec) and watch the wall clock, but deterministic
//     packages must not import it — nor os/exec — so everything that
//     decides bytes stays process-free.
//   - internal/campaign is the multi-tenant job layer (the daemon):
//     wall-clock by nature, forbidden to the deterministic core just
//     like the live plane and the shard supervisor.
//   - internal/obs/ops is the operational telemetry plane (request
//     metrics, queue stats, runtime samples, supervisor timelines):
//     wall-clock by definition and likewise unimportable from any
//     deterministic package.
//   - internal/stats and internal/units host the approved tolerance
//     helpers, so floateq is off inside them.
//   - No internal package may import a cmd.
func DefaultConfig() Config {
	det := []string{"detclock", "clocktaint", "detrand", "randtaint", "maporder", "floateq", "layering", "locks"}
	concurrent := []string{"detrand", "randtaint", "maporder", "floateq", "layering", "locks", "goroleak"}
	livePlane := append(append([]string{}, concurrent...), "nonblock")
	noFloat := []string{"detclock", "clocktaint", "detrand", "randtaint", "maporder", "layering", "locks"}
	wallCmd := []string{"detrand", "randtaint", "maporder", "floateq", "layering", "locks"}
	detForbid := []string{"repro/internal/obs/live", "repro/internal/obs/ops", "repro/internal/shard", "repro/internal/campaign", "os/exec", "net/http", "repro/cmd/..."}
	internalForbid := []string{"repro/cmd/..."}

	pkgs := []Rules{
		{Match: "repro/internal/obs/live", Analyzers: livePlane, ForbidImports: internalForbid},
		{Match: "repro/internal/obs/ops", Analyzers: concurrent, ForbidImports: internalForbid},
		{Match: "repro/internal/shard", Analyzers: concurrent, ForbidImports: internalForbid},
		{Match: "repro/internal/campaign", Analyzers: concurrent, ForbidImports: internalForbid},
		{Match: "repro/internal/stats", Analyzers: noFloat, ForbidImports: internalForbid},
		{Match: "repro/internal/units", Analyzers: noFloat, ForbidImports: internalForbid},
	}
	for _, p := range deterministicPkgs {
		pkgs = append(pkgs, Rules{Match: p, Analyzers: det, ForbidImports: detForbid})
	}
	pkgs = append(pkgs,
		Rules{Match: "repro/internal/...", Analyzers: det, ForbidImports: internalForbid},
		Rules{Match: "repro/cmd/...", Analyzers: wallCmd},
		Rules{Match: "repro/examples/...", Analyzers: wallCmd},
		Rules{Match: "repro", Analyzers: det, ForbidImports: detForbid},
	)
	return Config{Packages: pkgs}
}
