package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AllowPrefix starts every suppression comment. The full form is
//
//	//greenvet:allow <analyzer> -- <reason>
//
// placed on the offending line, on the line immediately above it, or on
// (or immediately above) the first line of the statement containing the
// finding — a directive above a call whose arguments span several lines
// covers the whole statement, not just its first line. The reason is
// mandatory: a suppression without a recorded justification is itself
// reported as a finding.
const AllowPrefix = "//greenvet:allow"

var allowRe = regexp.MustCompile(`^//greenvet:allow ([a-z]+) -- \S`)

// allowKey identifies one (file, line, analyzer) suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSpan is the line extent of the statement a directive is attached
// to; findings for the named analyzer anywhere inside it are covered.
type allowSpan struct {
	analyzer string
	from, to int
}

// allowSet holds every well-formed suppression in a package: the
// directive lines themselves (covering their own and the next line, the
// original contract) plus the statement extents they attach to.
type allowSet struct {
	keys  map[allowKey]bool
	spans map[string][]allowSpan // filename -> extents
}

// collectAllows scans every comment in the package for suppression
// directives. Well-formed directives enter the returned set; malformed
// ones (missing analyzer, missing `-- reason`, unknown analyzer name)
// are appended to findings so typos fail loudly instead of silently
// disabling a rule.
func collectAllows(fset *token.FileSet, files []*ast.File, findings *[]Finding) allowSet {
	set := allowSet{keys: map[allowKey]bool{}, spans: map[string][]allowSpan{}}
	for _, f := range files {
		var extents map[int][2]int // built lazily, once per file
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "malformed suppression: want `//greenvet:allow <analyzer> -- <reason>`",
					})
					continue
				}
				name := m[1]
				if ByName(name) == nil {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "suppression names unknown analyzer " + name,
					})
					continue
				}
				set.keys[allowKey{pos.Filename, pos.Line, name}] = true
				if extents == nil {
					extents = stmtExtents(fset, f)
				}
				// A trailing directive sits on the statement's first
				// line; a directive on its own line sits one above it.
				for _, start := range []int{pos.Line, pos.Line + 1} {
					if ext, ok := extents[start]; ok {
						set.spans[pos.Filename] = append(set.spans[pos.Filename],
							allowSpan{analyzer: name, from: ext[0], to: ext[1]})
						break
					}
				}
			}
		}
	}
	return set
}

// stmtExtents maps each line on which a statement (or non-func
// declaration) starts to the full line range of the outermost such node
// — the extent an allow directive attached there covers.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int][2]int {
	ext := map[int][2]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		if _, seen := ext[start]; seen {
			return // parents precede children: first node wins, outermost extent
		}
		ext[start] = [2]int{start, fset.Position(n.End()).Line}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt:
			// A `{` opens a scope, not a statement a directive should
			// attach to — otherwise a directive above a func decl would
			// cover the entire body.
		case ast.Stmt:
			record(n)
		case *ast.GenDecl:
			record(n)
		}
		return true
	})
	return ext
}

// suppresses reports whether the finding is covered by an allow
// directive: on its own line, on the line directly above it, or
// attached to a statement whose extent contains the finding.
func (s allowSet) suppresses(f Finding) bool {
	return s.covers(f.Pos, f.Analyzer)
}

// coversLine is the call-graph's view of the same question, used to cut
// taint propagation at sanctioned call sites.
func (s allowSet) coversLine(pos token.Position, analyzer string) bool {
	return s.covers(pos, analyzer)
}

func (s allowSet) covers(pos token.Position, analyzer string) bool {
	if s.keys[allowKey{pos.Filename, pos.Line, analyzer}] ||
		s.keys[allowKey{pos.Filename, pos.Line - 1, analyzer}] {
		return true
	}
	for _, span := range s.spans[pos.Filename] {
		if span.analyzer == analyzer && span.from <= pos.Line && pos.Line <= span.to {
			return true
		}
	}
	return false
}
