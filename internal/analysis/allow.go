package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// AllowPrefix starts every suppression comment. The full form is
//
//	//greenvet:allow <analyzer> -- <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory: a suppression without a recorded justification is
// itself reported as a finding.
const AllowPrefix = "//greenvet:allow"

var allowRe = regexp.MustCompile(`^//greenvet:allow ([a-z]+) -- \S`)

// allowKey identifies one (file, line, analyzer) suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// collectAllows scans every comment in the package for suppression
// directives. Well-formed directives enter the returned set; malformed
// ones (missing analyzer, missing `-- reason`, unknown analyzer name)
// are appended to findings so typos fail loudly instead of silently
// disabling a rule.
func collectAllows(fset *token.FileSet, files []*ast.File, findings *[]Finding) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "malformed suppression: want `//greenvet:allow <analyzer> -- <reason>`",
					})
					continue
				}
				name := m[1]
				if ByName(name) == nil {
					*findings = append(*findings, Finding{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "suppression names unknown analyzer " + name,
					})
					continue
				}
				set[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return set
}

// suppresses reports whether the finding is covered by an allow
// directive on its own line or the line directly above it.
func (s allowSet) suppresses(f Finding) bool {
	return s[allowKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		s[allowKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}
