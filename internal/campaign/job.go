package campaign

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// State is a job's position in its lifecycle:
//
//	queued → running → done | failed | cancelled | quarantined
//
// A queued job may also jump straight to cancelled. All four right-hand
// states are terminal.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateQuarantined State = "quarantined"
)

// States lists every job state in lifecycle order — the fixed iteration
// order for metrics and docs (never range a map for these).
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined}
}

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateQuarantined:
		return true
	}
	return false
}

// Job artefact file names inside the job directory. Fixed names (rather
// than spec-derived ones) keep the HTTP surface simple: the report is
// always <dir>/report.txt, the flight dump always <dir>/flight.json.
const (
	ResultsFile = "results.json"
	TraceFile   = "trace.json"
	MetricsFile = "metrics.json"
	ReportFile  = "report.txt"
	FlightFile  = "flight.json"
	// OpsTraceFile is the wall-clock supervisor timeline of a sharded
	// job (Chrome trace), written only when the ops plane is enabled.
	// Unlike the artefacts above it is *not* deterministic: it records
	// wall time by design.
	OpsTraceFile = "ops.trace.json"
)

// Job is one submitted campaign: its spec, its isolated observability
// plane (own live Hub, own obs tracer), its directory (journal +
// artefacts), and its lifecycle state.
type Job struct {
	id     string
	spec   JobSpec
	res    *resolved
	dir    string
	hub    *live.Hub
	tracer *obs.Tracer

	cancel chan struct{} // closed once to request cancellation
	done   chan struct{} // closed when the job reaches a terminal state

	// specFile and faultsFile are the on-disk forms of an inline machine
	// spec / fault plan, written at submission for shard workers.
	specFile   string
	faultsFile string

	mu              sync.Mutex
	state           State
	submitted       time.Time
	started         time.Time
	finished        time.Time
	errMsg          string
	quarantined     int
	cancelRequested bool
	shards          map[int]*ShardStatus
}

// ID returns the job's identifier (stable, submission-ordered).
func (j *Job) ID() string { return j.id }

// Dir returns the job's private directory (journal, artefacts, dumps).
func (j *Job) Dir() string { return j.dir }

// Hub returns the job's live telemetry hub. Every event it carries
// belongs to this job alone — hubs are never shared between jobs.
func (j *Job) Hub() *live.Hub { return j.hub }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CancelRequested reports whether a cancellation was requested.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// ShardStatus is the supervisor's view of one shard of a sharded job.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"` // running | lost | finished | quarantining
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason,omitempty"`
}

// Status is the JSON view of a job, served by GET /jobs and
// GET /jobs/{id}.
type Status struct {
	ID              string                `json:"id"`
	Name            string                `json:"name,omitempty"`
	State           State                 `json:"state"`
	SubmittedAt     time.Time             `json:"submitted_at"`
	StartedAt       *time.Time            `json:"started_at,omitempty"`
	FinishedAt      *time.Time            `json:"finished_at,omitempty"`
	CancelRequested bool                  `json:"cancel_requested,omitempty"`
	Error           string                `json:"error,omitempty"`
	Quarantined     int                   `json:"quarantined,omitempty"`
	Progress        live.ProgressSnapshot `json:"progress"`
	Shards          []ShardStatus         `json:"shards,omitempty"`
	Dir             string                `json:"dir"`
	Artifacts       []string              `json:"artifacts,omitempty"`
}

// Status snapshots the job for the HTTP surface.
func (j *Job) Status() Status {
	j.mu.Lock()
	st := Status{
		ID:              j.id,
		Name:            j.spec.Name,
		State:           j.state,
		SubmittedAt:     j.submitted,
		CancelRequested: j.cancelRequested,
		Error:           j.errMsg,
		Quarantined:     j.quarantined,
		Dir:             j.dir,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if len(j.shards) > 0 {
		for _, s := range j.shards {
			st.Shards = append(st.Shards, *s)
		}
		sort.Slice(st.Shards, func(a, b int) bool { return st.Shards[a].Shard < st.Shards[b].Shard })
	}
	j.mu.Unlock()
	// Progress and artefact listing read outside the job lock: the hub has
	// its own synchronisation and stat is I/O.
	st.Progress = j.hub.Progress()
	for _, name := range []string{ResultsFile, TraceFile, MetricsFile, ReportFile, FlightFile, OpsTraceFile} {
		if _, err := os.Stat(filepath.Join(j.dir, name)); err == nil {
			st.Artifacts = append(st.Artifacts, name)
		}
	}
	return st
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and closes Done.
func (j *Job) finish(state State, errMsg string, quarantined int) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.quarantined = quarantined
	j.finished = time.Now()
	run := 0.0
	if !j.started.IsZero() {
		run = j.finished.Sub(j.started).Seconds()
	}
	j.mu.Unlock()
	j.hub.JobFinished(string(state), run)
	close(j.done)
}

// requestCancel closes the cancel channel exactly once. Returns whether
// this call was the one that requested it.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested {
		return false
	}
	j.cancelRequested = true
	close(j.cancel)
	return true
}

func (j *Job) setShard(shard int, update func(*ShardStatus)) {
	j.mu.Lock()
	if j.shards == nil {
		j.shards = map[int]*ShardStatus{}
	}
	s, ok := j.shards[shard]
	if !ok {
		s = &ShardStatus{Shard: shard}
		j.shards[shard] = s
	}
	update(s)
	j.mu.Unlock()
}

// jobMonitor bridges the shard supervisor's lifecycle events to the
// job: each event lands on the job's live hub (so /events streams it)
// and updates the per-shard status served by GET /jobs/{id}.
type jobMonitor struct{ j *Job }

func (m jobMonitor) ShardStarted(shard, attempt, cells int) {
	m.j.hub.ShardStarted(shard, attempt, cells)
	m.j.setShard(shard, func(s *ShardStatus) {
		s.State = "running"
		s.Attempts = attempt + 1
		s.Reason = ""
	})
}

func (m jobMonitor) ShardLost(shard int, reason string) {
	m.j.hub.ShardLost(shard, reason)
	m.j.setShard(shard, func(s *ShardStatus) {
		s.State = "lost"
		s.Reason = reason
	})
}

func (m jobMonitor) ShardFinished(shard int) {
	m.j.hub.ShardFinished(shard)
	m.j.setShard(shard, func(s *ShardStatus) {
		s.State = "finished"
		s.Reason = ""
	})
}

func (m jobMonitor) ShardQuarantined(shard, procs int, reason string) {
	m.j.hub.ShardQuarantined(shard, procs, reason)
	m.j.setShard(shard, func(s *ShardStatus) {
		s.State = "quarantining"
		s.Reason = reason
	})
}
