package campaign

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/live"
	"repro/internal/obs/ops"
)

// startOpsServer is startTestServer with the ops plane enabled: one
// telemetry bundle shared by manager and server, the way the daemon
// wires it.
func startOpsServer(t *testing.T, cfg ManagerConfig) (*Server, *Manager, *ops.Telemetry) {
	t.Helper()
	tel := ops.New()
	t.Cleanup(tel.Close)
	cfg.Ops = tel
	m := newTestManager(t, cfg)
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Manager: m, Ops: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, m, tel
}

func TestServerHealthzVerbose(t *testing.T) {
	srv, _, _ := startOpsServer(t, ManagerConfig{MaxConcurrent: 3})
	base := "http://" + srv.Addr()

	// The plain probe is untouched by the ops plane.
	if code, body := httpJSON(t, http.MethodGet, base+"/healthz", nil); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("plain healthz: %d %q", code, body)
	}

	code, body := httpJSON(t, http.MethodGet, base+"/healthz?verbose=1", nil)
	if code != http.StatusOK {
		t.Fatalf("verbose healthz: %d %s", code, body)
	}
	var h struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Slots      int    `json:"slots"`
		SlotsInUse int    `json:"slots_in_use"`
		MaxQueued  int    `json:"max_queued"`
		Accepting  bool   `json:"accepting"`
		Saturated  bool   `json:"saturated"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("verbose healthz not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Slots != 3 || h.QueueDepth != 0 || h.SlotsInUse != 0 {
		t.Errorf("idle verbose healthz = %+v", h)
	}
	if !h.Accepting || h.Saturated {
		t.Errorf("idle server must be accepting and unsaturated: %+v", h)
	}
}

func TestServerStatusz(t *testing.T) {
	srv, m, _ := startOpsServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()
	j, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	// A couple of requests so route stats have something to show.
	httpJSON(t, http.MethodGet, base+"/jobs", nil)
	httpJSON(t, http.MethodGet, base+"/jobs/"+j.ID(), nil)

	code, body := httpJSON(t, http.MethodGet, base+"/statusz", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /statusz: %d %s", code, body)
	}
	var st struct {
		UptimeSeconds float64          `json:"uptime_seconds"`
		JobsByState   map[string]int   `json:"jobs_by_state"`
		QueueDepth    int              `json:"queue_depth"`
		Ops           *ops.StatuszSnap `json:"ops"`
		OpsEnabled    bool             `json:"ops_enabled"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if !st.OpsEnabled || st.Ops == nil {
		t.Fatalf("ops plane missing from statusz: %s", body)
	}
	if st.JobsByState["done"] != 1 || st.QueueDepth != 0 {
		t.Errorf("job aggregate wrong: %+v", st.JobsByState)
	}
	if st.Ops.Queue.JobsQueued != 1 || st.Ops.Queue.JobsRun != 1 {
		t.Errorf("ops queue counters wrong: %+v", st.Ops.Queue)
	}
	var sawList bool
	for _, r := range st.Ops.HTTP {
		if r.Route == "GET /jobs" && r.Requests >= 1 {
			sawList = true
		}
	}
	if !sawList {
		t.Errorf("route stats missing GET /jobs: %+v", st.Ops.HTTP)
	}
	if st.Ops.Runtime.Goroutines < 1 {
		t.Errorf("runtime sample empty: %+v", st.Ops.Runtime)
	}
}

func TestServerStatuszWithOpsDisabled(t *testing.T) {
	srv, _ := startTestServer(t, ManagerConfig{})
	code, body := httpJSON(t, http.MethodGet, "http://"+srv.Addr()+"/statusz", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /statusz: %d %s", code, body)
	}
	var st struct {
		Ops        json.RawMessage `json:"ops"`
		OpsEnabled bool            `json:"ops_enabled"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.OpsEnabled || len(st.Ops) > 0 {
		t.Errorf("ops sections present with the plane off: %s", body)
	}
}

func TestServerMetricsIncludeOpsPlane(t *testing.T) {
	srv, m, _ := startOpsServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()
	j, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	httpJSON(t, http.MethodGet, base+"/jobs", nil) // traffic for the route stats
	code, body := httpJSON(t, http.MethodGet, base+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		// The campaign exposition that was already there.
		"campaign_jobs_total 1",
		// The ops plane appended after it.
		`ops_http_requests_total{route="GET /jobs",code="200"}`,
		`ops_http_request_seconds_bucket{route="GET /jobs",le="+Inf"}`,
		"campaign_slots ",
		"campaign_jobs_finished_total 1",
		"ops_runtime_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerConcurrentSubscribersSameJob: several clients streaming the
// SAME job's events concurrently (flight-recorder replay racing live
// publishes) each see a complete, strictly-ordered stream — no gaps, no
// Seq duplicates from the replay/live hand-off. Run with -race.
func TestServerConcurrentSubscribersSameJob(t *testing.T) {
	srv, m, _ := startOpsServer(t, ManagerConfig{})
	j, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	const subscribers = 4
	url := "http://" + srv.Addr() + "/jobs/" + j.ID() + "/events"
	results := make(chan []live.Event, subscribers)
	for i := 0; i < subscribers; i++ {
		go func() {
			results <- readEventStream(t, url)
		}()
		// Stagger attachment so some subscribers replay more and live less.
		time.Sleep(5 * time.Millisecond)
	}
	waitDone(t, j)
	for i := 0; i < subscribers; i++ {
		var events []live.Event
		select {
		case events = <-results:
		case <-time.After(10 * time.Second):
			t.Fatal("a subscriber's stream did not end")
		}
		if len(events) == 0 {
			t.Fatal("a subscriber saw no events")
		}
		seen := map[uint64]bool{}
		for k, e := range events {
			if seen[e.Seq] {
				t.Fatalf("subscriber %d: duplicate seq %d (replay/live overlap not deduplicated)", i, e.Seq)
			}
			seen[e.Seq] = true
			if k > 0 && e.Seq != events[k-1].Seq+1 {
				t.Fatalf("subscriber %d: seq gap at %d: %d after %d", i, k, e.Seq, events[k-1].Seq)
			}
		}
		// Every stream ends at the terminal event, so all subscribers end
		// on the same final sequence number.
		if last := events[len(events)-1].Seq; last != j.Hub().Progress().EventsPublished {
			t.Errorf("subscriber %d ended at seq %d, hub published %d", i, last, j.Hub().Progress().EventsPublished)
		}
	}
}

// TestOpsPlaneInertOnArtifacts is the separation invariant, pinned:
// running the identical job with the ops plane on and off produces
// byte-identical deterministic artefacts. Only the wall-clock timeline
// (ops.trace.json, sharded jobs only) may differ by existing.
func TestOpsPlaneInertOnArtifacts(t *testing.T) {
	run := func(withOps bool) string {
		cfg := ManagerConfig{Dir: t.TempDir()}
		if withOps {
			tel := ops.New()
			t.Cleanup(tel.Close)
			cfg.Ops = tel
		}
		m := newTestManager(t, cfg)
		j, err := m.Submit(JobSpec{System: "testbed", Sweep: true})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if j.State() != StateDone {
			t.Fatalf("job (ops=%v) ended %s", withOps, j.State())
		}
		return j.Dir()
	}
	withDir, withoutDir := run(true), run(false)
	for _, name := range []string{ResultsFile, TraceFile, MetricsFile, ReportFile} {
		a, aErr := os.ReadFile(filepath.Join(withDir, name))
		b, bErr := os.ReadFile(filepath.Join(withoutDir, name))
		if os.IsNotExist(aErr) && os.IsNotExist(bErr) {
			continue // artefact not produced by this spec either way
		}
		if aErr != nil || bErr != nil {
			t.Fatalf("%s: ops-on err=%v, ops-off err=%v (artefact presence must not depend on the ops plane)", name, aErr, bErr)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between ops on and off — the ops plane leaked into a deterministic artefact", name)
		}
	}
}
