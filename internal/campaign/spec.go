package campaign

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/suite"
	"repro/internal/units"
)

// JobSpec is the JSON body of POST /jobs: one campaign, described the
// way the greenbench CLI flags would describe it. The zero value (plus a
// system) is a valid single-point run of the paper's suite.
type JobSpec struct {
	// Name is a free-form label echoed back in job listings.
	Name string `json:"name,omitempty"`
	// System names a built-in cluster model (fire, systemg, greengpu,
	// sicortex, testbed). Default fire. Ignored when Spec is set.
	System string `json:"system,omitempty"`
	// Spec is an inline machine spec, overriding System.
	Spec *cluster.Spec `json:"spec,omitempty"`
	// Sweep runs the paper's process sweep instead of one point.
	Sweep bool `json:"sweep,omitempty"`
	// Procs is the single-run process count (0: all cores).
	Procs int `json:"procs,omitempty"`
	// Benchmarks is the ordered benchmark list; each entry is a workload
	// name, "paper" or "extended" (empty: the paper's three).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Placement is the process placement policy: cyclic (default) or block.
	Placement string `json:"placement,omitempty"`
	// Workers caps concurrently-running sweep cells (0: sequential).
	Workers int `json:"workers,omitempty"`
	// Shards runs a sweep as this many supervised worker processes
	// (needs the manager to have a worker factory).
	Shards int `json:"shards,omitempty"`
	// Retries is the per-benchmark retry budget after injected failures.
	Retries int `json:"retries,omitempty"`
	// TimeoutSeconds is the per-benchmark virtual-time limit (0: none).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Faults is an inline fault plan to inject (see internal/faults).
	Faults *faults.Plan `json:"faults,omitempty"`
	// CellPauseMS pauses this many wall-clock milliseconds before each
	// cell — demo/e2e pacing; virtual results are unaffected.
	CellPauseMS int `json:"cell_pause_ms,omitempty"`
}

// Spec-error reasons, machine-readable in the server's 4xx bodies.
const (
	ReasonBadJSON          = "bad_json"
	ReasonBadSpec          = "bad_spec"
	ReasonUnknownSystem    = "unknown_system"
	ReasonUnknownBenchmark = "unknown_benchmark"
	ReasonNoWorkerFactory  = "no_worker_factory"
	ReasonJobNotFound      = "job_not_found"
	ReasonJobFinished      = "job_finished"
	ReasonReportNotReady   = "report_not_ready"
	ReasonQueueFull        = "queue_full"
	ReasonShuttingDown     = "shutting_down"
)

// SpecError is a job-spec rejection: a human-readable message plus a
// machine-readable reason the server maps to a structured 4xx body.
type SpecError struct {
	Reason string
	Err    error
}

func (e *SpecError) Error() string { return e.Err.Error() }
func (e *SpecError) Unwrap() error { return e.Err }

func specErrf(reason, format string, args ...any) *SpecError {
	return &SpecError{Reason: reason, Err: fmt.Errorf(format, args...)}
}

// SystemByName resolves a built-in cluster model name.
func SystemByName(name string) (*cluster.Spec, error) {
	switch strings.ToLower(name) {
	case "fire":
		return cluster.Fire(), nil
	case "systemg":
		return cluster.SystemG(), nil
	case "greengpu", "gpu":
		return cluster.GreenGPU(), nil
	case "sicortex":
		return cluster.SiCortex(), nil
	case "testbed":
		return cluster.Testbed(), nil
	default:
		return nil, fmt.Errorf("unknown system %q (want fire, systemg, greengpu, sicortex or testbed)", name)
	}
}

// resolved is a JobSpec after validation: everything the runner needs,
// in the deterministic core's terms.
type resolved struct {
	spec       *cluster.Spec
	systemName string // built-in model name ("" when spec was inline)
	placement  cluster.Placement
	benchmarks []string
	retry      suite.RetryPolicy
	cellPause  time.Duration
}

// resolve validates the spec and resolves names against the registries.
// Every failure is a *SpecError so the server can answer with a reason.
func (js *JobSpec) resolve() (*resolved, error) {
	if js.Procs < 0 {
		return nil, specErrf(ReasonBadSpec, "procs must be non-negative, got %d (0 means all cores)", js.Procs)
	}
	if js.Workers < 0 {
		return nil, specErrf(ReasonBadSpec, "workers must be non-negative, got %d (0 runs cells sequentially)", js.Workers)
	}
	if js.Shards < 0 {
		return nil, specErrf(ReasonBadSpec, "shards must be non-negative, got %d (0 runs in-process)", js.Shards)
	}
	if js.Shards > 1 && !js.Sweep {
		return nil, specErrf(ReasonBadSpec, "shards=%d needs sweep=true: only a process sweep can be partitioned", js.Shards)
	}
	if js.Retries < 0 {
		return nil, specErrf(ReasonBadSpec, "retries must be non-negative, got %d", js.Retries)
	}
	if js.TimeoutSeconds < 0 {
		return nil, specErrf(ReasonBadSpec, "timeout_seconds must be non-negative, got %g", js.TimeoutSeconds)
	}
	if js.CellPauseMS < 0 {
		return nil, specErrf(ReasonBadSpec, "cell_pause_ms must be non-negative, got %d", js.CellPauseMS)
	}
	r := &resolved{cellPause: time.Duration(js.CellPauseMS) * time.Millisecond}
	if js.Spec != nil {
		if err := js.Spec.Validate(); err != nil {
			return nil, &SpecError{Reason: ReasonBadSpec, Err: err}
		}
		r.spec = js.Spec
	} else {
		system := js.System
		if system == "" {
			system = "fire"
		}
		spec, err := SystemByName(system)
		if err != nil {
			return nil, &SpecError{Reason: ReasonUnknownSystem, Err: err}
		}
		r.spec = spec
		r.systemName = strings.ToLower(system)
	}
	switch strings.ToLower(js.Placement) {
	case "", "cyclic":
		r.placement = cluster.Cyclic
	case "block":
		r.placement = cluster.Block
	default:
		return nil, specErrf(ReasonBadSpec, "unknown placement %q (want cyclic or block)", js.Placement)
	}
	benches, err := resolveBenchmarks(js.Benchmarks)
	if err != nil {
		return nil, err
	}
	r.benchmarks = benches
	r.retry = suite.RetryPolicy{
		MaxAttempts: js.Retries + 1,
		Backoff:     units.Seconds(30),
		Timeout:     units.Seconds(js.TimeoutSeconds),
	}
	return r, nil
}

// resolveBenchmarks expands "paper"/"extended" entries and resolves the
// rest against the workload registry, preserving order.
func resolveBenchmarks(names []string) ([]string, error) {
	if len(names) == 0 {
		return suite.PaperOrder(), nil
	}
	var expanded []string
	for _, n := range names {
		switch strings.ToLower(strings.TrimSpace(n)) {
		case "":
		case "paper":
			expanded = append(expanded, suite.PaperOrder()...)
		case "extended":
			expanded = append(expanded, suite.ExtendedOrder...)
		default:
			expanded = append(expanded, n)
		}
	}
	if len(expanded) == 0 {
		return suite.PaperOrder(), nil
	}
	resolved, err := bench.Resolve(expanded)
	if err != nil {
		return nil, &SpecError{Reason: ReasonUnknownBenchmark, Err: err}
	}
	return resolved, nil
}
