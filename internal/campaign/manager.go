package campaign

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/ops"
	"repro/internal/shard"
	"repro/internal/suite"
)

// ErrCancelled is the campaign Check hook's abort error when a job's
// cancellation was requested; the runner maps it to StateCancelled.
var ErrCancelled = errors.New("campaign: job cancelled")

// WorkerSpec is everything a front end needs to build one shard-worker
// process for a daemon job. The manager fills it from the job spec; the
// factory (which knows its own binary and argv conventions) turns it
// into an exec.Cmd. See cmd/greenbench's daemon wiring.
type WorkerSpec struct {
	// JobID identifies the owning job (for logging).
	JobID string
	// Task is the shard's axis slice; Segment its private journal.
	Task    shard.Task
	Segment string
	// SpecFile is a machine-spec JSON path; when empty, System names a
	// built-in model.
	SpecFile string
	System   string
	// Placement, Benchmarks, Retries, TimeoutSeconds and CellPause mirror
	// the job spec; Traced asks the worker to journal cell traces.
	Placement      string
	Benchmarks     []string
	Traced         bool
	Retries        int
	TimeoutSeconds float64
	CellPause      time.Duration
	// FaultsFile is a fault-plan JSON path ("" for none).
	FaultsFile string
	// Tick is the worker's heartbeat interval.
	Tick time.Duration
}

// WorkerFactory builds (without starting) a shard-worker process. The
// supervisor owns the command's stdout, so the factory must leave
// cmd.Stdout nil.
type WorkerFactory func(w WorkerSpec) (*exec.Cmd, error)

// ManagerConfig configures a Manager. The zero value works: jobs land
// under "greenbench-jobs", two run concurrently, logs are discarded.
type ManagerConfig struct {
	// Dir is where per-job directories are created.
	Dir string
	// MaxConcurrent caps jobs in StateRunning (default 2).
	MaxConcurrent int
	// MaxQueued caps jobs in StateQueued; submissions beyond it are
	// rejected with ReasonQueueFull (default 64).
	MaxQueued int
	// FlightCapacity sizes each job's flight recorder (default
	// live.DefaultFlightCapacity; must satisfy live.CheckFlightCapacity).
	FlightCapacity int
	// Logger receives structured job lifecycle records (default: discard).
	Logger *slog.Logger
	// Worker enables sharded jobs; without it they are rejected.
	Worker WorkerFactory
	// HeartbeatTimeout and ShardRetries tune shard supervision for
	// sharded jobs (defaults 30s and 2).
	HeartbeatTimeout time.Duration
	ShardRetries     int
	// Ops, when non-nil, receives operational telemetry: queue depth
	// samples, queue-wait and run-duration observations, and a wall-clock
	// supervisor timeline per sharded job (written to ops.trace.json in
	// the job directory). Nil disables the plane; either way the job's
	// campaign artefacts are byte-identical.
	Ops *ops.Telemetry
}

// Manager owns the job table: submission, queuing, execution with
// per-job isolation, cancellation, and shutdown. Every job runs through
// suite.RunCampaign — the same entry point as the CLI — with its own
// journal directory, tracer and live hub.
type Manager struct {
	cfg ManagerConfig
	log *slog.Logger

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job IDs in submission order
	queue   []*Job
	running int
	seq     int
	closed  bool
	wg      sync.WaitGroup
}

// NewManager creates the job directory and returns a ready manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Dir == "" {
		cfg.Dir = "greenbench-jobs"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.FlightCapacity == 0 {
		cfg.FlightCapacity = live.DefaultFlightCapacity
	}
	if err := live.CheckFlightCapacity(cfg.FlightCapacity); err != nil && cfg.FlightCapacity != live.DefaultFlightCapacity {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.ShardRetries == 0 {
		cfg.ShardRetries = 2
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating job dir: %w", err)
	}
	cfg.Ops.Queue().Configure(cfg.MaxConcurrent, cfg.MaxQueued)
	return &Manager{cfg: cfg, log: log, jobs: map[string]*Job{}}, nil
}

// Submit validates the spec, materialises the job's directory and
// isolated observability plane, and queues it. The returned job is
// already visible to Jobs/Get and its hub is live — /events can attach
// while the job is still queued.
func (m *Manager) Submit(js JobSpec) (*Job, error) {
	res, err := js.resolve()
	if err != nil {
		return nil, err
	}
	if js.Shards > 1 && m.cfg.Worker == nil {
		return nil, specErrf(ReasonNoWorkerFactory,
			"sharded jobs are not available: the server was started without a worker factory")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, specErrf(ReasonShuttingDown, "server is shutting down")
	}
	queued := len(m.queue)
	if queued >= m.cfg.MaxQueued {
		return nil, specErrf(ReasonQueueFull, "job queue is full (%d queued)", queued)
	}
	m.seq++
	id := fmt.Sprintf("job-%04d", m.seq)
	dir := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating %s: %w", dir, err)
	}
	// Sharded jobs hand their machine spec and fault plan to worker
	// processes as files — inline JSON has no argv form.
	specFile, faultsFile := "", ""
	if js.Shards > 1 {
		if js.Spec != nil {
			specFile = filepath.Join(dir, "spec.json")
			if err := cluster.SaveSpec(specFile, js.Spec); err != nil {
				return nil, err
			}
		}
		if js.Faults != nil {
			faultsFile = filepath.Join(dir, "faults.json")
			if err := faults.Save(faultsFile, js.Faults); err != nil {
				return nil, err
			}
		}
	}
	j := &Job{
		id:        id,
		spec:      js,
		res:       res,
		dir:       dir,
		hub:       live.NewHub(live.WithFlightCapacity(m.cfg.FlightCapacity)),
		tracer:    obs.NewTracer(),
		cancel:    make(chan struct{}),
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.specFile, j.faultsFile = specFile, faultsFile
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.queue = append(m.queue, j)
	m.log.Info("job submitted", "job", id, "name", js.Name,
		"system", j.res.spec.Name, "sweep", js.Sweep, "shards", js.Shards, "queued", len(m.queue))
	j.hub.JobQueued(len(m.queue))
	m.cfg.Ops.Queue().JobQueued()
	m.startLocked()
	m.cfg.Ops.Queue().Sample(len(m.queue), m.running)
	return j, nil
}

// startLocked launches queued jobs while capacity allows. Caller holds
// m.mu.
func (m *Manager) startLocked() {
	for m.running < m.cfg.MaxConcurrent && len(m.queue) > 0 {
		j := m.queue[0]
		m.queue = m.queue[1:]
		if j.State() != StateQueued { // cancelled while queued
			continue
		}
		m.running++
		m.wg.Add(1)
		go m.runJob(j)
	}
}

// Jobs returns every job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Get returns the job with that ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// QueueDepth returns how many jobs are waiting to run.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Running returns how many jobs currently hold a concurrency slot.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Slots returns the concurrency limit (ManagerConfig.MaxConcurrent
// after defaulting).
func (m *Manager) Slots() int { return m.cfg.MaxConcurrent }

// MaxQueued returns the queue bound (ManagerConfig.MaxQueued after
// defaulting).
func (m *Manager) MaxQueued() int { return m.cfg.MaxQueued }

// Cancel requests cancellation of a job. A queued job is cancelled on
// the spot; a running one aborts at its next cell boundary and dumps
// its flight recorder. Cancelling a finished job is an error
// (ReasonJobFinished); repeating a cancel is not.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, specErrf(ReasonJobNotFound, "no job %q", id)
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state.Terminal() {
		return nil, specErrf(ReasonJobFinished, "job %s already finished (%s)", id, state)
	}
	if state == StateQueued {
		// Finish it here; startLocked skips de-queued non-queued jobs.
		if j.requestCancel() {
			j.finish(StateCancelled, "cancelled while queued", 0)
			m.log.Info("job cancelled", "job", id, "state", "queued")
		}
		return j, nil
	}
	if j.requestCancel() {
		m.log.Info("job cancel requested", "job", id)
	}
	return j, nil
}

// Close stops the manager: queued jobs are cancelled, running jobs get
// a cancellation request, and Close blocks until every runner returns.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	pending := m.queue
	m.queue = nil
	m.mu.Unlock()
	for _, j := range pending {
		if j.requestCancel() {
			j.finish(StateCancelled, "cancelled: server shutting down", 0)
		}
	}
	for _, j := range m.Jobs() {
		if !j.State().Terminal() {
			j.requestCancel()
		}
	}
	m.wg.Wait()
}

// runJob executes one job through suite.RunCampaign and finalises its
// state. It owns the job's slot in the running count.
func (m *Manager) runJob(j *Job) {
	defer m.wg.Done()
	log := m.log.With("job", j.id)
	wait := time.Since(j.submitted).Seconds()
	j.setRunning()
	started := time.Now()
	j.hub.JobStarted(wait)
	m.cfg.Ops.Queue().JobStarted(wait)
	log.Info("job started", "dir", j.dir)

	resultsPath := filepath.Join(j.dir, ResultsFile)
	cs := suite.CampaignSpec{
		Spec:        j.res.spec,
		Placement:   j.res.placement,
		Benchmarks:  j.res.benchmarks,
		Faults:      j.spec.Faults,
		Retry:       j.res.retry,
		Sweep:       j.spec.Sweep,
		Procs:       j.spec.Procs,
		Workers:     j.spec.Workers,
		JournalPath: resultsPath + ".journal",
		Resume:      false,
		Trace:       j.tracer,
		Live:        j.hub,
		Check: func() error {
			select {
			case <-j.cancel:
				return ErrCancelled
			default:
				return nil
			}
		},
		Logf: func(format string, args ...any) {
			log.Info(fmt.Sprintf(format, args...))
		},
		Render: func(results []*suite.Result) error {
			return Artifacts{
				Results: resultsPath,
				Trace:   filepath.Join(j.dir, TraceFile),
				Metrics: filepath.Join(j.dir, MetricsFile),
				Report:  filepath.Join(j.dir, ReportFile),
				Logf: func(format string, args ...any) {
					log.Info(fmt.Sprintf(format, args...))
				},
			}.Write(j.tracer, results)
		},
	}
	if j.res.cellPause > 0 {
		pause := j.res.cellPause
		cs.PauseCell = func() { time.Sleep(pause) }
	}
	if j.spec.Sweep && j.spec.Shards > 1 {
		cs.Supervise = func(axis []int) error {
			return m.superviseJob(j, axis, resultsPath+".journal", log)
		}
	}

	outcome, err := suite.RunCampaign(cs)
	flightPath := filepath.Join(j.dir, FlightFile)
	switch {
	case err != nil && errors.Is(err, ErrCancelled):
		if dumpErr := j.hub.DumpFlight(flightPath, "cancelled"); dumpErr != nil {
			log.Error("flight dump failed", "error", dumpErr.Error())
		}
		j.finish(StateCancelled, err.Error(), 0)
		log.Info("job cancelled", "state", "running")
	case err != nil:
		if dumpErr := j.hub.DumpFlight(flightPath, "abort: "+err.Error()); dumpErr != nil {
			log.Error("flight dump failed", "error", dumpErr.Error())
		}
		j.finish(StateFailed, err.Error(), 0)
		log.Error("job failed", "error", err.Error())
	case outcome.Quarantined > 0:
		j.finish(StateQuarantined, "", outcome.Quarantined)
		log.Warn("job finished with quarantined cells",
			"quarantined", outcome.Quarantined, "journal", outcome.JournalKept)
	default:
		j.finish(StateDone, "", 0)
		log.Info("job done")
	}

	m.cfg.Ops.Queue().JobFinished(time.Since(started).Seconds())
	m.mu.Lock()
	m.running--
	m.startLocked()
	m.cfg.Ops.Queue().Sample(len(m.queue), m.running)
	m.mu.Unlock()
}

// superviseJob runs a sharded job's out-of-process pass via the
// manager's worker factory.
func (m *Manager) superviseJob(j *Job, axis []int, journalPath string, log *slog.Logger) error {
	tick := m.cfg.HeartbeatTimeout / 5
	if tick <= 0 {
		tick = time.Second
	}
	// The ops plane adds a wall-clock supervision timeline next to the
	// job's deterministic artefacts; it observes the same Monitor stream
	// the hub does, so it cannot touch the campaign's bytes.
	mon := shard.Monitor(jobMonitor{j: j})
	var tl *ops.Timeline
	if m.cfg.Ops != nil {
		tl = ops.NewTimeline()
		mon = shard.Monitors(mon, tl)
	}
	err := SuperviseShards(ShardPlan{
		JournalPath:      journalPath,
		Spec:             j.res.spec,
		Placement:        j.res.placement,
		Benchmarks:       j.res.benchmarks,
		Axis:             axis,
		Shards:           j.spec.Shards,
		Resume:           false,
		HeartbeatTimeout: m.cfg.HeartbeatTimeout,
		MaxRetries:       m.cfg.ShardRetries,
		Logger:           log,
		Monitor:          mon,
		Start: func(t shard.Task, segment string) (*exec.Cmd, error) {
			return m.cfg.Worker(WorkerSpec{
				JobID:          j.id,
				Task:           t,
				Segment:        segment,
				SpecFile:       j.specFile,
				System:         j.res.systemName,
				Placement:      j.res.placement.String(),
				Benchmarks:     j.res.benchmarks,
				Traced:         true,
				Retries:        j.spec.Retries,
				TimeoutSeconds: j.spec.TimeoutSeconds,
				CellPause:      j.res.cellPause,
				FaultsFile:     j.faultsFile,
				Tick:           tick,
			})
		},
		Logf: func(format string, args ...any) {
			log.Info(fmt.Sprintf(format, args...))
		},
	})
	if tl != nil {
		if werr := tl.WriteFile(filepath.Join(j.dir, OpsTraceFile)); werr != nil {
			log.Error("ops timeline write failed", "error", werr.Error())
		}
	}
	return err
}
