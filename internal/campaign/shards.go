package campaign

// Sharded campaign supervision, shared by the greenbench CLI (-shards)
// and daemon shard jobs. The split of responsibilities:
//
//   - internal/shard owns supervision mechanics: launching, heartbeat
//     watchdog, retry with backoff, bisection, quarantine decisions.
//   - internal/suite owns the deterministic half: journal segments,
//     their axis-order merge, and the resume machinery that turns the
//     merged journal into results/trace/metrics byte-identical to a
//     single-process sequential run.
//   - SuperviseShards glues them: seeds segments on resume, records
//     quarantined cells, and merges worker segments into the canonical
//     journal. How a worker process is built stays with the caller
//     (Start), because only the front end knows its own argv.

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/suite"
)

// SegmentPath names shard i's journal segment next to the canonical
// journal.
func SegmentPath(journal string, i int) string {
	return fmt.Sprintf("%s.shard-%d", journal, i)
}

// ShardPlan configures one sharded-sweep supervision pass.
type ShardPlan struct {
	// JournalPath is the canonical journal the worker segments merge into
	// (required).
	JournalPath string
	// Spec, Placement and Benchmarks identify the campaign's cells.
	Spec       *cluster.Spec
	Placement  cluster.Placement
	Benchmarks []string
	// Axis is the sweep's process axis, partitioned across Shards workers.
	Axis   []int
	Shards int
	// Resume seeds each segment with the canonical journal's completed
	// cells, so relaunched workers skip them.
	Resume bool
	// Start builds (without starting) the worker process for a task,
	// checkpointing into segment (required). See shard.Spec.Start.
	Start func(t shard.Task, segment string) (*exec.Cmd, error)
	// HeartbeatTimeout and MaxRetries tune the supervisor (see shard.Spec).
	HeartbeatTimeout time.Duration
	MaxRetries       int
	// Log, when non-nil, receives the supervisor's per-event lines.
	Log io.Writer
	// Logger, when non-nil, receives structured supervision events.
	Logger *slog.Logger
	// Monitor, when non-nil, receives shard lifecycle events (the live
	// Hub satisfies it structurally).
	Monitor shard.Monitor
	// Logf, when non-nil, receives the end-of-pass summary lines.
	Logf func(format string, args ...any)
}

func (p *ShardPlan) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

// SuperviseShards runs the sweep's axis as supervised worker processes
// and leaves the canonical journal holding every cell: the workers'
// merged segments plus StatusQuarantined records for cells lost to a
// poison shard. The caller then renders the campaign through the
// ordinary resume path (suite.RunCampaign does this via its Supervise
// hook).
func SuperviseShards(p ShardPlan) error {
	if p.JournalPath == "" {
		return fmt.Errorf("campaign: sharded sweep needs a checkpoint journal path")
	}
	if p.Start == nil {
		return fmt.Errorf("campaign: sharded sweep needs a worker factory")
	}
	journal, err := suite.OpenJournal(p.JournalPath)
	if err != nil {
		return err
	}
	if err := journal.Bind(p.Benchmarks); err != nil {
		return err
	}
	if journal.LegacyTraces() {
		return fmt.Errorf("journal %s stores traces in the pre-v3 absolute-time layout and cannot seed shard segments; resume it with -workers 1 first, or delete it to start over", journal.Path())
	}

	tasks := shard.Partition(p.Axis, p.Shards)
	segments := make([]string, len(tasks))
	for i, t := range tasks {
		segments[i] = SegmentPath(p.JournalPath, t.Shard)
		if !p.Resume {
			// A fresh campaign must not inherit cells from an abandoned one.
			if err := os.Remove(segments[i]); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		// On resume, seed each segment with the cells the canonical journal
		// already holds for its procs, so relaunched workers skip them.
		// Quarantined records are not seeded: a user-driven resume re-runs
		// those cells.
		seg, err := suite.OpenJournal(segments[i])
		if err != nil {
			return err
		}
		if err := seg.Bind(p.Benchmarks); err != nil {
			return err
		}
		for _, procs := range t.Procs {
			for _, b := range p.Benchmarks {
				key := suite.CellKey(p.Spec.Name, procs, p.Placement.String(), b)
				if _, ok := seg.Lookup(key); ok {
					continue
				}
				if run, ok := journal.Lookup(key); ok && run.Status != suite.StatusQuarantined {
					tr, _ := journal.LookupTrace(key)
					seg.Stage(key, run, tr)
				}
			}
		}
		if err := seg.Flush(); err != nil {
			return err
		}
	}

	rep, err := shard.Run(shard.Spec{
		Tasks: tasks,
		Start: func(t shard.Task) (*exec.Cmd, error) {
			return p.Start(t, segments[t.Shard])
		},
		HeartbeatTimeout: p.HeartbeatTimeout,
		MaxRetries:       p.MaxRetries,
		Log:              p.Log,
		Logger:           p.Logger,
		Monitor:          p.Monitor,
	})
	if err != nil {
		return err
	}

	// Merge whatever the workers checkpointed, in deterministic axis
	// order; reopen each segment so the workers' writes are visible.
	var segs []*suite.Journal
	for _, path := range segments {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			continue
		}
		seg, err := suite.OpenJournal(path)
		if err != nil {
			return fmt.Errorf("reading shard segment: %w", err)
		}
		segs = append(segs, seg)
	}
	missing, err := suite.MergeShardJournals(journal, segs, p.Spec.Name, p.Placement.String(), p.Axis, p.Benchmarks)
	if err != nil {
		return err
	}

	// Cells no segment supplied must all belong to quarantined axis
	// points; record them explicitly so the campaign degrades to a
	// partial result instead of failing.
	reasons := map[int]string{}
	for _, q := range rep.Quarantined {
		reasons[q.Procs] = q.Reason
	}
	missingSet := map[string]bool{}
	for _, key := range missing {
		missingSet[key] = true
	}
	quarantined := 0
	for _, procs := range p.Axis {
		reason, ok := reasons[procs]
		if !ok {
			continue
		}
		for _, b := range p.Benchmarks {
			key := suite.CellKey(p.Spec.Name, procs, p.Placement.String(), b)
			if !missingSet[key] {
				continue // the worker checkpointed it before dying
			}
			journal.Stage(key, QuarantinedRun(b, reason), suite.CellTrace{})
			delete(missingSet, key)
			quarantined++
		}
	}
	if len(missingSet) > 0 {
		var keys []string
		for key := range missingSet {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		return fmt.Errorf("shard workers finished without checkpointing %d cell(s): %s", len(keys), strings.Join(keys, ", "))
	}
	if err := journal.Flush(); err != nil {
		return err
	}
	for _, path := range segments {
		os.Remove(path) // merged; the canonical journal holds everything now
	}

	p.logf("sharded sweep: %d worker launch(es), %d loss(es); merged %d segment(s) into %s",
		rep.Launches, rep.Losses, len(segs), journal.Path())
	if quarantined > 0 {
		p.logf("sharded sweep: %d cell(s) quarantined after retries and bisection", quarantined)
	}
	return nil
}

// QuarantinedRun is the journal record for a cell lost to a poison
// shard: no measurement, status quarantined, the supervisor's reason as
// the error. OK() is false, so the rendered campaign is Degraded and TGI
// over it covers only the surviving cells.
func QuarantinedRun(benchName, reason string) suite.BenchmarkRun {
	m := core.Measurement{Benchmark: benchName}
	if w, ok := bench.Lookup(benchName); ok {
		m.Metric = w.Metric()
	}
	return suite.BenchmarkRun{
		Measurement: m,
		Status:      suite.StatusQuarantined,
		Error:       reason,
	}
}
