// Package campaign is the multi-tenant job layer of greenbench: it
// accepts sweep/suite job specs (over HTTP via Server, or directly via
// Manager.Submit), queues and executes them concurrently with per-job
// isolation — each job owns its directory, journal, obs tracer and live
// Hub — and exposes the whole lifecycle for observation: job states,
// progress and ETA, per-job NDJSON event streams, reports, Prometheus
// metrics, and flight-recorder dumps on cancellation or failure.
//
// The package lives on the wall-clock side of the two-plane
// architecture, next to internal/obs/live and internal/shard; the
// deterministic core (internal/suite and below) must never import it —
// greenvet's layering analyzer enforces that. Jobs execute through
// suite.RunCampaign, the same entry point the greenbench CLI uses, and
// write artefacts through the same Artifacts writer, so a campaign
// submitted over HTTP produces results, trace and metrics byte-identical
// to the same campaign run from the command line.
package campaign

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/suite"
)

// Artifacts names where one campaign's user-facing outputs land. Empty
// fields are skipped. The CLI and the campaign server both render
// through Write, which is what makes their bytes identical: there is
// exactly one code path from results to disk.
type Artifacts struct {
	// Results is the measurement JSON path (the input format of cmd/tgi).
	Results string
	// Trace is the Chrome trace_event JSON timeline path.
	Trace string
	// Metrics is the metrics-registry snapshot JSON path.
	Metrics string
	// Report is the human-readable run-report path; "-" renders to
	// ReportOut instead of a file.
	Report string
	// ReportOut receives the report when Report is "-" (the CLI's stdout).
	ReportOut io.Writer
	// Logf, when non-nil, receives one "wrote <path>" line per artefact.
	// It never influences artefact bytes.
	Logf func(format string, args ...any)
}

func (a Artifacts) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// Write renders the campaign's artefacts: results JSON, and — when the
// campaign was traced — the trace timeline, metrics snapshot and run
// report.
func (a Artifacts) Write(tracer *obs.Tracer, results []*suite.Result) error {
	if a.Results != "" {
		if err := suite.SaveJSON(a.Results, results); err != nil {
			return err
		}
		a.logf("wrote %s (%d run(s))", a.Results, len(results))
	}
	if tracer == nil {
		return nil
	}
	if a.Trace != "" {
		if err := obs.WriteChromeTraceFile(a.Trace, tracer.Spans(), tracer.Events()); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		a.logf("wrote %s (%d span(s), %d event(s))",
			a.Trace, len(tracer.Spans()), len(tracer.Events()))
	}
	if a.Metrics != "" {
		if err := tracer.Registry().Snapshot().WriteFile(a.Metrics); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		a.logf("wrote %s", a.Metrics)
	}
	if a.Report != "" {
		title := "greenbench campaign"
		if len(results) > 0 {
			title = fmt.Sprintf("greenbench campaign: %s", results[0].System)
		}
		rep := suite.BuildReport(title, results)
		suite.AttachPercentiles(rep, tracer.Registry().Snapshot())
		if a.Report == "-" {
			out := a.ReportOut
			if out == nil {
				out = os.Stdout
			}
			return rep.Render(out)
		}
		f, err := os.Create(a.Report)
		if err != nil {
			return err
		}
		if err := rep.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		a.logf("wrote %s", a.Report)
	}
	return nil
}
