package campaign

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/suite"
)

func TestResolveRejectsBadSpecs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		spec   JobSpec
		reason string
	}{
		{"negative procs", JobSpec{Procs: -1}, ReasonBadSpec},
		{"negative workers", JobSpec{Workers: -2}, ReasonBadSpec},
		{"negative shards", JobSpec{Shards: -1}, ReasonBadSpec},
		{"negative retries", JobSpec{Retries: -3}, ReasonBadSpec},
		{"negative timeout", JobSpec{TimeoutSeconds: -1}, ReasonBadSpec},
		{"negative cell pause", JobSpec{CellPauseMS: -10}, ReasonBadSpec},
		{"shards without sweep", JobSpec{Shards: 2}, ReasonBadSpec},
		{"unknown system", JobSpec{System: "cray"}, ReasonUnknownSystem},
		{"unknown placement", JobSpec{Placement: "random"}, ReasonBadSpec},
		{"unknown benchmark", JobSpec{Benchmarks: []string{"linpack9000"}}, ReasonUnknownBenchmark},
		{"bad inline spec", JobSpec{Spec: &cluster.Spec{Name: "broken"}}, ReasonBadSpec},
	} {
		js := tc.spec
		_, err := js.resolve()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *SpecError", tc.name, err)
			continue
		}
		if se.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, se.Reason, tc.reason)
		}
	}
}

func TestResolveDefaults(t *testing.T) {
	js := JobSpec{}
	r, err := js.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.spec.Name != cluster.Fire().Name {
		t.Errorf("default system = %q, want fire", r.spec.Name)
	}
	if r.systemName != "fire" {
		t.Errorf("systemName = %q, want fire", r.systemName)
	}
	if r.placement != cluster.Cyclic {
		t.Errorf("default placement = %v, want cyclic", r.placement)
	}
	if !reflect.DeepEqual(r.benchmarks, suite.PaperOrder()) {
		t.Errorf("default benchmarks = %v, want the paper's", r.benchmarks)
	}
	if r.retry.MaxAttempts != 1 {
		t.Errorf("default retry attempts = %d, want 1", r.retry.MaxAttempts)
	}
}

func TestResolveExpandsBenchmarkKeywords(t *testing.T) {
	js := JobSpec{Benchmarks: []string{"extended"}}
	r, err := js.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.benchmarks, suite.ExtendedOrder) {
		t.Errorf("extended benchmarks = %v, want %v", r.benchmarks, suite.ExtendedOrder)
	}
	js = JobSpec{Benchmarks: []string{"paper"}}
	r, err = js.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.benchmarks, suite.PaperOrder()) {
		t.Errorf("paper benchmarks = %v, want %v", r.benchmarks, suite.PaperOrder())
	}
}

func TestResolveError(t *testing.T) {
	js := JobSpec{System: "cray"}
	_, err := js.resolve()
	if err == nil {
		t.Fatal("unknown system accepted")
	}
	if !strings.Contains(err.Error(), "cray") {
		t.Errorf("error %q does not name the system", err)
	}
	var se *SpecError
	if errors.As(err, &se) && se.Unwrap() == nil {
		t.Error("SpecError.Unwrap returned nil")
	}
}

func TestStatesAreExhaustiveAndOrdered(t *testing.T) {
	states := States()
	if states[0] != StateQueued || states[1] != StateRunning {
		t.Fatalf("States() = %v: lifecycle order broken", states)
	}
	terminal := 0
	for _, s := range states {
		if s.Terminal() {
			terminal++
		}
	}
	if terminal != 4 {
		t.Fatalf("%d terminal states, want 4 (done, failed, cancelled, quarantined)", terminal)
	}
	if StateQueued.Terminal() || StateRunning.Terminal() {
		t.Fatal("queued/running must not be terminal")
	}
}
