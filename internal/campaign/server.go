package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/live"
	"repro/internal/obs/ops"
)

// Server is the campaign daemon's HTTP surface:
//
//	POST   /jobs              submit a JobSpec, returns 202 + job status
//	GET    /jobs              list every job (submission order)
//	GET    /jobs/{id}         one job's status (state, progress, ETA, shards)
//	GET    /jobs/{id}/events  the job's live event stream as NDJSON
//	                          (flight-recorder replay, then live)
//	GET    /jobs/{id}/report  the job's run report (text)
//	DELETE /jobs/{id}         cancel (queued: immediate; running: next cell
//	                          boundary + flight-recorder dump)
//	GET    /metrics           Prometheus text: jobs by state, queue depth,
//	                          per-job cell throughput and event drops —
//	                          plus the ops plane's route/tenant/queue/
//	                          runtime series when ops is enabled
//	GET    /statusz           aggregate operational snapshot as JSON
//	                          (uptime, per-route latency, tenants, queue,
//	                          runtime health, jobs by state)
//	GET    /healthz           liveness probe; ?verbose=1 returns JSON with
//	                          queue depth, slot use and accepting state
//	GET    /buildinfo         Go/module build information as JSON
//	/debug/pprof/...          profiling, only with ServerConfig.Pprof
type Server struct {
	m     *Manager
	log   *slog.Logger
	ln    net.Listener
	srv   *http.Server
	ops   *ops.Telemetry
	start time.Time

	shutdown chan struct{}

	mu        sync.Mutex // guards closing
	closing   bool
	streams   sync.WaitGroup // open /jobs/{id}/events handlers
	closeOnce sync.Once
}

// ServerConfig configures a campaign server.
type ServerConfig struct {
	// Addr is the listen address (":0" picks an ephemeral port).
	Addr string
	// Manager is the job table the server fronts (required).
	Manager *Manager
	// Logger receives structured request/lifecycle records (default:
	// the manager's logger).
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Ops, when non-nil, wraps every route in request instrumentation
	// (counts, status codes, in-flight, latency, per-tenant) and enables
	// the ops sections of /metrics and /statusz. Typically the same
	// bundle handed to the manager.
	Ops *ops.Telemetry
}

// NewServer starts serving and returns once the listener is bound, so
// Addr is immediately valid.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Manager == nil {
		return nil, fmt.Errorf("campaign: server needs a manager")
	}
	log := cfg.Logger
	if log == nil {
		log = cfg.Manager.log
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{m: cfg.Manager, log: log, ln: ln, ops: cfg.Ops,
		start: time.Now(), shutdown: make(chan struct{})}
	mux := http.NewServeMux()
	// Each route is wrapped in the ops middleware under its mux pattern —
	// a bounded label set, never the raw URL. On a nil ops bundle the
	// wrapper is the identity, so registration has no enabled/disabled
	// branch. (Go 1.22 has no Request.Pattern, hence the explicit label.)
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, cfg.Ops.HTTP().Handler(pattern, h))
	}
	handle("GET /{$}", s.handleIndex)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /buildinfo", s.handleBuildinfo)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /statusz", s.handleStatusz)
	handle("POST /jobs", s.handleSubmit)
	handle("GET /jobs", s.handleList)
	handle("GET /jobs/{id}", s.handleGet)
	handle("GET /jobs/{id}/events", s.handleEvents)
	handle("GET /jobs/{id}/report", s.handleReport)
	handle("DELETE /jobs/{id}", s.handleCancel)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// trackStream registers an open event stream with the close
// bookkeeping; see live.Server for the pattern. It refuses once Close
// has begun, and otherwise the handler owes a streams.Done().
func (s *Server) trackStream() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	s.streams.Add(1)
	return true
}

// Close stops the server, ends open event streams, and waits for their
// handlers to return. Safe to call more than once. It does not touch
// the manager — jobs keep running until Manager.Close.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		close(s.shutdown)
		err = s.srv.Close()
		s.streams.Wait()
	})
	return err
}

// errorBody is every non-2xx response: a message for humans and a
// stable reason for machines.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":%q,"reason":"internal"}`+"\n", err.Error())
		return
	}
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, reason, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Reason: reason})
}

// writeSpecError maps a *SpecError to its HTTP status.
func writeSpecError(w http.ResponseWriter, err error) {
	var se *SpecError
	if !errors.As(err, &se) {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	code := http.StatusBadRequest
	switch se.Reason {
	case ReasonJobNotFound:
		code = http.StatusNotFound
	case ReasonJobFinished:
		code = http.StatusConflict
	case ReasonQueueFull:
		code = http.StatusTooManyRequests
	case ReasonShuttingDown:
		code = http.StatusServiceUnavailable
	}
	writeError(w, code, se.Reason, se.Error())
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `greenbench campaign server

POST   /jobs              submit a job spec (JSON)
GET    /jobs              list jobs
GET    /jobs/{id}         job status
GET    /jobs/{id}/events  job event stream (NDJSON)
GET    /jobs/{id}/report  job run report (text)
DELETE /jobs/{id}         cancel a job
GET    /metrics           Prometheus exposition
GET    /statusz           operational snapshot (JSON)
GET    /healthz           liveness probe (?verbose=1 for JSON detail)
GET    /buildinfo         build information (JSON)
`)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("verbose") == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	depth, running := s.m.QueueDepth(), s.m.Running()
	slots, maxQueued := s.m.Slots(), s.m.MaxQueued()
	writeJSON(w, http.StatusOK, struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Slots      int    `json:"slots"`
		SlotsInUse int    `json:"slots_in_use"`
		MaxQueued  int    `json:"max_queued"`
		// Accepting: a new submission would be admitted rather than
		// rejected with ReasonQueueFull. Saturated: every concurrency
		// slot is busy, so an admitted job would queue.
		Accepting bool `json:"accepting"`
		Saturated bool `json:"saturated"`
	}{
		Status: "ok", QueueDepth: depth, Slots: slots, SlotsInUse: running,
		MaxQueued: maxQueued, Accepting: depth < maxQueued, Saturated: running >= slots,
	})
}

// handleStatusz aggregates the operational picture in one JSON
// document: job counts, queue state, and — when the ops plane is on —
// per-route HTTP stats, tenants, queue histograms and the latest
// runtime self-sample.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	byState := map[string]int{}
	for _, j := range s.m.Jobs() {
		byState[string(j.State())]++
	}
	writeJSON(w, http.StatusOK, struct {
		Now           time.Time        `json:"now"`
		UptimeSeconds float64          `json:"uptime_seconds"`
		JobsByState   map[string]int   `json:"jobs_by_state"`
		QueueDepth    int              `json:"queue_depth"`
		Ops           *ops.StatuszSnap `json:"ops,omitempty"`
		OpsEnabled    bool             `json:"ops_enabled"`
	}{
		Now:           now,
		UptimeSeconds: now.Sub(s.start).Seconds(),
		JobsByState:   byState,
		QueueDepth:    s.m.QueueDepth(),
		Ops:           s.ops.Statusz(now),
		OpsEnabled:    s.ops != nil,
	})
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, _ *http.Request) {
	type module struct {
		Path    string `json:"path"`
		Version string `json:"version,omitempty"`
	}
	out := struct {
		GoVersion string            `json:"go_version"`
		Main      module            `json:"main"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.GoVersion = bi.GoVersion
		out.Main = module{Path: bi.Main.Path, Version: bi.Main.Version}
		out.Settings = map[string]string{}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOOS", "GOARCH":
				out.Settings[kv.Key] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// maxSpecBytes bounds a POST /jobs body; a job spec is small by
// construction, and the cap keeps a misdirected upload from ballooning
// the daemon.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, ReasonBadJSON, "reading body: "+err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ReasonBadSpec,
			fmt.Sprintf("job spec exceeds %d bytes", maxSpecBytes))
		return
	}
	var js JobSpec
	if err := json.Unmarshal(body, &js); err != nil {
		writeError(w, http.StatusBadRequest, ReasonBadJSON, "parsing job spec: "+err.Error())
		return
	}
	j, err := s.m.Submit(js)
	if err != nil {
		writeSpecError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.m.Jobs()
	out := struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: make([]Status, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ReasonJobNotFound, fmt.Sprintf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeSpecError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b, err := os.ReadFile(filepath.Join(j.Dir(), ReportFile))
	if err != nil {
		writeError(w, http.StatusNotFound, ReasonReportNotReady,
			fmt.Sprintf("job %s has no report yet (state %s)", j.ID(), j.State()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(b)
}

// handleEvents streams one job's live events as NDJSON: first the
// flight recorder's retained prefix, then the live feed. Subscribing
// before snapshotting the ring and deduplicating on sequence number
// guarantees no event is skipped or repeated across the seam. The
// stream ends when the client goes away, the server closes, or the job
// reaches a terminal state (after draining what is buffered).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.trackStream() {
		writeError(w, http.StatusServiceUnavailable, ReasonShuttingDown, "server shutting down")
		return
	}
	defer s.streams.Done()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	sub := j.Hub().Bus().Subscribe(256)
	defer sub.Close()
	var last uint64
	for _, e := range j.Hub().FlightEvents() {
		if live.WriteEventNDJSON(w, e) != nil {
			return
		}
		last = e.Seq
	}
	flush()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case e := <-sub.Events():
			if e.Seq <= last {
				continue // already replayed from the flight ring
			}
			if live.WriteEventNDJSON(w, e) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		case <-j.Done():
			// Terminal: drain what is buffered, then end the stream so
			// curl-style consumers terminate naturally.
			for {
				select {
				case e := <-sub.Events():
					if e.Seq <= last {
						continue
					}
					if live.WriteEventNDJSON(w, e) != nil {
						return
					}
				default:
					flush()
					return
				}
			}
		case <-tick.C:
		}
	}
}

// handleMetrics renders the server-level Prometheus exposition: job
// counts by state, queue depth, and per-job cell/event counters. Jobs
// iterate in submission order and states in lifecycle order, so the
// exposition is stable run to run.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	jobs := s.m.Jobs()
	byState := map[State]int{}
	for _, j := range jobs {
		byState[j.State()]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE campaign_jobs gauge\n")
	for _, st := range States() {
		fmt.Fprintf(&b, "campaign_jobs{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(&b, "# TYPE campaign_queue_depth gauge\ncampaign_queue_depth %d\n", s.m.QueueDepth())
	fmt.Fprintf(&b, "# TYPE campaign_jobs_total counter\ncampaign_jobs_total %d\n", len(jobs))
	fmt.Fprintf(&b, "# TYPE campaign_job_cells_total gauge\n")
	fmt.Fprintf(&b, "# TYPE campaign_job_cells_done gauge\n")
	fmt.Fprintf(&b, "# TYPE campaign_job_events_published gauge\n")
	fmt.Fprintf(&b, "# TYPE campaign_job_events_dropped gauge\n")
	var dropped uint64
	for _, j := range jobs {
		p := j.Hub().Progress()
		id := j.ID()
		fmt.Fprintf(&b, "campaign_job_cells_total{job=%q} %d\n", id, p.CellsTotal)
		fmt.Fprintf(&b, "campaign_job_cells_done{job=%q} %d\n", id, p.CellsDone)
		fmt.Fprintf(&b, "campaign_job_events_published{job=%q} %d\n", id, p.EventsPublished)
		fmt.Fprintf(&b, "campaign_job_events_dropped{job=%q} %d\n", id, p.EventsDropped)
		dropped += p.EventsDropped
	}
	fmt.Fprintf(&b, "# TYPE campaign_events_dropped_total counter\ncampaign_events_dropped_total %d\n", dropped)
	io.WriteString(w, b.String())
	// The ops plane appends its route/tenant/queue/runtime series; a nil
	// bundle appends nothing.
	ops.WritePrometheus(w, s.ops)
}
