package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fastJob is the quickest real campaign: one benchmark at one point on
// the smallest built-in system.
func fastJob() JobSpec {
	return JobSpec{System: "testbed", Benchmarks: []string{"hpl"}, Procs: 2}
}

// slowJob paces each sweep cell so tests can observe (and cancel) a job
// mid-run.
func slowJob() JobSpec {
	return JobSpec{System: "testbed", Sweep: true, CellPauseMS: 50}
}

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID(), j.State())
	}
}

func TestManagerRunsJobToDone(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	j, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-0001" {
		t.Errorf("first job ID = %q", j.ID())
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %s, want done (error: %s)", st, j.Status().Error)
	}
	// Every artefact of the isolated job directory must exist: the job
	// always runs traced.
	for _, name := range []string{ResultsFile, TraceFile, MetricsFile, ReportFile} {
		if _, err := os.Stat(filepath.Join(j.Dir(), name)); err != nil {
			t.Errorf("artefact %s missing: %v", name, err)
		}
	}
	st := j.Status()
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Error("done job missing started/finished timestamps")
	}
	if st.Progress.CellsTotal != 1 || st.Progress.CellsDone != 1 {
		t.Errorf("progress = %+v, want 1/1 cells", st.Progress)
	}
	if len(st.Artifacts) != 4 {
		t.Errorf("status lists artefacts %v, want 4", st.Artifacts)
	}
}

func TestManagerQueuesBeyondMaxConcurrent(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxConcurrent: 1})
	first, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if st := second.State(); st != StateQueued {
		t.Fatalf("second job state = %s, want queued behind the first", st)
	}
	if d := m.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	waitDone(t, first)
	waitDone(t, second)
	if st := second.State(); st != StateDone {
		t.Fatalf("second job state = %s, want done", st)
	}
}

func TestManagerCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxConcurrent: 1})
	if _, err := m.Submit(slowJob()); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, queued)
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	// Cancelling a finished job is a structured conflict.
	_, err = m.Cancel(queued.ID())
	var se *SpecError
	if !errors.As(err, &se) || se.Reason != ReasonJobFinished {
		t.Fatalf("second cancel: %v, want reason %s", err, ReasonJobFinished)
	}
}

func TestManagerCancelRunningJobDumpsFlight(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	j, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	if _, err := os.Stat(filepath.Join(j.Dir(), FlightFile)); err != nil {
		t.Errorf("cancelled running job left no flight dump: %v", err)
	}
	if !j.CancelRequested() {
		t.Error("CancelRequested not recorded")
	}
}

func TestManagerRejectsWhenQueueFull(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxConcurrent: 1, MaxQueued: 1})
	if _, err := m.Submit(slowJob()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(slowJob()); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(fastJob())
	var se *SpecError
	if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("overfull submit: %v, want reason %s", err, ReasonQueueFull)
	}
}

func TestManagerRejectsShardedJobWithoutWorkerFactory(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	_, err := m.Submit(JobSpec{System: "testbed", Sweep: true, Shards: 2})
	var se *SpecError
	if !errors.As(err, &se) || se.Reason != ReasonNoWorkerFactory {
		t.Fatalf("sharded submit: %v, want reason %s", err, ReasonNoWorkerFactory)
	}
}

func TestManagerCloseCancelsEverything(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxConcurrent: 1})
	running, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if st := queued.State(); st != StateCancelled {
		t.Errorf("queued job state after Close = %s, want cancelled", st)
	}
	if st := running.State(); !st.Terminal() {
		t.Errorf("running job state after Close = %s, want terminal", st)
	}
	_, err = m.Submit(fastJob())
	var se *SpecError
	if !errors.As(err, &se) || se.Reason != ReasonShuttingDown {
		t.Fatalf("submit after Close: %v, want reason %s", err, ReasonShuttingDown)
	}
}

func TestManagerRejectsBadFlightCapacity(t *testing.T) {
	_, err := NewManager(ManagerConfig{Dir: t.TempDir(), FlightCapacity: 3})
	if err == nil {
		t.Fatal("out-of-range flight capacity accepted")
	}
}

func TestManagerCustomFlightCapacity(t *testing.T) {
	m := newTestManager(t, ManagerConfig{FlightCapacity: 64})
	j, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %s, want done", st)
	}
}
