package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/live"
)

func startTestServer(t *testing.T, cfg ManagerConfig) (*Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Manager: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, m
}

func httpJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// postRaw posts a raw body (for malformed-JSON cases).
func postRaw(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func decodeReason(t *testing.T, body []byte) string {
	t.Helper()
	var eb struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, body)
	}
	if eb.Error == "" {
		t.Fatalf("error body has no message: %s", body)
	}
	return eb.Reason
}

func TestServerRejectsBadSubmissions(t *testing.T) {
	srv, _ := startTestServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()
	for _, tc := range []struct {
		name   string
		body   string
		code   int
		reason string
	}{
		{"malformed JSON", `{"system": "testbed`, http.StatusBadRequest, ReasonBadJSON},
		{"not an object", `[1,2,3]`, http.StatusBadRequest, ReasonBadJSON},
		{"unknown system", `{"system":"cray"}`, http.StatusBadRequest, ReasonUnknownSystem},
		{"unknown benchmark", `{"system":"testbed","benchmarks":["linpack9000"]}`, http.StatusBadRequest, ReasonUnknownBenchmark},
		{"negative shards", `{"system":"testbed","shards":-4}`, http.StatusBadRequest, ReasonBadSpec},
		{"negative workers", `{"system":"testbed","workers":-1}`, http.StatusBadRequest, ReasonBadSpec},
		{"sharded without factory", `{"system":"testbed","sweep":true,"shards":2}`, http.StatusBadRequest, ReasonNoWorkerFactory},
	} {
		code, body := postRaw(t, base+"/jobs", tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.code, body)
			continue
		}
		if reason := decodeReason(t, body); reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, reason, tc.reason)
		}
	}
	// Nothing above may have created a job.
	code, body := httpJSON(t, http.MethodGet, base+"/jobs", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"jobs": []`) {
		t.Fatalf("job list after rejections: %d %s", code, body)
	}
}

func TestServerJobLifecycleOverHTTP(t *testing.T) {
	srv, _ := startTestServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()

	code, body := httpJSON(t, http.MethodPost, base+"/jobs", fastJob())
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submitted status = %+v", st)
	}

	// Poll to done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = httpJSON(t, http.MethodGet, base+"/jobs/"+st.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", st.ID, code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	code, body = httpJSON(t, http.MethodGet, base+"/jobs/"+st.ID+"/report", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "greenbench campaign") {
		t.Fatalf("GET report: %d %s", code, body)
	}

	// Cancelling a finished job conflicts.
	code, body = httpJSON(t, http.MethodDelete, base+"/jobs/"+st.ID, nil)
	if code != http.StatusConflict || decodeReason(t, body) != ReasonJobFinished {
		t.Fatalf("DELETE finished job: %d %s", code, body)
	}
}

func TestServerUnknownJobIs404(t *testing.T) {
	srv, _ := startTestServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()
	for _, url := range []string{
		base + "/jobs/job-9999",
		base + "/jobs/job-9999/events",
		base + "/jobs/job-9999/report",
	} {
		code, body := httpJSON(t, http.MethodGet, url, nil)
		if code != http.StatusNotFound || decodeReason(t, body) != ReasonJobNotFound {
			t.Errorf("GET %s: %d %s", url, code, body)
		}
	}
	code, body := httpJSON(t, http.MethodDelete, base+"/jobs/job-9999", nil)
	if code != http.StatusNotFound || decodeReason(t, body) != ReasonJobNotFound {
		t.Errorf("DELETE unknown job: %d %s", code, body)
	}
}

func TestServerReportNotReady(t *testing.T) {
	srv, m := startTestServer(t, ManagerConfig{MaxConcurrent: 1})
	if _, err := m.Submit(slowJob()); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	code, body := httpJSON(t, http.MethodGet, "http://"+srv.Addr()+"/jobs/"+queued.ID()+"/report", nil)
	if code != http.StatusNotFound || decodeReason(t, body) != ReasonReportNotReady {
		t.Fatalf("report of queued job: %d %s", code, body)
	}
}

func TestServerHealthAndBuildinfo(t *testing.T) {
	srv, _ := startTestServer(t, ManagerConfig{})
	base := "http://" + srv.Addr()
	if code, body := httpJSON(t, http.MethodGet, base+"/healthz", nil); code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := httpJSON(t, http.MethodGet, base+"/buildinfo", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "go_version") {
		t.Fatalf("buildinfo: %d %s", code, body)
	}
	if code, body := httpJSON(t, http.MethodGet, base+"/", nil); code != http.StatusOK || !strings.Contains(string(body), "POST   /jobs") {
		t.Fatalf("index: %d %s", code, body)
	}
}

// readEventStream consumes a job's /events NDJSON stream to EOF and
// returns the decoded events.
func readEventStream(t *testing.T, url string) []live.Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []live.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e live.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("stream line not JSON: %v\n%s", err, sc.Bytes())
		}
		events = append(events, e)
	}
	return events
}

// TestServerEventsStreamEndsAtTerminalState: a stream attached to a
// running job receives its events without gaps or duplicates and
// terminates on its own once the job is done.
func TestServerEventsStreamEndsAtTerminalState(t *testing.T) {
	srv, m := startTestServer(t, ManagerConfig{})
	j, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []live.Event, 1)
	go func() {
		done <- readEventStream(t, "http://"+srv.Addr()+"/jobs/"+j.ID()+"/events")
	}()
	waitDone(t, j)
	var events []live.Event
	select {
	case events = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not end after the job finished")
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	for i, e := range events {
		if e.Seq != events[0].Seq+uint64(i) {
			t.Fatalf("stream seq gap or duplicate at %d: %d after %d", i, e.Seq, events[i-1].Seq)
		}
	}
}

// TestServerEventsReplayForFinishedJob: attaching after the job finished
// replays the flight ring and terminates immediately.
func TestServerEventsReplayForFinishedJob(t *testing.T) {
	srv, m := startTestServer(t, ManagerConfig{})
	j, err := m.Submit(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	events := readEventStream(t, "http://"+srv.Addr()+"/jobs/"+j.ID()+"/events")
	flight := j.Hub().FlightEvents()
	if len(events) != len(flight) {
		t.Fatalf("replayed %d events, flight ring holds %d", len(events), len(flight))
	}
}

// TestServerConcurrentJobsDoNotShareObservability is the isolation
// guarantee under load (run with -race): two jobs running at once keep
// separate event streams, separate progress, and separate metrics rows.
func TestServerConcurrentJobsDoNotShareObservability(t *testing.T) {
	srv, m := startTestServer(t, ManagerConfig{MaxConcurrent: 2})
	sweep, err := m.Submit(JobSpec{Name: "sweep", System: "testbed", Sweep: true, CellPauseMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	point, err := m.Submit(JobSpec{Name: "point", System: "testbed", Benchmarks: []string{"hpl"}, Procs: 2, CellPauseMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Stream both jobs' events while both run.
	type streamed struct {
		id     string
		events []live.Event
	}
	results := make(chan streamed, 2)
	for _, j := range []*Job{sweep, point} {
		go func() {
			results <- streamed{j.ID(), readEventStream(t, "http://"+srv.Addr()+"/jobs/"+j.ID()+"/events")}
		}()
	}
	waitDone(t, sweep)
	waitDone(t, point)
	byID := map[string][]live.Event{}
	for i := 0; i < 2; i++ {
		select {
		case s := <-results:
			byID[s.id] = s.events
		case <-time.After(10 * time.Second):
			t.Fatal("event streams did not end")
		}
	}
	if sweep.State() != StateDone || point.State() != StateDone {
		t.Fatalf("states: sweep=%s point=%s", sweep.State(), point.State())
	}

	// Each stream must match its own hub exactly — no cross-talk.
	for _, j := range []*Job{sweep, point} {
		published := j.Hub().Progress().EventsPublished
		if got := uint64(len(byID[j.ID()])); got != published {
			t.Errorf("job %s streamed %d events, hub published %d", j.ID(), got, published)
		}
	}
	// The jobs are different sizes; identical totals would mean shared
	// progress state.
	sp, pp := sweep.Hub().Progress(), point.Hub().Progress()
	if sp.CellsTotal <= pp.CellsTotal {
		t.Errorf("sweep cells_total %d not greater than point's %d", sp.CellsTotal, pp.CellsTotal)
	}
	if pp.CellsTotal != 1 || pp.CellsDone != 1 {
		t.Errorf("point progress = %+v, want 1/1", pp)
	}

	// /metrics tracks both jobs in submission order with their own rows.
	code, body := httpJSON(t, http.MethodGet, "http://"+srv.Addr()+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`campaign_jobs{state="done"} 2`,
		fmt.Sprintf("campaign_job_cells_total{job=%q} %d", sweep.ID(), sp.CellsTotal),
		fmt.Sprintf("campaign_job_cells_total{job=%q} %d", point.ID(), pp.CellsTotal),
		"campaign_queue_depth 0",
		"campaign_jobs_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if swIdx, ptIdx := strings.Index(text, sweep.ID()), strings.Index(text, point.ID()); swIdx == -1 || ptIdx == -1 || swIdx > ptIdx {
		t.Errorf("per-job metrics not in submission order (sweep at %d, point at %d)", swIdx, ptIdx)
	}
}

// TestServerCloseEndsEventStreams: closing the server while a client
// streams a running job's events terminates the stream and Close
// returns; the job itself keeps running under the manager.
func TestServerCloseEndsEventStreams(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Manager: m})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/jobs/" + j.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	streamDone := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		close(streamDone)
	}()
	closed := make(chan struct{})
	go func() {
		srv.Close()
		srv.Close() // idempotent
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close blocked behind an open event stream")
	}
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream still open after server Close")
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("job state after server close = %s, want done (server close must not kill jobs)", st)
	}
}

func TestServerCancelRunningJobOverHTTP(t *testing.T) {
	srv, m := startTestServer(t, ManagerConfig{})
	j, err := m.Submit(slowJob())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	code, body := httpJSON(t, http.MethodDelete, "http://"+srv.Addr()+"/jobs/"+j.ID(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE running job: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.CancelRequested {
		t.Error("cancel response does not show cancel_requested")
	}
	waitDone(t, j)
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
}
