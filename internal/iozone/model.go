package iozone

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
)

// desScratch is a reusable discrete-event stack: an engine plus the
// backend bound to it. Sweeps call Simulate once per cell, and building
// the stack fresh each time dominated the cell's allocation budget;
// Reset/Reconfigure restore both to freshly-constructed state, so a
// recycled stack simulates bit-identically to a new one.
type desScratch struct {
	eng *sim.Engine
	be  *storage.Backend
}

var desPool = sync.Pool{New: func() any { return &desScratch{} }}

// ModelConfig drives the simulated-cluster IOzone write test.
type ModelConfig struct {
	Spec *cluster.Spec
	// Nodes is the number of client nodes performing I/O (the paper's
	// Figure 4 sweeps node count, not process count).
	Nodes int
	// Procs optionally records the MPI process count of the enclosing TGI
	// sweep; extra processes on a node add a small CPU overhead but no
	// extra backend throughput. 0 means one process per node.
	Procs int
	// FileBytesPerNode is each node's file size. 0 means 16 GiB.
	FileBytesPerNode float64
	// ClientOverhead is the fraction of per-client protocol overhead
	// (metadata round trips, commit barriers) reducing effective rate.
	ClientOverhead float64
	// EventLimit caps the discrete-event simulation's event budget (0 uses
	// the engine default). The resilient suite runner sets it to bound a
	// runaway benchmark; exceeding it surfaces as sim.ErrEventLimit.
	EventLimit uint64
	// Hooks, when set, is attached to the discrete-event engine so an
	// observer can watch events dispatch and clients contend for the
	// shared backend. Purely passive; nil costs nothing.
	Hooks *sim.Hooks
}

// DefaultModelConfig returns the configuration used by the paper
// reproduction sweeps.
func DefaultModelConfig(spec *cluster.Spec, nodes int) ModelConfig {
	return ModelConfig{
		Spec:             spec,
		Nodes:            nodes,
		FileBytesPerNode: 40 << 30,
		ClientOverhead:   0.05,
	}
}

// ModelResult is the outcome of a simulated IOzone run.
type ModelResult struct {
	Nodes     int
	Aggregate units.BytesPerSec // cluster-wide write rate
	Duration  units.Seconds     // makespan of the slowest client
	Profile   *cluster.LoadProfile
	Shared    bool // true when a shared backend was the bottleneck path
	// Engine summarises the discrete-event kernel's work (zero for the
	// local-disk path, which needs no event simulation).
	Engine sim.Stats
}

// Simulate evaluates the write test against the cluster's storage topology.
//
// Shared-backend clusters (Fire): every client streams its file through the
// backend's SharedResource in a discrete-event simulation — aggregate
// throughput ramps with client count until the backend ceiling, after which
// adding nodes only adds power draw, which is exactly the saturating shape
// of the paper's Figure 4. Local-disk clusters (SystemG): every node writes
// at its own disk speed and aggregate throughput scales linearly.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("iozone: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes <= 0 || cfg.Nodes > cfg.Spec.Nodes {
		return nil, fmt.Errorf("iozone: %d client nodes outside [1, %d]", cfg.Nodes, cfg.Spec.Nodes)
	}
	if cfg.ClientOverhead < 0 || cfg.ClientOverhead >= 1 {
		return nil, fmt.Errorf("iozone: client overhead %v outside [0, 1)", cfg.ClientOverhead)
	}
	fileBytes := cfg.FileBytesPerNode
	if fileBytes == 0 {
		fileBytes = 16 << 30
	}
	if fileBytes < 0 {
		return nil, errors.New("iozone: negative file size")
	}
	procs := cfg.Procs
	if procs <= 0 {
		procs = cfg.Nodes
	}

	shared := cfg.Spec.Storage.AggregateBps > 0
	var makespan float64
	var engStats sim.Stats
	if shared {
		sc := desPool.Get().(*desScratch)
		defer desPool.Put(sc)
		if sc.eng == nil {
			freshEng := sim.NewEngine(cfg.EventLimit)
			be, err := storage.NewBackend(freshEng, cfg.Spec.Storage.AggregateBps, cfg.Spec.Storage.PerClientBps)
			if err != nil {
				return nil, err
			}
			sc.eng, sc.be = freshEng, be
		} else {
			sc.eng.Reset(cfg.EventLimit)
			if err := sc.be.Reconfigure(cfg.Spec.Storage.AggregateBps, cfg.Spec.Storage.PerClientBps); err != nil {
				return nil, err
			}
		}
		eng, be := sc.eng, sc.be
		eng.SetHooks(cfg.Hooks)
		for i := 0; i < cfg.Nodes; i++ {
			if err := be.SubmitWrite(fileBytes, nil); err != nil {
				return nil, err
			}
		}
		if _, err := eng.RunAll(); err != nil {
			return nil, err
		}
		engStats = eng.Stats()
		// The queue only ever holds completion events, so after RunAll the
		// virtual clock sits at the last client's finish time: the makespan.
		makespan = float64(eng.Now())
	} else {
		// Local disks: each node streams at its own disk bandwidth.
		makespan = fileBytes / cfg.Spec.Node.Disk.BandwidthBps
	}
	makespan /= 1 - cfg.ClientOverhead
	if makespan <= 0 {
		return nil, errors.New("iozone: degenerate zero makespan")
	}
	agg := float64(cfg.Nodes) * fileBytes / makespan

	// Load profile. Disk/net utilisation from the achieved per-node rate;
	// a small CPU cost per process issuing I/O.
	perNodeRate := agg / float64(cfg.Nodes)
	base := procs / cfg.Nodes
	extra := procs % cfg.Nodes
	cores := cfg.Spec.Node.Cores()
	phase := cluster.Phase{
		Duration: units.Seconds(makespan),
		NodeUtil: make([]cluster.Util, cfg.Spec.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		// Round-robin process placement: the first procs%nodes client
		// nodes carry one extra process, and every client runs at least
		// one.
		d := base
		if i < extra {
			d++
		}
		if d == 0 {
			d = 1
		}
		// Each writer process costs ~8% of one core; expressed as a
		// fraction of the node's total CPU.
		u := cluster.Util{
			CPU: math.Min(1, 0.08*float64(d)/float64(cores)),
		}
		if shared {
			u.Net = perNodeRate / cfg.Spec.Node.NIC.BandwidthBps
			u.Disk = 0 // data leaves over the network to the backend
		} else {
			u.Disk = perNodeRate / cfg.Spec.Node.Disk.BandwidthBps
		}
		phase.NodeUtil[i] = u.Clamp()
	}
	return &ModelResult{
		Nodes:     cfg.Nodes,
		Aggregate: units.BytesPerSec(agg),
		Duration:  units.Seconds(makespan),
		Profile:   &cluster.LoadProfile{Phases: []cluster.Phase{phase}},
		Shared:    shared,
		Engine:    engStats,
	}, nil
}
