package iozone

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func memTarget(t *testing.T) Target {
	t.Helper()
	dev, err := storage.NewMemDevice(1 << 16) // 256 MiB
	if err != nil {
		t.Fatal(err)
	}
	fs, err := storage.NewFS(dev)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewFSTarget(fs, "bench.dat")
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestRunValidation(t *testing.T) {
	tgt := memTarget(t)
	defer tgt.Close()
	if _, err := Run(nil, Config{FileBytes: 10, RecordBytes: 5}); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := Run(tgt, Config{FileBytes: 0, RecordBytes: 5}); err == nil {
		t.Error("zero file accepted")
	}
	if _, err := Run(tgt, Config{FileBytes: 10, RecordBytes: 0}); err == nil {
		t.Error("zero record accepted")
	}
	if _, err := Run(tgt, Config{FileBytes: 10, RecordBytes: 20}); err == nil {
		t.Error("record > file accepted")
	}
}

func TestWriteTestOnMemFS(t *testing.T) {
	tgt := memTarget(t)
	defer tgt.Close()
	cfg := Config{FileBytes: 8 << 20, RecordBytes: 64 << 10, Seed: 1}
	res, err := Run(tgt, cfg, Write)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Test != Write {
		t.Fatalf("results = %+v", res)
	}
	if float64(res[0].Rate) <= 0 {
		t.Errorf("rate = %v", res[0].Rate)
	}
	if res[0].FileBytes != cfg.FileBytes {
		t.Errorf("file bytes = %d", res[0].FileBytes)
	}
}

func TestAllTestsSequence(t *testing.T) {
	tgt := memTarget(t)
	defer tgt.Close()
	cfg := Config{FileBytes: 4 << 20, RecordBytes: 128 << 10, Seed: 2}
	res, err := Run(tgt, cfg, Write, Rewrite, Read, Reread)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	names := []string{"write", "rewrite", "read", "reread"}
	for i, r := range res {
		if r.Test.String() != names[i] {
			t.Errorf("test %d = %v", i, r.Test)
		}
		if float64(r.Rate) <= 0 {
			t.Errorf("%v rate %v", r.Test, r.Rate)
		}
	}
}

func TestReadWithoutPriorWrite(t *testing.T) {
	tgt := memTarget(t)
	defer tgt.Close()
	// Read-first order must transparently create the file.
	cfg := Config{FileBytes: 1 << 20, RecordBytes: 64 << 10, Seed: 3}
	res, err := Run(tgt, cfg, Read)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || float64(res[0].Rate) <= 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestUnalignedTail(t *testing.T) {
	tgt := memTarget(t)
	defer tgt.Close()
	// File not a multiple of the record: the tail record is partial.
	cfg := Config{FileBytes: (1 << 20) + 12345, RecordBytes: 64 << 10, Seed: 4}
	if _, err := Run(tgt, cfg, Write, Read); err != nil {
		t.Fatal(err)
	}
}

func TestOSTarget(t *testing.T) {
	tgt, err := NewOSTarget(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{FileBytes: 1 << 20, RecordBytes: 64 << 10, Seed: 5}
	res, err := Run(tgt, cfg, Write, Read)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	if err := tgt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := Simulate(DefaultModelConfig(cluster.Fire(), 0)); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Simulate(DefaultModelConfig(cluster.Fire(), 99)); err == nil {
		t.Error("too many nodes accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 2)
	bad.ClientOverhead = 1
	if _, err := Simulate(bad); err == nil {
		t.Error("overhead=1 accepted")
	}
}

func TestSharedBackendSaturates(t *testing.T) {
	// Fire's backend: 400 MB/s aggregate, 150 MB/s per client.
	get := func(nodes int) *ModelResult {
		r, err := Simulate(DefaultModelConfig(cluster.Fire(), nodes))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2, r3, r8 := get(1), get(2), get(3), get(8)
	if !r1.Shared {
		t.Error("Fire should use the shared backend")
	}
	// One client: capped at ~150 MB/s (times overhead).
	if v := float64(r1.Aggregate); v < 120e6 || v > 160e6 {
		t.Errorf("1 node aggregate = %v", r1.Aggregate)
	}
	// Ramp from 1 to 2 clients.
	if float64(r2.Aggregate) <= float64(r1.Aggregate)*1.5 {
		t.Errorf("no ramp: %v -> %v", r1.Aggregate, r2.Aggregate)
	}
	// Saturation: 3 clients hit the backend ceiling; 8 adds nothing.
	if math.Abs(float64(r8.Aggregate)-float64(r3.Aggregate)) > 0.05*float64(r3.Aggregate) {
		t.Errorf("backend not saturated: 3 nodes %v, 8 nodes %v", r3.Aggregate, r8.Aggregate)
	}
}

func TestLocalDisksScaleLinearly(t *testing.T) {
	get := func(nodes int) float64 {
		r, err := Simulate(DefaultModelConfig(cluster.SystemG(), nodes))
		if err != nil {
			t.Fatal(err)
		}
		if r.Shared {
			t.Error("SystemG should use local disks")
		}
		return float64(r.Aggregate)
	}
	a, b := get(16), get(64)
	if math.Abs(b/a-4) > 0.01 {
		t.Errorf("local disks not linear: %v -> %v", a, b)
	}
}

func TestModelProfile(t *testing.T) {
	r, err := Simulate(DefaultModelConfig(cluster.Fire(), 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Profile.Validate(cluster.Fire()); err != nil {
		t.Fatal(err)
	}
	u := r.Profile.Phases[0].NodeUtil[0]
	// Shared backend: traffic leaves over the NIC, not the local disk.
	if u.Disk != 0 {
		t.Errorf("disk util %v on a shared-backend cluster", u.Disk)
	}
	if u.Net <= 0 {
		t.Errorf("net util %v", u.Net)
	}
	// Local-disk cluster: the reverse.
	r2, err := Simulate(DefaultModelConfig(cluster.SystemG(), 4))
	if err != nil {
		t.Fatal(err)
	}
	u2 := r2.Profile.Phases[0].NodeUtil[0]
	if u2.Disk <= 0 || u2.Net != 0 {
		t.Errorf("local-disk util = %+v", u2)
	}
}

func TestModelDurationMatchesAggregate(t *testing.T) {
	cfg := DefaultModelConfig(cluster.Fire(), 4)
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	implied := float64(cfg.Nodes) * cfg.FileBytesPerNode / float64(r.Duration)
	if math.Abs(implied-float64(r.Aggregate)) > 1 {
		t.Errorf("aggregate %v inconsistent with duration %v", r.Aggregate, r.Duration)
	}
}
