// Package iozone implements an IOzone-style filesystem benchmark — the I/O
// component of the paper's TGI suite. The paper runs only IOzone's write
// test "for simplicity of evaluation"; this package provides write, rewrite,
// read and reread tests with configurable file and record sizes, reporting
// throughput in bytes/second like the original tool.
//
// Native mode drives either the host filesystem (a directory) or the
// in-memory storage.FS substrate. Simulated mode (model.go) evaluates the
// cluster's storage topology: per-node local disks, or a shared backend all
// nodes contend for — the mechanism behind the Fire cluster's early I/O
// saturation.
package iozone

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
)

// Test identifies one IOzone operation.
type Test int

// The supported tests. The paper's evaluation uses Write only.
const (
	Write Test = iota
	Rewrite
	Read
	Reread
)

func (t Test) String() string {
	switch t {
	case Write:
		return "write"
	case Rewrite:
		return "rewrite"
	case Read:
		return "read"
	case Reread:
		return "reread"
	default:
		return fmt.Sprintf("test(%d)", int(t))
	}
}

// Target abstracts where the benchmark's file lives.
type Target interface {
	WriteAt(off int64, p []byte) error
	ReadAt(off int64, p []byte) error
	Close() error
}

// fsTarget adapts storage.FS.
type fsTarget struct {
	fs   *storage.FS
	name string
}

func (t *fsTarget) WriteAt(off int64, p []byte) error {
	_, err := t.fs.WriteAt(t.name, off, p)
	return err
}

func (t *fsTarget) ReadAt(off int64, p []byte) error {
	_, err := t.fs.ReadAt(t.name, off, p)
	return err
}

func (t *fsTarget) Close() error { return t.fs.Delete(t.name) }

// NewFSTarget creates the benchmark file on the in-memory filesystem.
func NewFSTarget(fs *storage.FS, name string) (Target, error) {
	if err := fs.Create(name); err != nil {
		return nil, err
	}
	return &fsTarget{fs: fs, name: name}, nil
}

// osTarget adapts a host file.
type osTarget struct {
	f *os.File
}

func (t *osTarget) WriteAt(off int64, p []byte) error {
	_, err := t.f.WriteAt(p, off)
	return err
}

func (t *osTarget) ReadAt(off int64, p []byte) error {
	_, err := t.f.ReadAt(p, off)
	return err
}

func (t *osTarget) Close() error {
	name := t.f.Name()
	if err := t.f.Close(); err != nil {
		return err
	}
	return os.Remove(name)
}

// NewOSTarget creates the benchmark file in dir on the host filesystem.
func NewOSTarget(dir string) (Target, error) {
	f, err := os.CreateTemp(dir, "iozone-*.dat")
	if err != nil {
		return nil, err
	}
	return &osTarget{f: f}, nil
}

// Config describes one native run.
type Config struct {
	FileBytes   int64  // total file size
	RecordBytes int    // I/O unit (IOzone's -r)
	Seed        uint64 // record-content generator
}

// Result is one test's outcome.
type Result struct {
	Test       Test
	FileBytes  int64
	RecordSize int
	Elapsed    units.Seconds
	Rate       units.BytesPerSec
}

// Run executes the given tests in order against the target, reusing the
// same file (so Rewrite/Reread measure warm paths, as in IOzone).
func Run(target Target, cfg Config, tests ...Test) ([]Result, error) {
	if target == nil {
		return nil, errors.New("iozone: nil target")
	}
	if cfg.FileBytes <= 0 || cfg.RecordBytes <= 0 {
		return nil, errors.New("iozone: file and record sizes must be positive")
	}
	if int64(cfg.RecordBytes) > cfg.FileBytes {
		return nil, errors.New("iozone: record larger than file")
	}
	if len(tests) == 0 {
		tests = []Test{Write}
	}
	rec := make([]byte, cfg.RecordBytes)
	out := make([]Result, 0, len(tests))
	written := false
	for _, tst := range tests {
		if (tst == Read || tst == Reread || tst == Rewrite) && !written {
			// Ensure the file exists before read/rewrite phases.
			if err := fillFile(target, cfg, rec); err != nil {
				return nil, err
			}
			written = true
		}
		start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		switch tst {
		case Write, Rewrite:
			if err := fillFile(target, cfg, rec); err != nil {
				return nil, err
			}
			written = true
		case Read, Reread:
			for off := int64(0); off < cfg.FileBytes; off += int64(cfg.RecordBytes) {
				n := int64(cfg.RecordBytes)
				if off+n > cfg.FileBytes {
					n = cfg.FileBytes - off
				}
				if err := target.ReadAt(off, rec[:n]); err != nil {
					return nil, fmt.Errorf("iozone: %v at offset %d: %w", tst, off, err)
				}
			}
		default:
			return nil, fmt.Errorf("iozone: unknown test %v", tst)
		}
		el := time.Since(start).Seconds() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		if el <= 0 {
			el = 1e-9
		}
		out = append(out, Result{
			Test:       tst,
			FileBytes:  cfg.FileBytes,
			RecordSize: cfg.RecordBytes,
			Elapsed:    units.Seconds(el),
			Rate:       units.BytesPerSec(float64(cfg.FileBytes) / el),
		})
	}
	return out, nil
}

// fillFile writes the whole file record by record with generated content.
func fillFile(target Target, cfg Config, rec []byte) error {
	rng := sim.NewRNG(cfg.Seed + 1)
	for i := range rec {
		rec[i] = byte(rng.Uint64())
	}
	for off := int64(0); off < cfg.FileBytes; off += int64(cfg.RecordBytes) {
		n := int64(cfg.RecordBytes)
		if off+n > cfg.FileBytes {
			n = cfg.FileBytes - off
		}
		if err := target.WriteAt(off, rec[:n]); err != nil {
			return fmt.Errorf("iozone: write at offset %d: %w", off, err)
		}
	}
	return nil
}
