// Package blas implements the dense linear-algebra kernels the HPL
// benchmark is built from: level-1 vector operations (axpy, scal, swap,
// idamax, dot, nrm2), the level-2 rank-1 update (ger), triangular solves
// (trsm) and a cache-blocked matrix-matrix multiply (gemm).
//
// All matrices are row-major with an explicit leading dimension (the stride
// between consecutive rows), matching the layout the hpl package uses for
// its block-cyclic panels. Only the variants HPL needs are provided; this is
// a benchmark substrate, not a general BLAS.
package blas

import "math"

// Idamax returns the index of the element of x with the largest absolute
// value, or -1 when x is empty. Ties resolve to the lowest index, as in the
// reference BLAS — pivot reproducibility depends on it.
func Idamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bv := 0, math.Abs(x[0])
	for i, v := range x[1:] {
		if a := math.Abs(v); a > bv {
			best, bv = i+1, a
		}
	}
	return best
}

// IdamaxStride is Idamax over n elements of x spaced inc apart.
func IdamaxStride(n int, x []float64, inc int) int {
	if n <= 0 || inc <= 0 {
		return -1
	}
	best, bv := 0, math.Abs(x[0])
	for i := 1; i < n; i++ {
		if a := math.Abs(x[i*inc]); a > bv {
			best, bv = i, a
		}
	}
	return best
}

// Scal scales x by alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	var s float64
	_ = y[len(x)-1]
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Nrm2 returns the Euclidean norm of x, with scaling against overflow.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Swap exchanges x and y elementwise.
func Swap(x, y []float64) {
	_ = y[len(x)-1]
	for i := range x {
		x[i], y[i] = y[i], x[i]
	}
}

// Ger performs the rank-1 update A += alpha * x * yᵀ where A is m×n
// row-major with leading dimension lda.
func Ger(m, n int, alpha float64, x, y, a []float64, lda int) {
	for i := 0; i < m; i++ {
		axi := alpha * x[i]
		if axi == 0 {
			continue
		}
		row := a[i*lda : i*lda+n]
		for j, yv := range y[:n] {
			row[j] += axi * yv
		}
	}
}

// TrsmLowerUnitLeft solves L·X = B in place, where L is m×m lower-triangular
// with an implicit unit diagonal (strictly-lower entries read from l) and B
// is m×n row-major. HPL uses this to propagate the panel factorisation into
// the trailing block row.
func TrsmLowerUnitLeft(m, n int, l []float64, ldl int, b []float64, ldb int) {
	for i := 1; i < m; i++ {
		bi := b[i*ldb : i*ldb+n]
		for k := 0; k < i; k++ {
			lik := l[i*ldl+k]
			if lik == 0 {
				continue
			}
			bk := b[k*ldb : k*ldb+n]
			for j := range bi {
				bi[j] -= lik * bk[j]
			}
		}
	}
}

// TrsvUpper solves U·x = b in place (b overwritten with x), where U is n×n
// upper-triangular (non-unit diagonal) row-major. Used by the final back
// substitution.
func TrsvUpper(n int, u []float64, ldu int, b []float64) {
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := u[i*ldu:]
		for j := i + 1; j < n; j++ {
			s -= row[j] * b[j]
		}
		b[i] = s / row[i]
	}
}

// gemmBlock is the blocking factor for Gemm. Chosen so three blocks of
// doubles fit comfortably in a typical L1/L2 cache.
const gemmBlock = 64

// Gemm computes C = alpha·A·B + beta·C where A is m×k, B is k×n and C is
// m×n, all row-major with the given leading dimensions. The loop nest is
// blocked on all three dimensions with an i-k-j innermost order so the
// innermost loop streams both B and C rows sequentially.
func Gemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	// Apply beta first so the blocked accumulation can be pure +=.
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				for j := range row {
					row[j] = 0
				}
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	for ii := 0; ii < m; ii += gemmBlock {
		iMax := min(ii+gemmBlock, m)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					arow := a[i*lda:]
					crow := c[i*ldc:]
					for kk2 := kk; kk2 < kMax; kk2++ {
						aik := alpha * arow[kk2]
						if aik == 0 {
							continue
						}
						brow := b[kk2*ldb:]
						for j := jj; j < jMax; j++ {
							crow[j] += aik * brow[j]
						}
					}
				}
			}
		}
	}
}

// GemmFlops returns the floating-point operation count of one Gemm call,
// used by benchmark drivers to convert elapsed time into FLOPS.
func GemmFlops(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
