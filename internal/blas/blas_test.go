package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// naiveGemm is the reference implementation Gemm is checked against.
func naiveGemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*lda+p] * b[p*ldb+j]
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func randMat(rng *sim.RNG, rows, cols, ld int) []float64 {
	m := make([]float64, rows*ld)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m[i*ld+j] = rng.NormAt(0, 1)
		}
	}
	return m
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestIdamax(t *testing.T) {
	if got := Idamax([]float64{1, -5, 3}); got != 1 {
		t.Errorf("Idamax = %d, want 1", got)
	}
	if got := Idamax(nil); got != -1 {
		t.Errorf("Idamax(nil) = %d", got)
	}
	// Ties resolve to the first index.
	if got := Idamax([]float64{-2, 2}); got != 0 {
		t.Errorf("Idamax tie = %d, want 0", got)
	}
}

func TestIdamaxStride(t *testing.T) {
	x := []float64{1, 99, -7, 99, 3, 99}
	if got := IdamaxStride(3, x, 2); got != 1 {
		t.Errorf("IdamaxStride = %d, want 1 (element -7)", got)
	}
	if got := IdamaxStride(0, x, 2); got != -1 {
		t.Errorf("IdamaxStride(0) = %d", got)
	}
}

func TestLevel1(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 || y[2] != 36 {
		t.Errorf("Axpy = %v", y)
	}
	Scal(0.5, x)
	if x[0] != 0.5 || x[2] != 1.5 {
		t.Errorf("Scal = %v", x)
	}
	if d := Dot([]float64{1, 2}, []float64{3, 4}); d != 11 {
		t.Errorf("Dot = %v", d)
	}
	a, b := []float64{1, 2}, []float64{3, 4}
	Swap(a, b)
	if a[0] != 3 || b[1] != 2 {
		t.Errorf("Swap = %v %v", a, b)
	}
}

func TestNrm2(t *testing.T) {
	if n := Nrm2([]float64{3, 4}); math.Abs(n-5) > 1e-12 {
		t.Errorf("Nrm2 = %v", n)
	}
	if n := Nrm2(nil); n != 0 {
		t.Errorf("Nrm2(nil) = %v", n)
	}
	// Overflow-safe scaling.
	big := []float64{1e308, 1e308}
	if n := Nrm2(big); math.IsInf(n, 0) || math.Abs(n-1e308*math.Sqrt2) > 1e294 {
		t.Errorf("Nrm2 overflowed: %v", n)
	}
}

func TestGer(t *testing.T) {
	// A(2x3) += 2 * x * yT
	a := make([]float64, 6)
	Ger(2, 3, 2, []float64{1, 2}, []float64{1, 10, 100}, a, 3)
	want := []float64{2, 20, 200, 4, 40, 400}
	if maxDiff(a, want) > 1e-12 {
		t.Errorf("Ger = %v", a)
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := sim.NewRNG(1)
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 2}, {64, 64, 64}, {65, 63, 70}, {128, 17, 96}, {200, 1, 7},
	}
	for _, s := range shapes {
		lda, ldb, ldc := s.k+3, s.n+1, s.n+2
		a := randMat(rng, s.m, s.k, lda)
		b := randMat(rng, s.k, s.n, ldb)
		c := randMat(rng, s.m, s.n, ldc)
		cRef := make([]float64, len(c))
		copy(cRef, c)
		Gemm(s.m, s.n, s.k, 1.3, a, lda, b, ldb, 0.7, c, ldc)
		naiveGemm(s.m, s.n, s.k, 1.3, a, lda, b, ldb, 0.7, cRef, ldc)
		if d := maxDiff(c, cRef); d > 1e-9 {
			t.Errorf("shape %+v: max diff %v", s, d)
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta=0 must overwrite C even when C holds NaN (BLAS convention).
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := []float64{math.NaN()}
	Gemm(1, 1, 2, 1, a, 2, b, 1, 0, c, 1)
	if c[0] != 11 {
		t.Errorf("beta=0 result = %v, want 11", c[0])
	}
}

func TestGemmEdgeCases(t *testing.T) {
	// Zero dimensions are no-ops and must not panic.
	Gemm(0, 5, 5, 1, nil, 1, nil, 1, 1, nil, 1)
	Gemm(5, 0, 5, 1, nil, 1, nil, 1, 1, nil, 1)
	c := []float64{1, 2, 3, 4}
	// k=0 with beta=2 just scales C.
	Gemm(2, 2, 0, 1, nil, 1, nil, 1, 2, c, 2)
	want := []float64{2, 4, 6, 8}
	if maxDiff(c, want) > 0 {
		t.Errorf("k=0 scale = %v", c)
	}
}

func TestGemmProperty(t *testing.T) {
	rng := sim.NewRNG(7)
	f := func(rm, rn, rk uint8) bool {
		m := int(rm%24) + 1
		n := int(rn%24) + 1
		k := int(rk%24) + 1
		a := randMat(rng, m, k, k)
		b := randMat(rng, k, n, n)
		c := randMat(rng, m, n, n)
		ref := make([]float64, len(c))
		copy(ref, c)
		Gemm(m, n, k, -0.5, a, k, b, n, 1.25, c, n)
		naiveGemm(m, n, k, -0.5, a, k, b, n, 1.25, ref, n)
		return maxDiff(c, ref) <= 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTrsmLowerUnitLeft(t *testing.T) {
	// L = [1 0; 0.5 1], B = L*X with X = [[1,2],[3,4]]
	l := []float64{1, 0, 0.5, 1}
	x := []float64{1, 2, 3, 4}
	b := make([]float64, 4)
	naiveGemm(2, 2, 2, 1, l, 2, x, 2, 0, b, 2)
	TrsmLowerUnitLeft(2, 2, l, 2, b, 2)
	if maxDiff(b, x) > 1e-12 {
		t.Errorf("trsm = %v, want %v", b, x)
	}
}

func TestTrsmLowerUnitLeftRandom(t *testing.T) {
	rng := sim.NewRNG(3)
	for _, m := range []int{1, 2, 7, 32} {
		n := 5
		// Build a unit lower-triangular L.
		l := make([]float64, m*m)
		for i := 0; i < m; i++ {
			l[i*m+i] = 1
			for j := 0; j < i; j++ {
				l[i*m+j] = rng.NormAt(0, 0.5)
			}
		}
		x := randMat(rng, m, n, n)
		b := make([]float64, m*n)
		naiveGemm(m, n, m, 1, l, m, x, n, 0, b, n)
		TrsmLowerUnitLeft(m, n, l, m, b, n)
		if d := maxDiff(b, x); d > 1e-9 {
			t.Errorf("m=%d: diff %v", m, d)
		}
	}
}

func TestTrsvUpper(t *testing.T) {
	rng := sim.NewRNG(5)
	for _, n := range []int{1, 2, 9, 40} {
		u := make([]float64, n*n)
		for i := 0; i < n; i++ {
			u[i*n+i] = 2 + rng.Float64() // well-conditioned diagonal
			for j := i + 1; j < n; j++ {
				u[i*n+j] = rng.NormAt(0, 0.5)
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormAt(0, 1)
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := i; j < n; j++ {
				s += u[i*n+j] * x[j]
			}
			b[i] = s
		}
		TrsvUpper(n, u, n, b)
		if d := maxDiff(b, x); d > 1e-8 {
			t.Errorf("n=%d: diff %v", n, d)
		}
	}
}

func TestGemmFlops(t *testing.T) {
	if f := GemmFlops(10, 20, 30); f != 12000 {
		t.Errorf("GemmFlops = %v", f)
	}
}

func BenchmarkGemm256(b *testing.B) {
	rng := sim.NewRNG(1)
	const n = 256
	a := randMat(rng, n, n, n)
	bb := randMat(rng, n, n, n)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(n, n, n, 1, a, n, bb, n, 0, c, n)
	}
	b.ReportMetric(GemmFlops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
