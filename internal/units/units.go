// Package units provides typed physical quantities used throughout the
// green-index toolkit: power (watts), energy (joules), time (seconds),
// computation rates (FLOPS) and data rates (bytes/second).
//
// The types are thin float64 wrappers. They exist to make API signatures
// self-documenting and to catch unit mix-ups at compile time, not to be a
// general dimensional-analysis system. Arithmetic that crosses dimensions
// (power × time = energy, and so on) is provided only where the toolkit
// actually needs it.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Watts is electrical power in watts.
type Watts float64

// Joules is energy in joules.
type Joules float64

// Seconds is a duration in seconds.
type Seconds float64

// FLOPS is a floating-point computation rate in operations per second.
type FLOPS float64

// BytesPerSec is a data-movement rate in bytes per second.
type BytesPerSec float64

// Bytes is a data size in bytes.
type Bytes float64

// Common scale factors.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15

	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// Energy returns the energy consumed by drawing power p for duration d,
// assuming constant draw.
func Energy(p Watts, d Seconds) Joules { return Joules(float64(p) * float64(d)) }

// MeanPower returns the constant power that would consume energy e over
// duration d. It returns 0 for non-positive durations.
func MeanPower(e Joules, d Seconds) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(e) / float64(d))
}

// Duration converts a Seconds value to a time.Duration, saturating at the
// representable range.
func (s Seconds) Duration() time.Duration {
	sec := float64(s)
	if sec > math.MaxInt64/1e9 {
		return time.Duration(math.MaxInt64)
	}
	if sec < math.MinInt64/1e9 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(sec * 1e9)
}

// FromDuration converts a time.Duration to Seconds.
func FromDuration(d time.Duration) Seconds { return Seconds(d.Seconds()) }

// siPrefixes maps exponent/3 to the SI prefix used when formatting.
var siPrefixes = []struct {
	factor float64
	prefix string
}{
	{Peta, "P"},
	{Tera, "T"},
	{Giga, "G"},
	{Mega, "M"},
	{Kilo, "K"},
	{1, ""},
	{1e-3, "m"},
	{1e-6, "u"},
}

// formatSI renders v with an SI prefix and the given unit suffix, using
// three significant digits (e.g. "8.10 TFLOPS", "22.9 KW").
func formatSI(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	sign := ""
	if v < 0 {
		sign = "-"
		v = -v
	}
	for _, p := range siPrefixes {
		if v >= p.factor {
			return fmt.Sprintf("%s%.4g %s%s", sign, v/p.factor, p.prefix, unit)
		}
	}
	last := siPrefixes[len(siPrefixes)-1]
	return fmt.Sprintf("%s%.4g %s%s", sign, v/last.factor, last.prefix, unit)
}

// String renders the power with an SI prefix, e.g. "22.9 KW".
func (w Watts) String() string { return formatSI(float64(w), "W") }

// String renders the energy with an SI prefix, e.g. "1.21 GJ".
func (j Joules) String() string { return formatSI(float64(j), "J") }

// String renders the rate with an SI prefix, e.g. "90 GFLOPS".
func (f FLOPS) String() string { return formatSI(float64(f), "FLOPS") }

// String renders the rate with an SI prefix, e.g. "12.8 GB/s".
func (b BytesPerSec) String() string { return formatSI(float64(b), "B/s") }

// String renders the size with an SI prefix, e.g. "32 GB".
func (b Bytes) String() string { return formatSI(float64(b), "B") }

// String renders the duration, e.g. "312.5 s".
func (s Seconds) String() string { return fmt.Sprintf("%.4g s", float64(s)) }

// ParseSI parses a value with an optional SI prefix and unit suffix, such as
// "8.1TFLOPS", "22.9 KW", "150 MB/s" or "42". The unit suffix, if present,
// must equal want (case-insensitive); pass "" to accept any suffix.
func ParseSI(s, want string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty quantity")
	}
	// Split the leading number from the rest.
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E' {
			// Guard: 'e'/'E' only counts as part of the number when followed
			// by a digit or sign (exponent); otherwise it starts the suffix.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '+' && n != '-' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	num, rest := s[:i], strings.TrimSpace(s[i:])
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number %q in %q", num, s)
	}
	if rest == "" {
		return v, nil
	}
	factor := 1.0
	switch {
	case strings.HasPrefix(rest, "P"):
		factor, rest = Peta, rest[1:]
	case strings.HasPrefix(rest, "T"):
		factor, rest = Tera, rest[1:]
	case strings.HasPrefix(rest, "G"):
		factor, rest = Giga, rest[1:]
	case strings.HasPrefix(rest, "M"):
		factor, rest = Mega, rest[1:]
	case strings.HasPrefix(rest, "K"), strings.HasPrefix(rest, "k"):
		factor, rest = Kilo, rest[1:]
	case strings.HasPrefix(rest, "m") && !strings.EqualFold(rest, want):
		factor, rest = 1e-3, rest[1:]
	case strings.HasPrefix(rest, "u"):
		factor, rest = 1e-6, rest[1:]
	}
	if want != "" && !strings.EqualFold(rest, want) {
		return 0, fmt.Errorf("units: want unit %q, got %q in %q", want, rest, s)
	}
	return v * factor, nil
}

// ParseWatts parses strings like "22.9KW" or "450 W".
func ParseWatts(s string) (Watts, error) {
	v, err := ParseSI(s, "W")
	return Watts(v), err
}

// ParseFLOPS parses strings like "8.1 TFLOPS".
func ParseFLOPS(s string) (FLOPS, error) {
	v, err := ParseSI(s, "FLOPS")
	return FLOPS(v), err
}

// ParseBytesPerSec parses strings like "1100 MB/s".
func ParseBytesPerSec(s string) (BytesPerSec, error) {
	v, err := ParseSI(s, "B/s")
	return BytesPerSec(v), err
}
