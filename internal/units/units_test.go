package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEnergy(t *testing.T) {
	cases := []struct {
		p    Watts
		d    Seconds
		want Joules
	}{
		{100, 10, 1000},
		{0, 100, 0},
		{2500, 0.5, 1250},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Energy(c.p, c.d); got != c.want {
			t.Errorf("Energy(%v, %v) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
}

func TestMeanPower(t *testing.T) {
	if got := MeanPower(1000, 10); got != 100 {
		t.Errorf("MeanPower(1000, 10) = %v, want 100", got)
	}
	if got := MeanPower(1000, 0); got != 0 {
		t.Errorf("MeanPower with zero duration = %v, want 0", got)
	}
	if got := MeanPower(1000, -5); got != 0 {
		t.Errorf("MeanPower with negative duration = %v, want 0", got)
	}
}

func TestEnergyMeanPowerRoundTrip(t *testing.T) {
	f := func(p float64, d float64) bool {
		p = math.Abs(math.Mod(p, 1e6))
		d = math.Abs(math.Mod(d, 1e6)) + 1e-3
		e := Energy(Watts(p), Seconds(d))
		back := MeanPower(e, Seconds(d))
		return math.Abs(float64(back)-p) <= 1e-9*(1+p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsDuration(t *testing.T) {
	if got := Seconds(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5).Duration() = %v", got)
	}
	if got := Seconds(1e30).Duration(); got != time.Duration(math.MaxInt64) {
		t.Errorf("huge duration did not saturate: %v", got)
	}
	if got := Seconds(-1e30).Duration(); got != time.Duration(math.MinInt64) {
		t.Errorf("huge negative duration did not saturate: %v", got)
	}
	if got := FromDuration(2500 * time.Millisecond); got != 2.5 {
		t.Errorf("FromDuration = %v, want 2.5", got)
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(22900).String(), "22.9 KW"},
		{Watts(450).String(), "450 W"},
		{Watts(0).String(), "0 W"},
		{Watts(-1500).String(), "-1.5 KW"},
		{FLOPS(8.1e12).String(), "8.1 TFLOPS"},
		{FLOPS(90e9).String(), "90 GFLOPS"},
		{BytesPerSec(1.1e9).String(), "1.1 GB/s"},
		{Bytes(32e9).String(), "32 GB"},
		{Joules(1.21e9).String(), "1.21 GJ"},
		{Watts(0.05).String(), "50 mW"},
		{Watts(2e-5).String(), "20 uW"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestParseSI(t *testing.T) {
	cases := []struct {
		in, unit string
		want     float64
	}{
		{"8.1TFLOPS", "FLOPS", 8.1e12},
		{"8.1 TFLOPS", "FLOPS", 8.1e12},
		{"22.9 KW", "W", 22900},
		{"22.9kW", "W", 22900},
		{"450W", "W", 450},
		{"1100 MB/s", "B/s", 1.1e9},
		{"42", "W", 42},
		{"1e3 W", "W", 1000},
		{"50 mW", "W", 0.05},
		{"-3.5 KW", "W", -3500},
	}
	for _, c := range cases {
		got, err := ParseSI(c.in, c.unit)
		if err != nil {
			t.Errorf("ParseSI(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("ParseSI(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSIErrors(t *testing.T) {
	for _, in := range []string{"", "W", "abc", "12 XB/s"} {
		if _, err := ParseSI(in, "B/s"); err == nil {
			t.Errorf("ParseSI(%q) succeeded, want error", in)
		}
	}
	if _, err := ParseSI("100 FLOPS", "W"); err == nil {
		t.Error("unit mismatch not detected")
	}
}

func TestParseHelpers(t *testing.T) {
	w, err := ParseWatts("1.5KW")
	if err != nil || w != 1500 {
		t.Errorf("ParseWatts = %v, %v", w, err)
	}
	f, err := ParseFLOPS("90 GFLOPS")
	if err != nil || f != 90e9 {
		t.Errorf("ParseFLOPS = %v, %v", f, err)
	}
	b, err := ParseBytesPerSec("512 MB/s")
	if err != nil || b != 512e6 {
		t.Errorf("ParseBytesPerSec = %v, %v", b, err)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1e14))
		if v < 1e-3 {
			v += 1
		}
		s := Watts(v).String()
		back, err := ParseWatts(s)
		if err != nil {
			return false
		}
		// String keeps 4 significant digits.
		return math.Abs(float64(back)-v) <= 5e-4*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
