package dgemm

import (
	"testing"

	"repro/internal/cluster"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(Config{N: 1 << 20}); err == nil {
		t.Error("huge N accepted")
	}
}

func TestRunNative(t *testing.T) {
	res, err := Run(Config{N: 192, Trials: 2, Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Errorf("verification failed: %v", res.MaxError)
	}
	if res.GFLOPS <= 0 {
		t.Errorf("GFLOPS = %v", res.GFLOPS)
	}
}

func TestRunWorkerClamp(t *testing.T) {
	res, err := Run(Config{N: 3, Workers: 16, Trials: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d", res.Workers)
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Profile.Validate(cluster.Fire()); err != nil {
		t.Fatal(err)
	}
	peak := float64(cluster.Fire().PeakFLOPS())
	perf := float64(res.Perf)
	// DGEMM sustains more of peak than HPL but never exceeds it.
	if perf <= 0.6*peak || perf > peak {
		t.Errorf("DGEMM perf %v vs peak %v", perf, peak)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 8)
	bad.Eff = 2
	if _, err := Simulate(bad); err == nil {
		t.Error("eff > 1 accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.MemFill = 1
	if _, err := Simulate(bad); err == nil {
		t.Error("fill > 0.9 accepted")
	}
}

func TestSimulateLinearScaling(t *testing.T) {
	a, err := Simulate(DefaultModelConfig(cluster.Fire(), 16))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(DefaultModelConfig(cluster.Fire(), 64))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.Perf) / float64(a.Perf)
	// No communication: scaling is linear in procs (up to roofline caps).
	if ratio < 3.5 || ratio > 4.1 {
		t.Errorf("scaling 16->64 procs = %vx, want ~4x", ratio)
	}
}

func BenchmarkDGEMMNative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{N: 256, Trials: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GFLOPS, "GFLOPS")
	}
}
