// Package dgemm implements the HPC Challenge DGEMM benchmark: dense
// double-precision matrix-matrix multiplication, the pure compute-rate
// probe of the suite. Unlike HPL it has no pivoting, no communication and
// no solver around it — it isolates the floating-point pipeline, which is
// why HPCC reports it separately from HPL.
//
// Native mode runs the blas package's blocked kernel across parallel
// workers (row-panel decomposition); simulated mode is the HPL compute
// model without the communication terms.
package dgemm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/blas"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config describes one native run.
type Config struct {
	// N is the (square) matrix order.
	N int
	// Workers is the number of parallel row panels; 0 means GOMAXPROCS.
	Workers int
	// Trials repeats the multiply; best rate reported. 0 means 3.
	Trials int
	Seed   uint64
}

// Result is the outcome of a native run.
type Result struct {
	N        int
	Workers  int
	GFLOPS   float64
	BestTime units.Seconds
	MaxError float64 // against a sampled dot-product check
	Passed   bool
}

// Run executes C = A·B natively and spot-verifies results against directly
// computed dot products.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.N > 1<<14 {
		return nil, errors.New("dgemm: N must be in [1, 16384]")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 1 {
			workers = 1
		}
	}
	if workers > cfg.N {
		workers = cfg.N
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	n := cfg.N
	rng := sim.NewRNG(cfg.Seed + 0xD6E88)
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormAt(0, 1)
		b[i] = rng.NormAt(0, 1)
	}
	chunk := (n + workers - 1) / workers
	var best float64
	for t := 0; t < trials; t++ {
		start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				blas.Gemm(hi-lo, n, n, 1, a[lo*n:], n, b, n, 0, c[lo*n:], n)
			}(lo, hi)
		}
		wg.Wait()
		el := time.Since(start).Seconds() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		if rate := blas.GemmFlops(n, n, n) / el / 1e9; rate > best {
			best = rate
		}
	}
	// Spot check a handful of entries against direct dot products.
	maxErr := 0.0
	checks := [][2]int{{0, 0}, {n / 2, n / 3}, {n - 1, n - 1}, {n / 4, 0}, {0, n - 1}}
	col := make([]float64, n)
	for _, ck := range checks {
		i, j := ck[0], ck[1]
		for k := 0; k < n; k++ {
			col[k] = b[k*n+j]
		}
		want := blas.Dot(a[i*n:i*n+n], col)
		if d := math.Abs(c[i*n+j] - want); d > maxErr {
			maxErr = d
		}
	}
	tol := 1e-10 * float64(n)
	res := &Result{
		N:        n,
		Workers:  workers,
		GFLOPS:   best,
		BestTime: units.Seconds(blas.GemmFlops(n, n, n) / (best * 1e9)),
		MaxError: maxErr,
		Passed:   maxErr <= tol,
	}
	if !res.Passed {
		return res, fmt.Errorf("dgemm: verification failed: max error %v", maxErr)
	}
	return res, nil
}

// ModelConfig drives the simulated-cluster DGEMM run.
type ModelConfig struct {
	Spec      *cluster.Spec
	Procs     int
	Placement cluster.Placement
	// Eff is the sustained fraction of peak (tuned BLAS: 0.85-0.95; above
	// HPL because there is no panel factorisation). 0 means 0.9.
	Eff float64
	// MemFill sizes the per-process matrices. 0 means 0.3.
	MemFill float64
}

// DefaultModelConfig returns the sweep configuration.
func DefaultModelConfig(spec *cluster.Spec, procs int) ModelConfig {
	return ModelConfig{Spec: spec, Procs: procs, Placement: cluster.Cyclic}
}

// ModelResult is the outcome of a simulated run.
type ModelResult struct {
	N        int // per-process matrix order
	Procs    int
	Perf     units.FLOPS
	Duration units.Seconds
	Profile  *cluster.LoadProfile
}

// Simulate evaluates the embarrassingly-parallel model: every process
// multiplies its own matrices at Eff × peak (bandwidth-capped like the
// HPL trailing update); no communication at all.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("dgemm: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	eff := cfg.Eff
	if eff == 0 {
		eff = 0.9
	}
	if eff <= 0 || eff > 1 {
		return nil, fmt.Errorf("dgemm: efficiency %v outside (0, 1]", eff)
	}
	fill := cfg.MemFill
	if fill == 0 {
		fill = 0.3
	}
	if fill < 0 || fill > 0.9 {
		return nil, fmt.Errorf("dgemm: memory fill %v outside (0, 0.9]", fill)
	}
	dist, err := cfg.Spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}
	memPerProc := cfg.Spec.Node.Memory.CapacityBytes / float64(cfg.Spec.Node.Cores())
	n := int(math.Sqrt(fill * memPerProc / (3 * 8))) // A, B, C
	if n < 64 {
		n = 64
	}
	corePeak := cfg.Spec.Node.CPU.ClockHz * cfg.Spec.Node.CPU.FlopsPerCycle
	maxOnNode := 0
	for _, d := range dist {
		if d > maxOnNode {
			maxOnNode = d
		}
	}
	rate := corePeak * eff
	bytesPerFlop := 14.0 / 128 // blocked kernel traffic, NB=128 equivalent
	if maxOnNode > 0 {
		if bwRate := cfg.Spec.Node.Memory.BandwidthBps / float64(maxOnNode) / bytesPerFlop; bwRate < rate {
			rate = bwRate
		}
	}
	flopsPerProc := blas.GemmFlops(n, n, n)
	duration := flopsPerProc / rate
	perf := units.FLOPS(float64(cfg.Procs) * rate)
	phase := cluster.PhaseFromDistribution(units.Seconds(duration), cfg.Spec, dist,
		func(procs, cores int) cluster.Util {
			share := float64(procs) / float64(cores)
			memU := float64(procs) * rate * bytesPerFlop / cfg.Spec.Node.Memory.BandwidthBps
			return cluster.Util{CPU: share, Mem: math.Min(1, memU)}
		})
	return &ModelResult{
		N:        n,
		Procs:    cfg.Procs,
		Perf:     perf,
		Duration: units.Seconds(duration),
		Profile:  &cluster.LoadProfile{Phases: []cluster.Phase{phase}},
	}, nil
}
