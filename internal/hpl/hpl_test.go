package hpl

import (
	"math"
	"testing"
)

func TestGrid(t *testing.T) {
	cases := []struct{ procs, p, q int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{12, 3, 4}, {16, 4, 4}, {7, 1, 7}, {128, 8, 16},
	}
	for _, c := range cases {
		p, q := Grid(c.procs)
		if p != c.p || q != c.q {
			t.Errorf("Grid(%d) = %d×%d, want %d×%d", c.procs, p, q, c.p, c.q)
		}
		if p*q != c.procs {
			t.Errorf("Grid(%d) does not cover all procs", c.procs)
		}
	}
}

func TestNumroc(t *testing.T) {
	// 10 elements, block 3, 2 procs: blocks 0,2 + 3,3,... proc0: blk0(3)+blk2(3)=6?
	// blocks: 0->p0(3), 1->p1(3), 2->p0(3), 3->p1(1). p0=6, p1=4.
	if n := numroc(10, 3, 0, 2); n != 6 {
		t.Errorf("numroc(10,3,0,2) = %d, want 6", n)
	}
	if n := numroc(10, 3, 1, 2); n != 4 {
		t.Errorf("numroc(10,3,1,2) = %d, want 4", n)
	}
	// Conservation across coordinates for a spread of shapes.
	for _, n := range []int{1, 7, 64, 100, 129} {
		for _, nb := range []int{1, 4, 32} {
			for _, np := range []int{1, 2, 3, 5} {
				sum := 0
				for c := 0; c < np; c++ {
					sum += numroc(n, nb, c, np)
				}
				if sum != n {
					t.Errorf("numroc conservation failed: n=%d nb=%d np=%d sum=%d", n, nb, np, sum)
				}
			}
		}
	}
}

func TestGlobalLocalMapsRoundTrip(t *testing.T) {
	const nb, P = 4, 3
	counts := map[int]int{}
	for g := 0; g < 100; g++ {
		owner, local := globalToLocalRow(g, nb, P)
		if owner < 0 || owner >= P {
			t.Fatalf("owner %d out of range", owner)
		}
		// Rebuild the global index from (owner, local) the way newShard does.
		blk := local / nb
		back := (blk*P+owner)*nb + local%nb
		if back != g {
			t.Fatalf("round trip failed: g=%d -> (%d,%d) -> %d", g, owner, local, back)
		}
		counts[owner]++
	}
	for c := 0; c < P; c++ {
		if counts[c] != numroc(100, nb, c, P) {
			t.Errorf("owner %d count %d != numroc %d", c, counts[c], numroc(100, nb, c, P))
		}
	}
}

func TestMatEntryDeterministicAndSpread(t *testing.T) {
	a := matEntry(7, 3, 4)
	if a != matEntry(7, 3, 4) {
		t.Error("matEntry not deterministic")
	}
	if a == matEntry(8, 3, 4) || a == matEntry(7, 4, 3) {
		t.Error("matEntry insensitive to seed or transposition")
	}
	// Entries lie in [-0.5, 0.5) and are roughly centred.
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := matEntry(1, i, i*31%97)
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("entry out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n) > 0.03 {
		t.Errorf("entries biased: mean %v", sum/n)
	}
}

func TestFlopCount(t *testing.T) {
	if f := FlopCount(100); math.Abs(f-(2.0/3.0*1e6+1.5e4)) > 1 {
		t.Errorf("FlopCount(100) = %v", f)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, NB: 8, Procs: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(Config{N: 8, NB: 0, Procs: 1}); err == nil {
		t.Error("NB=0 accepted")
	}
	if _, err := Run(Config{N: 8, NB: 8, Procs: 0}); err == nil {
		t.Error("Procs=0 accepted")
	}
}

func TestRunSingleRank(t *testing.T) {
	res, err := Run(Config{N: 64, NB: 16, Procs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Errorf("residual %v failed the HPL test", res.Residual)
	}
	if res.P != 1 || res.Q != 1 {
		t.Errorf("grid %dx%d", res.P, res.Q)
	}
}

func TestRunGrids(t *testing.T) {
	// A spread of matrix orders and grids, including ragged edges (N not a
	// multiple of NB) and non-square grids.
	cases := []Config{
		{N: 32, NB: 8, Procs: 2, Seed: 2},
		{N: 64, NB: 16, Procs: 4, Seed: 3},
		{N: 96, NB: 16, Procs: 6, Seed: 4},
		{N: 100, NB: 16, Procs: 4, Seed: 5},  // ragged
		{N: 75, NB: 13, Procs: 6, Seed: 6},   // doubly ragged
		{N: 128, NB: 32, Procs: 8, Seed: 7},  // 2x4
		{N: 130, NB: 32, Procs: 12, Seed: 8}, // 3x4, ragged tail
	}
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%+v: %v", cfg, err)
			continue
		}
		if !res.Passed {
			t.Errorf("%+v: residual %v", cfg, res.Residual)
		}
	}
}

func TestRunNBLargerThanN(t *testing.T) {
	res, err := Run(Config{N: 20, NB: 64, Procs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Errorf("residual %v", res.Residual)
	}
	if res.NB != 20 {
		t.Errorf("NB not clamped: %d", res.NB)
	}
}

func TestMultiRankMatchesSingleRank(t *testing.T) {
	// The same seed must give the same solution (up to tiny rounding noise
	// from different reduction orders) on every grid.
	cfgBase := Config{N: 60, NB: 12, Seed: 11}
	solve := func(procs int) float64 {
		cfg := cfgBase
		cfg.Procs = procs
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed {
			t.Fatalf("procs=%d residual %v", procs, res.Residual)
		}
		return res.Residual
	}
	r1 := solve(1)
	r4 := solve(4)
	// Pivoting is identical (same matrix, same tie-breaks), so residuals are
	// of the same magnitude; both already passed the acceptance test.
	if r1 > 16 || r4 > 16 {
		t.Errorf("residuals %v %v", r1, r4)
	}
}

func TestCommBytesPositiveOnMultiRank(t *testing.T) {
	res, err := Run(Config{N: 64, NB: 16, Procs: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes <= 0 {
		t.Errorf("CommBytes = %d on a 4-rank run", res.CommBytes)
	}
	if res.GFLOPS <= 0 {
		t.Errorf("GFLOPS = %v", res.GFLOPS)
	}
}

func TestResidualRejectsWrongSolution(t *testing.T) {
	cfg := Config{N: 32, NB: 8, Procs: 1, Seed: 13}
	x := make([]float64, cfg.N) // all zeros is not the solution
	if r := residual(cfg, x); r < 16 {
		t.Errorf("zero vector accepted with residual %v", r)
	}
	if r := residual(cfg, nil); !math.IsInf(r, 1) {
		t.Errorf("nil solution residual = %v", r)
	}
}

func BenchmarkHPLNative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{N: 256, NB: 32, Procs: 4, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed {
			b.Fatalf("residual %v", res.Residual)
		}
		b.ReportMetric(res.GFLOPS, "GFLOPS")
	}
}

// naiveSolve solves A·x = b by plain Gaussian elimination with partial
// pivoting, as an independent reference for the distributed solver.
func naiveSolve(n int, seed uint64) []float64 {
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = matEntry(seed, i, j)
		}
		b[i] = rhsEntry(seed, i)
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * b[c]
		}
		b[r] = s / a[r][r]
	}
	return b
}

// runForSolution runs the distributed pipeline and returns x (test hook).
func runForSolution(t *testing.T, cfg Config) []float64 {
	t.Helper()
	var x []float64
	err := mpirtRunSolution(cfg, &x)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestSolutionMatchesDirectSolver(t *testing.T) {
	cfg := Config{N: 48, NB: 8, Procs: 4, Seed: 21}
	x := runForSolution(t, cfg)
	ref := naiveSolve(cfg.N, cfg.Seed)
	for i := range ref {
		if math.Abs(x[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
			t.Fatalf("x[%d] = %v, direct solver %v", i, x[i], ref[i])
		}
	}
}
