// Package hpl implements the high-performance LINPACK benchmark: solving a
// dense linear system A·x = b by LU factorisation with row partial pivoting
// on a 2D block-cyclic process grid, as the benchmark the paper uses for the
// CPU component of TGI.
//
// Two modes are provided:
//
//   - Native: a genuinely distributed right-looking LU over the mpirt
//     message-passing runtime (this file). Every rank owns a block-cyclic
//     shard of the augmented matrix [A|b]; panels are factorised with
//     distributed pivot search, pivots are applied with row exchanges,
//     panels broadcast along process rows, U blocks broadcast down process
//     columns, and trailing updates run as local blocked GEMMs. Verified by
//     the standard HPL residual test.
//   - Simulated (model.go): an analytic performance model of the same
//     algorithm used to extrapolate to paper-scale clusters that cannot run
//     natively.
//
// The right-hand side b is carried as column N of the augmented local
// matrix, so pivot swaps and trailing updates apply to it for free; the
// final back substitution is likewise distributed — a block sweep with one
// row-reduce and one column-broadcast per block (see solve).
package hpl

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blas"
	"repro/internal/mpirt"
	"repro/internal/sim"
)

// Config describes one native HPL run.
type Config struct {
	N     int    // matrix order
	NB    int    // block size
	Procs int    // number of ranks; factored into the most-square P×Q grid
	Seed  uint64 // matrix generator seed
}

// Result is the outcome of a native HPL run.
type Result struct {
	N, NB, P, Q int
	Elapsed     time.Duration
	GFLOPS      float64
	Residual    float64 // scaled HPL residual; < 16 passes
	CommBytes   int64
	Passed      bool
}

// FlopCount returns the canonical HPL operation count for order n:
// 2/3·n³ + 3/2·n² (factorisation plus solve).
func FlopCount(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 1.5*nf*nf
}

// Grid factors procs into the most-square grid with P <= Q, as HPL's
// planners recommend for its communication pattern.
func Grid(procs int) (p, q int) {
	p = int(math.Sqrt(float64(procs)))
	for ; p > 1; p-- {
		if procs%p == 0 {
			break
		}
	}
	if p < 1 {
		p = 1
	}
	return p, procs / p
}

// matEntry is the deterministic matrix generator: entry (i, j) of A depends
// only on (seed, i, j), so any rank can regenerate any entry without
// communication — the residual check exploits this.
func matEntry(seed uint64, i, j int) float64 {
	r := sim.NewRNG(seed ^ (uint64(i)*0x9E3779B97F4A7C15 + uint64(j)*0xC2B2AE3D27D4EB4F + 0x165667B19E3779F9))
	return r.Float64() - 0.5
}

// rhsEntry generates element i of b.
func rhsEntry(seed uint64, i int) float64 {
	return matEntry(seed^0xABCDEF, i, 1<<30)
}

// numroc returns the number of rows/columns of an n-element dimension with
// block size nb owned by coordinate coord of nprocs (ScaLAPACK's NUMROC).
func numroc(n, nb, coord, nprocs int) int {
	nblocks := n / nb
	cnt := (nblocks / nprocs) * nb
	extra := nblocks % nprocs
	switch {
	case coord < extra:
		cnt += nb
	case coord == extra:
		cnt += n % nb
	}
	return cnt
}

// globalToLocalRow maps a global row to (owner process row, local index).
func globalToLocalRow(g, nb, P int) (owner, local int) {
	blk := g / nb
	return blk % P, (blk/P)*nb + g%nb
}

// globalToLocalCol maps a global column to (owner process column, local index).
func globalToLocalCol(g, nb, Q int) (owner, local int) {
	blk := g / nb
	return blk % Q, (blk/Q)*nb + g%nb
}

// shard is one rank's block-cyclic piece of the augmented matrix.
type shard struct {
	cfg        Config
	P, Q       int
	myRow      int
	myCol      int
	rows, cols int       // local dimensions (cols includes the augmented b column)
	a          []float64 // rows × cols, row-major
	grow       []int     // local row index -> global row
	gcol       []int     // local col index -> global col (N means b)
	world      *mpirt.Comm
	rowC       *mpirt.Comm // ranks sharing my process row
	colC       *mpirt.Comm // ranks sharing my process column
}

func newShard(c *mpirt.Comm, cfg Config) (*shard, error) {
	P, Q := Grid(cfg.Procs)
	s := &shard{cfg: cfg, P: P, Q: Q, world: c}
	s.myRow = c.Rank() / Q
	s.myCol = c.Rank() % Q
	var err error
	if s.rowC, err = c.Split(s.myRow, s.myCol); err != nil {
		return nil, err
	}
	if s.colC, err = c.Split(s.myCol+1<<20, s.myRow); err != nil {
		return nil, err
	}
	n, nb := cfg.N, cfg.NB
	s.rows = numroc(n, nb, s.myRow, P)
	s.cols = numroc(n+1, nb, s.myCol, Q)
	s.a = make([]float64, s.rows*s.cols)
	s.grow = make([]int, s.rows)
	for l := range s.grow {
		blk := l / nb
		s.grow[l] = (blk*P+s.myRow)*nb + l%nb
	}
	s.gcol = make([]int, s.cols)
	for l := range s.gcol {
		blk := l / nb
		s.gcol[l] = (blk*Q+s.myCol)*nb + l%nb
	}
	// Fill with generated entries.
	for li, g := range s.grow {
		row := s.a[li*s.cols:]
		for lj, gc := range s.gcol {
			if gc == n {
				row[lj] = rhsEntry(cfg.Seed, g)
			} else {
				row[lj] = matEntry(cfg.Seed, g, gc)
			}
		}
	}
	return s, nil
}

// localColsFrom returns the first local column index whose global column is
// >= g (local columns are globally monotone under block-cyclic layout).
func (s *shard) localColsFrom(g int) int {
	lo, hi := 0, s.cols
	for lo < hi {
		mid := (lo + hi) / 2
		if s.gcol[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// localRowsFrom is the row-wise analogue of localColsFrom.
func (s *shard) localRowsFrom(g int) int {
	lo, hi := 0, s.rows
	for lo < hi {
		mid := (lo + hi) / 2
		if s.grow[mid] < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// swapRowsInCols exchanges global rows g1 and g2 across local columns
// [cFrom, cTo). Runs inside one process column: the two owning process rows
// exchange segments (or swap locally when they coincide).
func (s *shard) swapRowsInCols(g1, g2, cFrom, cTo int) error {
	if g1 == g2 || cFrom >= cTo {
		return nil
	}
	o1, l1 := globalToLocalRow(g1, s.cfg.NB, s.P)
	o2, l2 := globalToLocalRow(g2, s.cfg.NB, s.P)
	width := cTo - cFrom
	switch {
	case o1 == o2 && o1 == s.myRow:
		r1 := s.a[l1*s.cols+cFrom : l1*s.cols+cTo]
		r2 := s.a[l2*s.cols+cFrom : l2*s.cols+cTo]
		blas.Swap(r1, r2)
	case o1 == s.myRow:
		seg := s.a[l1*s.cols+cFrom : l1*s.cols+cTo]
		if err := s.colC.Send(o2, swapTag(g1, g2), seg); err != nil {
			return err
		}
		got, _, _, err := s.colC.Recv(o2, swapTag(g1, g2))
		if err != nil {
			return err
		}
		if len(got) != width {
			return fmt.Errorf("hpl: swap width %d, want %d", len(got), width)
		}
		copy(seg, got)
	case o2 == s.myRow:
		seg := s.a[l2*s.cols+cFrom : l2*s.cols+cTo]
		if err := s.colC.Send(o1, swapTag(g1, g2), seg); err != nil {
			return err
		}
		got, _, _, err := s.colC.Recv(o1, swapTag(g1, g2))
		if err != nil {
			return err
		}
		if len(got) != width {
			return fmt.Errorf("hpl: swap width %d, want %d", len(got), width)
		}
		copy(seg, got)
	}
	return nil
}

// swapTag derives a user-space tag for a row exchange; both sides compute
// the same tag from the pair being swapped.
func swapTag(g1, g2 int) int {
	if g1 > g2 {
		g1, g2 = g2, g1
	}
	return ((g1*31+g2)%100000)*2 + 2
}

// factorPanel factorises the panel whose first global column is gc0 (width
// nb), recording pivots in piv (global row numbers). Runs only on ranks in
// the panel's process column.
func (s *shard) factorPanel(gc0, nb int, piv []int) error {
	_, lc0 := globalToLocalCol(gc0, s.cfg.NB, s.Q)
	for j := 0; j < nb; j++ {
		gr := gc0 + j // diagonal global row for this column
		lc := lc0 + j
		// Local pivot candidate over owned rows >= gr.
		rFrom := s.localRowsFrom(gr)
		bestVal, bestRow := 0.0, -1
		for li := rFrom; li < s.rows; li++ {
			if v := math.Abs(s.a[li*s.cols+lc]); v > bestVal {
				bestVal, bestRow = v, s.grow[li]
			}
		}
		// Global pivot: allgather (val, row) pairs over the process column.
		pairs := make([]float64, 2*s.colC.Size())
		if err := s.colC.Allgather([]float64{bestVal, float64(bestRow)}, pairs); err != nil {
			return err
		}
		pv, pr := -1.0, -1
		for r := 0; r < s.colC.Size(); r++ {
			v, row := pairs[2*r], int(pairs[2*r+1])
			if row < 0 {
				continue
			}
			if v > pv || (v == pv && row < pr) { //greenvet:allow floateq -- exact pivot tie-break as in reference HPL; operands are stored copies, not recomputed
				pv, pr = v, row
			}
		}
		if pr < 0 || pv == 0 {
			return fmt.Errorf("hpl: singular matrix at column %d", gr)
		}
		piv[j] = pr
		// Swap rows gr <-> pr within the panel columns.
		if err := s.swapRowsInCols(gr, pr, lc0, lc0+nb); err != nil {
			return err
		}
		// Owner of row gr broadcasts the pivot row segment [lc .. lc0+nb).
		ownerRow, lgr := globalToLocalRow(gr, s.cfg.NB, s.P)
		seg := make([]float64, lc0+nb-lc)
		if s.myRow == ownerRow {
			copy(seg, s.a[lgr*s.cols+lc:lgr*s.cols+lc0+nb])
		}
		if err := s.colC.Bcast(ownerRow, seg); err != nil {
			return err
		}
		pivot := seg[0]
		// Scale the multipliers and rank-1 update the rest of the panel.
		rFrom = s.localRowsFrom(gr + 1)
		for li := rFrom; li < s.rows; li++ {
			row := s.a[li*s.cols:]
			mult := row[lc] / pivot
			row[lc] = mult
			for jj := 1; jj < len(seg); jj++ {
				row[lc+jj] -= mult * seg[jj]
			}
		}
	}
	return nil
}

// Run executes the native distributed HPL benchmark and verifies the
// solution with the standard scaled residual test.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.NB <= 0 || cfg.Procs <= 0 {
		return nil, errors.New("hpl: N, NB and Procs must be positive")
	}
	if cfg.NB > cfg.N {
		cfg.NB = cfg.N
	}
	P, Q := Grid(cfg.Procs)
	res := &Result{N: cfg.N, NB: cfg.NB, P: P, Q: Q}
	start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
	var x []float64
	err := mpirt.Run(cfg.Procs, func(c *mpirt.Comm) error {
		s, err := newShard(c, cfg)
		if err != nil {
			return err
		}
		if err := s.factorize(); err != nil {
			return err
		}
		sol, err := s.solve()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			x = sol
			res.CommBytes = c.BytesSent()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start) //greenvet:allow detclock -- native benchmark: measures real execution on the host
	res.GFLOPS = FlopCount(cfg.N) / res.Elapsed.Seconds() / 1e9
	res.Residual = residual(cfg, x)
	res.Passed = res.Residual < 16
	return res, nil
}

// factorize runs the panel loop: factor, broadcast, swap, trsm, update.
func (s *shard) factorize() error {
	n, nb := s.cfg.N, s.cfg.NB
	for gc0 := 0; gc0 < n; gc0 += nb {
		w := nb
		if gc0+w > n {
			w = n - gc0
		}
		panelCol, plc0 := globalToLocalCol(gc0, nb, s.Q)
		piv := make([]int, w)
		// 1. Panel factorisation on the owning process column.
		if s.myCol == panelCol {
			if err := s.factorPanel(gc0, w, piv); err != nil {
				return err
			}
		}
		// 2. Pivot broadcast along process rows.
		pf := make([]float64, w)
		if s.myCol == panelCol {
			for i, p := range piv {
				pf[i] = float64(p)
			}
		}
		if err := s.rowC.Bcast(panelCol, pf); err != nil {
			return err
		}
		for i := range piv {
			piv[i] = int(pf[i])
		}
		// 3. Apply the row swaps to the trailing columns (right of the
		// panel, including b). Panel columns were swapped during the
		// factorisation itself.
		cFrom := s.localColsFrom(gc0 + w)
		for j := 0; j < w; j++ {
			if err := s.swapRowsInCols(gc0+j, piv[j], cFrom, s.cols); err != nil {
				return err
			}
		}
		// 4. Broadcast the panel (multipliers below the diagonal plus the
		// unit-lower block) along process rows. Pack: for each local row
		// with global row >= gc0, the w panel values.
		rFrom := s.localRowsFrom(gc0)
		panelRows := s.rows - rFrom
		buf := make([]float64, panelRows*w)
		if s.myCol == panelCol {
			for li := 0; li < panelRows; li++ {
				copy(buf[li*w:(li+1)*w], s.a[(rFrom+li)*s.cols+plc0:(rFrom+li)*s.cols+plc0+w])
			}
		}
		if err := s.rowC.Bcast(panelCol, buf); err != nil {
			return err
		}
		// 5. The process row owning the diagonal block applies the
		// triangular solve to its trailing block row: U = L11⁻¹·A(k, trailing).
		diagOwner, _ := globalToLocalRow(gc0, nb, s.P)
		trailCols := s.cols - cFrom
		uBuf := make([]float64, w*trailCols)
		if s.myRow == diagOwner && trailCols > 0 {
			// L11 sits in the first w packed panel rows (they are the
			// globally-lowest rows >= gc0 on this process row).
			l11 := buf[:w*w]
			lu := s.localRowsFrom(gc0)
			for r := 0; r < w; r++ {
				copy(uBuf[r*trailCols:(r+1)*trailCols], s.a[(lu+r)*s.cols+cFrom:(lu+r)*s.cols+s.cols])
			}
			blas.TrsmLowerUnitLeft(w, trailCols, l11, w, uBuf, trailCols)
			for r := 0; r < w; r++ {
				copy(s.a[(lu+r)*s.cols+cFrom:(lu+r)*s.cols+s.cols], uBuf[r*trailCols:(r+1)*trailCols])
			}
		}
		// 6. Broadcast U down process columns.
		if trailCols > 0 {
			if err := s.colC.Bcast(diagOwner, uBuf); err != nil {
				return err
			}
		}
		// 7. Local trailing update: A(below, right) -= L·U.
		rBelow := s.localRowsFrom(gc0 + w)
		mBelow := s.rows - rBelow
		if mBelow > 0 && trailCols > 0 {
			// L rows for global rows >= gc0+w are packed in buf starting at
			// offset (rBelow - rFrom).
			l := buf[(rBelow-rFrom)*w:]
			blas.Gemm(mBelow, trailCols, w, -1, l, w, uBuf, trailCols, 1,
				s.a[rBelow*s.cols+cFrom:], s.cols)
		}
	}
	return nil
}

// solve performs a distributed block back substitution on the factorised
// upper triangle. Working from the last column block to the first, the
// process row owning block k forms the partial sums U(k, j>k)·x_j from each
// process column's local columns, reduces them across the row to the block's
// owner column, solves the w×w diagonal system there, and broadcasts x_k
// down that process column. Communication per block is one NB-length
// row-reduce and one NB-length column-broadcast — O(N) data in total,
// against the O(N²/P) local flops of the sweep. Rank 0 assembles and
// returns the full solution (nil on other ranks).
func (s *shard) solve() ([]float64, error) {
	n, nb := s.cfg.N, s.cfg.NB
	// x values for this process column's local columns, filled block by
	// block as the sweep proceeds (every process row gets them via the
	// column broadcast, because later partial sums need them everywhere).
	xloc := make([]float64, s.cols)
	bCol, bLC := globalToLocalCol(n, nb, s.Q)

	nBlocks := (n + nb - 1) / nb
	for k := nBlocks - 1; k >= 0; k-- {
		gr0 := k * nb
		w := nb
		if gr0+w > n {
			w = n - gr0
		}
		rowOwner, lu := globalToLocalRow(gr0, nb, s.P)
		colOwner, lc0 := globalToLocalCol(gr0, nb, s.Q)
		if s.myRow == rowOwner {
			// Partial sums over my local columns right of the block,
			// minus my share of b.
			partial := make([]float64, w)
			cFrom := s.localColsFrom(gr0 + w)
			for r := 0; r < w; r++ {
				row := s.a[(lu+r)*s.cols:]
				var sum float64
				for lj := cFrom; lj < s.cols; lj++ {
					if s.gcol[lj] < n {
						sum += row[lj] * xloc[lj]
					}
				}
				if s.myCol == bCol {
					sum -= row[bLC]
				}
				partial[r] = sum
			}
			var got []float64
			if s.myCol == colOwner {
				got = make([]float64, w)
			}
			if err := s.rowC.Reduce(colOwner, mpirt.OpSum, partial, got); err != nil {
				return nil, err
			}
			if s.myCol == colOwner {
				// rhs = b - Σ U·x = -got; solve the diagonal block.
				for r := range got {
					got[r] = -got[r]
				}
				blas.TrsvUpper(w, s.a[lu*s.cols+lc0:], s.cols, got)
				copy(xloc[lc0:lc0+w], got)
			}
		}
		// Broadcast x_k down the owning process column so every process
		// row can use it in later partial sums.
		if s.myCol == colOwner {
			xk := make([]float64, w)
			if s.myRow == rowOwner {
				copy(xk, xloc[lc0:lc0+w])
			}
			if err := s.colC.Bcast(rowOwner, xk); err != nil {
				return nil, err
			}
			copy(xloc[lc0:lc0+w], xk)
		}
	}
	// Assembly at world rank 0 (grid position row 0, column 0): each
	// process column's row-0 member holds that column's x entries.
	if s.myRow == 0 && s.myCol != 0 {
		send := make([]float64, 0, s.cols)
		for lj, gc := range s.gcol {
			if gc < n {
				send = append(send, xloc[lj])
			}
		}
		return nil, s.world.Send(0, 3, send)
	}
	if s.world.Rank() != 0 {
		return nil, nil
	}
	x := make([]float64, n)
	perCol := make([][]float64, s.Q)
	for q := 1; q < s.Q; q++ {
		data, _, _, err := s.world.Recv(q, 3)
		if err != nil {
			return nil, err
		}
		perCol[q] = data
	}
	for g := 0; g < n; g++ {
		owner, lc := globalToLocalCol(g, nb, s.Q)
		if owner == 0 {
			x[g] = xloc[lc]
		} else {
			if lc >= len(perCol[owner]) {
				return nil, fmt.Errorf("hpl: solution fragment from column %d too short", owner)
			}
			x[g] = perCol[owner][lc]
		}
	}
	return x, nil
}

// residual computes the HPL acceptance metric
// ‖A·x − b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · N) on regenerated inputs.
func residual(cfg Config, x []float64) float64 {
	n := cfg.N
	if len(x) != n {
		return math.Inf(1)
	}
	var rinf, anorm, bnorm float64
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		var rowsum float64
		for j := 0; j < n; j++ {
			row[j] = matEntry(cfg.Seed, i, j)
			rowsum += math.Abs(row[j])
		}
		if rowsum > anorm {
			anorm = rowsum
		}
		bi := rhsEntry(cfg.Seed, i)
		if math.Abs(bi) > bnorm {
			bnorm = math.Abs(bi)
		}
		if r := math.Abs(blas.Dot(row, x) - bi); r > rinf {
			rinf = r
		}
	}
	var xnorm float64
	for _, v := range x {
		if math.Abs(v) > xnorm {
			xnorm = math.Abs(v)
		}
	}
	eps := 2.220446049250313e-16
	denom := eps * (anorm*xnorm + bnorm) * float64(n)
	if denom == 0 {
		return math.Inf(1)
	}
	return rinf / denom
}

// mpirtRunSolution is a test hook: run the distributed factorise+solve and
// return the raw solution vector without the residual bookkeeping.
func mpirtRunSolution(cfg Config, out *[]float64) error {
	if cfg.NB > cfg.N {
		cfg.NB = cfg.N
	}
	return mpirt.Run(cfg.Procs, func(c *mpirt.Comm) error {
		s, err := newShard(c, cfg)
		if err != nil {
			return err
		}
		if err := s.factorize(); err != nil {
			return err
		}
		x, err := s.solve()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			*out = x
		}
		return nil
	})
}
