package hpl

import (
	"testing"

	"repro/internal/cluster"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 8)
	bad.MemFill = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("zero fill accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.GemmEff = 1.5
	if _, err := Simulate(bad); err == nil {
		t.Error("eff > 1 accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.NB = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("NB=0 accepted")
	}
	if _, err := Simulate(DefaultModelConfig(cluster.Fire(), 999)); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestSimulateFireFullCluster(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Fire "is capable of delivering 90[0] GFLOPS on LINPACK".
	// Peak is 1.18 TFLOPS, so delivered must sit in the 0.7-1.0 TFLOPS band.
	gf := float64(res.Perf) / 1e9
	if gf < 700 || gf > 1050 {
		t.Errorf("Fire HPL = %.0f GFLOPS, want ~900 (paper §IV)", gf)
	}
	if res.Efficiency < 0.6 || res.Efficiency > 0.92 {
		t.Errorf("efficiency = %v", res.Efficiency)
	}
	if res.Duration <= 0 || res.ComputeTime <= 0 || res.CommTime <= 0 {
		t.Errorf("times: %v %v %v", res.Duration, res.ComputeTime, res.CommTime)
	}
	if err := res.Profile.Validate(cluster.Fire()); err != nil {
		t.Errorf("profile invalid: %v", err)
	}
}

func TestSimulateSystemGReference(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.SystemG(), 1024))
	if err != nil {
		t.Fatal(err)
	}
	// Table I: HPL on SystemG ≈ 8.1 TFLOPS (OCR "8. TFLOPS").
	tf := float64(res.Perf) / 1e12
	if tf < 7.0 || tf > 9.5 {
		t.Errorf("SystemG HPL = %.2f TFLOPS, want ~8.1 (Table I)", tf)
	}
}

func TestSimulatePerfMonotoneInProcs(t *testing.T) {
	prev := 0.0
	for _, p := range []int{8, 16, 32, 64, 128} {
		res, err := Simulate(DefaultModelConfig(cluster.Fire(), p))
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Perf) <= prev {
			t.Errorf("perf not increasing at p=%d: %v <= %v", p, res.Perf, prev)
		}
		prev = float64(res.Perf)
	}
}

func TestSimulateEfficiencyDeclinesWithScale(t *testing.T) {
	small, err := Simulate(DefaultModelConfig(cluster.Fire(), 16))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	if large.Efficiency >= small.Efficiency {
		t.Errorf("parallel efficiency did not decline: %v -> %v",
			small.Efficiency, large.Efficiency)
	}
}

func TestSimulateNGrowsWithProcs(t *testing.T) {
	a, _ := Simulate(DefaultModelConfig(cluster.Fire(), 16))
	b, _ := Simulate(DefaultModelConfig(cluster.Fire(), 64))
	if b.N <= a.N {
		t.Errorf("N did not grow with memory: %d -> %d", a.N, b.N)
	}
}

func TestSimulateSingleProcNoComm(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Testbed(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CommTime != 0 {
		t.Errorf("single-proc comm time = %v", res.CommTime)
	}
}

func TestSimulateProfileUtilisationSane(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Profile.Phases[0].NodeUtil {
		if u.CPU <= 0 || u.CPU > 1 {
			t.Errorf("node %d cpu util %v", i, u.CPU)
		}
		if u.Mem < 0 || u.Mem > 1 {
			t.Errorf("node %d mem util %v", i, u.Mem)
		}
	}
	// Full cluster at full core count: CPU util should be high (>0.8).
	if u := res.Profile.Phases[0].NodeUtil[0].CPU; u < 0.8 {
		t.Errorf("full-load cpu util only %v", u)
	}
}
