package hpl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/units"
)

// ModelConfig drives the simulated-cluster HPL run: the analytic performance
// model of the same right-looking LU used by the native path, evaluated
// against a machine spec instead of the host CPU. It exists because the
// paper's sweep (8…128 processes on the Fire cluster, 1024 on SystemG)
// cannot run natively here; see DESIGN.md §2.
type ModelConfig struct {
	Spec      *cluster.Spec
	Procs     int
	Placement cluster.Placement
	// MemFill is the fraction of the active nodes' memory used for the
	// matrix. Tuning practice goes to ~80%; sweep runs use less so the
	// three suite benchmarks have comparable durations.
	MemFill float64
	// NB is the block size (only mildly influential in the model).
	NB int
	// GemmEff is the fraction of peak a core sustains in the trailing
	// update (dgemm efficiency). Typical tuned BLAS: 0.80-0.92.
	GemmEff float64
	// Overlap is the fraction of communication hidden behind computation
	// by HPL's lookahead pipelining, in [0, 1).
	Overlap float64
}

// ModelResult is the outcome of a simulated HPL run.
type ModelResult struct {
	N           int
	Procs       int
	P, Q        int
	Perf        units.FLOPS   // delivered rate
	Duration    units.Seconds // makespan
	ComputeTime units.Seconds
	CommTime    units.Seconds
	Efficiency  float64 // Perf / (procs × per-core peak)
	Profile     *cluster.LoadProfile
}

// DefaultModelConfig returns the configuration used by the paper
// reproduction sweeps.
func DefaultModelConfig(spec *cluster.Spec, procs int) ModelConfig {
	return ModelConfig{
		Spec:      spec,
		Procs:     procs,
		Placement: cluster.Cyclic,
		MemFill:   0.45,
		NB:        128,
		GemmEff:   0.86,
		Overlap:   0.6,
	}
}

// Simulate evaluates the analytic model and returns performance plus the
// load profile the power model integrates.
//
// The model mirrors the real algorithm's cost structure:
//
//	T_compute = (2/3·N³) / (procs · core_peak · GemmEff · mem_penalty)
//	T_comm    = panel broadcasts + U broadcasts + pivot exchanges, costed
//	            against the interconnect's bandwidth and latency with
//	            log₂-tree collectives.
//
// N is sized from the memory of the active nodes (MemFill), exactly as an
// operator would size a real run, so N grows as √procs across the sweep.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("hpl: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemFill <= 0 || cfg.MemFill > 0.95 {
		return nil, fmt.Errorf("hpl: memory fill %v outside (0, 0.95]", cfg.MemFill)
	}
	if cfg.GemmEff <= 0 || cfg.GemmEff > 1 {
		return nil, fmt.Errorf("hpl: gemm efficiency %v outside (0, 1]", cfg.GemmEff)
	}
	if cfg.NB <= 0 {
		return nil, errors.New("hpl: NB must be positive")
	}
	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return nil, fmt.Errorf("hpl: overlap %v outside [0, 1)", cfg.Overlap)
	}
	spec := cfg.Spec
	dist, err := spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}
	P, Q := Grid(cfg.Procs)

	// Size the matrix from the memory of the cores actually used: each
	// process gets its node's memory divided by the node's core count.
	memPerProc := spec.Node.Memory.CapacityBytes / float64(spec.Node.Cores())
	totalMem := memPerProc * float64(cfg.Procs)
	n := int(math.Sqrt(cfg.MemFill * totalMem / 8))
	if n < cfg.NB {
		n = cfg.NB
	}
	nf := float64(n)

	corePeak := spec.Node.CPU.ClockHz * spec.Node.CPU.FlopsPerCycle

	// Roofline memory term: a blocked dgemm with panel width NB streams
	// about 14/NB bytes per flop; a core's sustained rate is the lesser of
	// its compute ceiling and what its share of the node's memory bandwidth
	// feeds. Evaluated on the most-loaded node.
	maxProcsOnNode := 0
	for _, d := range dist {
		if d > maxProcsOnNode {
			maxProcsOnNode = d
		}
	}
	bytesPerFlop := 14.0 / float64(cfg.NB)
	rateEff := corePeak * cfg.GemmEff
	bwPerProc := spec.Node.Memory.BandwidthBps / float64(maxProcsOnNode)
	if bwRate := bwPerProc / bytesPerFlop; bwRate < rateEff {
		rateEff = bwRate
	}
	memPenalty := rateEff / (corePeak * cfg.GemmEff)

	flops := 2.0 / 3.0 * nf * nf * nf
	computeRate := float64(cfg.Procs) * rateEff
	tCompute := flops / computeRate

	// Communication: per panel (N/NB panels),
	//   panel broadcast along a process row: (N/P·NB) doubles, log₂Q stages
	//   U broadcast down a process column:  (N/Q·NB) doubles, log₂P stages
	//   pivot search + row swaps: latency-bound, ~NB·log₂P exchanges.
	// Costed against the per-node NIC bandwidth shared by the processes on
	// that node.
	nPanels := nf / float64(cfg.NB)
	linkBps := spec.Interconnect.LinkBps
	lat := spec.Interconnect.LatencySec
	logQ := math.Log2(float64(Q) + 1)
	logP := math.Log2(float64(P) + 1)
	// Average trailing-matrix extent is N/2.
	panelBytes := (nf / 2) / float64(P) * float64(cfg.NB) * 8
	uBytes := (nf / 2) / float64(Q) * float64(cfg.NB) * 8
	// Several processes share one NIC.
	procsPerNIC := float64(maxProcsOnNode)
	if procsPerNIC < 1 {
		procsPerNIC = 1
	}
	effLink := linkBps / procsPerNIC
	tComm := nPanels * (logQ*(panelBytes/effLink+lat) +
		logP*(uBytes/effLink+lat) +
		float64(cfg.NB)*logP*2*lat)
	// HPL's lookahead pipelining hides part of the broadcast traffic
	// behind the trailing update.
	tComm *= 1 - cfg.Overlap
	if cfg.Procs == 1 {
		tComm = 0
	}

	tTotal := tCompute + tComm
	perf := units.FLOPS(flops / tTotal)
	eff := float64(perf) / (float64(cfg.Procs) * corePeak)

	// Load profile: one phase. CPU utilisation of a node = (procs on node /
	// cores) × compute fraction; network utilisation from the comm traffic;
	// memory utilisation from the dgemm streaming demand.
	computeFrac := tCompute / tTotal
	commFrac := tComm / tTotal
	phase := cluster.PhaseFromDistribution(units.Seconds(tTotal), spec, dist,
		func(procs, cores int) cluster.Util {
			share := float64(procs) / float64(cores)
			memU := float64(procs) * corePeak * cfg.GemmEff * memPenalty * bytesPerFlop /
				spec.Node.Memory.BandwidthBps
			return cluster.Util{
				CPU: share * computeFrac,
				Mem: memU * computeFrac,
				Net: math.Min(1, commFrac*share),
			}
		})
	profile := &cluster.LoadProfile{Phases: []cluster.Phase{phase}}

	return &ModelResult{
		N:           n,
		Procs:       cfg.Procs,
		P:           P,
		Q:           Q,
		Perf:        perf,
		Duration:    units.Seconds(tTotal),
		ComputeTime: units.Seconds(tCompute),
		CommTime:    units.Seconds(tComm),
		Efficiency:  eff,
		Profile:     profile,
	}, nil
}
