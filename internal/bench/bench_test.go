package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/hpl"
	"repro/internal/suite"
)

// TestEveryWorkloadRoundTripsOnFire is the registry's contract test:
// each registered workload must carry a (spec, procs) pair through the
// whole suite pipeline on the paper's Fire cluster and come back as a
// well-formed Measurement.
func TestEveryWorkloadRoundTripsOnFire(t *testing.T) {
	spec := cluster.Fire()
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			w, ok := bench.Lookup(name)
			if !ok {
				t.Fatalf("Names lists %q but Lookup misses it", name)
			}
			if w.DefaultConfig(spec, 32) == nil {
				t.Errorf("%s: nil default config", name)
			}
			cfg := suite.DefaultConfig(spec, 32)
			cfg.Benchmarks = []string{name}
			res, err := suite.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res.Runs) != 1 {
				t.Fatalf("%s: got %d runs, want 1", name, len(res.Runs))
			}
			m := res.Runs[0].Measurement
			if m.Benchmark != w.Name() {
				t.Errorf("measurement names %q, want %q", m.Benchmark, w.Name())
			}
			if m.Metric != w.Metric() {
				t.Errorf("metric %q, want %q", m.Metric, w.Metric())
			}
			if m.Performance <= 0 || m.Power <= 0 || m.Time <= 0 || m.Energy <= 0 {
				t.Errorf("%s: degenerate measurement %+v", name, m)
			}
		})
	}
}

// TestLookupIsNameInsensitive: the registry folds case and separators,
// so CLI spellings like "hpl", "randomaccess" and "beff" all resolve.
func TestLookupIsNameInsensitive(t *testing.T) {
	for spelled, want := range map[string]string{
		"hpl":           bench.HPL,
		"HPL":           bench.HPL,
		"randomaccess":  bench.RandomAccess,
		"Random-Access": bench.RandomAccess,
		"beff":          bench.Beff,
		"b_eff":         bench.Beff,
		"B-EFF":         bench.Beff,
		"iozone":        bench.IOzone,
	} {
		w, ok := bench.Lookup(spelled)
		if !ok {
			t.Errorf("Lookup(%q) missed", spelled)
			continue
		}
		if w.Name() != want {
			t.Errorf("Lookup(%q) = %q, want %q", spelled, w.Name(), want)
		}
	}
	if _, ok := bench.Lookup("linpack"); ok {
		t.Error("Lookup resolved an unregistered name")
	}
}

func TestResolve(t *testing.T) {
	got, err := bench.Resolve([]string{"hpl", "beff", "stream"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{bench.HPL, bench.Beff, bench.STREAM}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Resolve[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := bench.Resolve([]string{"hpl", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	} else if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), bench.STREAM) {
		t.Errorf("unknown-benchmark error should name the culprit and the registry: %v", err)
	}
	if _, err := bench.Resolve([]string{"hpl", "HPL"}); err == nil {
		t.Error("duplicate benchmark accepted")
	}
}

func TestOrders(t *testing.T) {
	if got := bench.PaperOrder(); len(got) != 3 || got[0] != bench.HPL || got[1] != bench.STREAM || got[2] != bench.IOzone {
		t.Errorf("PaperOrder = %v", got)
	}
	ext := bench.ExtendedOrder()
	if len(ext) != 7 {
		t.Errorf("ExtendedOrder has %d entries, want 7", len(ext))
	}
	for _, name := range ext {
		if name == bench.Beff {
			t.Error("b_eff must stay opt-in, not part of ExtendedOrder")
		}
		if _, ok := bench.Lookup(name); !ok {
			t.Errorf("ExtendedOrder lists unregistered %q", name)
		}
	}
}

// TestWrongOverrideTypeFailsLoudly: a tunable override of the wrong
// concrete type must fail the run with a descriptive error, not fall
// back to defaults silently.
func TestWrongOverrideTypeFailsLoudly(t *testing.T) {
	w, _ := bench.Lookup(bench.STREAM)
	hplCfg := hpl.DefaultModelConfig(cluster.Testbed(), 4)
	_, err := w.Simulate(cluster.Testbed(), bench.Env{
		Procs:     4,
		Placement: cluster.Cyclic,
		Override:  &hplCfg,
	})
	if err == nil {
		t.Fatal("wrong override type accepted")
	}
	if !strings.Contains(err.Error(), "override") {
		t.Errorf("unhelpful override-type error: %v", err)
	}
}
