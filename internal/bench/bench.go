// Package bench is the workload layer of the TGI pipeline: a registry of
// pluggable benchmark workloads the suite runner assembles its run steps
// from. The paper's TGI equations are benchmark-agnostic — any suite that
// stresses distinct subsystems feeds the same EE/REE/weighting pipeline —
// so the orchestration layer should not know each benchmark by name.
// Opening a new workload means implementing Workload in one file and
// registering it; the suite, resilience machinery, journaling, tracing and
// reports all pick it up unchanged.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Canonical benchmark names as they appear in measurements.
const (
	HPL          = "HPL"
	DGEMM        = "DGEMM"
	STREAM       = "STREAM"
	PTRANS       = "PTRANS"
	RandomAccess = "RandomAccess"
	FFT          = "FFT"
	IOzone       = "IOzone"
	Beff         = "b_eff"
)

// Env is the per-run execution environment a workload simulates under:
// everything the enclosing suite config contributes to one benchmark run.
type Env struct {
	// Procs is the MPI process count of the enclosing suite run.
	Procs int
	// Placement maps processes onto nodes.
	Placement cluster.Placement
	// Override optionally replaces the workload's default model
	// configuration; its concrete type is the workload package's
	// *ModelConfig (see Workload.DefaultConfig). A wrong type is a
	// configuration error, not a silent fallback.
	Override any
	// EventBudget caps the discrete-event engine of event-driven models
	// (0 keeps the engine default).
	EventBudget uint64
}

// Simulated is what a workload's performance model hands the measurement
// stage: the performance number in the workload's metric unit and the
// load profile the power model integrates.
type Simulated struct {
	Perf    float64
	Profile *cluster.LoadProfile
	// Engine, when the model ran on the discrete-event kernel, carries
	// its work stats for the attempt's trace span.
	Engine *sim.Stats
}

// Workload is one benchmark of a TGI suite: a name, the unit its
// performance is reported in, a default model configuration, and the
// simulation that turns a machine spec into a performance + load-profile
// pair. Implementations must be stateless and safe for concurrent use —
// the parallel sweep scheduler runs one workload at several process
// counts at once.
type Workload interface {
	// Name is the canonical benchmark name as reported in measurements.
	Name() string
	// Metric names the performance unit (GFLOPS, MBPS, GUPS, ...).
	Metric() string
	// DefaultConfig returns the workload's default model configuration
	// for (spec, procs) — the value an Env.Override replaces. The
	// concrete type is the workload package's *ModelConfig.
	DefaultConfig(spec *cluster.Spec, procs int) any
	// Simulate runs the performance model against the (possibly
	// fault-degraded) spec under env.
	Simulate(spec *cluster.Spec, env Env) (Simulated, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
	// canonical indexes workloads by their exact canonical name, so the
	// hot path — the suite runner resolves each cell's steps by canonical
	// name — looks up without folding (and without allocating).
	canonical = map[string]Workload{}
	order     []string // registration order, for stable listings
)

// normalize folds a benchmark name for lookup: lower-cased with
// separators removed, so "hpl", "HPL", "randomaccess" and "b_eff"/"beff"
// all resolve. Already-folded names pass through without allocating.
func normalize(name string) string {
	for i := 0; i < len(name); i++ {
		if c := name[i]; c == '_' || c == '-' || ('A' <= c && c <= 'Z') {
			s := strings.ToLower(name)
			s = strings.ReplaceAll(s, "_", "")
			s = strings.ReplaceAll(s, "-", "")
			return s
		}
	}
	return name
}

// Register adds a workload to the registry. Registering a second
// workload under an already-taken name is a programming error.
func Register(w Workload) {
	key := normalize(w.Name())
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("bench: workload %q registered twice", w.Name()))
	}
	registry[key] = w
	canonical[w.Name()] = w
	order = append(order, w.Name())
}

// Lookup resolves a benchmark name (case- and separator-insensitively)
// to its registered workload.
func Lookup(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if w, ok := canonical[name]; ok {
		return w, true
	}
	w, ok := registry[normalize(name)]
	return w, ok
}

// Names returns every registered workload's canonical name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Resolve canonicalises an ordered benchmark list against the registry,
// rejecting unknown names and duplicates with one descriptive error.
func Resolve(names []string) ([]string, error) {
	if err := Validate(names); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, name := range names {
		w, _ := Lookup(name)
		out = append(out, w.Name())
	}
	return out, nil
}

// Validate checks an ordered benchmark list the way Resolve does —
// every name registered, no duplicates after canonicalisation — without
// building the canonical list. Config validation runs once per sweep
// cell, so the accept path must not allocate; suite lists are a handful
// of names, making the quadratic duplicate scan cheaper than a map.
func Validate(names []string) error {
	for i, name := range names {
		w, ok := Lookup(name)
		if !ok {
			return fmt.Errorf("bench: unknown benchmark %q (registered: %s)",
				name, strings.Join(Names(), ", "))
		}
		for j := 0; j < i; j++ {
			if prev, _ := Lookup(names[j]); prev == w {
				return fmt.Errorf("bench: benchmark %q listed twice", w.Name())
			}
		}
	}
	return nil
}

// PaperOrder returns the paper's three benchmarks in run order.
func PaperOrder() []string {
	return []string{HPL, STREAM, IOzone}
}

// ExtendedOrder returns the seven benchmarks of the extended suite in
// run order — the full HPC Challenge-style coverage the paper's
// introduction motivates: compute (HPL, DGEMM), memory bandwidth
// (STREAM), memory latency (RandomAccess), interconnect (PTRANS), mixed
// compute/all-to-all (FFT) and I/O (IOzone). b_eff stays opt-in: it is
// registered but joins a suite only by explicit request.
func ExtendedOrder() []string {
	return []string{HPL, DGEMM, STREAM, PTRANS, RandomAccess, FFT, IOzone}
}

// overrideAs asserts an Env.Override to the workload's config type; a
// nil override reports ok=false and a wrong type is a descriptive error.
func overrideAs[T any](bench string, o any) (T, bool, error) {
	var zero T
	if o == nil {
		return zero, false, nil
	}
	c, ok := o.(T)
	if !ok {
		return zero, false, fmt.Errorf("bench: %s override is %T, want %T", bench, o, zero)
	}
	return c, true, nil
}
