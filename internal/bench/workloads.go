package bench

import (
	"repro/internal/beff"
	"repro/internal/cluster"
	"repro/internal/dgemm"
	"repro/internal/fft"
	"repro/internal/hpl"
	"repro/internal/iozone"
	"repro/internal/ptrans"
	"repro/internal/randomaccess"
	"repro/internal/stream"
)

// The built-in workloads: one adapter per benchmark package. Each follows
// the same shape — default config from (spec, procs), whole-config
// replacement by a typed override, then the environment fields (placement,
// process count, event budget) re-applied so an override can never detach
// a benchmark from the run it is part of.
func init() {
	Register(hplWorkload{})
	Register(dgemmWorkload{})
	Register(streamWorkload{})
	Register(ptransWorkload{})
	Register(randomAccessWorkload{})
	Register(fftWorkload{})
	Register(iozoneWorkload{})
	Register(beffWorkload{})
}

type hplWorkload struct{}

func (hplWorkload) Name() string   { return HPL }
func (hplWorkload) Metric() string { return "GFLOPS" }
func (hplWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := hpl.DefaultModelConfig(spec, procs)
	return &cfg
}
func (hplWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := hpl.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*hpl.ModelConfig](HPL, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := hpl.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.Perf) / 1e9, Profile: res.Profile}, nil
}

type dgemmWorkload struct{}

func (dgemmWorkload) Name() string   { return DGEMM }
func (dgemmWorkload) Metric() string { return "GFLOPS" }
func (dgemmWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := dgemm.DefaultModelConfig(spec, procs)
	return &cfg
}
func (dgemmWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := dgemm.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*dgemm.ModelConfig](DGEMM, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := dgemm.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.Perf) / 1e9, Profile: res.Profile}, nil
}

type streamWorkload struct{}

func (streamWorkload) Name() string   { return STREAM }
func (streamWorkload) Metric() string { return "MBPS" }
func (streamWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := stream.DefaultModelConfig(spec, procs)
	return &cfg
}
func (streamWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := stream.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*stream.ModelConfig](STREAM, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := stream.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.Aggregate) / 1e6, Profile: res.Profile}, nil
}

type ptransWorkload struct{}

func (ptransWorkload) Name() string   { return PTRANS }
func (ptransWorkload) Metric() string { return "MBPS" }
func (ptransWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := ptrans.DefaultModelConfig(spec, procs)
	return &cfg
}
func (ptransWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := ptrans.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*ptrans.ModelConfig](PTRANS, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := ptrans.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.Rate) / 1e6, Profile: res.Profile}, nil
}

type randomAccessWorkload struct{}

func (randomAccessWorkload) Name() string   { return RandomAccess }
func (randomAccessWorkload) Metric() string { return "GUPS" }
func (randomAccessWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := randomaccess.DefaultModelConfig(spec, procs)
	return &cfg
}
func (randomAccessWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := randomaccess.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*randomaccess.ModelConfig](RandomAccess, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := randomaccess.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: res.GUPS, Profile: res.Profile}, nil
}

type fftWorkload struct{}

func (fftWorkload) Name() string   { return FFT }
func (fftWorkload) Metric() string { return "GFLOPS" }
func (fftWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := fft.DefaultModelConfig(spec, procs)
	return &cfg
}
func (fftWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := fft.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*fft.ModelConfig](FFT, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := fft.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.Perf) / 1e9, Profile: res.Profile}, nil
}

type iozoneWorkload struct{}

func (iozoneWorkload) Name() string   { return IOzone }
func (iozoneWorkload) Metric() string { return "MBPS" }

// ioDefault builds the sweep's IOzone configuration: one I/O client per
// socket's worth of cores (clamped to the node count) — at 32 of Fire's
// 128 cores the write test runs 4 clients, so the I/O sweep covers the
// same 1…8-client range as the node axis of the paper's Figure 4 — and
// every process contributes a fixed I/O volume (4.5 GB), so the test's
// duration scales with the sweep the way the compute benchmarks' do.
func ioDefault(spec *cluster.Spec, procs int) iozone.ModelConfig {
	perClient := spec.Node.CPU.CoresPerSocket
	ioClients := (procs + perClient - 1) / perClient
	if ioClients > spec.Nodes {
		ioClients = spec.Nodes
	}
	cfg := iozone.DefaultModelConfig(spec, ioClients)
	cfg.FileBytesPerNode = 4.5e9 * float64(procs) / float64(ioClients)
	return cfg
}

func (iozoneWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := ioDefault(spec, procs)
	return &cfg
}
func (iozoneWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := ioDefault(spec, env.Procs)
	if o, ok, err := overrideAs[*iozone.ModelConfig](IOzone, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Procs = env.Procs
	cfg.EventLimit = env.EventBudget
	res, err := iozone.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{
		Perf:    float64(res.Aggregate) / 1e6,
		Profile: res.Profile,
		Engine:  &res.Engine,
	}, nil
}

type beffWorkload struct{}

func (beffWorkload) Name() string   { return Beff }
func (beffWorkload) Metric() string { return "MBPS" }
func (beffWorkload) DefaultConfig(spec *cluster.Spec, procs int) any {
	cfg := beff.DefaultModelConfig(spec, procs)
	return &cfg
}
func (beffWorkload) Simulate(spec *cluster.Spec, env Env) (Simulated, error) {
	cfg := beff.DefaultModelConfig(spec, env.Procs)
	if o, ok, err := overrideAs[*beff.ModelConfig](Beff, env.Override); err != nil {
		return Simulated{}, err
	} else if ok {
		cfg = *o
	}
	cfg.Placement = env.Placement
	res, err := beff.Simulate(cfg)
	if err != nil {
		return Simulated{}, err
	}
	return Simulated{Perf: float64(res.RingRate) / 1e6, Profile: res.Profile}, nil
}
