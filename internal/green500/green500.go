// Package green500 builds ranked energy-efficiency lists in the style of
// the Green500 — the effort the paper positions TGI against. Systems can be
// ranked two ways: by the traditional FLOPS-per-watt of their HPL run (how
// the Green500 ranks today), or by TGI against a common reference system
// (the paper's proposal: "TGI provides a single number that can be used to
// gauge the energy efficiency of a supercomputer"). Producing both lists
// side by side shows where the two metrics disagree — which is the paper's
// motivating observation.
package green500

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/suite"
)

// Entry is one system's submission: its full suite measurements.
type Entry struct {
	System       string
	Measurements []core.Measurement
}

// hplOf picks the HPL measurement of a submission.
func (e Entry) hplOf() (core.Measurement, error) {
	for _, m := range e.Measurements {
		if m.Benchmark == suite.BenchHPL {
			return m, nil
		}
	}
	return core.Measurement{}, fmt.Errorf("green500: %s has no HPL measurement", e.System)
}

// Ranked is one row of a ranked list.
type Ranked struct {
	Rank   int
	System string
	Score  float64 // MFLOPS/W or TGI depending on the list
}

// RankByFlopsPerWatt ranks entries by the traditional HPL MFLOPS/W,
// descending. Performance must be reported in GFLOPS (as suite.Run does).
func RankByFlopsPerWatt(entries []Entry) ([]Ranked, error) {
	if len(entries) == 0 {
		return nil, errors.New("green500: no entries")
	}
	out := make([]Ranked, 0, len(entries))
	for _, e := range entries {
		m, err := e.hplOf()
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("green500: %s: %w", e.System, err)
		}
		out = append(out, Ranked{
			System: e.System,
			Score:  m.Performance * 1000 / float64(m.Power), // GFLOPS -> MFLOPS
		})
	}
	sortRanked(out)
	return out, nil
}

// RankByTGI ranks entries by TGI against the reference measurements,
// descending, under the given weighting scheme.
func RankByTGI(entries []Entry, ref []core.Measurement, scheme core.Scheme, custom []float64) ([]Ranked, error) {
	if len(entries) == 0 {
		return nil, errors.New("green500: no entries")
	}
	out := make([]Ranked, 0, len(entries))
	for _, e := range entries {
		c, err := core.Compute(e.Measurements, ref, scheme, custom)
		if err != nil {
			return nil, fmt.Errorf("green500: %s: %w", e.System, err)
		}
		out = append(out, Ranked{System: e.System, Score: c.TGI})
	}
	sortRanked(out)
	return out, nil
}

// sortRanked orders by descending score (ties by name for determinism) and
// assigns ranks starting at 1.
func sortRanked(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score { //greenvet:allow floateq -- exact score tie-break keeps the ranking total and deterministic
			return rs[i].Score > rs[j].Score
		}
		return rs[i].System < rs[j].System
	})
	for i := range rs {
		rs[i].Rank = i + 1
	}
}

// Disagreements returns the systems whose rank differs between two lists —
// the cases where the single-benchmark metric and the suite-wide metric
// tell different stories.
func Disagreements(a, b []Ranked) []string {
	rankIn := func(rs []Ranked) map[string]int {
		m := make(map[string]int, len(rs))
		for _, r := range rs {
			m[r.System] = r.Rank
		}
		return m
	}
	ra, rb := rankIn(a), rankIn(b)
	var out []string
	for sys, r := range ra {
		if rb[sys] != 0 && rb[sys] != r {
			out = append(out, sys)
		}
	}
	sort.Strings(out)
	return out
}

// Render formats a ranked list as a table.
func Render(title, scoreLabel string, rs []Ranked) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"Rank", "System", scoreLabel},
	}
	for _, r := range rs {
		t.AddRow(fmt.Sprintf("%d", r.Rank), r.System, fmt.Sprintf("%.3f", r.Score))
	}
	return t
}
