package green500

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/suite"
)

func entryFor(t *testing.T, spec *cluster.Spec, procs int) Entry {
	t.Helper()
	res, err := suite.Run(suite.DefaultConfig(spec, procs))
	if err != nil {
		t.Fatal(err)
	}
	return Entry{System: spec.Name, Measurements: res.Measurements()}
}

func TestRankByFlopsPerWatt(t *testing.T) {
	entries := []Entry{
		entryFor(t, cluster.Fire(), 128),
		entryFor(t, cluster.SystemG(), 1024),
		entryFor(t, cluster.GreenGPU(), 128),
	}
	ranked, err := RankByFlopsPerWatt(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("rows = %d", len(ranked))
	}
	for i, r := range ranked {
		if r.Rank != i+1 {
			t.Errorf("rank %d at index %d", r.Rank, i)
		}
		if i > 0 && r.Score > ranked[i-1].Score {
			t.Errorf("not descending at %d", i)
		}
	}
	// The GPU machine dominates FLOPS/W (that's what it's for).
	if ranked[0].System != "GreenGPU" {
		t.Errorf("top system = %s", ranked[0].System)
	}
	// Fire (2010 parts) beats SystemG (2008 parts).
	pos := map[string]int{}
	for _, r := range ranked {
		pos[r.System] = r.Rank
	}
	if pos["Fire"] > pos["SystemG"] {
		t.Errorf("Fire ranked below SystemG: %v", pos)
	}
}

func TestRankByTGI(t *testing.T) {
	ref := entryFor(t, cluster.SystemG(), 1024)
	entries := []Entry{
		entryFor(t, cluster.Fire(), 128),
		ref,
	}
	ranked, err := RankByTGI(entries, ref.Measurements, core.ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The reference system scores exactly 1 against itself.
	for _, r := range ranked {
		if r.System == "SystemG" && (r.Score < 0.999 || r.Score > 1.001) {
			t.Errorf("reference TGI = %v", r.Score)
		}
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := RankByFlopsPerWatt(nil); err == nil {
		t.Error("empty list accepted")
	}
	noHPL := Entry{System: "x", Measurements: []core.Measurement{{
		Benchmark: "STREAM", Metric: "MBPS", Performance: 1, Power: 1, Time: 1,
	}}}
	if _, err := RankByFlopsPerWatt([]Entry{noHPL}); err == nil {
		t.Error("entry without HPL accepted")
	}
	if _, err := RankByTGI([]Entry{noHPL}, nil, core.ArithmeticMean, nil); err == nil {
		t.Error("TGI with no reference accepted")
	}
}

func TestDisagreements(t *testing.T) {
	a := []Ranked{{1, "x", 3}, {2, "y", 2}, {3, "z", 1}}
	b := []Ranked{{1, "y", 9}, {2, "x", 8}, {3, "z", 7}}
	d := Disagreements(a, b)
	if len(d) != 2 || d[0] != "x" || d[1] != "y" {
		t.Errorf("disagreements = %v", d)
	}
	if len(Disagreements(a, a)) != 0 {
		t.Error("self-comparison disagrees")
	}
}

func TestRender(t *testing.T) {
	tab := Render("The TGI-500", "TGI", []Ranked{{1, "Fire", 1.83}})
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TGI-500", "Fire", "1.830"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	rs := []Ranked{{0, "b", 5}, {0, "a", 5}}
	sortRanked(rs)
	if rs[0].System != "a" || rs[0].Rank != 1 {
		t.Errorf("tie break wrong: %+v", rs)
	}
}

func TestLowPowerSystemRanksWellPerWatt(t *testing.T) {
	// The SiCortex-class machine loses on raw HPL but must beat the
	// commodity Xeon cluster on MFLOPS/W — the historical efficiency story
	// TGI grew out of.
	entries := []Entry{
		entryFor(t, cluster.SystemG(), 1024),
		entryFor(t, cluster.SiCortex(), cluster.SiCortex().TotalCores()),
	}
	ranked, err := RankByFlopsPerWatt(entries)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].System != "SiCortex" {
		t.Errorf("top per-watt system = %s, want SiCortex (scores: %+v)", ranked[0].System, ranked)
	}
}
