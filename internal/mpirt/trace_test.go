package mpirt

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestRunTracedRecordsEveryRank drives the collectives from many ranks
// recording concurrently into one tracer — under -race this doubles as
// the concurrency-safety test for span recording.
func TestRunTracedRecordsEveryRank(t *testing.T) {
	const n = 16
	tracer := obs.NewTracer()
	err := RunTraced(n, tracer, func(c *Comm) error {
		buf := []float64{float64(c.Rank())}
		out := make([]float64, 1)
		for i := 0; i < 20; i++ {
			if err := c.Allreduce(OpSum, buf, out); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	if len(spans) != n {
		t.Fatalf("recorded %d spans, want one per rank (%d)", len(spans), n)
	}
	seen := map[string]bool{}
	for _, s := range spans {
		if s.Track != "mpirt" {
			t.Errorf("span on track %q, want mpirt", s.Track)
		}
		if s.End < s.Start {
			t.Errorf("span %s runs backwards: [%v, %v]", s.Name, s.Start, s.End)
		}
		seen[s.Name] = true
	}
	for r := 0; r < n; r++ {
		if !seen[fmt.Sprintf("rank %d", r)] {
			t.Errorf("no span for rank %d", r)
		}
	}
	snap := tracer.Registry().Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "mpirt.ranks" && c.Value == n {
			found = true
		}
	}
	if !found {
		t.Errorf("mpirt.ranks counter missing or wrong: %+v", snap.Counters)
	}
}

func TestRunTracedNilRecorderDegradesToRun(t *testing.T) {
	ran := make([]bool, 4)
	if err := RunTraced(4, nil, func(c *Comm) error {
		ran[c.Rank()] = true
		return c.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	for r, ok := range ran {
		if !ok {
			t.Errorf("rank %d did not run", r)
		}
	}
}

func TestRunTracedCountsFailures(t *testing.T) {
	tracer := obs.NewTracer()
	boom := errors.New("boom")
	err := RunTraced(4, tracer, func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		return nil
	})
	var errs *Errs
	if !errors.As(err, &errs) || len(errs.ByRank) != 1 {
		t.Fatalf("err = %v, want one failed rank", err)
	}
	var failures float64
	for _, c := range tracer.Registry().Snapshot().Counters {
		if c.Name == "mpirt.rank_failures" {
			failures = c.Value
		}
	}
	if failures != 1 {
		t.Errorf("mpirt.rank_failures = %v, want 1", failures)
	}
	// The failed rank's span carries the error.
	found := false
	for _, s := range tracer.Spans() {
		if s.Name == "rank 2" {
			for _, a := range s.Attrs {
				if a.Key == "error" && a.Value == "boom" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("failed rank's span does not carry the error attribute")
	}
}

// TestRunTracedRecordsAbortInitiator: when one rank dies and poisons the
// world, only that rank records the abort event — the peers that drown
// in ErrAborted count as failures but not as initiators.
func TestRunTracedRecordsAbortInitiator(t *testing.T) {
	tracer := obs.NewTracer()
	boom := errors.New("rank 1 exploded")
	err := RunTraced(4, tracer, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		// Everyone else blocks on a barrier that can never complete and
		// dies of the propagated abort.
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("expected an error from the aborted world")
	}
	var aborts float64
	for _, c := range tracer.Registry().Snapshot().Counters {
		if c.Name == "mpirt.aborts" {
			aborts = c.Value
		}
	}
	if aborts != 1 {
		t.Errorf("mpirt.aborts = %v, want exactly 1 (the initiator)", aborts)
	}
	var events int
	for _, e := range tracer.Events() {
		if e.Name == obs.EventMPIAbort {
			events++
			var rank, errAttr string
			for _, a := range e.Attrs {
				switch a.Key {
				case "rank":
					rank = a.Value
				case "error":
					errAttr = a.Value
				}
			}
			if rank != "1" {
				t.Errorf("abort event names rank %q, want 1", rank)
			}
			if errAttr != boom.Error() {
				t.Errorf("abort event error = %q, want %q", errAttr, boom.Error())
			}
		}
	}
	if events != 1 {
		t.Errorf("recorded %d abort events, want 1", events)
	}
}
