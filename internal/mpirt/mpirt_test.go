package mpirt

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestRunBadSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Error("zero world size accepted")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	want := errors.New("boom")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return want
		}
		return nil
	})
	var errs *Errs
	if !errors.As(err, &errs) {
		t.Fatalf("err = %v, want *Errs", err)
	}
	if len(errs.ByRank) != 1 || !errors.Is(errs.ByRank[2], want) {
		t.Errorf("ByRank = %v", errs.ByRank)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	var errs *Errs
	if !errors.As(err, &errs) {
		t.Fatalf("err = %v, want *Errs", err)
	}
	if errs.ByRank[1] == nil {
		t.Error("panic not converted to error")
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []float64{1, 2, 3})
		}
		data, src, tag, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if src != 0 || tag != 5 || len(data) != 3 || data[2] != 3 {
			return fmt.Errorf("got %v from %d tag %d", data, src, tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = -1 // must not affect the receiver
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		data, _, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 42 {
			return fmt.Errorf("payload mutated after send: %v", data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{2})
		}
		// Receive tag 2 first even though tag 1 arrived first.
		d2, _, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, _, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if d2[0] != 2 || d1[0] != 1 {
			return fmt.Errorf("tag matching broke: %v %v", d1, d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), []float64{float64(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, src, tag, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(data[0]) != src || tag != src {
				return fmt.Errorf("mismatched envelope: data %v src %d tag %d", data, src, tag)
			}
			seen[src] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing sources: %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("invalid destination accepted")
		}
		if err := c.Send(0, -3, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		if _, _, _, err := c.Recv(7, 0); err == nil {
			return errors.New("invalid source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	err := Run(n, func(c *Comm) error {
		for i := 0; i < 5; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 7
	for root := 0; root < n; root++ {
		root := root
		err := Run(n, func(c *Comm) error {
			buf := make([]float64, 4)
			if c.Rank() == root {
				for i := range buf {
					buf[i] = float64(root*10 + i)
				}
			}
			if err := c.Bcast(root, buf); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != float64(root*10+i) {
					return fmt.Errorf("rank %d got %v", c.Rank(), buf)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Bcast(9, nil); err == nil {
			return errors.New("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		in := []float64{float64(c.Rank()), 1}
		out := make([]float64, 2)
		if err := c.Reduce(0, OpSum, in, out); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if out[0] != float64(n*(n-1)/2) || out[1] != n {
				return fmt.Errorf("reduce = %v", out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMin(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		in := []float64{float64(c.Rank())}
		max := make([]float64, 1)
		if err := c.Reduce(0, OpMax, in, max); err != nil {
			return err
		}
		min := make([]float64, 1)
		if err := c.Reduce(0, OpMin, in, min); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if max[0] != n-1 || min[0] != 0 {
				return fmt.Errorf("max %v min %v", max, min)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 9
	err := Run(n, func(c *Comm) error {
		in := []float64{1}
		out := make([]float64, 1)
		if err := c.Allreduce(OpSum, in, out); err != nil {
			return err
		}
		if out[0] != n {
			return fmt.Errorf("rank %d allreduce = %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		in := []float64{float64(c.Rank() * 2), float64(c.Rank()*2 + 1)}
		var out []float64
		if c.Rank() == 1 {
			out = make([]float64, 2*n)
		}
		if err := c.Gather(1, in, out); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < 2*n; i++ {
				if out[i] != float64(i) {
					return fmt.Errorf("gather = %v", out)
				}
			}
		}
		// Scatter it back.
		chunk := make([]float64, 2)
		if err := c.Scatter(1, out, chunk); err != nil {
			return err
		}
		if chunk[0] != float64(c.Rank()*2) || chunk[1] != float64(c.Rank()*2+1) {
			return fmt.Errorf("rank %d scatter = %v", c.Rank(), chunk)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 5
	err := Run(n, func(c *Comm) error {
		in := []float64{float64(c.Rank())}
		out := make([]float64, n)
		if err := c.Allgather(in, out); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if out[i] != float64(i) {
				return fmt.Errorf("rank %d allgather = %v", c.Rank(), out)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitGrid(t *testing.T) {
	// 2x3 grid: row comms and column comms, as HPL uses them.
	const P, Q = 2, 3
	err := Run(P*Q, func(c *Comm) error {
		myRow := c.Rank() / Q
		myCol := c.Rank() % Q
		rowComm, err := c.Split(myRow, myCol)
		if err != nil {
			return err
		}
		colComm, err := c.Split(myCol+100, myRow)
		if err != nil {
			return err
		}
		if rowComm.Size() != Q {
			return fmt.Errorf("row size = %d", rowComm.Size())
		}
		if colComm.Size() != P {
			return fmt.Errorf("col size = %d", colComm.Size())
		}
		if rowComm.Rank() != myCol {
			return fmt.Errorf("row rank = %d, want %d", rowComm.Rank(), myCol)
		}
		if colComm.Rank() != myRow {
			return fmt.Errorf("col rank = %d, want %d", colComm.Rank(), myRow)
		}
		// Sum of ranks along a row must be 0+1+2 = 3 for every row.
		out := make([]float64, 1)
		if err := rowComm.Allreduce(OpSum, []float64{float64(myCol)}, out); err != nil {
			return err
		}
		if out[0] != 3 {
			return fmt.Errorf("row sum = %v", out[0])
		}
		// Sum of ranks along a column must be 0+1 = 1.
		if err := colComm.Allreduce(OpSum, []float64{float64(myRow)}, out); err != nil {
			return err
		}
		if out[0] != 1 {
			return fmt.Errorf("col sum = %v", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitInterleavedTraffic(t *testing.T) {
	// Messages on a child communicator must not be swallowed by receives on
	// the parent (regression test for the shared pending stash).
	err := Run(2, func(c *Comm) error {
		child, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Send on child first, then parent.
			if err := child.Send(1, 7, []float64{70}); err != nil {
				return err
			}
			return c.Send(1, 8, []float64{80})
		}
		// Receive in the opposite order: parent first.
		dp, _, _, err := c.Recv(0, 8)
		if err != nil {
			return err
		}
		dc, _, _, err := child.Recv(0, 7)
		if err != nil {
			return err
		}
		if dp[0] != 80 || dc[0] != 70 {
			return fmt.Errorf("cross-comm routing broke: %v %v", dp, dc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]float64, 100)); err != nil {
				return err
			}
		} else {
			if _, _, _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.BytesSent() < 800 {
			return fmt.Errorf("bytes sent = %d, want >= 800", c.BytesSent())
		}
		if c.MessagesSent() < 1 {
			return errors.New("no messages recorded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPiByAllreduce(t *testing.T) {
	// A tiny end-to-end SPMD computation: midpoint integration of 4/(1+x²).
	const n = 4
	const steps = 100000
	err := Run(n, func(c *Comm) error {
		h := 1.0 / steps
		local := 0.0
		for i := c.Rank(); i < steps; i += n {
			x := h * (float64(i) + 0.5)
			local += 4 / (1 + x*x)
		}
		out := make([]float64, 1)
		if err := c.Allreduce(OpSum, []float64{local * h}, out); err != nil {
			return err
		}
		if math.Abs(out[0]-math.Pi) > 1e-6 {
			return fmt.Errorf("pi = %v", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 5
	const k = 3
	err := Run(n, func(c *Comm) error {
		in := make([]float64, n*k)
		for j := 0; j < n; j++ {
			for x := 0; x < k; x++ {
				in[j*k+x] = float64(c.Rank()*1000 + j*10 + x)
			}
		}
		out := make([]float64, n*k)
		if err := c.Alltoall(in, out); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for x := 0; x < k; x++ {
				want := float64(i*1000 + c.Rank()*10 + x)
				if out[i*k+x] != want {
					return fmt.Errorf("rank %d out[%d][%d] = %v, want %v",
						c.Rank(), i, x, out[i*k+x], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Alltoall(make([]float64, 4), make([]float64, 2)); err == nil {
			return errors.New("mismatched buffers accepted")
		}
		// Realign the collective counters: both ranks above errored before
		// any traffic, so a barrier still pairs up.
		if err := c.Alltoall(make([]float64, 3), make([]float64, 3)); err == nil {
			return errors.New("indivisible buffer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallRepeated(t *testing.T) {
	// Two transposes restore the original layout.
	const n = 4
	err := Run(n, func(c *Comm) error {
		in := make([]float64, n)
		for j := range in {
			in[j] = float64(c.Rank()*n + j)
		}
		mid := make([]float64, n)
		if err := c.Alltoall(in, mid); err != nil {
			return err
		}
		back := make([]float64, n)
		if err := c.Alltoall(mid, back); err != nil {
			return err
		}
		for j := range back {
			if back[j] != in[j] {
				return fmt.Errorf("rank %d: double alltoall broke: %v vs %v", c.Rank(), back, in)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		mine := []float64{float64(c.Rank() + 10)}
		got, err := c.Sendrecv(1-c.Rank(), 9, mine)
		if err != nil {
			return err
		}
		if got[0] != float64((1-c.Rank())+10) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		// Self-exchange is a copy.
		self, err := c.Sendrecv(c.Rank(), 9, mine)
		if err != nil || self[0] != mine[0] {
			return fmt.Errorf("self sendrecv = %v, %v", self, err)
		}
		if _, err := c.Sendrecv(0, -1, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashedRankUnblocksPeers simulates a node crash mid-run: one rank
// aborts while its peers sit inside a collective that can never complete.
// The peers must return ErrAborted instead of deadlocking.
func TestCrashedRankUnblocksPeers(t *testing.T) {
	crash := errors.New("simulated node crash")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			c.Abort(crash)
			return crash
		}
		// Without rank 2 this barrier cannot complete; the abort must
		// unblock everyone with an error.
		if err := c.Barrier(); err == nil {
			return errors.New("barrier completed without rank 2")
		} else if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("barrier err = %v, want ErrAborted", err)
		}
		// The world stays poisoned: later calls fail fast too.
		if _, _, _, err := c.Recv(AnySource, AnyTag); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("recv after abort err = %v, want ErrAborted", err)
		}
		return nil
	})
	var errs *Errs
	if !errors.As(err, &errs) {
		t.Fatalf("err = %v, want *Errs", err)
	}
	if len(errs.ByRank) != 1 || !errors.Is(errs.ByRank[2], crash) {
		t.Errorf("ByRank = %v, want only rank 2's crash", errs.ByRank)
	}
}

// TestPanickedRankUnblocksPeers covers the implicit abort: a rank that
// panics (or returns an error) poisons the world on its way out, so peers
// blocked in Recv do not deadlock.
func TestPanickedRankUnblocksPeers(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom mid-benchmark")
		}
		// Rank 1 never sends: only the abort can unblock this receive.
		if _, _, _, err := c.Recv(1, 0); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("recv err = %v, want ErrAborted", err)
		}
		return nil
	})
	var errs *Errs
	if !errors.As(err, &errs) {
		t.Fatalf("err = %v, want *Errs", err)
	}
	if len(errs.ByRank) != 1 || errs.ByRank[1] == nil {
		t.Errorf("ByRank = %v, want only rank 1's panic", errs.ByRank)
	}
}

// TestAbortDoesNotEatDeliveredMessages: a message already in flight when the
// world aborts must still be receivable — the abort only breaks waits that
// could never finish.
func TestAbortDoesNotEatDeliveredMessages(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 3, []float64{7}); err != nil {
				return err
			}
			c.Abort(errors.New("late crash"))
			return nil
		}
		// Wait until the abort has landed, then receive the earlier message.
		<-c.world.done
		data, _, _, err := c.Recv(0, 3)
		if err != nil {
			return fmt.Errorf("delivered message lost to abort: %v", err)
		}
		if data[0] != 7 {
			return fmt.Errorf("payload = %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveFuzz drives a long pseudo-random schedule of mixed
// collectives on the world communicator and two sub-communicators; any
// tag-accounting or routing bug shows up as a hang (caught by the test
// timeout) or a wrong reduction value.
func TestCollectiveFuzz(t *testing.T) {
	const n = 6
	const steps = 60
	err := Run(n, func(c *Comm) error {
		even, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		pair, err := c.Split(c.Rank()/2, c.Rank())
		if err != nil {
			return err
		}
		// The schedule is derived deterministically from the step index so
		// every rank agrees on the collective sequence (SPMD discipline).
		for s := 0; s < steps; s++ {
			switch s % 5 {
			case 0:
				if err := c.Barrier(); err != nil {
					return err
				}
			case 1:
				buf := []float64{float64(s)}
				root := s % n
				if c.Rank() != root {
					buf[0] = -1
				}
				if err := c.Bcast(root, buf); err != nil {
					return err
				}
				if buf[0] != float64(s) {
					return fmt.Errorf("step %d: bcast got %v", s, buf[0])
				}
			case 2:
				out := make([]float64, 1)
				if err := even.Allreduce(OpSum, []float64{1}, out); err != nil {
					return err
				}
				if out[0] != float64(even.Size()) {
					return fmt.Errorf("step %d: even allreduce %v", s, out[0])
				}
			case 3:
				out := make([]float64, pair.Size())
				if err := pair.Allgather([]float64{float64(pair.Rank())}, out); err != nil {
					return err
				}
				for i := range out {
					if out[i] != float64(i) {
						return fmt.Errorf("step %d: pair allgather %v", s, out)
					}
				}
			case 4:
				in := make([]float64, n)
				for i := range in {
					in[i] = float64(c.Rank())
				}
				outAll := make([]float64, n)
				if err := c.Alltoall(in, outAll); err != nil {
					return err
				}
				for i, v := range outAll {
					if v != float64(i) {
						return fmt.Errorf("step %d: alltoall %v", s, outAll)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
