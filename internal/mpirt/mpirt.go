// Package mpirt is a miniature message-passing runtime in the style of MPI,
// built on goroutines and channels. It provides exactly the surface the
// distributed HPL implementation needs: SPMD launch, ranked communicators,
// tagged point-to-point messages, the usual collectives, communicator
// splitting (for the row/column communicators of a 2D process grid), and
// traffic accounting so benchmark drivers can report communication volume.
//
// Semantics follow MPI where it matters for correctness: messages between a
// pair of ranks with the same tag arrive in order; collectives must be
// called by every member of a communicator in the same order (SPMD
// discipline); payload slices are copied on send, so the sender may reuse
// its buffer immediately.
package mpirt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/units"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches any tag in Recv.
const AnyTag = -1

// Reserved internal tag space for collectives; user tags must be >= 0.
const collectiveTagBase = -1000

type message struct {
	commID uint64
	src    int // rank within the communicator
	tag    int
	data   []float64
}

// World owns the mailboxes of an SPMD run.
type World struct {
	size    int
	inbox   []chan message
	pending [][]message  // per world rank, unmatched messages; owned by that rank's goroutine
	bytes   atomic.Int64 // total payload bytes sent, all communicators
	msgs    atomic.Int64
	chanCap int

	// Crash/abort path: when a rank dies (error return, panic, or explicit
	// Abort), the world is poisoned so peers blocked in Recv or a full
	// Send unblock with ErrAborted instead of deadlocking.
	done      chan struct{}
	abortOnce sync.Once
	abortInfo atomic.Pointer[abortCause]
}

type abortCause struct {
	rank int
	err  error
}

// ErrAborted is returned (wrapped) by communication calls whose world was
// poisoned by a crashed rank.
var ErrAborted = errors.New("mpirt: world aborted")

// abort poisons the world. The first caller wins; later aborts are no-ops.
func (w *World) abort(rank int, cause error) {
	w.abortOnce.Do(func() {
		w.abortInfo.Store(&abortCause{rank: rank, err: cause})
		close(w.done)
	})
}

// abortErr describes why the world died, wrapping ErrAborted.
func (w *World) abortErr() error {
	if info := w.abortInfo.Load(); info != nil {
		return fmt.Errorf("%w by rank %d: %v", ErrAborted, info.rank, info.err)
	}
	return ErrAborted
}

// Abort simulates this rank crashing: every peer blocked in (or later
// entering) a communication call fails with ErrAborted rather than
// deadlocking — MPI_Abort semantics for the miniature runtime.
func (c *Comm) Abort(cause error) {
	if cause == nil {
		cause = errors.New("aborted")
	}
	c.world.abort(c.members[c.rank], cause)
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	world   *World
	id      uint64
	rank    int
	members []int  // communicator rank -> world rank
	collSeq int    // per-rank collective sequence number (advances in SPMD lockstep)
	split   uint64 // per-rank split counter for deriving child communicator ids
}

// Errs aggregates per-rank errors from an SPMD run.
type Errs struct {
	ByRank map[int]error
}

func (e *Errs) Error() string {
	return fmt.Sprintf("mpirt: %d rank(s) failed: %v", len(e.ByRank), e.ByRank)
}

// Run launches fn on n ranks and waits for all of them. The returned error
// is nil when every rank succeeds, otherwise an *Errs collecting each
// failure. Panics in a rank are converted to errors so one bad rank cannot
// take down the test process.
func Run(n int, fn func(c *Comm) error) error {
	if n <= 0 {
		return errors.New("mpirt: world size must be positive")
	}
	w := &World{size: n, inbox: make([]chan message, n), pending: make([][]message, n),
		chanCap: 4 * n, done: make(chan struct{})}
	if w.chanCap < 64 {
		w.chanCap = 64
	}
	for i := range w.inbox {
		w.inbox[i] = make(chan message, w.chanCap)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpirt: rank %d panicked: %v", r, p)
				}
				// A dead rank can never again feed its peers: poison the
				// world so anyone blocked on it errors out instead of
				// deadlocking the whole run.
				if errs[r] != nil {
					w.abort(r, errs[r])
				}
			}()
			c := &Comm{world: w, id: 1, rank: r, members: members}
			errs[r] = fn(c)
		}()
	}
	wg.Wait()
	failed := map[int]error{}
	for r, err := range errs {
		if err != nil {
			failed[r] = err
		}
	}
	if len(failed) > 0 {
		return &Errs{ByRank: failed}
	}
	return nil
}

// RunTraced is Run with per-rank observability: each rank's execution is
// recorded as a span on the "mpirt" track of rec. The runtime has no
// virtual clock, so spans lie on a logical message clock — the world's
// cumulative message count at rank start and finish — which still shows
// which ranks were communication-active over which part of the run. Rank
// goroutines record concurrently; rec must be safe for concurrent use
// (obs.Tracer is). A nil rec degrades to plain Run.
func RunTraced(n int, rec obs.Recorder, fn func(c *Comm) error) error {
	if rec == nil {
		return Run(n, fn)
	}
	return Run(n, func(c *Comm) error {
		start := c.world.msgs.Load()
		err := fn(c)
		end := c.world.msgs.Load()
		attrs := []obs.Attr{
			obs.Int("rank", c.rank),
			obs.Int("world", n),
			obs.Int64("bytes_sent_world", c.world.bytes.Load()),
		}
		if err != nil {
			attrs = append(attrs, obs.Str("error", err.Error()))
		}
		rec.Span(obs.Span{
			Track: obs.TrackMPI,
			Name:  fmt.Sprintf("rank %d", c.rank),
			Start: units.Seconds(start),
			End:   units.Seconds(end),
			Attrs: attrs,
		})
		rec.Count("mpirt.ranks", 1)
		if err != nil {
			rec.Count("mpirt.rank_failures", 1)
			// The rank that died with its own error (not a peer's abort
			// propagating back) is the one that poisoned the world: record
			// the abort as an instant so trace and live consumers see who
			// initiated the collapse, not just which ranks drowned in it.
			if !errors.Is(err, ErrAborted) {
				rec.Event(obs.Event{
					Track: obs.TrackMPI,
					Name:  obs.EventMPIAbort,
					At:    units.Seconds(end),
					Attrs: []obs.Attr{
						obs.Int("rank", c.rank),
						obs.Str("error", err.Error()),
					},
				})
				rec.Count("mpirt.aborts", 1)
			}
		}
		return err
	})
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.members) }

// BytesSent returns the total payload bytes sent across the whole world so
// far (all communicators). Benchmark drivers read this to report
// communication volume.
func (c *Comm) BytesSent() int64 { return c.world.bytes.Load() }

// MessagesSent returns the total message count across the world.
func (c *Comm) MessagesSent() int64 { return c.world.msgs.Load() }

// Send delivers a copy of data to dst (communicator rank) under tag.
// Tags must be non-negative; negative tags are reserved for collectives.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if tag < 0 {
		return fmt.Errorf("mpirt: user tag %d is negative", tag)
	}
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= len(c.members) {
		return fmt.Errorf("mpirt: send to invalid rank %d of %d", dst, len(c.members))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.world.bytes.Add(int64(8 * len(data)))
	c.world.msgs.Add(1)
	m := message{commID: c.id, src: c.rank, tag: tag, data: cp}
	box := c.world.inbox[c.members[dst]]
	// Prefer delivery while there is buffer space; only a blocked send
	// consults the abort channel, so healthy runs are unaffected.
	select {
	case box <- m:
		return nil
	default:
	}
	select {
	case box <- m:
		return nil
	case <-c.world.done:
		return c.world.abortErr()
	}
}

// Recv blocks until a message matching (src, tag) on this communicator
// arrives and returns its payload and envelope. src may be AnySource and
// tag may be AnyTag.
func (c *Comm) Recv(src, tag int) (data []float64, fromRank, gotTag int, err error) {
	if src != AnySource && (src < 0 || src >= len(c.members)) {
		return nil, 0, 0, fmt.Errorf("mpirt: recv from invalid rank %d", src)
	}
	match := func(m message) bool {
		if m.commID != c.id {
			return false
		}
		// Collective traffic travels on reserved negative tags; AnyTag is
		// a user-level wildcard and must never consume it (a stray token
		// from an aborted collective would otherwise satisfy a Recv).
		if tag == AnyTag && m.tag < 0 {
			return false
		}
		if src != AnySource && m.src != src {
			return false
		}
		if tag != AnyTag && m.tag != tag {
			return false
		}
		return true
	}
	// The pending stash is shared across all communicators of this world
	// rank: a message for communicator A received while blocked in B's Recv
	// must remain visible to A.
	wr := c.members[c.rank]
	stash := c.world.pending[wr]
	for i, m := range stash {
		if match(m) {
			c.world.pending[wr] = append(stash[:i], stash[i+1:]...)
			return m.data, m.src, m.tag, nil
		}
	}
	for {
		var m message
		// Drain messages already delivered before consulting the abort
		// channel, so an abort racing with in-flight traffic does not eat
		// receivable messages.
		select {
		case m = <-c.world.inbox[wr]:
		default:
			select {
			case m = <-c.world.inbox[wr]:
			case <-c.world.done:
				return nil, 0, 0, c.world.abortErr()
			}
		}
		if match(m) {
			return m.data, m.src, m.tag, nil
		}
		c.world.pending[wr] = append(c.world.pending[wr], m)
	}
}

// recvExact is Recv with required src and tag, returning just the data.
func (c *Comm) recvExact(src, tag int) ([]float64, error) {
	data, _, _, err := c.Recv(src, tag)
	return data, err
}

// nextCollTag reserves a fresh tag for one collective operation. All ranks
// call collectives in the same order, so their counters agree.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return collectiveTagBase - c.collSeq
}

// Barrier blocks until every rank of the communicator has entered it.
// Implementation: gather-to-zero then broadcast, via the internal tag space.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	n := len(c.members)
	if n == 1 {
		return nil
	}
	if c.rank == 0 {
		for i := 1; i < n; i++ {
			if _, _, _, err := c.Recv(AnySource, tag); err != nil {
				return err
			}
		}
		for i := 1; i < n; i++ {
			if err := c.send(i, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(0, tag, nil); err != nil {
		return err
	}
	_, err := c.recvExact(0, tag)
	return err
}

// Bcast distributes buf from root to every rank. On non-root ranks buf is
// overwritten; its length must match the root's. A binomial tree keeps the
// critical path logarithmic, which matters for the HPL panel broadcasts.
func (c *Comm) Bcast(root int, buf []float64) error {
	n := len(c.members)
	if root < 0 || root >= n {
		return fmt.Errorf("mpirt: bcast root %d invalid", root)
	}
	tag := c.nextCollTag()
	if n == 1 {
		return nil
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.rank - root + n) % n
	// Receive from parent (unless root).
	if vr != 0 {
		parent := ((vr - 1) / 2)
		src := (parent + root) % n
		data, err := c.recvExact(src, tag)
		if err != nil {
			return err
		}
		if len(data) != len(buf) {
			return fmt.Errorf("mpirt: bcast length mismatch: have %d, want %d", len(buf), len(data))
		}
		copy(buf, data)
	}
	// Forward to children.
	for _, child := range []int{2*vr + 1, 2*vr + 2} {
		if child < n {
			dst := (child + root) % n
			if err := c.send(dst, tag, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func applyOp(op Op, dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// Reduce combines in from every rank with op; the result lands in out on
// root only. len(out) must equal len(in) on root.
func (c *Comm) Reduce(root int, op Op, in, out []float64) error {
	n := len(c.members)
	if root < 0 || root >= n {
		return fmt.Errorf("mpirt: reduce root %d invalid", root)
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(out) != len(in) {
			return fmt.Errorf("mpirt: reduce buffer mismatch: %d vs %d", len(out), len(in))
		}
		copy(out, in)
		for i := 0; i < n-1; i++ {
			data, _, _, err := c.Recv(AnySource, tag)
			if err != nil {
				return err
			}
			if len(data) != len(out) {
				return fmt.Errorf("mpirt: reduce contribution length %d, want %d", len(data), len(out))
			}
			applyOp(op, out, data)
		}
		return nil
	}
	return c.send(root, tag, in)
}

// Allreduce is Reduce to rank 0 followed by Bcast; every rank gets the
// combined result in out.
func (c *Comm) Allreduce(op Op, in, out []float64) error {
	if len(out) != len(in) {
		return fmt.Errorf("mpirt: allreduce buffer mismatch: %d vs %d", len(out), len(in))
	}
	if err := c.Reduce(0, op, in, out); err != nil {
		return err
	}
	return c.Bcast(0, out)
}

// Gather concatenates equal-length contributions on root: out receives
// rank i's in at offset i*len(in). out may be nil on non-root ranks.
func (c *Comm) Gather(root int, in, out []float64) error {
	n := len(c.members)
	if root < 0 || root >= n {
		return fmt.Errorf("mpirt: gather root %d invalid", root)
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(out) != n*len(in) {
			return fmt.Errorf("mpirt: gather buffer %d, want %d", len(out), n*len(in))
		}
		copy(out[c.rank*len(in):], in)
		for i := 0; i < n-1; i++ {
			data, src, _, err := c.Recv(AnySource, tag)
			if err != nil {
				return err
			}
			if len(data) != len(in) {
				return fmt.Errorf("mpirt: gather contribution length %d, want %d", len(data), len(in))
			}
			copy(out[src*len(in):], data)
		}
		return nil
	}
	return c.send(root, tag, in)
}

// Scatter distributes equal-size chunks of in from root: rank i receives
// in[i*len(out) : (i+1)*len(out)]. in may be nil on non-root ranks.
func (c *Comm) Scatter(root int, in, out []float64) error {
	n := len(c.members)
	if root < 0 || root >= n {
		return fmt.Errorf("mpirt: scatter root %d invalid", root)
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(in) != n*len(out) {
			return fmt.Errorf("mpirt: scatter buffer %d, want %d", len(in), n*len(out))
		}
		for i := 0; i < n; i++ {
			if i == root {
				copy(out, in[i*len(out):(i+1)*len(out)])
				continue
			}
			if err := c.send(i, tag, in[i*len(out):(i+1)*len(out)]); err != nil {
				return err
			}
		}
		return nil
	}
	data, err := c.recvExact(root, tag)
	if err != nil {
		return err
	}
	if len(data) != len(out) {
		return fmt.Errorf("mpirt: scatter chunk length %d, want %d", len(data), len(out))
	}
	copy(out, data)
	return nil
}

// Allgather is Gather to rank 0 followed by Bcast of the concatenation.
func (c *Comm) Allgather(in, out []float64) error {
	n := len(c.members)
	if len(out) != n*len(in) {
		return fmt.Errorf("mpirt: allgather buffer %d, want %d", len(out), n*len(in))
	}
	if c.rank == 0 {
		if err := c.Gather(0, in, out); err != nil {
			return err
		}
	} else {
		if err := c.Gather(0, in, nil); err != nil {
			return err
		}
	}
	return c.Bcast(0, out)
}

// Split partitions the communicator: ranks passing the same color form a new
// communicator, ordered by (key, parent rank). Every member of the parent
// must call Split. This is how the HPL grid derives its row and column
// communicators.
func (c *Comm) Split(color, key int) (*Comm, error) {
	n := len(c.members)
	// Exchange (color, key) with everyone via Allgather.
	in := []float64{float64(color), float64(key)}
	out := make([]float64, 2*n)
	if err := c.Allgather(in, out); err != nil {
		return nil, err
	}
	type entry struct{ color, key, rank int }
	var mine []entry
	for r := 0; r < n; r++ {
		e := entry{color: int(out[2*r]), key: int(out[2*r+1]), rank: r}
		if e.color == color {
			mine = append(mine, e)
		}
	}
	// Stable order by (key, rank).
	for i := 1; i < len(mine); i++ {
		for j := i; j > 0; j-- {
			a, b := mine[j-1], mine[j]
			if b.key < a.key || (b.key == a.key && b.rank < a.rank) {
				mine[j-1], mine[j] = b, a
			} else {
				break
			}
		}
	}
	members := make([]int, len(mine))
	newRank := -1
	for i, e := range mine {
		members[i] = c.members[e.rank]
		if e.rank == c.rank {
			newRank = i
		}
	}
	if newRank < 0 {
		return nil, errors.New("mpirt: split lost calling rank")
	}
	c.split++
	// Child id must be identical for all members and unique per split/color:
	// derive it from the parent id, the per-rank split counter (identical in
	// SPMD lockstep) and the color.
	id := c.id*1_000_003 + c.split*101 + uint64(color+1)
	return &Comm{world: c.world, id: id, rank: newRank, members: members}, nil
}

// Alltoall performs the complete exchange: rank i's in[j·k:(j+1)·k] lands in
// rank j's out[i·k:(i+1)·k], where k = len(in)/size. Every rank must pass
// equal-length buffers with len(in) divisible by the communicator size.
// This is the collective behind transpose-based distributed FFTs.
func (c *Comm) Alltoall(in, out []float64) error {
	n := len(c.members)
	if len(in) != len(out) {
		return fmt.Errorf("mpirt: alltoall buffer mismatch: %d vs %d", len(in), len(out))
	}
	if len(in)%n != 0 {
		return fmt.Errorf("mpirt: alltoall buffer %d not divisible by %d ranks", len(in), n)
	}
	k := len(in) / n
	tag := c.nextCollTag()
	// Self-chunk is a local copy.
	copy(out[c.rank*k:(c.rank+1)*k], in[c.rank*k:(c.rank+1)*k])
	// Send every other chunk, then receive n-1 chunks (buffered channels
	// make the all-send-then-all-receive order deadlock-free).
	for d := 1; d < n; d++ {
		dst := (c.rank + d) % n
		if err := c.send(dst, tag, in[dst*k:(dst+1)*k]); err != nil {
			return err
		}
	}
	for i := 0; i < n-1; i++ {
		data, src, _, err := c.Recv(AnySource, tag)
		if err != nil {
			return err
		}
		if len(data) != k {
			return fmt.Errorf("mpirt: alltoall chunk from %d has %d values, want %d", src, len(data), k)
		}
		copy(out[src*k:(src+1)*k], data)
	}
	return nil
}

// Sendrecv exchanges buffers with a peer in one deadlock-free step: data is
// sent to peer under tag while a same-tag message from peer is received and
// returned. Both sides must call it symmetrically.
func (c *Comm) Sendrecv(peer, tag int, data []float64) ([]float64, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpirt: user tag %d is negative", tag)
	}
	if peer == c.rank {
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp, nil
	}
	if err := c.send(peer, tag, data); err != nil {
		return nil, err
	}
	got, _, _, err := c.Recv(peer, tag)
	return got, err
}
