package paper

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/suite"
)

// newDataset is cached across tests: the full sweep is the expensive part.
var cached *Dataset

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if cached == nil {
		d, err := NewDataset()
		if err != nil {
			t.Fatal(err)
		}
		cached = d
	}
	return cached
}

func TestDatasetStructure(t *testing.T) {
	d := dataset(t)
	if len(d.Procs) != len(d.Results) {
		t.Fatalf("axis %d vs results %d", len(d.Procs), len(d.Results))
	}
	for _, b := range Benchmarks {
		if len(d.EE[b]) != len(d.Procs) {
			t.Errorf("EE[%s] has %d points", b, len(d.EE[b]))
		}
		if len(d.REE[b]) != len(d.Procs) {
			t.Errorf("REE[%s] has %d points", b, len(d.REE[b]))
		}
	}
	for _, s := range Schemes {
		if len(d.TGI[s]) != len(d.Procs) {
			t.Errorf("TGI[%v] has %d points", s, len(d.TGI[s]))
		}
	}
}

func TestAllChecksPass(t *testing.T) {
	d := dataset(t)
	for _, c := range d.Verify() {
		if !c.Passed {
			t.Errorf("%s FAILED: %s", c.Name, c.Detail)
		} else {
			t.Logf("%s ok: %s", c.Name, c.Detail)
		}
	}
}

func TestTable2MatchesPaperBands(t *testing.T) {
	d := dataset(t)
	// The paper's prose quotes PCC(TGI_AM, ·) = .99 (IOzone), .96 (STREAM),
	// .58 (HPL). Require our values within ±0.08 of those.
	want := map[string]float64{
		suite.BenchIOzone: 0.99,
		suite.BenchSTREAM: 0.96,
		suite.BenchHPL:    0.58,
	}
	for b, w := range want {
		got, err := d.PCC(b, core.ArithmeticMean)
		if err != nil {
			t.Fatal(err)
		}
		if got < w-0.08 || got > w+0.08 {
			t.Errorf("PCC(AM, %s) = %.3f, paper %.2f (band ±0.08)", b, got, w)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	pts, chart, err := Fig4(cluster.Fire())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	// Efficiency rises while the backend ramps, then falls once saturated:
	// the peak must be interior.
	peak := 0
	for i, p := range pts {
		if p.EEMBpsW > pts[peak].EEMBpsW {
			peak = i
		}
	}
	if peak == 0 || peak == len(pts)-1 {
		t.Errorf("IOzone efficiency peak at boundary (index %d)", peak)
	}
	// Throughput is nondecreasing and saturates at the backend ceiling.
	last := pts[len(pts)-1]
	if float64(last.Rate) < 350e6 || float64(last.Rate) > 420e6 {
		t.Errorf("saturated rate = %v", last.Rate)
	}
	var sb strings.Builder
	if err := chart.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Error("chart missing title")
	}
}

func TestChartsRender(t *testing.T) {
	d := dataset(t)
	var sb strings.Builder
	for _, render := range []func() error{
		func() error { return d.Fig2().Render(&sb) },
		func() error { return d.Fig3().Render(&sb) },
		func() error { return d.Fig5().Render(&sb) },
		func() error { return d.Fig6().Render(&sb) },
	} {
		if err := render(); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 5", "Figure 6", "MFLOPS/Watt", "Green Index"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered charts missing %q", want)
		}
	}
}

func TestTable1(t *testing.T) {
	d := dataset(t)
	tab := d.Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table I has %d rows", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HPL", "STREAM", "IOzone", "TFLOPS", "KW"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	d := dataset(t)
	tab, err := d.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Headers) != 5 {
		t.Fatalf("Table II shape: %d rows, %d cols", len(tab.Rows), len(tab.Headers))
	}
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "IOzone") {
		t.Error("CSV missing data")
	}
}

func TestPCCErrors(t *testing.T) {
	d := dataset(t)
	if _, err := d.PCC("nope", core.ArithmeticMean); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := d.PCC(suite.BenchHPL, core.Custom); err == nil {
		t.Error("missing scheme accepted")
	}
}

func TestDeriveValidation(t *testing.T) {
	if _, err := Derive([]int{1, 2}, nil, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestNewDatasetOnSmallCluster(t *testing.T) {
	d, err := NewDatasetOn(cluster.Testbed(), cluster.Testbed(), []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TGI[core.ArithmeticMean]) != 3 {
		t.Errorf("TGI points = %d", len(d.TGI[core.ArithmeticMean]))
	}
}

func TestTable2StableUnderMeterNoise(t *testing.T) {
	// The correlation structure is a claim about the system, not about one
	// meter run: rerun the entire pipeline under three independent noise
	// seeds and require the AM-column ordering and bands to hold each time.
	for _, seed := range []uint64{101, 202, 303} {
		d, err := NewDatasetSeeded(cluster.Fire(), cluster.SystemG(), suite.FireSweep(), seed)
		if err != nil {
			t.Fatal(err)
		}
		rIO, err := d.PCC(suite.BenchIOzone, core.ArithmeticMean)
		if err != nil {
			t.Fatal(err)
		}
		rST, _ := d.PCC(suite.BenchSTREAM, core.ArithmeticMean)
		rHPL, _ := d.PCC(suite.BenchHPL, core.ArithmeticMean)
		if !(rIO > 0.9 && rST > 0.9 && rHPL < 0.75 && rIO >= rST) {
			t.Errorf("seed %d: PCC ordering broke: io=%.3f st=%.3f hpl=%.3f",
				seed, rIO, rST, rHPL)
		}
	}
}

func TestFig1Diagram(t *testing.T) {
	out := Fig1(cluster.Fire())
	for _, want := range []string{"Watts Up? PRO", "Fire", "8 nodes", "128 cores", "10 GbE", "metered envelope"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}
