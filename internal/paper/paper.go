// Package paper regenerates every table and figure of the paper's
// evaluation (Section IV) from the simulated Fire and SystemG clusters:
//
//	Figure 2 — energy efficiency of HPL (MFLOPS/W) vs MPI processes
//	Figure 3 — energy efficiency of STREAM (MB/s per W) vs MPI processes
//	Figure 4 — energy efficiency of IOzone write (MB/s per W) vs nodes
//	Figure 5 — TGI (arithmetic mean) vs cores
//	Figure 6 — TGI with time/energy/power weights vs cores
//	Table I  — performance and power of each benchmark on SystemG
//	Table II — Pearson correlation between per-benchmark efficiency and TGI
//
// A Dataset is one full reproduction run: the Fire sweep, the SystemG
// reference point, and everything derived from them. All figures and tables
// are deterministic functions of the dataset.
package paper

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/iozone"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/suite"
	"repro/internal/units"
)

// Schemes evaluated by the TGI figures, in presentation order.
var Schemes = []core.Scheme{
	core.ArithmeticMean,
	core.TimeWeighted,
	core.EnergyWeighted,
	core.PowerWeighted,
}

// Dataset is one full reproduction run.
type Dataset struct {
	Procs     []int           // sweep axis (Fire)
	Results   []*suite.Result // Fire suite runs, one per Procs entry
	Reference *suite.Result   // SystemG at 1024 cores

	// EE holds each benchmark's efficiency curve over the sweep, in the
	// benchmark's metric per watt (Equation 2).
	EE map[string][]float64
	// REE holds the relative efficiency curves (Equation 3).
	REE map[string][]float64
	// TGI holds the index curve per weighting scheme (Equation 4).
	TGI map[core.Scheme][]float64
}

// Benchmarks in suite order.
var Benchmarks = []string{suite.BenchHPL, suite.BenchSTREAM, suite.BenchIOzone}

// NewDataset runs the full reproduction: the SystemG reference point and
// the Fire sweep, then derives the EE, REE and TGI curves.
func NewDataset() (*Dataset, error) {
	return NewDatasetOn(cluster.Fire(), cluster.SystemG(), suite.FireSweep())
}

// NewDatasetOn is NewDataset with explicit machines and sweep, used by the
// ablation benches to rerun the pipeline under modified conditions.
func NewDatasetOn(fire, refSpec *cluster.Spec, procs []int) (*Dataset, error) {
	return NewDatasetSeeded(fire, refSpec, procs, 17)
}

// NewDatasetSeeded reruns the full reproduction under an independent
// meter-noise seed. The paper's correlation results should not hinge on a
// particular run's gauge noise; Table II's structure must be stable across
// seeds (tested in paper_test.go).
func NewDatasetSeeded(fire, refSpec *cluster.Spec, procs []int, seedBase uint64) (*Dataset, error) {
	refRes, err := suite.Run(suite.SeededConfig(refSpec, refSpec.TotalCores(), seedBase))
	if err != nil {
		return nil, fmt.Errorf("paper: reference run: %w", err)
	}
	results, err := suite.SweepSeeded(fire, procs, seedBase)
	if err != nil {
		return nil, err
	}
	return Derive(procs, results, refRes)
}

// Derive computes the EE/REE/TGI curves from raw suite results.
func Derive(procs []int, results []*suite.Result, ref *suite.Result) (*Dataset, error) {
	if len(procs) != len(results) {
		return nil, fmt.Errorf("paper: %d proc counts for %d results", len(procs), len(results))
	}
	d := &Dataset{
		Procs:     procs,
		Results:   results,
		Reference: ref,
		EE:        make(map[string][]float64),
		REE:       make(map[string][]float64),
		TGI:       make(map[core.Scheme][]float64),
	}
	refMs := ref.Measurements()
	for _, r := range results {
		ms := r.Measurements()
		for _, s := range Schemes {
			c, err := core.Compute(ms, refMs, s, nil)
			if err != nil {
				return nil, fmt.Errorf("paper: p=%d scheme=%v: %w", r.Procs, s, err)
			}
			d.TGI[s] = append(d.TGI[s], c.TGI)
			if s == core.ArithmeticMean {
				for i, b := range c.Benchmarks {
					d.EE[b] = append(d.EE[b], c.EE[i])
					d.REE[b] = append(d.REE[b], c.REE[i])
				}
			}
		}
	}
	return d, nil
}

// Fig1 renders the paper's measurement setup (its Figure 1): the whole
// cluster behind one wall-plug power meter. There is no data in the
// original figure — it documents the metering boundary that drives every
// other result, so it is reproduced as a diagram.
func Fig1(spec *cluster.Spec) string {
	return fmt.Sprintf(`Figure 1: Power Meter Setup
                                                                 
  wall outlet ──> [ Watts Up? PRO ES meter ] ──> power strip ──┬──> node 1 ┐
                    1 sample/s, 0.1 W resolution               ├──> node 2 │ %s:
                    samples -> serial log -> energy integral   ├──>  ...   │ %d nodes,
                                                               ├──> node %d ┘ %d cores
                                                               ├──> %s switch
                                                               └──> shared storage
  Everything — active nodes, idle nodes, fabric, storage — sits inside the
  metered envelope, so idle power is charged to every benchmark run.
`, spec.Name, spec.Nodes, spec.Nodes, spec.TotalCores(), spec.Interconnect.Name)
}

// xs converts the proc axis to float for charting.
func (d *Dataset) xs() []float64 {
	out := make([]float64, len(d.Procs))
	for i, p := range d.Procs {
		out[i] = float64(p)
	}
	return out
}

// Fig2 is the HPL efficiency curve, reported in MFLOPS/W as in the paper.
func (d *Dataset) Fig2() *report.Chart {
	y := make([]float64, len(d.Procs))
	for i, ee := range d.EE[suite.BenchHPL] {
		y[i] = ee * 1000 // GFLOPS/W -> MFLOPS/W
	}
	return &report.Chart{
		Title:  "Figure 2: Energy Efficiency of HPL (Fire cluster)",
		XLabel: "Number of MPI Processes",
		YLabel: "MFLOPS/Watt",
		X:      d.xs(),
		Series: []report.Series{{Name: "HPL", Y: y}},
	}
}

// Fig3 is the STREAM efficiency curve (MB/s per watt).
func (d *Dataset) Fig3() *report.Chart {
	return &report.Chart{
		Title:  "Figure 3: Energy Efficiency of Stream (Fire cluster)",
		XLabel: "Number of MPI Processes",
		YLabel: "MBPS/Watt",
		X:      d.xs(),
		Series: []report.Series{{Name: "STREAM Triad", Y: d.EE[suite.BenchSTREAM]}},
	}
}

// Fig4Point is one node count of the IOzone sweep.
type Fig4Point struct {
	Nodes   int
	Rate    units.BytesPerSec
	Power   units.Watts
	EEMBpsW float64
}

// Fig4 runs the standalone IOzone node sweep (1..Nodes clients, one writer
// per node, fixed per-node file), metering each run — the paper's Figure 4.
func Fig4(spec *cluster.Spec) ([]Fig4Point, *report.Chart, error) {
	model, err := power.NewModel(spec)
	if err != nil {
		return nil, nil, err
	}
	var pts []Fig4Point
	for n := 1; n <= spec.Nodes; n++ {
		cfg := iozone.DefaultModelConfig(spec, n)
		res, err := iozone.Simulate(cfg)
		if err != nil {
			return nil, nil, err
		}
		meter, err := power.NewMeter(power.WattsUpPRO(uint64(n)*101 + 7))
		if err != nil {
			return nil, nil, err
		}
		trace, err := meter.Measure(model, res.Profile)
		if err != nil {
			return nil, nil, err
		}
		mean, err := trace.MeanPower()
		if err != nil {
			return nil, nil, err
		}
		pts = append(pts, Fig4Point{
			Nodes:   n,
			Rate:    res.Aggregate,
			Power:   mean,
			EEMBpsW: float64(res.Aggregate) / 1e6 / float64(mean),
		})
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.Nodes)
		ys[i] = p.EEMBpsW
	}
	chart := &report.Chart{
		Title:  fmt.Sprintf("Figure 4: Energy Efficiency of IOzone (%s cluster)", spec.Name),
		XLabel: "Number of Nodes",
		YLabel: "MBPS/Watt",
		X:      xs,
		Series: []report.Series{{Name: "IOzone write", Y: ys}},
	}
	return pts, chart, nil
}

// Fig5 is the TGI curve under arithmetic-mean weights.
func (d *Dataset) Fig5() *report.Chart {
	return &report.Chart{
		Title:  "Figure 5: TGI using Arithmetic Mean (Fire vs SystemG reference)",
		XLabel: "Number of Cores",
		YLabel: "Green Index",
		X:      d.xs(),
		Series: []report.Series{{Name: "TGI (arithmetic mean)", Y: d.TGI[core.ArithmeticMean]}},
	}
}

// Fig6 is the TGI curves under the weighted means.
func (d *Dataset) Fig6() *report.Chart {
	return &report.Chart{
		Title:  "Figure 6: TGI using Weighted Arithmetic Mean",
		XLabel: "Number of Cores",
		YLabel: "Green Index",
		X:      d.xs(),
		Series: []report.Series{
			{Name: "weights: time", Y: d.TGI[core.TimeWeighted]},
			{Name: "weights: energy", Y: d.TGI[core.EnergyWeighted]},
			{Name: "weights: power", Y: d.TGI[core.PowerWeighted]},
		},
	}
}

// Table1 is the reference system's per-benchmark performance and power
// (paper Table I).
func (d *Dataset) Table1() *report.Table {
	t := &report.Table{
		Title:   "Table I: Performance on SystemG (reference, 1024 cores)",
		Headers: []string{"Benchmark", "Performance", "Power"},
	}
	for _, m := range d.Reference.Measurements() {
		perf := ""
		switch m.Benchmark {
		case suite.BenchHPL:
			perf = units.FLOPS(m.Performance * 1e9).String()
		default:
			perf = fmt.Sprintf("%.4g MBPS", m.Performance)
		}
		t.AddRow(m.Benchmark, perf, m.Power.String())
	}
	return t
}

// PCC returns the Pearson correlation between one benchmark's efficiency
// curve and the TGI curve of the given scheme.
func (d *Dataset) PCC(bench string, s core.Scheme) (float64, error) {
	ee, ok := d.EE[bench]
	if !ok {
		return 0, fmt.Errorf("paper: unknown benchmark %q", bench)
	}
	tgi, ok := d.TGI[s]
	if !ok {
		return 0, fmt.Errorf("paper: no TGI for scheme %v", s)
	}
	return stats.Pearson(ee, tgi)
}

// Table2 is the PCC matrix (paper Table II) plus an arithmetic-mean column
// for the correlations quoted in the paper's prose (.99/.96/.58).
func (d *Dataset) Table2() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table II: PCC between energy efficiency of individual benchmarks and TGI",
		Headers: []string{"Benchmark", "ArithMean", "Time", "Energy", "Power"},
	}
	order := []string{suite.BenchIOzone, suite.BenchSTREAM, suite.BenchHPL}
	for _, b := range order {
		row := []string{b}
		for _, s := range Schemes {
			r, err := d.PCC(b, s)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", r))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Check is one shape assertion of the reproduction.
type Check struct {
	Name   string
	Passed bool
	Detail string
}

// Verify evaluates the paper's qualitative claims against the dataset:
// the curve shapes of Figures 2-5 and the correlation structure of
// Table II. This is the "does the reproduction hold" gate used by tests,
// cmd/figures and EXPERIMENTS.md.
func (d *Dataset) Verify() []Check {
	var out []Check
	add := func(name string, ok bool, detail string, args ...any) {
		out = append(out, Check{Name: name, Passed: ok, Detail: fmt.Sprintf(detail, args...)})
	}

	// Figure 2: HPL efficiency rises with process count.
	hpl := d.EE[suite.BenchHPL]
	rising := true
	for i := 1; i < len(hpl); i++ {
		if hpl[i] <= hpl[i-1] {
			rising = false
		}
	}
	add("fig2-hpl-efficiency-rises", rising,
		"HPL MFLOPS/W %.1f -> %.1f across the sweep", hpl[0]*1000, hpl[len(hpl)-1]*1000)

	// Figure 3: STREAM efficiency peaks in the interior (rise then fall).
	st := d.EE[suite.BenchSTREAM]
	pk := argmax(st)
	add("fig3-stream-efficiency-peaks-interior", pk > 0 && pk < len(st)-1,
		"peak at p=%d (index %d of %d)", d.Procs[pk], pk, len(st))

	// IOzone efficiency within the sweep also peaks in the interior.
	io := d.EE[suite.BenchIOzone]
	pkIO := argmax(io)
	add("fig4-iozone-efficiency-peaks-interior", pkIO > 0 && pkIO < len(io)-1,
		"peak at p=%d", d.Procs[pkIO])

	// Figure 5: TGI (AM) tracks the saturating benchmarks: correlation
	// ordering IOzone >= STREAM > HPL, with HPL clearly lower (paper:
	// .99 / .96 / .58).
	rIO, err1 := d.PCC(suite.BenchIOzone, core.ArithmeticMean)
	rST, err2 := d.PCC(suite.BenchSTREAM, core.ArithmeticMean)
	rHPL, err3 := d.PCC(suite.BenchHPL, core.ArithmeticMean)
	ok := err1 == nil && err2 == nil && err3 == nil &&
		rIO >= rST && rST > rHPL && rIO > 0.9 && rST > 0.9 && rHPL < 0.75
	add("table2-am-correlation-ordering", ok,
		"PCC(AM): IOzone=%.2f STREAM=%.2f HPL=%.2f (paper: .99/.96/.58)", rIO, rST, rHPL)

	// Table II: energy- and power-weighted TGI correlate with HPL more
	// than the arithmetic mean does (the paper's "not a desired property").
	rHPLe, _ := d.PCC(suite.BenchHPL, core.EnergyWeighted)
	rHPLp, _ := d.PCC(suite.BenchHPL, core.PowerWeighted)
	add("table2-energy-weights-favor-hpl", rHPLe > rHPL+0.05,
		"PCC(HPL): energy=%.2f vs AM=%.2f", rHPLe, rHPL)
	add("table2-power-weights-favor-hpl", rHPLp > rHPL,
		"PCC(HPL): power=%.2f vs AM=%.2f", rHPLp, rHPL)

	// The reference system's TGI against itself is 1 (metric anchor).
	refMs := d.Reference.Measurements()
	c, err := core.Compute(refMs, refMs, core.ArithmeticMean, nil)
	add("tgi-self-reference-anchor", err == nil && math.Abs(c.TGI-1) < 1e-9,
		"self-TGI = %v", c.TGI)

	// Table I: the reference delivers ~8.1 TFLOPS on HPL.
	var hplPerf float64
	for _, m := range refMs {
		if m.Benchmark == suite.BenchHPL {
			hplPerf = m.Performance
		}
	}
	add("table1-reference-hpl-tflops", hplPerf > 7000 && hplPerf < 9500,
		"SystemG HPL = %.2f TFLOPS (paper Table I: ~8.1)", hplPerf/1000)

	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
