// Package faults is the fault model of the TGI pipeline: a seeded,
// JSON-serialisable plan of the failures a real measurement campaign
// suffers — node crashes mid-benchmark, straggler nodes running at a
// fraction of their rated clock or bandwidth, a degraded interconnect,
// and a wall-plug meter that drops or glitches samples.
//
// The paper's procedure assumes every benchmark completes cleanly behind
// the meter; production TGI campaigns do not get that luxury. A Plan makes
// the failure assumptions explicit and reproducible: every random choice
// flows through sim.RNG streams forked from the plan's seed and keyed by
// (benchmark, process count, attempt), so two runs of the same plan inject
// exactly the same faults, and an empty plan injects nothing at all.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/units"
)

// Crash is a scheduled, deterministic node crash: node Node dies At
// virtual seconds into the named benchmark's attempt. An empty Benchmark
// matches every benchmark; Attempt selects which attempt it hits (0 = the
// first), modelling a fault that a retry then survives.
type Crash struct {
	Benchmark string        `json:"benchmark,omitempty"`
	Node      int           `json:"node"`
	At        units.Seconds `json:"at"`
	Attempt   int           `json:"attempt,omitempty"`
}

// Straggler describes probabilistically degraded nodes: with probability
// Prob per benchmark attempt, one node runs at ClockFactor of its rated
// clock and BandwidthFactor of its rated bandwidth (each in (0, 1]; zero
// means "not degraded"). Because the suite's benchmarks are
// bulk-synchronous, the whole run proceeds at the slowest node's pace: the
// injected slowdown is 1/min(ClockFactor, BandwidthFactor).
type Straggler struct {
	Prob            float64 `json:"prob,omitempty"`
	ClockFactor     float64 `json:"clock_factor,omitempty"`
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
}

// Interconnect degrades the cluster fabric for the whole run: link
// bandwidth is multiplied by BandwidthFactor (in (0, 1]) and latency by
// LatencyFactor (>= 1). Zero values mean "unchanged".
type Interconnect struct {
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
	LatencyFactor   float64 `json:"latency_factor,omitempty"`
}

// Meter injects measurement-path faults: DropRate is the probability a
// sample is lost, GlitchRate the probability a sample is perturbed by a
// spike of stddev GlitchWatts. When any meter fault is active the suite
// runs the gap-tolerant repair pass (series.Repair) over each trace and
// reports how many samples it filled or rejected.
type Meter struct {
	DropRate    float64 `json:"drop_rate,omitempty"`
	GlitchRate  float64 `json:"glitch_rate,omitempty"`
	GlitchWatts float64 `json:"glitch_watts,omitempty"`
}

// Plan is a complete, reproducible fault scenario. The zero value (and a
// nil *Plan) injects nothing: the pipeline's output is bit-for-bit the
// fault-free one.
type Plan struct {
	Seed      uint64        `json:"seed,omitempty"`
	CrashProb float64       `json:"crash_prob,omitempty"` // per-attempt node-crash probability
	Crashes   []Crash       `json:"crashes,omitempty"`    // scheduled crashes
	Straggler *Straggler    `json:"straggler,omitempty"`
	Fabric    *Interconnect `json:"interconnect,omitempty"`
	Meter     *Meter        `json:"meter,omitempty"`
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.CrashProb < 0 || p.CrashProb >= 1 {
		return fmt.Errorf("faults: crash probability %v outside [0, 1)", p.CrashProb)
	}
	for i, c := range p.Crashes {
		if c.At < 0 {
			return fmt.Errorf("faults: crash %d at negative time %v", i, c.At)
		}
		if c.Node < 0 {
			return fmt.Errorf("faults: crash %d on negative node %d", i, c.Node)
		}
		if c.Attempt < 0 {
			return fmt.Errorf("faults: crash %d on negative attempt %d", i, c.Attempt)
		}
	}
	if s := p.Straggler; s != nil {
		if s.Prob < 0 || s.Prob > 1 {
			return fmt.Errorf("faults: straggler probability %v outside [0, 1]", s.Prob)
		}
		if s.ClockFactor < 0 || s.ClockFactor > 1 {
			return fmt.Errorf("faults: straggler clock factor %v outside (0, 1]", s.ClockFactor)
		}
		if s.BandwidthFactor < 0 || s.BandwidthFactor > 1 {
			return fmt.Errorf("faults: straggler bandwidth factor %v outside (0, 1]", s.BandwidthFactor)
		}
	}
	if f := p.Fabric; f != nil {
		if f.BandwidthFactor < 0 || f.BandwidthFactor > 1 {
			return fmt.Errorf("faults: interconnect bandwidth factor %v outside (0, 1]", f.BandwidthFactor)
		}
		if f.LatencyFactor != 0 && f.LatencyFactor < 1 {
			return fmt.Errorf("faults: interconnect latency factor %v below 1", f.LatencyFactor)
		}
	}
	if m := p.Meter; m != nil {
		if m.DropRate < 0 || m.DropRate >= 1 {
			return fmt.Errorf("faults: meter drop rate %v outside [0, 1)", m.DropRate)
		}
		if m.GlitchRate < 0 || m.GlitchRate >= 1 {
			return fmt.Errorf("faults: meter glitch rate %v outside [0, 1)", m.GlitchRate)
		}
		if m.GlitchWatts < 0 {
			return fmt.Errorf("faults: negative glitch magnitude %v", m.GlitchWatts)
		}
	}
	return nil
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.CrashProb == 0 && len(p.Crashes) == 0 &&
		p.Straggler == nil && p.Fabric == nil && p.Meter == nil)
}

// MeterFaulty reports whether the plan perturbs the measurement path, i.e.
// whether the suite should run the gap-tolerant repair pass.
func (p *Plan) MeterFaulty() bool {
	return p != nil && p.Meter != nil && (p.Meter.DropRate > 0 || p.Meter.GlitchRate > 0)
}

// Injection is the concrete fault draw for one benchmark attempt.
type Injection struct {
	// CrashAt is the virtual time into the attempt at which a node dies;
	// negative means no crash. The attempt fails iff CrashAt falls inside
	// the benchmark's (possibly straggler-stretched) runtime.
	CrashAt   units.Seconds
	CrashNode int
	// Slowdown >= 1 stretches the attempt's runtime (straggler); 1 means
	// the node set ran at full speed.
	Slowdown float64
}

// none is the no-fault injection.
func none() Injection { return Injection{CrashAt: -1, Slowdown: 1} }

// Record emits the injection as trace events on the benchmark's track:
// a "straggler" event at the attempt's start carrying the slowdown, and
// a "crash" event at the crash's position on the campaign clock. start
// is the attempt's start on that clock and dur the attempt's (already
// slowdown-stretched) runtime, so the event notes whether the crash
// actually landed inside the run. A no-fault injection records nothing.
func (inj Injection) Record(rec obs.Recorder, bench string, attempt int, start, dur units.Seconds) {
	if rec == nil {
		return
	}
	if inj.Slowdown > 1 {
		rec.Event(obs.Event{
			Track: bench,
			Name:  obs.EventStraggler,
			At:    start,
			Attrs: []obs.Attr{
				obs.Int("attempt", attempt+1),
				obs.F64("slowdown", inj.Slowdown),
			},
		})
		rec.Count("faults.stragglers", 1)
	}
	if inj.CrashAt >= 0 {
		hit := "false"
		if inj.CrashAt < dur {
			hit = "true"
		}
		at := start + inj.CrashAt
		if inj.CrashAt >= dur {
			at = start + dur // the node survived the whole attempt
		}
		rec.Event(obs.Event{
			Track: bench,
			Name:  obs.EventNodeCrash,
			At:    at,
			Attrs: []obs.Attr{
				obs.Int("attempt", attempt+1),
				obs.Int("node", inj.CrashNode),
				obs.Secs("crash_at", inj.CrashAt),
				obs.Str("hit", hit),
			},
		})
		rec.Count("faults.crashes", 1)
	}
}

// hashString is FNV-1a, used to key per-benchmark RNG streams.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Draw resolves the plan for one attempt of one benchmark: dur is the
// attempt's fault-free virtual runtime and nodes the cluster's node count.
// The draw is a pure function of (plan, bench, procs, attempt) — the
// enclosing run's own RNG streams are never touched, so adding a fault
// plan cannot perturb the measurement noise of surviving benchmarks.
func (p *Plan) Draw(bench string, procs, attempt int, dur units.Seconds, nodes int) Injection {
	inj := none()
	if p.Empty() {
		return inj
	}
	rng := sim.NewRNG(p.Seed).Fork(hashString(bench)).Fork(uint64(procs)).Fork(uint64(attempt))
	// Draw order (straggler, then crash) is fixed: it is part of the
	// plan's reproducibility contract.
	if s := p.Straggler; s != nil && s.Prob > 0 && rng.Float64() < s.Prob {
		factor := 1.0
		if s.ClockFactor > 0 && s.ClockFactor < factor {
			factor = s.ClockFactor
		}
		if s.BandwidthFactor > 0 && s.BandwidthFactor < factor {
			factor = s.BandwidthFactor
		}
		if factor > 0 && factor < 1 {
			inj.Slowdown = 1 / factor
		}
	}
	// Scheduled crashes take precedence over the probabilistic draw.
	for _, c := range p.Crashes {
		if c.Attempt == attempt && (c.Benchmark == "" || c.Benchmark == bench) {
			inj.CrashAt, inj.CrashNode = c.At, c.Node
			return inj
		}
	}
	if p.CrashProb > 0 && rng.Float64() < p.CrashProb {
		inj.CrashAt = units.Seconds(rng.Float64()) * dur * units.Seconds(inj.Slowdown)
		if nodes > 0 {
			inj.CrashNode = rng.Intn(nodes)
		}
	}
	return inj
}

// ApplySpec returns the spec the degraded cluster presents to the
// benchmark models: interconnect bandwidth scaled down and latency scaled
// up. Without an interconnect fault the spec is returned unmodified.
func (p *Plan) ApplySpec(spec *cluster.Spec) *cluster.Spec {
	if p == nil || p.Fabric == nil || spec == nil {
		return spec
	}
	out := *spec // Spec is all values: a shallow copy is a deep copy
	if f := p.Fabric.BandwidthFactor; f > 0 && f < 1 {
		out.Interconnect.LinkBps *= f
	}
	if f := p.Fabric.LatencyFactor; f > 1 {
		out.Interconnect.LatencySec *= f
	}
	return &out
}

// ApplyMeter overlays the plan's meter faults on a meter configuration.
func (p *Plan) ApplyMeter(cfg power.MeterConfig) power.MeterConfig {
	if p == nil || p.Meter == nil {
		return cfg
	}
	if p.Meter.DropRate > 0 {
		cfg.DropRate = p.Meter.DropRate
	}
	if p.Meter.GlitchRate > 0 {
		cfg.GlitchRate = p.Meter.GlitchRate
		cfg.GlitchWatts = p.Meter.GlitchWatts
		if cfg.GlitchWatts == 0 {
			cfg.GlitchWatts = 50 // a meter mis-read is a large excursion
		}
	}
	return cfg
}

// Save writes the plan to path as indented JSON.
func Save(path string, p *Plan) error {
	if p == nil {
		return errors.New("faults: nil plan")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads and validates a plan written by Save (or by hand).
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("faults: %s is not a valid fault plan: %v", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return &p, nil
}
