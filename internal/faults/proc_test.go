package faults

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseProcFault(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want *ProcFault
	}{
		{"", nil},
		{"   ", nil},
		{"mode=exit", &ProcFault{Shard: -1, Mode: ProcExit}},
		{"shard=1;after=2;mode=sigkill;marker=/tmp/m",
			&ProcFault{Shard: 1, After: 2, Mode: ProcKill, Marker: "/tmp/m"}},
		{"mode=hang;shard=0", &ProcFault{Shard: 0, Mode: ProcHang}},
	} {
		got, err := ParseProcFault(tc.in)
		if err != nil {
			t.Errorf("ParseProcFault(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseProcFault(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{
		"mode=explode", "shard=1", "after=x;mode=exit",
		"after=-1;mode=exit", "mode=exit;bogus=1", "noequals",
	} {
		if f, err := ParseProcFault(bad); err == nil {
			t.Errorf("ParseProcFault(%q) accepted: %+v", bad, f)
		}
	}
}

func TestProcFaultFires(t *testing.T) {
	var nilFault *ProcFault
	if nilFault.Fires(0, 0) {
		t.Error("nil fault fired")
	}
	f := &ProcFault{Shard: 1, After: 2, Mode: ProcExit}
	if f.Fires(0, 5) {
		t.Error("fault fired on the wrong shard")
	}
	if f.Fires(1, 1) {
		t.Error("fault fired before its cell count")
	}
	if !f.Fires(1, 2) {
		t.Error("fault did not fire at its cell count")
	}
	any := &ProcFault{Shard: -1, Mode: ProcExit}
	if !any.Fires(7, 0) {
		t.Error("any-shard fault did not fire")
	}
}

func TestProcFaultMarkerDisarms(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "fired")
	f := &ProcFault{Shard: -1, Mode: ProcExit, Marker: marker}
	if !f.Fires(0, 0) {
		t.Fatal("marker fault did not fire with no marker present")
	}
	if err := os.WriteFile(marker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if f.Fires(0, 0) {
		t.Error("marker fault fired with the marker present")
	}
}

// TestProcFaultHelperProcess is not a test: it is the body of the child
// process TestProcFaultExitFiresOnce launches.
func TestProcFaultHelperProcess(t *testing.T) {
	if os.Getenv("PROC_FAULT_HELPER") != "1" {
		return
	}
	f, err := ProcFaultFromEnv()
	if err != nil {
		os.Exit(99)
	}
	if f.Fires(0, 0) {
		f.Fire(nil)
	}
	os.Exit(0)
}

func TestProcFaultExitFiresOnce(t *testing.T) {
	// A marker fault must kill the first run with the injected status and
	// leave the relaunch untouched — the fire-once semantics the
	// supervisor's retry path depends on.
	marker := filepath.Join(t.TempDir(), "fired")
	run := func() error {
		cmd := exec.Command(os.Args[0], "-test.run=TestProcFaultHelperProcess$")
		cmd.Env = append(os.Environ(),
			"PROC_FAULT_HELPER=1",
			ProcFaultEnv+"=mode=exit;marker="+marker)
		return cmd.Run()
	}
	err := run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("first run did not die with the injected status: %v", err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("fault fired without writing its marker: %v", err)
	}
	if err := run(); err != nil {
		t.Fatalf("relaunch after the marker still died: %v", err)
	}
}
