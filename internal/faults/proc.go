package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Process-level faults: where the Plan in this package perturbs the
// simulated campaign (node crashes, stragglers, meter glitches), a
// ProcFault perturbs the measurement *infrastructure* — it makes a shard
// worker process itself die or wedge, so the supervising parent's crash
// isolation, retry, bisection and quarantine paths can be exercised end
// to end. It travels through the environment (ProcFaultEnv) because the
// worker is a separate OS process: the supervisor's tests and the CI
// fault drill set the variable, the worker checks it after every
// checkpointed cell.
//
// A marker file gives fire-once semantics: the fault creates the marker
// when it fires and never fires while the marker exists, modelling a
// transient failure that a relaunch survives. Without a marker the fault
// fires on every matching attempt, modelling a poison cell.

// ProcFaultEnv is the environment variable a worker process reads its
// fault from, via ProcFaultFromEnv.
const ProcFaultEnv = "GREENBENCH_PROC_FAULT"

// Process fault modes.
const (
	ProcExit   = "exit"    // exit with status 3
	ProcPanic  = "panic"   // Go panic (nonzero exit + stack on stderr)
	ProcKill   = "sigkill" // kill own process: uncatchable, mid-write death
	ProcHang   = "hang"    // stop heartbeating and block forever
	procStatus = 3
)

// ProcFault describes one injected worker-process failure.
type ProcFault struct {
	// Shard selects the targeted shard; negative matches every shard.
	Shard int
	// After is how many cells the worker must have checkpointed before
	// the fault fires; 0 fires before the first cell completes.
	After int
	// Mode is one of ProcExit, ProcPanic, ProcKill, ProcHang.
	Mode string
	// Marker, when non-empty, is a file granting fire-once semantics:
	// firing creates it, and the fault is disarmed while it exists.
	Marker string
}

// ParseProcFault decodes the env encoding: semicolon-separated key=value
// pairs, e.g. "shard=1;after=2;mode=sigkill;marker=/tmp/once". Keys:
// shard (default -1 = any), after (default 0), mode (required), marker
// (optional). An empty string is no fault (nil, nil).
func ParseProcFault(s string) (*ProcFault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	f := &ProcFault{Shard: -1}
	for _, part := range strings.Split(s, ";") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: proc fault field %q is not key=value", part)
		}
		switch k {
		case "shard":
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("faults: proc fault shard %q is not a number", v)
			}
			f.Shard = n
		case "after":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: proc fault after %q is not a cell count", v)
			}
			f.After = n
		case "mode":
			f.Mode = v
		case "marker":
			f.Marker = v
		default:
			return nil, fmt.Errorf("faults: unknown proc fault key %q", k)
		}
	}
	switch f.Mode {
	case ProcExit, ProcPanic, ProcKill, ProcHang:
		return f, nil
	case "":
		return nil, fmt.Errorf("faults: proc fault %q has no mode", s)
	default:
		return nil, fmt.Errorf("faults: unknown proc fault mode %q", f.Mode)
	}
}

// ProcFaultFromEnv decodes ProcFaultEnv; unset or empty is (nil, nil).
func ProcFaultFromEnv() (*ProcFault, error) {
	return ParseProcFault(os.Getenv(ProcFaultEnv))
}

// Fires reports whether the fault should fire now, for a worker on the
// given shard that has checkpointed done cells. Nil-safe. A fault with a
// marker is disarmed while the marker file exists.
func (f *ProcFault) Fires(shard, done int) bool {
	if f == nil {
		return false
	}
	if f.Shard >= 0 && f.Shard != shard {
		return false
	}
	if done < f.After {
		return false
	}
	if f.Marker != "" {
		if _, err := os.Stat(f.Marker); err == nil {
			return false
		}
	}
	return true
}

// Fire executes the fault and, except for ProcHang, never returns. The
// marker (if any) is written first, so a relaunched worker sees the
// fault disarmed. hang is called before blocking in ProcHang mode — the
// worker passes its heartbeat mute, so the hang is silent and the
// supervisor's watchdog (not the exit status) must catch it.
func (f *ProcFault) Fire(hang func()) {
	if f.Marker != "" {
		os.WriteFile(f.Marker, []byte(f.Mode+"\n"), 0o644)
	}
	switch f.Mode {
	case ProcPanic:
		panic("faults: injected worker panic")
	case ProcKill:
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
		}
		select {} // the signal is in flight; never resume
	case ProcHang:
		if hang != nil {
			hang()
		}
		select {}
	default: // ProcExit
		os.Exit(procStatus)
	}
}
