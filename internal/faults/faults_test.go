package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/power"
)

func TestEmptyPlanDrawsNothing(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Seed: 42}} {
		inj := p.Draw("HPL", 8, 0, 500, 4)
		if inj.CrashAt >= 0 || inj.Slowdown != 1 {
			t.Errorf("plan %+v injected %+v", p, inj)
		}
		if !p.Empty() {
			t.Errorf("plan %+v not Empty", p)
		}
		if p.MeterFaulty() {
			t.Errorf("plan %+v reports meter faults", p)
		}
	}
}

func TestDrawDeterministic(t *testing.T) {
	p := &Plan{
		Seed:      7,
		CrashProb: 0.5,
		Straggler: &Straggler{Prob: 0.5, ClockFactor: 0.5},
	}
	first := p.Draw("HPL", 8, 0, 500, 4)
	for i := 0; i < 10; i++ {
		if again := p.Draw("HPL", 8, 0, 500, 4); again != first {
			t.Fatalf("draw %d = %+v, first = %+v", i, again, first)
		}
	}
	// Different keys give independent streams: across benchmarks, process
	// counts and attempts at least one draw must differ from the rest (with
	// these probabilities a collision of all of them is astronomically
	// unlikely for any seed).
	draws := map[Injection]bool{first: true}
	for _, bench := range []string{"HPL", "STREAM", "IOzone"} {
		for _, procs := range []int{4, 8, 16} {
			for attempt := 0; attempt < 3; attempt++ {
				draws[p.Draw(bench, procs, attempt, 500, 4)] = true
			}
		}
	}
	if len(draws) < 2 {
		t.Error("all (bench, procs, attempt) keys produced the identical draw")
	}
}

func TestScheduledCrashBeatsProbabilistic(t *testing.T) {
	p := &Plan{
		Crashes: []Crash{{Benchmark: "HPL", Node: 3, At: 120, Attempt: 1}},
	}
	// Wrong benchmark / attempt: no crash.
	if inj := p.Draw("STREAM", 8, 1, 500, 4); inj.CrashAt >= 0 {
		t.Errorf("STREAM drew scheduled HPL crash: %+v", inj)
	}
	if inj := p.Draw("HPL", 8, 0, 500, 4); inj.CrashAt >= 0 {
		t.Errorf("attempt 0 drew attempt-1 crash: %+v", inj)
	}
	// Matching attempt hits exactly as scheduled.
	inj := p.Draw("HPL", 8, 1, 500, 4)
	if inj.CrashAt != 120 || inj.CrashNode != 3 {
		t.Errorf("scheduled crash drew %+v, want t=120 node=3", inj)
	}
	// An empty Benchmark matches everything.
	all := &Plan{Crashes: []Crash{{Node: 0, At: 10}}}
	if inj := all.Draw("IOzone", 4, 0, 100, 2); inj.CrashAt != 10 {
		t.Errorf("wildcard crash drew %+v", inj)
	}
}

func TestStragglerSlowdown(t *testing.T) {
	p := &Plan{
		Straggler: &Straggler{Prob: 1, ClockFactor: 0.8, BandwidthFactor: 0.5},
	}
	inj := p.Draw("HPL", 8, 0, 500, 4)
	// Bulk-synchronous: the slowest factor (0.5) governs the whole run.
	if inj.Slowdown != 2 {
		t.Errorf("slowdown = %v, want 2 (1/min(0.8, 0.5))", inj.Slowdown)
	}
	if inj.CrashAt >= 0 {
		t.Errorf("unexpected crash: %+v", inj)
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	cases := []*Plan{
		{CrashProb: 1},
		{CrashProb: -0.1},
		{Crashes: []Crash{{At: -1}}},
		{Crashes: []Crash{{Node: -2}}},
		{Crashes: []Crash{{Attempt: -1}}},
		{Straggler: &Straggler{Prob: 1.5}},
		{Straggler: &Straggler{ClockFactor: 2}},
		{Fabric: &Interconnect{BandwidthFactor: 1.5}},
		{Fabric: &Interconnect{LatencyFactor: 0.5}},
		{Meter: &Meter{DropRate: 1}},
		{Meter: &Meter{GlitchRate: -0.1}},
		{Meter: &Meter{GlitchWatts: -1}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) validated", i, p)
		}
	}
	ok := &Plan{
		Seed:      1,
		CrashProb: 0.1,
		Crashes:   []Crash{{Benchmark: "HPL", Node: 1, At: 60, Attempt: 0}},
		Straggler: &Straggler{Prob: 0.2, ClockFactor: 0.9},
		Fabric:    &Interconnect{BandwidthFactor: 0.5, LatencyFactor: 2},
		Meter:     &Meter{DropRate: 0.1, GlitchRate: 0.05, GlitchWatts: 30},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := &Plan{
		Seed:      99,
		CrashProb: 0.25,
		Crashes:   []Crash{{Benchmark: "STREAM", Node: 2, At: 30, Attempt: 1}},
		Straggler: &Straggler{Prob: 0.1, ClockFactor: 0.7, BandwidthFactor: 0.9},
		Fabric:    &Interconnect{BandwidthFactor: 0.5, LatencyFactor: 3},
		Meter:     &Meter{DropRate: 0.05, GlitchRate: 0.02, GlitchWatts: 40},
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := Save(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Compare by re-drawing: the loaded plan must inject identically.
	a := p.Draw("STREAM", 8, 1, 500, 4)
	b := got.Draw("STREAM", 8, 1, 500, 4)
	if a != b {
		t.Errorf("loaded plan draws %+v, original %+v", b, a)
	}
	if *got.Straggler != *p.Straggler || *got.Fabric != *p.Fabric || *got.Meter != *p.Meter {
		t.Errorf("round trip mangled plan: %+v vs %+v", got, p)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, `{"crash_prob": "lots"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("garbage plan loaded")
	} else if !strings.Contains(err.Error(), "not a valid fault plan") {
		t.Errorf("unhelpful error: %v", err)
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := writeFile(invalid, `{"crash_prob": 2}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("out-of-range plan loaded")
	}
}

func TestApplySpecDegradesInterconnect(t *testing.T) {
	spec := cluster.Testbed()
	p := &Plan{Fabric: &Interconnect{BandwidthFactor: 0.5, LatencyFactor: 4}}
	out := p.ApplySpec(spec)
	if out == spec {
		t.Fatal("ApplySpec returned the original spec")
	}
	if out.Interconnect.LinkBps != spec.Interconnect.LinkBps*0.5 {
		t.Errorf("bandwidth %v, want halved %v", out.Interconnect.LinkBps, spec.Interconnect.LinkBps*0.5)
	}
	if out.Interconnect.LatencySec != spec.Interconnect.LatencySec*4 {
		t.Errorf("latency %v, want ×4 %v", out.Interconnect.LatencySec, spec.Interconnect.LatencySec*4)
	}
	// The original spec is untouched, and a fabric-free plan is a no-op.
	if (&Plan{}).ApplySpec(spec) != spec {
		t.Error("empty plan copied the spec")
	}
}

func TestApplyMeterOverlaysFaults(t *testing.T) {
	base := power.MeterConfig{Interval: 1, Seed: 5}
	p := &Plan{Meter: &Meter{DropRate: 0.2, GlitchRate: 0.1}}
	got := p.ApplyMeter(base)
	if got.DropRate != 0.2 || got.GlitchRate != 0.1 {
		t.Errorf("overlay = %+v", got)
	}
	if got.GlitchWatts != 50 {
		t.Errorf("glitch magnitude defaulted to %v, want 50", got.GlitchWatts)
	}
	if got.Interval != base.Interval || got.Seed != base.Seed {
		t.Errorf("overlay clobbered base config: %+v", got)
	}
	if clean := (&Plan{}).ApplyMeter(base); clean != base {
		t.Errorf("empty plan changed meter config: %+v", clean)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
