package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/units"
)

func m(bench, metric string, perf, power, tm float64) Measurement {
	return Measurement{
		Benchmark:   bench,
		Metric:      metric,
		Performance: perf,
		Power:       units.Watts(power),
		Time:        units.Seconds(tm),
	}
}

// Paper Table I-style reference suite.
func refSuite() []Measurement {
	return []Measurement{
		m("HPL", "GFLOPS", 8100, 30000, 2800),
		m("STREAM", "MBPS", 760000, 26000, 900),
		m("IOzone", "MBPS", 10400, 21000, 1200),
	}
}

func testSuite() []Measurement {
	return []Measurement{
		m("HPL", "GFLOPS", 890, 2900, 3400),
		m("STREAM", "MBPS", 180000, 2400, 700),
		m("IOzone", "MBPS", 380, 2100, 800),
	}
}

func TestMeasurementValidate(t *testing.T) {
	good := m("HPL", "GFLOPS", 100, 200, 300)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Measurement{
		m("", "GFLOPS", 100, 200, 300),
		m("HPL", "GFLOPS", 0, 200, 300),
		m("HPL", "GFLOPS", -5, 200, 300),
		m("HPL", "GFLOPS", math.NaN(), 200, 300),
		m("HPL", "GFLOPS", 100, 0, 300),
		m("HPL", "GFLOPS", 100, 200, 0),
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad measurement %d validated", i)
		}
	}
	negE := good
	negE.Energy = -1
	if err := negE.Validate(); err == nil {
		t.Error("negative energy validated")
	}
}

func TestEnergyJoulesFallback(t *testing.T) {
	x := m("HPL", "GFLOPS", 100, 200, 300)
	if e := x.EnergyJoules(); e != 60000 {
		t.Errorf("fallback energy = %v", e)
	}
	x.Energy = 59000 // meter-integrated value takes precedence
	if e := x.EnergyJoules(); e != 59000 {
		t.Errorf("explicit energy = %v", e)
	}
}

func TestEEEquation2(t *testing.T) {
	x := m("HPL", "GFLOPS", 900, 3000, 100)
	ee, err := EE(x)
	if err != nil || ee != 0.3 {
		t.Errorf("EE = %v, %v", ee, err)
	}
	if _, err := EE(Measurement{}); err == nil {
		t.Error("invalid measurement accepted")
	}
}

func TestREEEquation3(t *testing.T) {
	test := m("HPL", "GFLOPS", 900, 3000, 100)  // EE = 0.3
	ref := m("HPL", "GFLOPS", 8000, 32000, 100) // EE = 0.25
	ree, err := REE(test, ref)
	if err != nil || math.Abs(ree-1.2) > 1e-12 {
		t.Errorf("REE = %v, %v", ree, err)
	}
}

func TestREERejectsMismatches(t *testing.T) {
	a := m("HPL", "GFLOPS", 1, 1, 1)
	b := m("STREAM", "MBPS", 1, 1, 1)
	if _, err := REE(a, b); err == nil {
		t.Error("benchmark mismatch accepted")
	}
	c := m("HPL", "MBPS", 1, 1, 1)
	if _, err := REE(a, c); err == nil {
		t.Error("metric mismatch accepted")
	}
}

func TestREESelfIsOne(t *testing.T) {
	f := func(perf, power, tm float64) bool {
		p := math.Abs(math.Mod(perf, 1e6)) + 1
		w := math.Abs(math.Mod(power, 1e5)) + 1
		s := math.Abs(math.Mod(tm, 1e4)) + 1
		x := m("X", "U", p, w, s)
		ree, err := REE(x, x)
		return err == nil && math.Abs(ree-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestREEScaleInvariance(t *testing.T) {
	// Multiplying both systems' performance by the same constant (a unit
	// change, e.g. MB/s -> GB/s) must not change REE.
	test := m("S", "MBPS", 500, 100, 10)
	ref := m("S", "MBPS", 900, 300, 10)
	r1, err := REE(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	test.Performance *= 1000
	ref.Performance *= 1000
	r2, err := REE(test, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-12 {
		t.Errorf("REE not scale invariant: %v vs %v", r1, r2)
	}
}

func TestWeightsSchemes(t *testing.T) {
	ms := []Measurement{
		m("A", "U", 1, 100, 10), // e = 1000
		m("B", "U", 1, 300, 30), // e = 9000
	}
	cases := []struct {
		s    Scheme
		want []float64
	}{
		{ArithmeticMean, []float64{0.5, 0.5}},
		{TimeWeighted, []float64{0.25, 0.75}},
		{PowerWeighted, []float64{0.25, 0.75}},
		{EnergyWeighted, []float64{0.1, 0.9}},
	}
	for _, c := range cases {
		ws, err := Weights(c.s, ms, nil)
		if err != nil {
			t.Errorf("%v: %v", c.s, err)
			continue
		}
		for i := range ws {
			if math.Abs(ws[i]-c.want[i]) > 1e-12 {
				t.Errorf("%v weights = %v, want %v", c.s, ws, c.want)
				break
			}
		}
		if !stats.SumsToOne(ws, 1e-12) {
			t.Errorf("%v weights do not sum to one", c.s)
		}
	}
}

func TestWeightsCustom(t *testing.T) {
	ms := []Measurement{m("A", "U", 1, 1, 1), m("B", "U", 1, 1, 1)}
	ws, err := Weights(Custom, ms, []float64{3, 1})
	if err != nil || math.Abs(ws[0]-0.75) > 1e-12 {
		t.Errorf("custom weights = %v, %v", ws, err)
	}
	if _, err := Weights(Custom, ms, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Weights(Custom, ms, []float64{-1, 2}); err == nil {
		t.Error("negative custom weight accepted")
	}
	if _, err := Weights(Scheme(42), ms, nil); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Weights(ArithmeticMean, nil, nil); err == nil {
		t.Error("empty measurements accepted")
	}
}

func TestComputeTGIHandExample(t *testing.T) {
	// Two benchmarks with REE 1.2 and 0.4; arithmetic mean TGI = 0.8.
	test := []Measurement{
		m("A", "U", 120, 100, 10), // EE 1.2
		m("B", "U", 40, 100, 10),  // EE 0.4
	}
	ref := []Measurement{
		m("A", "U", 100, 100, 10), // EE 1.0
		m("B", "U", 100, 100, 10),
	}
	c, err := Compute(test, ref, ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TGI-0.8) > 1e-12 {
		t.Errorf("TGI = %v, want 0.8", c.TGI)
	}
	if len(c.REE) != 2 || math.Abs(c.REE[0]-1.2) > 1e-12 || math.Abs(c.REE[1]-0.4) > 1e-12 {
		t.Errorf("REE = %v", c.REE)
	}
}

func TestComputeAgainstSelfIsOne(t *testing.T) {
	// TGI of the reference system measured against itself is exactly 1
	// under every weighting scheme — the anchor property of the metric.
	ref := refSuite()
	for _, s := range []Scheme{ArithmeticMean, TimeWeighted, EnergyWeighted, PowerWeighted} {
		c, err := Compute(ref, ref, s, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if math.Abs(c.TGI-1) > 1e-12 {
			t.Errorf("%v: self-TGI = %v", s, c.TGI)
		}
	}
}

func TestComputeRequiresReference(t *testing.T) {
	test := testSuite()
	ref := refSuite()[:2] // drop IOzone
	if _, err := Compute(test, ref, ArithmeticMean, nil); err == nil ||
		!strings.Contains(err.Error(), "IOzone") {
		t.Errorf("missing reference err = %v", err)
	}
}

func TestComputeRejectsDuplicates(t *testing.T) {
	dup := append(testSuite(), testSuite()[0])
	if _, err := Compute(dup, refSuite(), ArithmeticMean, nil); err == nil {
		t.Error("duplicate test measurement accepted")
	}
	dupRef := append(refSuite(), refSuite()[0])
	if _, err := Compute(testSuite(), dupRef, ArithmeticMean, nil); err == nil {
		t.Error("duplicate reference accepted")
	}
}

func TestComputeBoundedByComponentREEs(t *testing.T) {
	// A convex combination of REEs lies between min and max REE — the
	// paper's "bounded by the benchmark with least REE" observation is the
	// lower half of this.
	c, err := Compute(testSuite(), refSuite(), ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	min, max, _ := stats.MinMax(c.REE)
	if c.TGI < min-1e-12 || c.TGI > max+1e-12 {
		t.Errorf("TGI %v outside REE range [%v, %v]", c.TGI, min, max)
	}
}

func TestComputeConvexityProperty(t *testing.T) {
	f := func(seeds [6]float64) bool {
		pos := func(v, cap float64) float64 { return math.Abs(math.Mod(v, cap)) + 1 }
		test := []Measurement{
			m("A", "U", pos(seeds[0], 1e4), pos(seeds[1], 1e3), 10),
			m("B", "U", pos(seeds[2], 1e4), pos(seeds[3], 1e3), 20),
			m("C", "U", pos(seeds[4], 1e4), pos(seeds[5], 1e3), 30),
		}
		ref := []Measurement{
			m("A", "U", 100, 100, 10),
			m("B", "U", 100, 100, 10),
			m("C", "U", 100, 100, 10),
		}
		for _, s := range []Scheme{ArithmeticMean, TimeWeighted, EnergyWeighted, PowerWeighted} {
			c, err := Compute(test, ref, s, nil)
			if err != nil {
				return false
			}
			min, max, _ := stats.MinMax(c.REE)
			if c.TGI < min-1e-9 || c.TGI > max+1e-9 {
				return false
			}
			if !stats.SumsToOne(c.Weights, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCustomWeightEmphasis(t *testing.T) {
	// The paper's example: a memory-heavy user weights STREAM higher. With
	// all weight on STREAM, TGI equals STREAM's REE.
	test := testSuite()
	ref := refSuite()
	c, err := Compute(test, ref, Custom, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	streamREE, err := REE(test[1], ref[1])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TGI-streamREE) > 1e-12 {
		t.Errorf("all-STREAM TGI = %v, want %v", c.TGI, streamREE)
	}
}

func TestComputeWithEDP(t *testing.T) {
	c, err := ComputeWith(InverseEDP, testSuite(), refSuite(), ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.TGI <= 0 || math.IsNaN(c.TGI) {
		t.Errorf("EDP TGI = %v", c.TGI)
	}
	// Self-anchor holds under EDP too.
	self, err := ComputeWith(InverseEDP, refSuite(), refSuite(), ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self.TGI-1) > 1e-12 {
		t.Errorf("EDP self-TGI = %v", self.TGI)
	}
}

func TestSPECRating(t *testing.T) {
	r, err := SPECRating(250, 10)
	if err != nil || r != 25 {
		t.Errorf("SPECRating = %v, %v", r, err)
	}
	if _, err := SPECRating(0, 10); err == nil {
		t.Error("zero reference time accepted")
	}
}

func TestDesiredProperty(t *testing.T) {
	x := m("HPL", "GFLOPS", 900, 3000, 100)
	// Both shipped metrics satisfy the Section III property.
	if !DesiredPropertyHolds(PerfPerWatt, x, 2, 1e-9) {
		t.Error("perf/watt fails the desired property")
	}
	if !DesiredPropertyHolds(InverseEDP, x, 3, 1e-9) {
		t.Error("inverse EDP fails the desired property")
	}
	// A metric ignoring energy does not.
	perfOnly := func(m Measurement) float64 { return m.Performance }
	if DesiredPropertyHolds(perfOnly, x, 2, 1e-9) {
		t.Error("performance-only metric passed the desired property")
	}
	if DesiredPropertyHolds(PerfPerWatt, x, 0, 1e-9) {
		t.Error("k=0 accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		ArithmeticMean: "arithmetic-mean",
		TimeWeighted:   "time-weighted",
		EnergyWeighted: "energy-weighted",
		PowerWeighted:  "power-weighted",
		Custom:         "custom",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q, want %q", int(s), s.String(), want)
		}
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme name empty")
	}
}
