package core

import (
	"math"
	"strings"
	"testing"
)

// partialFixture is a three-benchmark suite with easy round numbers:
// REE(HPL)=2, REE(STREAM)=4, REE(IOzone)=1 against a unit-efficiency
// reference.
func partialFixture() (test, ref []Measurement) {
	ref = []Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 100, Power: 100, Time: 100},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 200, Power: 200, Time: 50},
		{Benchmark: "IOzone", Metric: "MBPS", Performance: 50, Power: 50, Time: 200},
	}
	test = []Measurement{
		{Benchmark: "HPL", Metric: "GFLOPS", Performance: 200, Power: 100, Time: 80},
		{Benchmark: "STREAM", Metric: "MBPS", Performance: 400, Power: 100, Time: 40},
		{Benchmark: "IOzone", Metric: "MBPS", Performance: 100, Power: 100, Time: 100},
	}
	return test, ref
}

var expectedThree = []string{"HPL", "STREAM", "IOzone"}

func TestComputePartialFullSuiteMatchesCompute(t *testing.T) {
	test, ref := partialFixture()
	full, err := Compute(test, ref, ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := ComputePartial(test, ref, ArithmeticMean, nil, expectedThree)
	if err != nil {
		t.Fatal(err)
	}
	if part.Degraded || part.Missing != nil {
		t.Errorf("full suite flagged degraded: %+v", part)
	}
	if part.TGI != full.TGI {
		t.Errorf("partial TGI %v != full %v", part.TGI, full.TGI)
	}
}

func TestComputePartialRenormalisesWeights(t *testing.T) {
	test, ref := partialFixture()
	cases := []struct {
		name    string
		scheme  Scheme
		custom  []float64
		wantTGI float64
	}{
		// Survivors HPL (REE 2) and IOzone (REE 1); STREAM lost.
		{name: "arithmetic", scheme: ArithmeticMean, wantTGI: 0.5*2 + 0.5*1},
		// Times 80 and 100 -> weights 80/180, 100/180.
		{name: "time", scheme: TimeWeighted, wantTGI: (80.0*2 + 100.0*1) / 180},
		// Powers are equal -> same as arithmetic.
		{name: "power", scheme: PowerWeighted, wantTGI: 1.5},
		// Custom weights are positional over the EXPECTED list (0.5, 0.3,
		// 0.2): survivors take 0.5 and 0.2, renormalised to 5/7 and 2/7.
		{name: "custom", scheme: Custom, custom: []float64{0.5, 0.3, 0.2},
			wantTGI: (0.5*2 + 0.2*1) / 0.7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			survivors := []Measurement{test[0], test[2]} // STREAM failed
			c, err := ComputePartial(survivors, ref, tc.scheme, tc.custom, expectedThree)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Degraded {
				t.Error("Degraded not set")
			}
			if len(c.Missing) != 1 || c.Missing[0] != "STREAM" {
				t.Errorf("Missing = %v, want [STREAM]", c.Missing)
			}
			var sum float64
			for _, w := range c.Weights {
				sum += w
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("weights sum to %v, want 1", sum)
			}
			if math.Abs(c.TGI-tc.wantTGI) > 1e-12 {
				t.Errorf("TGI = %v, want %v", c.TGI, tc.wantTGI)
			}
		})
	}
}

func TestComputePartialErrors(t *testing.T) {
	test, ref := partialFixture()
	if _, err := ComputePartial(test, ref, ArithmeticMean, nil, nil); err == nil {
		t.Error("empty expected list accepted")
	}
	if _, err := ComputePartial(nil, ref, ArithmeticMean, nil, expectedThree); err == nil {
		t.Error("zero survivors accepted")
	} else if !strings.Contains(err.Error(), "all 3 benchmarks failed") {
		t.Errorf("unhelpful all-failed error: %v", err)
	}
	// A survivor not in the expected list is a caller bug, not degradation.
	rogue := []Measurement{{Benchmark: "DGEMM", Metric: "GFLOPS", Performance: 1, Power: 1, Time: 1}}
	if _, err := ComputePartial(rogue, ref, ArithmeticMean, nil, expectedThree); err == nil {
		t.Error("unexpected benchmark accepted")
	}
	// Custom weights must cover the expected list, not the survivors.
	if _, err := ComputePartial(test[:2], ref, Custom, []float64{0.5, 0.5}, expectedThree); err == nil {
		t.Error("short custom weight vector accepted")
	}
	if _, err := ComputePartial(test, ref, ArithmeticMean, nil,
		[]string{"HPL", "HPL", "IOzone"}); err == nil {
		t.Error("duplicate expected benchmark accepted")
	}
}
