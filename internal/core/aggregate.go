package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Aggregator selects the central-tendency measure that folds the weighted
// REEs into the single TGI number. The paper uses the weighted arithmetic
// mean throughout; its related-work discussion (John, "More on Finding a
// Single Number to Indicate Overall Performance of a Benchmark Suite")
// concludes that "both arithmetic and harmonic means can be used to
// summarize performance if appropriate weights are applied" — this type
// makes that comparison runnable.
type Aggregator int

// Supported aggregators.
const (
	// Arithmetic is Σ W_i·REE_i, the paper's Equation 4.
	Arithmetic Aggregator = iota
	// Harmonic is (Σ W_i / REE_i)⁻¹: the right mean when REEs are rates
	// and the weights are work shares; dominated by the worst component,
	// which strengthens the paper's "bounded by the least REE" intuition.
	Harmonic
	// Geometric is Π REE_i^{W_i}: scale-free, the SPEC aggregate; a
	// system twice as good on one component and half as good on another
	// scores exactly 1.
	Geometric
)

func (a Aggregator) String() string {
	switch a {
	case Arithmetic:
		return "arithmetic"
	case Harmonic:
		return "harmonic"
	case Geometric:
		return "geometric"
	default:
		return fmt.Sprintf("aggregator(%d)", int(a))
	}
}

// Aggregate folds normalised weights and REEs with the chosen mean.
func Aggregate(a Aggregator, ree, weights []float64) (float64, error) {
	if len(ree) == 0 {
		return 0, errors.New("core: nothing to aggregate")
	}
	if len(ree) != len(weights) {
		return 0, fmt.Errorf("core: %d REEs for %d weights", len(ree), len(weights))
	}
	if !stats.SumsToOne(weights, 1e-9) {
		return 0, errors.New("core: weights must sum to one")
	}
	switch a {
	case Arithmetic:
		s := 0.0
		for i, r := range ree {
			s += weights[i] * r
		}
		return s, nil
	case Harmonic:
		return stats.WeightedHarmonicMean(ree, weights)
	case Geometric:
		// Weighted geometric mean via the log domain.
		for _, r := range ree {
			if r <= 0 {
				return 0, errors.New("core: geometric aggregation requires positive REEs")
			}
		}
		s := 0.0
		for i, r := range ree {
			s += weights[i] * math.Log(r)
		}
		return math.Exp(s), nil
	default:
		return 0, fmt.Errorf("core: unknown aggregator %v", a)
	}
}

// ComputeAggregated is Compute with a selectable aggregation mean: the
// weights come from the scheme as usual, the fold from the aggregator.
func ComputeAggregated(a Aggregator, test, ref []Measurement, s Scheme, custom []float64) (*Components, error) {
	c, err := Compute(test, ref, s, custom)
	if err != nil {
		return nil, err
	}
	tgi, err := Aggregate(a, c.REE, c.Weights)
	if err != nil {
		return nil, err
	}
	c.TGI = tgi
	return c, nil
}
