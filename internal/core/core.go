// Package core implements the paper's contribution: The Green Index (TGI),
// a single-number metric for the system-wide energy efficiency of an HPC
// system evaluated with a benchmark suite.
//
// The computation follows Section II of the paper exactly:
//
//  1. EE_i   = Performance_i / Power_i                       (Equation 2)
//  2. REE_i  = EE_i / EE_i(reference system)                 (Equation 3)
//  3. Choose weights W_i with Σ W_i = 1                      (Equation 4)
//  4. TGI    = Σ W_i · REE_i                                 (Equation 4)
//
// Weighting schemes from Section III are provided: the arithmetic mean
// (Equations 6-8) and weighted means using execution time, energy and power
// (Equations 10-15), plus fully custom weights. The per-benchmark
// efficiency metric is pluggable (Section II notes TGI works with "any
// other energy-efficient metric, such as the energy-delay product"), with
// performance-per-watt as the default and EDP provided.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/units"
)

// Measurement is one benchmark's observation on one system: the raw
// material of TGI. Performance is in the benchmark's own metric (GFLOPS for
// HPL, MB/s for STREAM and IOzone) — TGI's normalisation by a reference
// system makes the mixed units commensurable.
type Measurement struct {
	Benchmark   string        `json:"benchmark"`   // e.g. "HPL"
	Metric      string        `json:"metric"`      // e.g. "GFLOPS", unit label only
	Performance float64       `json:"performance"` // in Metric units
	Power       units.Watts   `json:"power"`       // mean wall power during the run
	Time        units.Seconds `json:"time"`        // execution time
	Energy      units.Joules  `json:"energy"`      // 0 means Power × Time
}

// Validate checks the measurement for usability in the TGI pipeline.
func (m Measurement) Validate() error {
	switch {
	case m.Benchmark == "":
		return errors.New("core: measurement without benchmark name")
	case m.Performance <= 0 || math.IsNaN(m.Performance) || math.IsInf(m.Performance, 0):
		return fmt.Errorf("core: %s: non-positive performance %v", m.Benchmark, m.Performance)
	case m.Power <= 0:
		return fmt.Errorf("core: %s: non-positive power %v", m.Benchmark, m.Power)
	case m.Time <= 0:
		return fmt.Errorf("core: %s: non-positive time %v", m.Benchmark, m.Time)
	case m.Energy < 0:
		return fmt.Errorf("core: %s: negative energy %v", m.Benchmark, m.Energy)
	}
	return nil
}

// EnergyJoules returns the measured energy, falling back to Power × Time
// when the meter reported only mean power.
func (m Measurement) EnergyJoules() units.Joules {
	if m.Energy > 0 {
		return m.Energy
	}
	return units.Energy(m.Power, m.Time)
}

// EEFunc maps a measurement to its energy-efficiency score (higher is
// better). TGI is agnostic to the choice (Section II).
type EEFunc func(Measurement) float64

// PerfPerWatt is Equation 2: performance divided by power, the metric used
// throughout the paper's evaluation.
func PerfPerWatt(m Measurement) float64 {
	return m.Performance / float64(m.Power)
}

// InverseEDP is an energy-delay-product-based efficiency: 1/(E·T), so that
// higher remains better and the ratio-to-reference structure of Equation 3
// is preserved.
func InverseEDP(m Measurement) float64 {
	return 1 / (float64(m.EnergyJoules()) * float64(m.Time))
}

// EE computes Equation 2 for a measurement after validating it.
func EE(m Measurement) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return PerfPerWatt(m), nil
}

// REE computes Equation 3: the system-under-test's efficiency relative to
// the reference system's on the same benchmark. Both measurements must be
// of the same benchmark and metric.
func REE(test, ref Measurement) (float64, error) {
	return REEWith(PerfPerWatt, test, ref)
}

// REEWith is REE under an alternative efficiency metric.
func REEWith(ee EEFunc, test, ref Measurement) (float64, error) {
	if ee == nil {
		return 0, errors.New("core: nil efficiency metric")
	}
	if err := test.Validate(); err != nil {
		return 0, err
	}
	if err := ref.Validate(); err != nil {
		return 0, fmt.Errorf("core: reference: %w", err)
	}
	if test.Benchmark != ref.Benchmark {
		return 0, fmt.Errorf("core: benchmark mismatch: %q vs reference %q", test.Benchmark, ref.Benchmark)
	}
	if test.Metric != ref.Metric {
		return 0, fmt.Errorf("core: %s: metric mismatch: %q vs reference %q", test.Benchmark, test.Metric, ref.Metric)
	}
	den := ee(ref)
	if den <= 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 0, fmt.Errorf("core: %s: degenerate reference efficiency %v", ref.Benchmark, den)
	}
	return ee(test) / den, nil
}

// Scheme selects how the TGI weighting factors are assigned (Section III).
type Scheme int

// Weighting schemes.
const (
	// ArithmeticMean assigns equal weights (Equations 6-8).
	ArithmeticMean Scheme = iota
	// TimeWeighted uses W_i = t_i / Σt (Equation 10); the paper finds it
	// behaves like the arithmetic mean.
	TimeWeighted
	// EnergyWeighted uses W_i = e_i / Σe (Equation 11); the paper finds it
	// overweights the energy-hungry benchmark (HPL), an undesired property.
	EnergyWeighted
	// PowerWeighted uses W_i = p_i / Σp (Equation 12); same caveat.
	PowerWeighted
	// Custom uses caller-provided weights (e.g. a memory-heavy profile for
	// a memory-bound production workload, the paper's motivating example).
	Custom
)

func (s Scheme) String() string {
	switch s {
	case ArithmeticMean:
		return "arithmetic-mean"
	case TimeWeighted:
		return "time-weighted"
	case EnergyWeighted:
		return "energy-weighted"
	case PowerWeighted:
		return "power-weighted"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Weights derives the normalised weighting factors for the measurements
// under the scheme. For Custom, the provided weights are validated
// (non-negative, matching length) and normalised to sum to one.
func Weights(s Scheme, ms []Measurement, custom []float64) ([]float64, error) {
	if len(ms) == 0 {
		return nil, errors.New("core: no measurements")
	}
	raw := make([]float64, len(ms))
	switch s {
	case ArithmeticMean:
		for i := range raw {
			raw[i] = 1
		}
	case TimeWeighted:
		for i, m := range ms {
			raw[i] = float64(m.Time)
		}
	case EnergyWeighted:
		for i, m := range ms {
			raw[i] = float64(m.EnergyJoules())
		}
	case PowerWeighted:
		for i, m := range ms {
			raw[i] = float64(m.Power)
		}
	case Custom:
		if len(custom) != len(ms) {
			return nil, fmt.Errorf("core: %d custom weights for %d measurements", len(custom), len(ms))
		}
		copy(raw, custom)
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", s)
	}
	ws, err := stats.Normalize(raw)
	if err != nil {
		return nil, fmt.Errorf("core: %v weights: %w", s, err)
	}
	return ws, nil
}

// Components carries the per-benchmark breakdown behind a TGI value, for
// reporting and for the correlation analysis of Section IV.
type Components struct {
	Benchmarks []string
	EE         []float64 // Equation 2 per benchmark
	RefEE      []float64
	REE        []float64 // Equation 3 per benchmark
	Weights    []float64 // normalised
	TGI        float64   // Equation 4
	Scheme     Scheme
	// Degraded marks a partial-suite evaluation: the TGI covers only the
	// benchmarks listed in Benchmarks, with weights renormalised over the
	// survivors; Missing names the benchmarks it no longer covers.
	Degraded bool
	Missing  []string
}

// Compute evaluates TGI for a suite of measurements against the reference
// system's measurements, using the default performance-per-watt metric.
// Reference measurements are matched to test measurements by benchmark
// name; every test benchmark must have a reference.
func Compute(test, ref []Measurement, s Scheme, custom []float64) (*Components, error) {
	return ComputeWith(PerfPerWatt, test, ref, s, custom)
}

// ComputeWith is Compute under an alternative efficiency metric.
func ComputeWith(ee EEFunc, test, ref []Measurement, s Scheme, custom []float64) (*Components, error) {
	if len(test) == 0 {
		return nil, errors.New("core: no measurements")
	}
	refBy := make(map[string]Measurement, len(ref))
	for _, r := range ref {
		if _, dup := refBy[r.Benchmark]; dup {
			return nil, fmt.Errorf("core: duplicate reference for %q", r.Benchmark)
		}
		refBy[r.Benchmark] = r
	}
	seen := make(map[string]bool, len(test))
	c := &Components{Scheme: s}
	for _, m := range test {
		if seen[m.Benchmark] {
			return nil, fmt.Errorf("core: duplicate measurement for %q", m.Benchmark)
		}
		seen[m.Benchmark] = true
		r, ok := refBy[m.Benchmark]
		if !ok {
			return nil, fmt.Errorf("core: no reference measurement for %q", m.Benchmark)
		}
		ree, err := REEWith(ee, m, r)
		if err != nil {
			return nil, err
		}
		c.Benchmarks = append(c.Benchmarks, m.Benchmark)
		c.EE = append(c.EE, ee(m))
		c.RefEE = append(c.RefEE, ee(r))
		c.REE = append(c.REE, ree)
	}
	ws, err := Weights(s, test, custom)
	if err != nil {
		return nil, err
	}
	c.Weights = ws
	for i, ree := range c.REE {
		c.TGI += ws[i] * ree
	}
	return c, nil
}

// SPECRating is Equation 1: the performance of the reference system divided
// by the performance of the system under test, with time as the unit of
// performance — a rating of 25 means the system under test is 25× faster
// than the reference. Provided because TGI's normalisation step follows the
// same approach.
func SPECRating(refTime, testTime units.Seconds) (float64, error) {
	if refTime <= 0 || testTime <= 0 {
		return 0, errors.New("core: SPEC rating needs positive times")
	}
	return float64(refTime) / float64(testTime), nil
}

// DesiredPropertyHolds checks Section III's requirement on the metric: at
// fixed performance, the efficiency must be inversely proportional to the
// energy consumed. It evaluates ee on a measurement and on a copy with k×
// the energy (and the corresponding power at fixed time), and reports
// whether efficiency scaled by 1/k within tol.
func DesiredPropertyHolds(ee EEFunc, m Measurement, k, tol float64) bool {
	if err := m.Validate(); err != nil || k <= 0 {
		return false
	}
	scaled := m
	scaled.Power = m.Power * units.Watts(k)
	scaled.Energy = units.Joules(float64(m.EnergyJoules()) * k)
	base := ee(m)
	got := ee(scaled)
	if base <= 0 || got <= 0 {
		return false
	}
	want := base / k
	return math.Abs(got-want) <= tol*want
}
