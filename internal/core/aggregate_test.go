package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggregateArithmetic(t *testing.T) {
	got, err := Aggregate(Arithmetic, []float64{1, 3}, []float64{0.5, 0.5})
	if err != nil || got != 2 {
		t.Errorf("arithmetic = %v, %v", got, err)
	}
}

func TestAggregateHarmonic(t *testing.T) {
	got, err := Aggregate(Harmonic, []float64{2, 6}, []float64{0.5, 0.5})
	if err != nil || math.Abs(got-3) > 1e-12 {
		t.Errorf("harmonic = %v, %v", got, err)
	}
}

func TestAggregateGeometric(t *testing.T) {
	// 2x better and 2x worse cancel exactly under the geometric mean.
	got, err := Aggregate(Geometric, []float64{2, 0.5}, []float64{0.5, 0.5})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("geometric = %v, %v", got, err)
	}
	if _, err := Aggregate(Geometric, []float64{1, -1}, []float64{0.5, 0.5}); err == nil {
		t.Error("negative REE accepted by geometric")
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(Arithmetic, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Aggregate(Arithmetic, []float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Aggregate(Arithmetic, []float64{1, 2}, []float64{0.7, 0.7}); err == nil {
		t.Error("unnormalised weights accepted")
	}
	if _, err := Aggregate(Aggregator(9), []float64{1}, []float64{1}); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

// AM >= GM >= HM over positive REEs with equal weights.
func TestAggregateMeanInequality(t *testing.T) {
	f := func(a, b, c float64) bool {
		ree := []float64{
			math.Abs(math.Mod(a, 10)) + 0.1,
			math.Abs(math.Mod(b, 10)) + 0.1,
			math.Abs(math.Mod(c, 10)) + 0.1,
		}
		w := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
		am, e1 := Aggregate(Arithmetic, ree, w)
		gm, e2 := Aggregate(Geometric, ree, w)
		hm, e3 := Aggregate(Harmonic, ree, w)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		eps := 1e-9 * am
		return am >= gm-eps && gm >= hm-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeAggregatedSelfAnchors(t *testing.T) {
	ref := refSuite()
	for _, a := range []Aggregator{Arithmetic, Harmonic, Geometric} {
		c, err := ComputeAggregated(a, ref, ref, ArithmeticMean, nil)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if math.Abs(c.TGI-1) > 1e-12 {
			t.Errorf("%v self-TGI = %v", a, c.TGI)
		}
	}
}

func TestHarmonicDominatedByWorstComponent(t *testing.T) {
	// Harmonic TGI hugs the weakest subsystem far tighter than arithmetic —
	// the behaviour a "bounded by least REE" consumer actually wants.
	test := testSuite()
	ref := refSuite()
	am, err := ComputeAggregated(Arithmetic, test, ref, ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := ComputeAggregated(Harmonic, test, ref, ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	minREE := math.Inf(1)
	for _, r := range am.REE {
		minREE = math.Min(minREE, r)
	}
	if !(hm.TGI < am.TGI) {
		t.Errorf("harmonic %v not below arithmetic %v", hm.TGI, am.TGI)
	}
	if (hm.TGI-minREE)/minREE > (am.TGI-minREE)/minREE {
		t.Error("harmonic not closer to the worst REE")
	}
}

func TestAggregatorString(t *testing.T) {
	if Arithmetic.String() != "arithmetic" || Harmonic.String() != "harmonic" ||
		Geometric.String() != "geometric" || Aggregator(7).String() == "" {
		t.Error("aggregator names wrong")
	}
}
