package core

// Executable versions of the paper's Section III analysis: Equations 13-15
// derive closed forms of TGI under time, energy and power weights and
// conclude that "using energy and power as weights cancels the effect of
// the energy component of the benchmarked systems" while time weights keep
// the desired inverse-energy property. These tests check the algebra on
// the implementation itself.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// eqSuite builds a 3-benchmark suite from raw (M, p, t) tuples.
func eqSuite(m, p, t [3]float64) []Measurement {
	names := [3]string{"A", "B", "C"}
	out := make([]Measurement, 3)
	for i := range out {
		out[i] = Measurement{
			Benchmark: names[i], Metric: "U",
			Performance: m[i], Power: units.Watts(p[i]), Time: units.Seconds(t[i]),
		}
	}
	return out
}

func TestEq13TimeWeightedClosedForm(t *testing.T) {
	// Equation 13: TGI_time = Σ_i t_i·M_i / (Σt · p_i · refEE_i).
	m := [3]float64{120, 40, 90}
	p := [3]float64{100, 80, 60}
	tm := [3]float64{10, 20, 5}
	test := eqSuite(m, p, tm)
	ref := eqSuite([3]float64{100, 100, 100}, [3]float64{100, 100, 100}, [3]float64{1, 1, 1})
	c, err := Compute(test, ref, TimeWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	sumT := tm[0] + tm[1] + tm[2]
	want := 0.0
	for i := 0; i < 3; i++ {
		refEE := 1.0 // ref: 100/100
		want += tm[i] * m[i] / (sumT * p[i] * refEE)
	}
	if math.Abs(c.TGI-want) > 1e-12 {
		t.Errorf("Eq 13: computed %v, closed form %v", c.TGI, want)
	}
}

func TestEq14EnergyWeightCancellation(t *testing.T) {
	// Equation 14 reduces to TGI_energy = Σ_i t_i·M_i / (Σe · refEE_i):
	// the per-benchmark power p_i cancels. So redistributing power between
	// benchmarks while holding every t_i, M_i and the total energy Σe
	// fixed must not move energy-weighted TGI at all — the paper's
	// "cancels the effect of the energy component".
	ref := eqSuite([3]float64{100, 100, 100}, [3]float64{100, 100, 100}, [3]float64{1, 1, 1})
	m := [3]float64{120, 40, 90}
	tm := [3]float64{10, 10, 10} // equal times so Σe moves with Σp only
	pA := [3]float64{100, 80, 60}
	// Shift 30 W from benchmark A to benchmark C: Σp (and with equal
	// times, Σe) unchanged.
	pB := [3]float64{70, 80, 90}
	a, err := Compute(eqSuite(m, pA, tm), ref, EnergyWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(eqSuite(m, pB, tm), ref, EnergyWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TGI-b.TGI) > 1e-12 {
		t.Errorf("Eq 14 cancellation violated: %v vs %v", a.TGI, b.TGI)
	}
	// Control: the arithmetic mean does NOT cancel — it must move.
	a2, _ := Compute(eqSuite(m, pA, tm), ref, ArithmeticMean, nil)
	b2, _ := Compute(eqSuite(m, pB, tm), ref, ArithmeticMean, nil)
	if math.Abs(a2.TGI-b2.TGI) < 1e-9 {
		t.Error("arithmetic mean unexpectedly invariant to power redistribution")
	}
}

func TestEq15PowerWeightCancellation(t *testing.T) {
	// Equation 15 reduces to TGI_power = Σ_i M_i / (Σp · refEE_i): p_i
	// cancels even without equal times.
	ref := eqSuite([3]float64{100, 100, 100}, [3]float64{100, 100, 100}, [3]float64{1, 1, 1})
	m := [3]float64{120, 40, 90}
	tm := [3]float64{10, 20, 5}
	pA := [3]float64{100, 80, 60}
	pB := [3]float64{60, 100, 80} // same Σp, different split
	a, err := Compute(eqSuite(m, pA, tm), ref, PowerWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(eqSuite(m, pB, tm), ref, PowerWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TGI-b.TGI) > 1e-12 {
		t.Errorf("Eq 15 cancellation violated: %v vs %v", a.TGI, b.TGI)
	}
}

func TestEq15PowerCancellationProperty(t *testing.T) {
	// Property form: any power split with the same total gives the same
	// power-weighted TGI.
	ref := eqSuite([3]float64{100, 100, 100}, [3]float64{100, 100, 100}, [3]float64{1, 1, 1})
	f := func(s1, s2 float64) bool {
		// Two splits of 300 W across three benchmarks.
		a1 := 50 + math.Abs(math.Mod(s1, 150))
		a2 := 50 + math.Abs(math.Mod(s2, 150))
		pA := [3]float64{a1, 100, 200 - a1}
		pB := [3]float64{a2, 100, 200 - a2}
		m := [3]float64{120, 40, 90}
		tm := [3]float64{10, 20, 5}
		ra, e1 := Compute(eqSuite(m, pA, tm), ref, PowerWeighted, nil)
		rb, e2 := Compute(eqSuite(m, pB, tm), ref, PowerWeighted, nil)
		if e1 != nil || e2 != nil {
			return false
		}
		return math.Abs(ra.TGI-rb.TGI) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightsKeepDesiredProperty(t *testing.T) {
	// Section III: "TGI using time as weight given the performance has the
	// desired property" — doubling one benchmark's power (hence energy, at
	// fixed time) must reduce its contribution proportionally, so TGI_time
	// must strictly fall; energy- and power-weighted TGI must NOT fall
	// (their forms cancel p_i, leaving only the Σ in the denominator).
	ref := eqSuite([3]float64{100, 100, 100}, [3]float64{100, 100, 100}, [3]float64{1, 1, 1})
	m := [3]float64{120, 40, 90}
	tm := [3]float64{10, 20, 5}
	pA := [3]float64{100, 80, 60}
	pHot := [3]float64{200, 80, 60} // benchmark A burns twice the power
	base, err := Compute(eqSuite(m, pA, tm), ref, TimeWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Compute(eqSuite(m, pHot, tm), ref, TimeWeighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hot.TGI >= base.TGI {
		t.Errorf("time-weighted TGI did not penalise extra energy: %v -> %v",
			base.TGI, hot.TGI)
	}
}
