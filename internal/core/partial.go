package core

import (
	"errors"
	"fmt"
)

// Partial-suite TGI: when a resilient suite run loses a benchmark to an
// unrecovered fault, the metric is still well defined over the surviving
// benchmarks — the weighting factors of Equation 4 are simply renormalised
// over the survivors (Σ W_i = 1 holds again) and the result is flagged as
// degraded instead of failing the whole evaluation. A degraded TGI is an
// approximation of the full-suite TGI, not a substitute: Components.Missing
// says exactly which benchmarks it no longer covers.

// ComputePartial evaluates TGI over the measurements that survived a
// degraded suite run. expected is the full benchmark list the suite was
// supposed to produce, in run order; test holds the survivors. Weights are
// derived by the scheme over the survivors only (renormalised to sum to
// one); for Custom, custom must carry one weight per *expected* benchmark
// and the survivors' entries are selected before normalisation. The
// returned Components has Degraded set and Missing populated when any
// expected benchmark is absent.
func ComputePartial(test, ref []Measurement, s Scheme, custom []float64, expected []string) (*Components, error) {
	return ComputePartialAggregated(Arithmetic, test, ref, s, custom, expected)
}

// ComputePartialAggregated is ComputePartial with a selectable aggregation
// mean.
func ComputePartialAggregated(a Aggregator, test, ref []Measurement, s Scheme, custom []float64, expected []string) (*Components, error) {
	if len(expected) == 0 {
		return nil, errors.New("core: partial TGI needs the expected benchmark list")
	}
	if s == Custom && len(custom) != len(expected) {
		return nil, fmt.Errorf("core: %d custom weights for %d expected benchmarks", len(custom), len(expected))
	}
	pos := make(map[string]int, len(expected))
	for i, name := range expected {
		if _, dup := pos[name]; dup {
			return nil, fmt.Errorf("core: duplicate expected benchmark %q", name)
		}
		pos[name] = i
	}
	have := make(map[string]bool, len(test))
	var subCustom []float64
	for _, m := range test {
		i, ok := pos[m.Benchmark]
		if !ok {
			return nil, fmt.Errorf("core: measurement %q not in the expected benchmark list", m.Benchmark)
		}
		have[m.Benchmark] = true
		if s == Custom {
			subCustom = append(subCustom, custom[i])
		}
	}
	var missing []string
	for _, name := range expected {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(test) == 0 {
		return nil, fmt.Errorf("core: no surviving measurements (all %d benchmarks failed)", len(expected))
	}
	c, err := ComputeAggregated(a, test, ref, s, subCustom)
	if err != nil {
		return nil, err
	}
	c.Degraded = len(missing) > 0
	c.Missing = missing
	return c, nil
}
