package ptrans

import (
	"testing"

	"repro/internal/cluster"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, Grid: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(Config{N: 8, Grid: 0}); err == nil {
		t.Error("Grid=0 accepted")
	}
	if _, err := Run(Config{N: 10, Grid: 3}); err == nil {
		t.Error("indivisible N accepted")
	}
}

func TestRunSingleRank(t *testing.T) {
	res, err := Run(Config{N: 32, Grid: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("not verified")
	}
	if res.Ranks != 1 {
		t.Errorf("ranks = %d", res.Ranks)
	}
}

func TestRunGrids(t *testing.T) {
	for _, cfg := range []Config{
		{N: 32, Grid: 2, Seed: 2},
		{N: 48, Grid: 3, Seed: 3},
		{N: 64, Grid: 4, Seed: 4},
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%+v: %v", cfg, err)
			continue
		}
		if !res.Verified {
			t.Errorf("%+v: not verified", cfg)
		}
		if float64(res.Rate) <= 0 {
			t.Errorf("%+v: rate %v", cfg, res.Rate)
		}
	}
}

func TestGeneratorsNotSymmetric(t *testing.T) {
	// The verification would be vacuous if A were symmetric.
	if aEntry(1, 3, 5) == aEntry(1, 5, 3) {
		t.Error("aEntry symmetric")
	}
	if aEntry(1, 3, 5) == aEntry(2, 3, 5) {
		t.Error("aEntry ignores seed")
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Rate) <= 0 || res.Duration <= 0 {
		t.Errorf("rate %v duration %v", res.Rate, res.Duration)
	}
	if err := res.Profile.Validate(cluster.Fire()); err != nil {
		t.Fatal(err)
	}
	// PTRANS across 10 GbE must sit far below local memory speed.
	if float64(res.Rate) > 8*cluster.Fire().Interconnect.LinkBps*2 {
		t.Errorf("rate %v exceeds fabric capacity", res.Rate)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 8)
	bad.MemFill = 2
	if _, err := Simulate(bad); err == nil {
		t.Error("fill > 0.9 accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.LocalFrac = 1.5
	if _, err := Simulate(bad); err == nil {
		t.Error("local fraction > 1 accepted")
	}
}

func TestSimulateSingleProcIsMemoryBound(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Testbed(), 1))
	if err != nil {
		t.Fatal(err)
	}
	// One process: no fabric traffic; rate is half the memory bandwidth
	// (read + write pass).
	want := cluster.Testbed().Node.Memory.BandwidthBps / 2
	if f := float64(res.Rate); f < 0.9*want || f > 1.1*want {
		t.Errorf("single-proc rate %v, want ~%v", f, want)
	}
}

func TestSimulateNetworkDominatesAtScale(t *testing.T) {
	// With all 8 Fire nodes exchanging over 10 GbE, the transpose rate is
	// fabric-bound: well below the single-node memory-bound rate.
	multi, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	// 8 nodes × 1.25 GB/s NIC is the rough exchange ceiling.
	ceiling := 8 * cluster.Fire().Interconnect.LinkBps * 1.5
	if float64(multi.Rate) > ceiling {
		t.Errorf("rate %v above fabric ceiling %v", multi.Rate, ceiling)
	}
}

func BenchmarkPTRANSNative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{N: 256, Grid: 2, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rate)/1e9, "GBps")
	}
}
