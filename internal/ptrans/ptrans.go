// Package ptrans implements the HPC Challenge PTRANS benchmark: the
// parallel matrix transpose A ← Aᵀ + B. Every matrix element crosses the
// machine (block (i,j) swaps with block (j,i)), so the benchmark measures
// the interconnect's total exchange capacity — the communication axis the
// paper's three-benchmark suite leaves implicit inside HPL.
//
// Native mode runs a genuinely distributed transpose over the mpirt
// runtime on a square process grid, verified against the analytically
// known result; simulated mode costs the exchange against a machine spec.
package ptrans

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/mpirt"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config describes one native run.
type Config struct {
	// N is the global matrix order; it must be divisible by the grid side.
	N int
	// Grid is the process-grid side (Grid² ranks).
	Grid int
	Seed uint64
}

// Result is the outcome of a native run.
type Result struct {
	N        int
	Ranks    int
	Elapsed  time.Duration
	Rate     units.BytesPerSec // N²·8 bytes moved per transpose
	Verified bool
}

// aEntry and bEntry generate the input matrices deterministically, so any
// rank can verify any element of the result without communication.
func aEntry(seed uint64, i, j int) float64 {
	r := sim.NewRNG(seed ^ (uint64(i)*0x9E3779B97F4A7C15 + uint64(j) + 0xA))
	return r.Float64() - 0.5
}

func bEntry(seed uint64, i, j int) float64 {
	r := sim.NewRNG(seed ^ (uint64(i)*0xC2B2AE3D27D4EB4F + uint64(j) + 0xB))
	return r.Float64() - 0.5
}

// Run executes the distributed transpose: rank (r,c) of the grid owns the
// (r,c) block of A and B, exchanges its A block with rank (c,r), adds B,
// and verifies every local element against the generators.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.Grid <= 0 {
		return nil, errors.New("ptrans: N and Grid must be positive")
	}
	if cfg.N%cfg.Grid != 0 {
		return nil, fmt.Errorf("ptrans: N=%d not divisible by grid side %d", cfg.N, cfg.Grid)
	}
	g := cfg.Grid
	nb := cfg.N / g
	ranks := g * g
	start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
	err := mpirt.Run(ranks, func(c *mpirt.Comm) error {
		myRow := c.Rank() / g
		myCol := c.Rank() % g
		r0, c0 := myRow*nb, myCol*nb // global offset of my block
		// Fill my A block.
		a := make([]float64, nb*nb)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				a[i*nb+j] = aEntry(cfg.Seed, r0+i, c0+j)
			}
		}
		// Exchange with the mirror rank (the owner of block (myCol, myRow)).
		peer := myCol*g + myRow
		var their []float64
		if peer == c.Rank() {
			their = a
		} else {
			if err := c.Send(peer, 1, a); err != nil {
				return err
			}
			got, _, _, err := c.Recv(peer, 1)
			if err != nil {
				return err
			}
			their = got
		}
		// out = theirᵀ + B, where "their" is block (myCol, myRow) of A, so
		// out[i][j] = A[c0+j][r0+i] + B[r0+i][c0+j].
		out := make([]float64, nb*nb)
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				out[i*nb+j] = their[j*nb+i] + bEntry(cfg.Seed, r0+i, c0+j)
			}
		}
		// Verify against the generators.
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				want := aEntry(cfg.Seed, c0+j, r0+i) + bEntry(cfg.Seed, r0+i, c0+j)
				if math.Abs(out[i*nb+j]-want) > 1e-12 {
					return fmt.Errorf("ptrans: rank %d: element (%d,%d) = %v, want %v",
						c.Rank(), r0+i, c0+j, out[i*nb+j], want)
				}
			}
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	el := time.Since(start) //greenvet:allow detclock -- native benchmark: measures real execution on the host
	bytes := float64(cfg.N) * float64(cfg.N) * 8
	return &Result{
		N:        cfg.N,
		Ranks:    ranks,
		Elapsed:  el,
		Rate:     units.BytesPerSec(bytes / el.Seconds()),
		Verified: true,
	}, nil
}
