package ptrans

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/units"
)

// ModelConfig drives the simulated-cluster PTRANS run.
type ModelConfig struct {
	Spec      *cluster.Spec
	Procs     int
	Placement cluster.Placement
	// MemFill sizes the matrix from the active memory (two N×N matrices).
	// 0 means 0.3.
	MemFill float64
	// LocalFrac is the fraction of block exchanges that stay inside a node
	// (and so move at memory speed, not NIC speed) when several grid ranks
	// share a node. 0 means computed from the distribution.
	LocalFrac float64
}

// DefaultModelConfig returns the sweep configuration.
func DefaultModelConfig(spec *cluster.Spec, procs int) ModelConfig {
	return ModelConfig{Spec: spec, Procs: procs, Placement: cluster.Cyclic}
}

// ModelResult is the outcome of a simulated PTRANS run.
type ModelResult struct {
	N        int
	Procs    int
	Rate     units.BytesPerSec // global transpose rate, N²·8 / time
	Duration units.Seconds
	Profile  *cluster.LoadProfile
}

// Simulate costs the transpose: every off-diagonal element crosses between
// ranks; traffic leaving a node is bounded by its NIC, intra-node traffic
// by memory bandwidth. The makespan is set by the busiest node.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("ptrans: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	fill := cfg.MemFill
	if fill == 0 {
		fill = 0.3
	}
	if fill < 0 || fill > 0.9 {
		return nil, fmt.Errorf("ptrans: memory fill %v outside (0, 0.9]", fill)
	}
	if cfg.LocalFrac < 0 || cfg.LocalFrac > 1 {
		return nil, fmt.Errorf("ptrans: local fraction %v outside [0, 1]", cfg.LocalFrac)
	}
	dist, err := cfg.Spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}
	active := cluster.ActiveNodes(dist)

	// Matrix sized from the memory of the processes in use (A and B).
	memPerProc := cfg.Spec.Node.Memory.CapacityBytes / float64(cfg.Spec.Node.Cores())
	n := int(math.Sqrt(fill * memPerProc * float64(cfg.Procs) / (2 * 8)))
	if n < 64 {
		n = 64
	}
	totalBytes := float64(n) * float64(n) * 8

	// Fraction of traffic that stays on-node: each node holds procs/total
	// of the blocks; a random block pair is node-local with probability
	// Σ (share_i)².
	local := cfg.LocalFrac
	if local == 0 {
		var s float64
		for _, k := range dist {
			f := float64(k) / float64(cfg.Procs)
			s += f * f
		}
		local = s
	}
	remoteBytes := totalBytes * (1 - local)
	// Each node sends and receives its share of the remote traffic.
	perNodeRemote := remoteBytes / float64(active)
	nicTime := perNodeRemote / cfg.Spec.Interconnect.LinkBps
	// Local exchange and the final add run at memory speed on each node.
	perNodeLocal := (totalBytes*local + totalBytes) / float64(active)
	memTime := perNodeLocal / cfg.Spec.Node.Memory.BandwidthBps
	duration := nicTime + memTime
	if cfg.Procs == 1 {
		duration = 2 * totalBytes / cfg.Spec.Node.Memory.BandwidthBps
	}

	rate := totalBytes / duration
	netFrac := 0.0
	if duration > 0 {
		netFrac = nicTime / duration
	}
	phase := cluster.PhaseFromDistribution(units.Seconds(duration), cfg.Spec, dist,
		func(procs, cores int) cluster.Util {
			share := float64(procs) / float64(cores)
			return cluster.Util{
				CPU: 0.25 * share,
				Mem: math.Min(1, 1-netFrac),
				Net: math.Min(1, netFrac*share*4),
			}
		})
	return &ModelResult{
		N:        n,
		Procs:    cfg.Procs,
		Rate:     units.BytesPerSec(rate),
		Duration: units.Seconds(duration),
		Profile:  &cluster.LoadProfile{Phases: []cluster.Phase{phase}},
	}, nil
}
