package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestTransformRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if err := Transform(make([]complex128, n)); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestTransformKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse bin %d = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of height n at bin 0.
	y := []complex128{2, 2, 2, 2}
	if err := Transform(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Errorf("DC bin = %v", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, y[i])
		}
	}
	// A pure tone lands in exactly one bin.
	n := 16
	z := make([]complex128, n)
	for i := range z {
		ang := 2 * math.Pi * 3 * float64(i) / float64(n)
		z[i] = cmplx.Rect(1, ang)
	}
	if err := Transform(z); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(z[i])-want) > 1e-9 {
			t.Errorf("tone bin %d = %v", i, z[i])
		}
	}
}

func TestTransformMatchesDFT(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, n := range []int{2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormAt(0, 1), rng.NormAt(0, 1))
		}
		ref := DFT(x)
		if err := Transform(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-ref[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: fft %v, dft %v", n, i, x[i], ref[i])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed uint64, logn uint8) bool {
		n := 1 << (logn%10 + 1)
		rng := sim.NewRNG(seed)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormAt(0, 1), rng.NormAt(0, 1))
			orig[i] = x[i]
		}
		if err := Transform(x); err != nil {
			return false
		}
		if err := Inverse(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² = (1/n)·Σ|X|².
	rng := sim.NewRNG(5)
	n := 512
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormAt(0, 1), rng.NormAt(0, 1))
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Errorf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestFlopCount(t *testing.T) {
	if f := FlopCount(1024); f != 5*1024*10 {
		t.Errorf("FlopCount(1024) = %v", f)
	}
}

func TestRunNative(t *testing.T) {
	res, err := Run(Config{LogN: 14, Trials: 2, Batches: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Errorf("round-trip error %v failed", res.MaxError)
	}
	if res.GFLOPS <= 0 || res.N != 1<<14 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{LogN: 0}); err == nil {
		t.Error("LogN=0 accepted")
	}
	if _, err := Run(Config{LogN: 40}); err == nil {
		t.Error("huge LogN accepted")
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	if res.N&(res.N-1) != 0 {
		t.Errorf("N=%d not a power of two", res.N)
	}
	if float64(res.Perf) <= 0 || res.Duration <= 0 {
		t.Errorf("perf %v duration %v", res.Perf, res.Duration)
	}
	if err := res.Profile.Validate(cluster.Fire()); err != nil {
		t.Fatal(err)
	}
	// FFT is far below HPL's efficiency on the same machine.
	peak := float64(cluster.Fire().PeakFLOPS())
	if float64(res.Perf) > 0.5*peak {
		t.Errorf("FFT at %v implausibly close to peak %v", res.Perf, peak)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 8)
	bad.MemFill = 2
	if _, err := Simulate(bad); err == nil {
		t.Error("fill > 0.9 accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.ComputeEff = -1
	if _, err := Simulate(bad); err == nil {
		t.Error("negative efficiency accepted")
	}
}

func TestSimulatePerfGrowsWithProcs(t *testing.T) {
	a, err := Simulate(DefaultModelConfig(cluster.Fire(), 16))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(DefaultModelConfig(cluster.Fire(), 128))
	if err != nil {
		t.Fatal(err)
	}
	if float64(b.Perf) <= float64(a.Perf) {
		t.Errorf("perf did not grow: %v -> %v", a.Perf, b.Perf)
	}
}

func BenchmarkTransform64K(b *testing.B) {
	x := make([]complex128, 1<<16)
	rng := sim.NewRNG(1)
	for i := range x {
		x[i] = complex(rng.NormAt(0, 1), rng.NormAt(0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Transform(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(FlopCount(1<<16)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func TestDistRunValidation(t *testing.T) {
	if _, err := DistRun(DistConfig{LogN1: 0, LogN2: 4, Procs: 1}); err == nil {
		t.Error("LogN1=0 accepted")
	}
	if _, err := DistRun(DistConfig{LogN1: 20, LogN2: 20, Procs: 1}); err == nil {
		t.Error("huge size accepted")
	}
	if _, err := DistRun(DistConfig{LogN1: 4, LogN2: 4, Procs: 3}); err == nil {
		t.Error("indivisible rank count accepted")
	}
	if _, err := DistRun(DistConfig{LogN1: 4, LogN2: 4, Procs: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestDistRunMatchesSerial(t *testing.T) {
	cases := []DistConfig{
		{LogN1: 3, LogN2: 3, Procs: 1, Seed: 1},
		{LogN1: 4, LogN2: 4, Procs: 2, Seed: 2},
		{LogN1: 5, LogN2: 4, Procs: 4, Seed: 3},
		{LogN1: 6, LogN2: 5, Procs: 8, Seed: 4},
		{LogN1: 4, LogN2: 6, Procs: 4, Seed: 5}, // n2 > n1
	}
	for _, cfg := range cases {
		res, err := DistRun(cfg)
		if err != nil {
			t.Errorf("%+v: %v", cfg, err)
			continue
		}
		if !res.Passed {
			t.Errorf("%+v: relative error %v", cfg, res.MaxError)
		}
		if res.N != 1<<(cfg.LogN1+cfg.LogN2) {
			t.Errorf("%+v: N = %d", cfg, res.N)
		}
	}
}

func TestDistRunDeterministicInput(t *testing.T) {
	if inputAt(1, 5) != inputAt(1, 5) {
		t.Error("input generator not deterministic")
	}
	if inputAt(1, 5) == inputAt(2, 5) || inputAt(1, 5) == inputAt(1, 6) {
		t.Error("input generator insensitive to seed/index")
	}
}

func BenchmarkDistFFT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := DistRun(DistConfig{LogN1: 7, LogN2: 7, Procs: 2, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed {
			b.Fatalf("error %v", res.MaxError)
		}
		b.ReportMetric(res.GFLOPS, "GFLOPS")
	}
}
