package fft

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/mpirt"
	"repro/internal/sim"
	"repro/internal/units"
)

// This file implements the distributed (MPIFFT-style) transform: the
// six-step algorithm over the mpirt runtime. The length-n vector is viewed
// as an n1×n2 matrix distributed by rows; the transform becomes
//
//	column FFTs (length n1) → twiddle by ω_n^(j2·k1) → row FFTs (length n2)
//
// with the column FFTs realised as transpose + row FFTs, so all
// inter-process communication is the two all-to-all transposes — exactly
// the traffic pattern the FFT performance model charges for.

// DistConfig describes one distributed run.
type DistConfig struct {
	// LogN1 and LogN2 are the matrix-factor exponents; the global vector
	// length is 2^(LogN1+LogN2).
	LogN1, LogN2 int
	// Procs is the rank count; it must divide both 2^LogN1 and 2^LogN2.
	Procs int
	Seed  uint64
}

// DistResult is the outcome of a distributed run.
type DistResult struct {
	N        int
	Procs    int
	GFLOPS   float64
	Elapsed  units.Seconds
	MaxError float64 // against the serial Transform of the same input
	Passed   bool
}

// inputAt deterministically generates element i of the global input, so
// every rank can build its shard without communication and rank 0 can
// rebuild the whole vector for verification.
func inputAt(seed uint64, i int) complex128 {
	r := sim.NewRNG(seed ^ (uint64(i)*0x9E3779B97F4A7C15 + 0xF17))
	return complex(r.Float64()-0.5, r.Float64()-0.5)
}

// distTranspose globally transposes a rows×cols matrix distributed by rows
// (rowsLoc = rows/p rows per rank, row-major local storage, complex packed
// as re/im float64 pairs). Returns the local shard of the transpose
// (cols/p rows of length rows).
func distTranspose(c *mpirt.Comm, local []float64, rowsLoc, rows, cols int) ([]float64, error) {
	p := c.Size()
	if cols%p != 0 {
		return nil, fmt.Errorf("fft: %d columns not divisible by %d ranks", cols, p)
	}
	colsLoc := cols / p
	// Pack send buffer: chunk s holds my rows × columns [s·colsLoc, …).
	send := make([]float64, len(local))
	chunk := rowsLoc * colsLoc * 2
	for s := 0; s < p; s++ {
		at := s * chunk
		for r := 0; r < rowsLoc; r++ {
			base := r*cols*2 + s*colsLoc*2
			copy(send[at:at+colsLoc*2], local[base:base+colsLoc*2])
			at += colsLoc * 2
		}
	}
	recv := make([]float64, len(local))
	if err := c.Alltoall(send, recv); err != nil {
		return nil, err
	}
	// Unpack: chunk s carries rank s's rows (global rows s·rowsLoc…) of my
	// column block; transpose each chunk into the output, whose local rows
	// are global columns myRank·colsLoc….
	out := make([]float64, colsLoc*rows*2)
	for s := 0; s < p; s++ {
		at := s * chunk
		for r := 0; r < rowsLoc; r++ { // global row s*rowsLoc + r
			gRow := s*rowsLoc + r
			for cc := 0; cc < colsLoc; cc++ {
				dst := (cc*rows + gRow) * 2
				out[dst] = recv[at]
				out[dst+1] = recv[at+1]
				at += 2
			}
		}
	}
	return out, nil
}

// rowFFTs transforms each length-w row of the packed local shard in place.
func rowFFTs(local []float64, rowsLoc, w int) error {
	row := make([]complex128, w)
	for r := 0; r < rowsLoc; r++ {
		base := r * w * 2
		for j := 0; j < w; j++ {
			row[j] = complex(local[base+2*j], local[base+2*j+1])
		}
		if err := Transform(row); err != nil {
			return err
		}
		for j := 0; j < w; j++ {
			local[base+2*j] = real(row[j])
			local[base+2*j+1] = imag(row[j])
		}
	}
	return nil
}

// DistRun executes the distributed transform and verifies the gathered
// result against the serial Transform on rank 0.
func DistRun(cfg DistConfig) (*DistResult, error) {
	if cfg.LogN1 < 1 || cfg.LogN2 < 1 || cfg.LogN1+cfg.LogN2 > 24 {
		return nil, errors.New("fft: LogN1/LogN2 must be >= 1 with LogN1+LogN2 <= 24")
	}
	n1, n2 := 1<<cfg.LogN1, 1<<cfg.LogN2
	n := n1 * n2
	p := cfg.Procs
	if p <= 0 || n1%p != 0 || n2%p != 0 {
		return nil, fmt.Errorf("fft: %d ranks must divide both %d and %d", p, n1, n2)
	}
	var gathered []complex128
	start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
	err := mpirt.Run(p, func(c *mpirt.Comm) error {
		me := c.Rank()
		rows1 := n1 / p // my rows of the n1×n2 view
		// Build my shard: rows [me·rows1, …) of A[j1][j2] = x[j1·n2+j2].
		local := make([]float64, rows1*n2*2)
		for r := 0; r < rows1; r++ {
			j1 := me*rows1 + r
			for j2 := 0; j2 < n2; j2++ {
				v := inputAt(cfg.Seed, j1*n2+j2)
				local[(r*n2+j2)*2] = real(v)
				local[(r*n2+j2)*2+1] = imag(v)
			}
		}
		// Step 1-2: transpose to n2×n1 and FFT rows of length n1 — these
		// are the column FFTs of the original view.
		t1, err := distTranspose(c, local, rows1, n1, n2)
		if err != nil {
			return err
		}
		rows2 := n2 / p
		if err := rowFFTs(t1, rows2, n1); err != nil {
			return err
		}
		// Step 3: twiddle B[j2][k1] by ω_n^(j2·k1).
		for r := 0; r < rows2; r++ {
			j2 := me*rows2 + r
			for k1 := 0; k1 < n1; k1++ {
				w := cmplx.Rect(1, -2*math.Pi*float64(j2)*float64(k1)/float64(n))
				at := (r*n1 + k1) * 2
				v := complex(t1[at], t1[at+1]) * w
				t1[at], t1[at+1] = real(v), imag(v)
			}
		}
		// Step 4-5: transpose back to n1×n2 and FFT rows of length n2.
		t2, err := distTranspose(c, t1, rows2, n2, n1)
		if err != nil {
			return err
		}
		if err := rowFFTs(t2, rows1, n2); err != nil {
			return err
		}
		// Gather D[k1][k2] at rank 0 for verification.
		if me != 0 {
			return c.Send(0, 4, t2)
		}
		full := make([]float64, n*2)
		copy(full, t2)
		for src := 1; src < p; src++ {
			data, _, _, err := c.Recv(src, 4)
			if err != nil {
				return err
			}
			copy(full[src*len(t2):], data)
		}
		// X[k2·n1 + k1] = D[k1][k2].
		gathered = make([]complex128, n)
		for k1 := 0; k1 < n1; k1++ {
			for k2 := 0; k2 < n2; k2++ {
				at := (k1*n2 + k2) * 2
				gathered[k2*n1+k1] = complex(full[at], full[at+1])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start) //greenvet:allow detclock -- native benchmark: measures real execution on the host
	// Serial reference on the same input.
	ref := make([]complex128, n)
	for i := range ref {
		ref[i] = inputAt(cfg.Seed, i)
	}
	if err := Transform(ref); err != nil {
		return nil, err
	}
	maxErr := 0.0
	scale := 0.0
	for i := range ref {
		if d := cmplx.Abs(gathered[i] - ref[i]); d > maxErr {
			maxErr = d
		}
		if a := cmplx.Abs(ref[i]); a > scale {
			scale = a
		}
	}
	rel := maxErr / scale
	return &DistResult{
		N:        n,
		Procs:    p,
		GFLOPS:   FlopCount(n) / elapsed.Seconds() / 1e9,
		Elapsed:  units.FromDuration(elapsed),
		MaxError: rel,
		Passed:   rel < 1e-10*float64(cfg.LogN1+cfg.LogN2),
	}, nil
}
