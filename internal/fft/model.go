package fft

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/units"
)

// ModelConfig drives the simulated-cluster FFT benchmark (the global,
// all-to-all variant HPCC calls MPIFFT).
type ModelConfig struct {
	Spec      *cluster.Spec
	Procs     int
	Placement cluster.Placement
	// MemFill sizes the distributed vector from the active memory; HPCC
	// uses a modest fraction. 0 means 0.2.
	MemFill float64
	// ComputeEff is the fraction of peak a core sustains on FFT butterflies
	// (non-contiguous access keeps this well under dgemm's). 0 means 0.22.
	ComputeEff float64
}

// DefaultModelConfig returns the sweep configuration.
func DefaultModelConfig(spec *cluster.Spec, procs int) ModelConfig {
	return ModelConfig{Spec: spec, Procs: procs, Placement: cluster.Cyclic}
}

// ModelResult is the outcome of a simulated FFT run.
type ModelResult struct {
	N        int // global vector length (power of two)
	Procs    int
	Perf     units.FLOPS
	Duration units.Seconds
	Profile  *cluster.LoadProfile
}

// Simulate evaluates the model: compute time from the 5·N·log₂N count at
// FFT efficiency, plus the benchmark's defining communication phase — a
// global transpose (all-to-all) moving the entire vector across the
// interconnect, which is why MPIFFT stresses bisection bandwidth.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("fft: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	fill := cfg.MemFill
	if fill == 0 {
		fill = 0.2
	}
	if fill < 0 || fill > 0.9 {
		return nil, fmt.Errorf("fft: memory fill %v outside (0, 0.9]", fill)
	}
	eff := cfg.ComputeEff
	if eff == 0 {
		eff = 0.22
	}
	if eff <= 0 || eff > 1 {
		return nil, fmt.Errorf("fft: compute efficiency %v outside (0, 1]", eff)
	}
	dist, err := cfg.Spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}
	// Vector sized to a power of two within the memory budget (16 bytes
	// per complex element).
	memPerProc := cfg.Spec.Node.Memory.CapacityBytes / float64(cfg.Spec.Node.Cores())
	budget := fill * memPerProc * float64(cfg.Procs) / 16
	logN := int(math.Floor(math.Log2(budget)))
	if logN < 10 {
		logN = 10
	}
	n := 1 << logN
	flops := FlopCount(n)

	corePeak := cfg.Spec.Node.CPU.ClockHz * cfg.Spec.Node.CPU.FlopsPerCycle
	// Butterflies are memory-bound: cap per-core rate by the node
	// bandwidth share as in the HPL model, with FFT's ~1 byte/flop.
	maxOnNode := 0
	for _, d := range dist {
		if d > maxOnNode {
			maxOnNode = d
		}
	}
	rate := corePeak * eff
	if maxOnNode > 0 {
		bwRate := cfg.Spec.Node.Memory.BandwidthBps / float64(maxOnNode) / 1.0
		if bwRate < rate {
			rate = bwRate
		}
	}
	tCompute := flops / (float64(cfg.Procs) * rate)

	// Three global transposes (HPCC's 1D decomposition), each moving the
	// full 16·N bytes across the fabric; per-node NIC shared by its procs.
	tComm := 0.0
	if cfg.Procs > 1 {
		active := cluster.ActiveNodes(dist)
		perNodeBytes := 3 * 16 * float64(n) / float64(active)
		link := cfg.Spec.Interconnect.LinkBps
		tComm = perNodeBytes / link
	}

	total := tCompute + tComm
	perf := units.FLOPS(flops / total)
	computeFrac := tCompute / total
	phase := cluster.PhaseFromDistribution(units.Seconds(total), cfg.Spec, dist,
		func(procs, cores int) cluster.Util {
			share := float64(procs) / float64(cores)
			return cluster.Util{
				CPU: 0.6 * share * computeFrac, // stalled on memory much of the time
				Mem: math.Min(1, float64(procs)*rate/cfg.Spec.Node.Memory.BandwidthBps),
				Net: math.Min(1, (1-computeFrac)*share),
			}
		})
	return &ModelResult{
		N:        n,
		Procs:    cfg.Procs,
		Perf:     perf,
		Duration: units.Seconds(total),
		Profile:  &cluster.LoadProfile{Phases: []cluster.Phase{phase}},
	}, nil
}
