// Package fft implements the HPC Challenge FFT benchmark: a radix-2
// Cooley-Tukey fast Fourier transform over complex doubles, verified by an
// inverse round trip and against a direct DFT. HPCC reports FFT performance
// as GFLOPS using the canonical 5·N·log₂N operation count.
//
// The paper builds TGI on "a benchmark suite [that] stresses different
// components" and names HPCC — whose seven tests include FFT — as the
// performance-side precedent; this package is one of the suite extensions
// that take this reproduction from the paper's three benchmarks to the full
// HPCC-style seven (see suite.RunExtended).
package fft

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// FlopCount returns the canonical FFT operation count, 5·n·log₂(n).
func FlopCount(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// Transform performs an in-place forward FFT of x, whose length must be a
// power of two.
func Transform(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Inverse performs an in-place inverse FFT (normalised by 1/n).
func Inverse(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := Transform(x); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// DFT is the O(n²) direct transform used as a reference in tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

// Config describes one native benchmark run.
type Config struct {
	// LogN is the transform size exponent (vector length 2^LogN).
	LogN int
	// Batches is how many independent transforms each trial performs;
	// 0 means max(1, GOMAXPROCS) so all workers stay busy.
	Batches int
	// Trials is the repetition count; the best rate is reported. 0 means 5.
	Trials int
	// Seed generates the input signal.
	Seed uint64
}

// Result is the outcome of a native run.
type Result struct {
	N        int
	Batches  int
	GFLOPS   float64 // best-trial rate over all batches
	BestTime units.Seconds
	MaxError float64 // round-trip error of the checked batch
	Passed   bool
}

// Run executes batched FFTs in parallel, reports the best GFLOPS, and
// verifies one batch by inverse round trip.
func Run(cfg Config) (*Result, error) {
	if cfg.LogN < 1 || cfg.LogN > 28 {
		return nil, errors.New("fft: LogN must be in [1, 28]")
	}
	n := 1 << cfg.LogN
	batches := cfg.Batches
	if batches <= 0 {
		batches = runtime.GOMAXPROCS(0)
		if batches < 1 {
			batches = 1
		}
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 5
	}
	rng := sim.NewRNG(cfg.Seed + 0xFF7)
	data := make([][]complex128, batches)
	orig := make([]complex128, n)
	for b := range data {
		data[b] = make([]complex128, n)
		for i := range data[b] {
			data[b][i] = complex(rng.NormAt(0, 1), rng.NormAt(0, 1))
		}
	}
	copy(orig, data[0])

	var best float64
	flops := FlopCount(n) * float64(batches)
	var firstErr error
	var mu sync.Mutex
	for t := 0; t < trials; t++ {
		start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		var wg sync.WaitGroup
		for b := range data {
			wg.Add(1)
			go func(v []complex128) {
				defer wg.Done()
				if err := Transform(v); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(data[b])
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		el := time.Since(start).Seconds() //greenvet:allow detclock -- native benchmark: measures real execution on the host
		if rate := flops / el / 1e9; rate > best {
			best = rate
		}
		// Undo so every trial transforms the same input.
		for b := range data {
			if err := Inverse(data[b]); err != nil {
				return nil, err
			}
		}
	}
	// Round-trip error on batch 0 after trials forward+inverse pairs.
	maxErr := 0.0
	for i := range orig {
		if d := cmplx.Abs(data[0][i] - orig[i]); d > maxErr {
			maxErr = d
		}
	}
	tol := 1e-9 * float64(cfg.LogN) * float64(trials)
	return &Result{
		N:        n,
		Batches:  batches,
		GFLOPS:   best,
		BestTime: units.Seconds(flops / (best * 1e9)),
		MaxError: maxErr,
		Passed:   maxErr < tol+1e-10,
	}, nil
}
