// Package stream implements the STREAM sustainable-memory-bandwidth
// benchmark — the memory component of the paper's TGI suite. The four
// canonical kernels are provided (Copy, Scale, Add, Triad); the paper's
// evaluation uses Triad (Equation 16: C = α·A + B), "the most commonly used
// computation in scientific computing".
//
// Native mode runs the kernels on the host with parallel workers and
// reports the best sustained rate over repeated trials, exactly as the
// reference STREAM does. Simulated mode (model.go) evaluates a per-node
// bandwidth-saturation model against a machine spec.
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/units"
)

// Kernel identifies one STREAM operation.
type Kernel int

// The four STREAM kernels.
const (
	Copy Kernel = iota
	Scale
	Add
	Triad
)

func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// BytesPerElement returns the memory traffic per vector element of the
// kernel (reads + writes, 8-byte doubles), as defined by the STREAM rules.
func (k Kernel) BytesPerElement() int {
	switch k {
	case Copy, Scale:
		return 16 // one read + one write
	case Add, Triad:
		return 24 // two reads + one write
	default:
		return 0
	}
}

// Config describes one native STREAM run.
type Config struct {
	// N is the vector length. STREAM's rule of thumb: at least 4× the
	// last-level cache so the arrays cannot be cached.
	N int
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Trials is the number of repetitions; the best rate is reported
	// (STREAM convention). 0 means 10.
	Trials int
	// Scalar is the α of Scale and Triad; 0 means 3.0 (the reference value).
	Scalar float64
}

// Result is the outcome of one kernel's native run.
type Result struct {
	Kernel    Kernel
	N         int
	Workers   int
	Trials    int
	Best      units.BytesPerSec // best sustained rate (STREAM convention)
	Avg       units.BytesPerSec
	BestTime  units.Seconds
	Validated bool
}

// Run executes one kernel natively and validates the result arrays.
func Run(k Kernel, cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, errors.New("stream: N must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.N {
		workers = cfg.N
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 10
	}
	scalar := cfg.Scalar
	if scalar == 0 {
		scalar = 3.0
	}
	a := make([]float64, cfg.N)
	b := make([]float64, cfg.N)
	c := make([]float64, cfg.N)
	for i := range a {
		a[i], b[i], c[i] = 1, 2, 0
	}
	bytes := float64(k.BytesPerElement()) * float64(cfg.N)
	var bestT, sumT float64
	for t := 0; t < trials; t++ {
		el := runKernel(k, a, b, c, scalar, workers)
		s := el.Seconds()
		sumT += s
		if bestT == 0 || s < bestT {
			bestT = s
		}
	}
	res := &Result{
		Kernel:   k,
		N:        cfg.N,
		Workers:  workers,
		Trials:   trials,
		Best:     units.BytesPerSec(bytes / bestT),
		Avg:      units.BytesPerSec(bytes / (sumT / float64(trials))),
		BestTime: units.Seconds(bestT),
	}
	res.Validated = validate(k, a, b, c, scalar, trials)
	if !res.Validated {
		return res, fmt.Errorf("stream: %v validation failed", k)
	}
	return res, nil
}

// runKernel executes one trial across workers and returns the elapsed time.
func runKernel(k Kernel, a, b, c []float64, scalar float64, workers int) time.Duration {
	n := len(a)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	start := time.Now() //greenvet:allow detclock -- native benchmark: measures real execution on the host
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			switch k {
			case Copy:
				copy(c[lo:hi], a[lo:hi])
			case Scale:
				for i := lo; i < hi; i++ {
					b[i] = scalar * c[i]
				}
			case Add:
				for i := lo; i < hi; i++ {
					c[i] = a[i] + b[i]
				}
			case Triad:
				for i := lo; i < hi; i++ {
					a[i] = b[i] + scalar*c[i]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return time.Since(start) //greenvet:allow detclock -- native benchmark: measures real execution on the host
}

// validate recomputes the expected values after `trials` repetitions of a
// single kernel from the known initial state and spot-checks the arrays.
func validate(k Kernel, a, b, c []float64, scalar float64, trials int) bool {
	// Initial: a=1, b=2, c=0. Each kernel is idempotent in its inputs
	// except for the first application, after which values are fixed points
	// of repetition (the kernels write a different array than they read).
	var wantA, wantB, wantC = 1.0, 2.0, 0.0
	switch k {
	case Copy:
		wantC = wantA
	case Scale:
		wantB = scalar * wantC
	case Add:
		wantC = wantA + wantB
	case Triad:
		wantA = wantB + scalar*wantC
	}
	// Tolerance-based verification, as in the reference stream.c: the
	// kernels are single flops, but the compiler may contract
	// b[j]+scalar*c[j] into an FMA while the expected-value computation
	// above rounds twice, so exact equality is architecture-dependent.
	const tol = 1e-13
	idx := []int{0, len(a) / 2, len(a) - 1}
	for _, i := range idx {
		if !stats.ApproxEqual(a[i], wantA, tol) ||
			!stats.ApproxEqual(b[i], wantB, tol) ||
			!stats.ApproxEqual(c[i], wantC, tol) {
			return false
		}
	}
	return true
}

// RunAll executes all four kernels and returns their results keyed by
// kernel, mirroring the reference benchmark's output table.
func RunAll(cfg Config) (map[Kernel]*Result, error) {
	out := make(map[Kernel]*Result, 4)
	for _, k := range []Kernel{Copy, Scale, Add, Triad} {
		r, err := Run(k, cfg)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}
