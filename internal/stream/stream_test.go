package stream

import (
	"testing"

	"repro/internal/cluster"
)

func TestKernelMetadata(t *testing.T) {
	if Copy.BytesPerElement() != 16 || Scale.BytesPerElement() != 16 {
		t.Error("Copy/Scale traffic wrong")
	}
	if Add.BytesPerElement() != 24 || Triad.BytesPerElement() != 24 {
		t.Error("Add/Triad traffic wrong")
	}
	if Kernel(99).BytesPerElement() != 0 {
		t.Error("unknown kernel traffic nonzero")
	}
	if Triad.String() != "Triad" || Copy.String() != "Copy" {
		t.Error("kernel names wrong")
	}
}

func TestRunValidatesInput(t *testing.T) {
	if _, err := Run(Triad, Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestRunAllKernels(t *testing.T) {
	res, err := RunAll(Config{N: 1 << 18, Trials: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{Copy, Scale, Add, Triad} {
		r := res[k]
		if r == nil {
			t.Fatalf("missing result for %v", k)
		}
		if !r.Validated {
			t.Errorf("%v not validated", k)
		}
		if float64(r.Best) <= 0 {
			t.Errorf("%v best rate %v", k, r.Best)
		}
		if float64(r.Best) < float64(r.Avg) {
			t.Errorf("%v best %v below average %v", k, r.Best, r.Avg)
		}
	}
}

func TestRunWorkerClamping(t *testing.T) {
	// More workers than elements must not panic.
	r, err := Run(Copy, Config{N: 3, Workers: 16, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 3 {
		t.Errorf("workers = %d, want 3", r.Workers)
	}
}

func TestNativeTriadRate(t *testing.T) {
	// 8 MiB arrays: big enough to leave L2 on any host, small enough to be
	// fast. The measured rate must be physically plausible (0.1-1000 GB/s).
	r, err := Run(Triad, Config{N: 1 << 20, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	bw := float64(r.Best)
	if bw < 1e8 || bw > 1e12 {
		t.Errorf("triad rate %v implausible", r.Best)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := Simulate(ModelConfig{}); err == nil {
		t.Error("nil spec accepted")
	}
	bad := DefaultModelConfig(cluster.Fire(), 8)
	bad.SatProcs = 0
	if _, err := Simulate(bad); err == nil {
		t.Error("SatProcs=0 accepted")
	}
	bad = DefaultModelConfig(cluster.Fire(), 8)
	bad.Contention = 2
	if _, err := Simulate(bad); err == nil {
		t.Error("contention > 1 accepted")
	}
	if _, err := Simulate(DefaultModelConfig(cluster.Fire(), 10_000)); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestNodeBandwidthShape(t *testing.T) {
	spec := cluster.Fire()
	cfg := DefaultModelConfig(spec, 8)
	// Ramp: 1 proc gets 1/SatProcs of saturation.
	b1 := nodeBandwidth(spec, cfg, 1)
	b4 := nodeBandwidth(spec, cfg, 4)
	b16 := nodeBandwidth(spec, cfg, 16)
	if b1 >= b4 {
		t.Errorf("ramp broken: %v >= %v", b1, b4)
	}
	if b4 != spec.Node.Memory.BandwidthBps {
		t.Errorf("saturation at SatProcs = %v, want %v", b4, spec.Node.Memory.BandwidthBps)
	}
	// Contention: a fully-packed node is slower than a half-packed one.
	if b16 >= b4 {
		t.Errorf("contention missing: %v >= %v", b16, b4)
	}
	if nodeBandwidth(spec, cfg, 0) != 0 {
		t.Error("idle node has bandwidth")
	}
}

func TestSimulateAggregateSaturatesThenDeclines(t *testing.T) {
	// Cyclic placement on Fire: aggregate BW rises to p=32 (4 procs/node,
	// saturation), then declines as packing adds contention.
	get := func(p int) float64 {
		r, err := Simulate(DefaultModelConfig(cluster.Fire(), p))
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.Aggregate)
	}
	b8, b32, b128 := get(8), get(32), get(128)
	if b8 >= b32 {
		t.Errorf("no ramp: p8=%v >= p32=%v", b8, b32)
	}
	if b128 >= b32 {
		t.Errorf("no contention decline: p128=%v >= p32=%v", b128, b32)
	}
}

func TestSimulateBlockVsCyclic(t *testing.T) {
	// With 8 procs, cyclic spreads one per node (8 × ramp(1)); block packs
	// one node (1 × ramp(8) = saturation). Cyclic yields 8×25/4 = 50 GB/s,
	// block 25 GB/s: placement matters, which is the ablation's point.
	cyc := DefaultModelConfig(cluster.Fire(), 8)
	blk := cyc
	blk.Placement = cluster.Block
	rc, err := Simulate(cyc)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(blk)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rc.Aggregate) <= float64(rb.Aggregate) {
		t.Errorf("cyclic %v not above block %v at low proc counts",
			rc.Aggregate, rb.Aggregate)
	}
}

func TestSimulateProfile(t *testing.T) {
	r, err := Simulate(DefaultModelConfig(cluster.Fire(), 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Profile.Validate(cluster.Fire()); err != nil {
		t.Fatal(err)
	}
	if r.Duration <= 0 {
		t.Errorf("duration %v", r.Duration)
	}
	u := r.Profile.Phases[0].NodeUtil[0]
	if u.Mem <= 0 || u.Mem > 1 {
		t.Errorf("mem util %v", u.Mem)
	}
	// STREAM burns far less CPU power than HPL: CPU util must be well
	// below the process share.
	if u.CPU >= 0.5*8/16+0.01 && u.CPU > 0.5 {
		t.Errorf("cpu util %v too high for a memory-bound code", u.CPU)
	}
}

func BenchmarkTriadNative(b *testing.B) {
	cfg := Config{N: 1 << 21, Trials: 1}
	for i := 0; i < b.N; i++ {
		r, err := Run(Triad, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Best)/1e9, "GB/s")
	}
}
