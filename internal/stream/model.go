package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/units"
)

// ModelConfig drives the simulated-cluster STREAM run.
type ModelConfig struct {
	Spec      *cluster.Spec
	Procs     int
	Placement cluster.Placement
	Kernel    Kernel
	// SatProcs is the number of processes per node needed to saturate the
	// node's memory bandwidth (memory controllers saturate long before the
	// core count; 3-5 on commodity parts).
	SatProcs int
	// Contention is the fractional bandwidth loss per extra process beyond
	// half the node's cores, normalised by the core count: queue and
	// prefetcher interference make fully-packed STREAM runs slower than
	// half-packed ones on real machines.
	Contention float64
	// ArrayBytesPerProc is the per-process working set (3 arrays); sized
	// like the reference benchmark (well beyond cache). 0 means 512 MiB.
	ArrayBytesPerProc float64
	// Trials is the repetition count contributing to the run's duration.
	// 0 means 3800 (cluster STREAM runs repeat for minutes).
	Trials int
}

// DefaultModelConfig returns the configuration used by the paper
// reproduction sweeps.
func DefaultModelConfig(spec *cluster.Spec, procs int) ModelConfig {
	return ModelConfig{
		Spec:       spec,
		Procs:      procs,
		Placement:  cluster.Cyclic,
		Kernel:     Triad,
		SatProcs:   4,
		Contention: 0.45,
		Trials:     3800,
	}
}

// ModelResult is the outcome of a simulated STREAM run.
type ModelResult struct {
	Procs     int
	Kernel    Kernel
	Aggregate units.BytesPerSec // cluster-wide sustained rate
	PerNode   []units.BytesPerSec
	Duration  units.Seconds
	Profile   *cluster.LoadProfile
}

// nodeBandwidth returns the sustained bandwidth of one node running k
// STREAM processes: linear ramp to saturation at SatProcs, then a mild
// decline from contention as the node fills.
func nodeBandwidth(spec *cluster.Spec, cfg ModelConfig, k int) float64 {
	if k <= 0 {
		return 0
	}
	sat := spec.Node.Memory.BandwidthBps
	ramp := math.Min(1, float64(k)/float64(cfg.SatProcs))
	cores := spec.Node.Cores()
	half := cores / 2
	penalty := 1.0
	if k > half && cores > half {
		penalty = 1 - cfg.Contention*float64(k-half)/float64(cores)
	}
	if penalty < 0.1 {
		penalty = 0.1
	}
	return sat * ramp * penalty
}

// Simulate evaluates the model and returns aggregate bandwidth plus the
// load profile for the power pipeline.
func Simulate(cfg ModelConfig) (*ModelResult, error) {
	if cfg.Spec == nil {
		return nil, errors.New("stream: nil spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.SatProcs <= 0 {
		return nil, errors.New("stream: SatProcs must be positive")
	}
	if cfg.Contention < 0 || cfg.Contention > 1 {
		return nil, fmt.Errorf("stream: contention %v outside [0, 1]", cfg.Contention)
	}
	dist, err := cfg.Spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}
	arrBytes := cfg.ArrayBytesPerProc
	if arrBytes == 0 {
		arrBytes = 512 << 20
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3800
	}

	perNode := make([]units.BytesPerSec, len(dist))
	var agg float64
	for i, k := range dist {
		bw := nodeBandwidth(cfg.Spec, cfg, k)
		perNode[i] = units.BytesPerSec(bw)
		agg += bw
	}
	if agg <= 0 {
		return nil, errors.New("stream: zero aggregate bandwidth")
	}

	// Duration: every node processes its processes' working sets at its
	// sustained rate; the slowest node sets the makespan. Traffic per
	// process per trial = kernel traffic across the array.
	perProcTraffic := arrBytes / 3 * float64(cfg.Kernel.BytesPerElement()) / 8
	makespan := 0.0
	for i, k := range dist {
		if k == 0 {
			continue
		}
		t := float64(trials) * float64(k) * perProcTraffic / float64(perNode[i])
		if t > makespan {
			makespan = t
		}
	}

	// Load profile: memory utilisation = achieved/sustainable bandwidth;
	// CPU utilisation is modest — STREAM cores spend most cycles stalled on
	// memory, drawing well below dgemm power (~45% of active-core power on
	// measured systems).
	const streamCPUFactor = 0.45
	phase := cluster.PhaseFromDistribution(units.Seconds(makespan), cfg.Spec, dist,
		func(procs, cores int) cluster.Util {
			bw := nodeBandwidth(cfg.Spec, cfg, procs)
			return cluster.Util{
				CPU: streamCPUFactor * float64(procs) / float64(cores),
				Mem: bw / cfg.Spec.Node.Memory.BandwidthBps,
			}
		})
	return &ModelResult{
		Procs:     cfg.Procs,
		Kernel:    cfg.Kernel,
		Aggregate: units.BytesPerSec(agg),
		PerNode:   perNode,
		Duration:  units.Seconds(makespan),
		Profile:   &cluster.LoadProfile{Phases: []cluster.Phase{phase}},
	}, nil
}
