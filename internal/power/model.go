// Package power turns machine-model load into watts: component-level power
// models, PSU wall-power conversion, a simulated wall-plug meter in the
// style of the Watts Up? PRO ES used by the paper (Figure 1), and a
// least-squares calibration fit.
//
// Measurement pathway (mirrors the paper's): the cluster's load profile is
// evaluated into an exact piecewise-constant power signal; the meter samples
// that signal at a fixed interval (1 s for the Watts Up? PRO), quantises to
// its resolution (0.1 W) and adds zero-mean gauge noise; energy is then the
// trapezoidal integral of the sampled trace.
package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/series"
	"repro/internal/sim"
	"repro/internal/units"
)

// Model maps component utilisation to electrical power for one cluster spec.
type Model struct {
	Spec *cluster.Spec

	// DisablePSU treats supplies as ideal (DC == wall). Ablation knob.
	DisablePSU bool

	// CPUExponent is the exponent relating CPU utilisation to dynamic CPU
	// power; 1 is the linear model used for the headline results. Values
	// below 1 model clock-gating-poor parts whose power rises steeply at
	// low utilisation.
	CPUExponent float64
}

// NewModel returns a power model for spec with default parameters.
func NewModel(spec *cluster.Spec) (*Model, error) {
	if spec == nil {
		return nil, errors.New("power: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Model{Spec: spec, CPUExponent: 1}, nil
}

// cpuDyn returns the utilisation term for CPU dynamic power.
func (m *Model) cpuDyn(u float64) float64 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	exp := m.CPUExponent
	if exp == 0 {
		exp = 1
	}
	if exp == 1 {
		return u
	}
	// Integer-ish exponents only need a couple of multiplies; use the
	// general path for everything else.
	switch exp {
	case 2:
		return u * u
	case 3:
		return u * u * u
	default:
		return math.Pow(u, exp)
	}
}

// NodeDC returns the DC power of one node at utilisation u, in watts.
func (m *Model) NodeDC(u cluster.Util) float64 {
	u = u.Clamp()
	n := m.Spec.Node
	p := n.BaseWatts
	p += float64(n.Sockets) * (n.CPU.IdleWatts + (n.CPU.MaxWatts-n.CPU.IdleWatts)*m.cpuDyn(u.CPU))
	p += n.Memory.IdleWatts + n.Memory.ActiveWatts*u.Mem
	p += n.Disk.IdleWatts + n.Disk.ActiveWatts*u.Disk
	p += n.NIC.IdleWatts + n.NIC.ActiveWatts*u.Net
	return p
}

// NodeWall returns the wall (AC) power of one node at utilisation u,
// applying the PSU efficiency curve.
func (m *Model) NodeWall(u cluster.Util) float64 {
	dc := m.NodeDC(u)
	if m.DisablePSU {
		return dc
	}
	eff := m.Spec.PSU.Efficiency(dc)
	if eff <= 0 {
		return dc
	}
	return dc / eff
}

// ClusterPower returns the wall power of the entire cluster when node i runs
// at utils[i]; nodes beyond len(utils) are idle but powered. The fabric
// switch and the shared-storage backend always draw their constant power —
// they are inside the metered envelope, as in the paper's Figure 1 setup.
func (m *Model) ClusterPower(utils []cluster.Util) units.Watts {
	if len(utils) > m.Spec.Nodes {
		utils = utils[:m.Spec.Nodes]
	}
	var p float64
	for _, u := range utils {
		p += m.NodeWall(u)
	}
	for i := len(utils); i < m.Spec.Nodes; i++ {
		p += m.NodeWall(cluster.Util{})
	}
	p += m.Spec.Interconnect.SwitchWatts
	p += m.Spec.Storage.Watts
	return units.Watts(p)
}

// IdlePower returns the wall power of the fully-idle cluster.
func (m *Model) IdlePower() units.Watts { return m.ClusterPower(nil) }

// PeakPower returns the wall power with every component of every node at
// full utilisation.
func (m *Model) PeakPower() units.Watts {
	full := make([]cluster.Util, m.Spec.Nodes)
	for i := range full {
		full[i] = cluster.Util{CPU: 1, Mem: 1, Disk: 1, Net: 1}
	}
	return m.ClusterPower(full)
}

// ProfileTrace evaluates a load profile into the exact piecewise-constant
// cluster power signal, emitting one sample at each phase boundary (both
// sides, so trapezoidal integration is exact).
func (m *Model) ProfileTrace(lp *cluster.LoadProfile) (*series.Trace, error) {
	return m.ProfileTraceInto(lp, series.New(2*len(lp.Phases)))
}

// ProfileTraceInto is ProfileTrace evaluating into tr, which is reset
// first and returned. Reusing one trace across evaluations keeps the
// meter's hot path (one exact signal per benchmark attempt) free of
// per-call sample allocations; the samples are identical to a fresh
// ProfileTrace's.
func (m *Model) ProfileTraceInto(lp *cluster.LoadProfile, tr *series.Trace) (*series.Trace, error) {
	if err := lp.Validate(m.Spec); err != nil {
		return nil, err
	}
	tr.Reset()
	var at units.Seconds
	for _, ph := range lp.Phases {
		p := m.ClusterPower(ph.NodeUtil)
		if err := tr.Append(at, p); err != nil {
			return nil, err
		}
		at += ph.Duration
		if err := tr.Append(at, p); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// MeterConfig configures the simulated wall-plug meter.
type MeterConfig struct {
	Interval     units.Seconds // sampling period; Watts Up? PRO ES: 1 s
	QuantumWatts float64       // display resolution; Watts Up? PRO ES: 0.1 W
	NoiseStdDev  float64       // gauge noise, standard deviation in watts
	Seed         uint64        // deterministic noise stream
	DropRate     float64       // probability a sample is lost (failure injection)
	GlitchRate   float64       // probability a sample carries a glitch spike (failure injection)
	GlitchWatts  float64       // glitch spike magnitude, standard deviation in watts
}

// WattsUpPRO returns the configuration matching the meter the paper used.
func WattsUpPRO(seed uint64) MeterConfig {
	return MeterConfig{Interval: 1, QuantumWatts: 0.1, NoiseStdDev: 0.5, Seed: seed}
}

// Meter is a simulated wall-plug power meter.
type Meter struct {
	cfg    MeterConfig
	rec    obs.Recorder
	origin units.Seconds
	// exact is internal scratch for Measure's piecewise-constant signal;
	// it never escapes the meter, so reusing it is always safe.
	exact *series.Trace
	// out is the sampled-trace scratch, reused only after ReuseSampleBuffer
	// opted in (the returned trace then aliases it).
	out   *series.Trace
	reuse bool
}

// Instrument attaches an observability recorder: every sampling window
// becomes a span on the "meter" track carrying sample/drop/glitch
// counts. Recording is passive — the sampled trace is identical with or
// without it.
func (mt *Meter) Instrument(rec obs.Recorder) { mt.rec = rec }

// SetOrigin places subsequent sampling-window spans at the given offset
// on the campaign's virtual-time axis (profiles themselves start at 0).
func (mt *Meter) SetOrigin(at units.Seconds) { mt.origin = at }

// NewMeter validates the configuration and returns a meter.
func NewMeter(cfg MeterConfig) (*Meter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Meter{cfg: cfg}, nil
}

// validate checks the meter configuration's parameters.
func (cfg MeterConfig) validate() error {
	if cfg.Interval <= 0 {
		return errors.New("power: meter interval must be positive")
	}
	if cfg.QuantumWatts < 0 || cfg.NoiseStdDev < 0 {
		return errors.New("power: negative meter quantum or noise")
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return fmt.Errorf("power: drop rate %v outside [0, 1)", cfg.DropRate)
	}
	if cfg.GlitchRate < 0 || cfg.GlitchRate >= 1 {
		return fmt.Errorf("power: glitch rate %v outside [0, 1)", cfg.GlitchRate)
	}
	if cfg.GlitchWatts < 0 {
		return fmt.Errorf("power: negative glitch magnitude %v", cfg.GlitchWatts)
	}
	return nil
}

// Reconfigure resets the meter to the state NewMeter(cfg) would return —
// recorder detached, origin zero — while keeping its sample buffers.
// Recycling one meter across the cells of a sweep is how the scheduler's
// per-worker scratch avoids re-growing the buffers for every cell;
// sampling behaviour is bit-identical to a freshly-constructed meter's.
func (mt *Meter) Reconfigure(cfg MeterConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	mt.cfg, mt.rec, mt.origin = cfg, nil, 0
	return nil
}

// ReuseSampleBuffer opts the meter into recycling the sampled-trace
// buffer: after this call, a trace returned by Sample or Measure is only
// valid until the next Sample or Measure call. Callers that fold each
// trace into scalars before measuring again (the suite runner) opt in;
// everyone else keeps the retain-forever default.
func (mt *Meter) ReuseSampleBuffer() { mt.reuse = true }

// Measure samples the exact signal of model×profile the way the physical
// meter would: fixed-interval sampling, quantisation, gauge noise, optional
// sample loss. The returned trace covers the whole profile duration.
func (mt *Meter) Measure(model *Model, lp *cluster.LoadProfile) (*series.Trace, error) {
	if mt.exact == nil {
		mt.exact = series.New(2 * len(lp.Phases))
	}
	exact, err := model.ProfileTraceInto(lp, mt.exact)
	if err != nil {
		return nil, err
	}
	return mt.Sample(exact)
}

// Sample applies the meter's sampling behaviour to an arbitrary exact trace.
func (mt *Meter) Sample(exact *series.Trace) (*series.Trace, error) {
	start, end, err := exact.Span()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(mt.cfg.Seed)
	out := mt.out
	if mt.reuse && out != nil {
		out.Reset()
	} else {
		out = series.New(int(float64(end-start)/float64(mt.cfg.Interval)) + 2)
		if mt.reuse {
			mt.out = out
		}
	}
	dropped, glitched := 0, 0
	for at := start; ; at += mt.cfg.Interval {
		clamped := at
		last := false
		if clamped >= end {
			clamped, last = end, true
		}
		p, err := exact.Interpolate(clamped)
		if err != nil {
			return nil, err
		}
		v := float64(p)
		if mt.cfg.NoiseStdDev > 0 {
			v += rng.NormAt(0, mt.cfg.NoiseStdDev)
		}
		// Glitches (failure injection): an occasional mis-read perturbs the
		// sample by a large excursion. Guarded so a glitch-free meter
		// consumes exactly the seed noise stream.
		if mt.cfg.GlitchRate > 0 && rng.Float64() < mt.cfg.GlitchRate {
			v += rng.NormAt(0, mt.cfg.GlitchWatts)
			glitched++
		}
		if q := mt.cfg.QuantumWatts; q > 0 {
			v = float64(int64(v/q+0.5)) * q
		}
		if v < 0 {
			v = 0
		}
		drop := mt.cfg.DropRate > 0 && rng.Float64() < mt.cfg.DropRate
		// Never drop the boundary samples: the trace must span the window.
		if drop && at != start && !last { //greenvet:allow floateq -- boundary samples are identified by exact virtual timestamps
			dropped++
			continue
		}
		if err := out.Append(clamped, units.Watts(v)); err != nil {
			return nil, err
		}
		if last {
			break
		}
	}
	if mt.rec != nil {
		attrs := []obs.Attr{
			obs.Int("samples", out.Len()),
			obs.Int("dropped", dropped),
			obs.Int("glitched", glitched),
			obs.Secs("interval", mt.cfg.Interval),
		}
		// Mean window power rides along so live-plane consumers can show
		// watts without re-integrating the trace. Derived purely from the
		// already-sampled series: determinism is untouched.
		if mean, err := out.MeanPower(); err == nil {
			attrs = append(attrs, obs.F64("mean_watts", float64(mean)))
		}
		mt.rec.Span(obs.Span{
			Track: obs.TrackMeter,
			Name:  obs.NameMeterWindow,
			Start: mt.origin + start,
			End:   mt.origin + end,
			Attrs: attrs,
		})
		mt.rec.Count("meter.windows", 1)
		mt.rec.Count("meter.samples", float64(out.Len()))
		mt.rec.Count("meter.samples_dropped", float64(dropped))
		mt.rec.Count("meter.samples_glitched", float64(glitched))
		mt.rec.Observe("meter.window_seconds", float64(end-start))
	}
	return out, nil
}
