package power

import (
	"errors"
	"fmt"

	"repro/internal/series"
	"repro/internal/units"
)

// FacilitySpec models the power drawn outside the computer system itself —
// cooling, UPS conversion losses and fixed overheads. The paper's future
// work calls for exactly this: "extend [the] TGI metric to give a
// center-wide view of the energy efficiency by including components such
// as cooling infrastructure."
//
// The model is the standard machine-room decomposition:
//
//	P_facility(t) = P_IT(t)/UPSEff + P_IT(t)/COP + FixedWatts
//
// where COP is the cooling plant's coefficient of performance (every watt
// of IT heat needs 1/COP watts of cooling) and FixedWatts covers lighting,
// pumps and air handlers that run regardless of load.
type FacilitySpec struct {
	// COP is the cooling coefficient of performance; typical chilled-water
	// plants: 2-5. Zero disables the cooling term.
	COP float64
	// UPSEff is the UPS/distribution efficiency in (0, 1]; zero means 1
	// (no conversion losses).
	UPSEff float64
	// FixedWatts is the load-independent facility overhead.
	FixedWatts float64
}

// Validate checks the facility parameters.
func (f FacilitySpec) Validate() error {
	if f.COP < 0 {
		return errors.New("power: negative COP")
	}
	if f.UPSEff < 0 || f.UPSEff > 1 {
		return fmt.Errorf("power: UPS efficiency %v outside [0, 1]", f.UPSEff)
	}
	if f.FixedWatts < 0 {
		return errors.New("power: negative fixed facility power")
	}
	return nil
}

// TypicalDatacenter returns a mid-2000s machine-room facility: COP-3
// chilled water, 92%-efficient UPS, 2 kW of fixed overhead. With an IT
// load around 30 kW this lands near the PUE ≈ 1.5 of the era's surveys.
func TypicalDatacenter() FacilitySpec {
	return FacilitySpec{COP: 3, UPSEff: 0.92, FixedWatts: 2000}
}

// Apply returns the facility-level power for a given IT wall power.
func (f FacilitySpec) Apply(it units.Watts) (units.Watts, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	p := float64(it)
	ups := f.UPSEff
	if ups == 0 {
		ups = 1
	}
	out := p / ups
	if f.COP > 0 {
		out += p / f.COP
	}
	out += f.FixedWatts
	return units.Watts(out), nil
}

// ApplyTrace maps an IT power trace to the facility-level trace the
// building's meter would record.
func (f FacilitySpec) ApplyTrace(it *series.Trace) (*series.Trace, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	out := series.New(it.Len())
	for _, s := range it.Samples() {
		p, err := f.Apply(s.Power)
		if err != nil {
			return nil, err
		}
		if err := out.Append(s.At, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PUE returns the power usage effectiveness at a given IT load: facility
// power divided by IT power. PUE is load-dependent under this model
// because of the fixed term — light loads look worse, which matches
// measured facilities.
func (f FacilitySpec) PUE(it units.Watts) (float64, error) {
	if it <= 0 {
		return 0, errors.New("power: PUE needs positive IT load")
	}
	fac, err := f.Apply(it)
	if err != nil {
		return 0, err
	}
	return float64(fac) / float64(it), nil
}
