package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/series"
	"repro/internal/units"
)

func TestFacilityValidate(t *testing.T) {
	bad := []FacilitySpec{
		{COP: -1},
		{UPSEff: -0.1},
		{UPSEff: 1.1},
		{FixedWatts: -5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad facility %d validated", i)
		}
	}
	if err := TypicalDatacenter().Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacilityApplyHandValues(t *testing.T) {
	f := FacilitySpec{COP: 2, UPSEff: 0.5, FixedWatts: 100}
	// 1000 W IT: UPS doubles it to 2000, cooling adds 500, fixed 100.
	got, err := f.Apply(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2600 {
		t.Errorf("Apply = %v, want 2600", got)
	}
	// Zero members mean identity.
	ident := FacilitySpec{}
	got, err = ident.Apply(1234)
	if err != nil || got != 1234 {
		t.Errorf("identity Apply = %v, %v", got, err)
	}
}

func TestFacilityMonotoneProperty(t *testing.T) {
	f := TypicalDatacenter()
	check := func(a, b float64) bool {
		pa := units.Watts(math.Abs(math.Mod(a, 1e6)))
		pb := pa + units.Watts(math.Abs(math.Mod(b, 1e5)))
		fa, err1 := f.Apply(pa)
		fb, err2 := f.Apply(pb)
		if err1 != nil || err2 != nil {
			return false
		}
		return fb >= fa && fa >= pa // facility power never below IT power
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFacilityApplyTrace(t *testing.T) {
	it := series.New(2)
	if err := it.Append(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := it.Append(10, 1000); err != nil {
		t.Fatal(err)
	}
	f := FacilitySpec{COP: 4, UPSEff: 1, FixedWatts: 50}
	fac, err := f.ApplyTrace(it)
	if err != nil {
		t.Fatal(err)
	}
	e, err := fac.Energy()
	if err != nil {
		t.Fatal(err)
	}
	// (1000 + 250 + 50) W × 10 s.
	if math.Abs(float64(e)-13000) > 1e-9 {
		t.Errorf("facility energy = %v, want 13000", e)
	}
}

func TestPUE(t *testing.T) {
	f := TypicalDatacenter()
	// At 30 kW IT: 30/0.92 + 30/3 + 2 = 32.61 + 10 + 2 = 44.6 kW -> PUE 1.49.
	pue, err := f.PUE(30000)
	if err != nil {
		t.Fatal(err)
	}
	if pue < 1.4 || pue > 1.6 {
		t.Errorf("PUE = %v, want ~1.49", pue)
	}
	// Fixed overhead makes light loads look worse.
	light, _ := f.PUE(3000)
	if light <= pue {
		t.Errorf("PUE not load-dependent: %v at 3 kW vs %v at 30 kW", light, pue)
	}
	if _, err := f.PUE(0); err == nil {
		t.Error("zero IT load accepted")
	}
}

func TestCenterWideTGIPreservesRelativeOrdering(t *testing.T) {
	// Scaling both systems' power by the same facility model divides both
	// EEs by (almost) the same factor, so REE — and TGI — barely move when
	// the fixed term is small relative to load. This is why the paper can
	// propose facility extension without breaking comparability.
	f := FacilitySpec{COP: 3, UPSEff: 0.92} // no fixed term
	eeBefore := 100.0 / 2000
	p, err := f.Apply(2000)
	if err != nil {
		t.Fatal(err)
	}
	eeAfter := 100.0 / float64(p)
	ratio := eeBefore / eeAfter
	// Every system's EE scales by the same 1/0.92 + 1/3 factor.
	want := 1/0.92 + 1.0/3
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("EE scale factor = %v, want %v", ratio, want)
	}
}
