package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
)

// Observation pairs a node utilisation with a measured node wall power, the
// raw material for fitting a linear power model to a real machine. On
// physical systems these observations come from microbenchmarks that pin
// one component at a time; here they come from the simulated meter, which
// closes the loop between the model and the calibration path.
type Observation struct {
	Util  cluster.Util
	Watts float64
}

// LinearCoefficients are the fitted parameters of
//
//	P(u) = Base + CPU·u_cpu + Mem·u_mem + Disk·u_disk + Net·u_net.
type LinearCoefficients struct {
	Base, CPU, Mem, Disk, Net float64
}

// Predict evaluates the fitted model at u.
func (c LinearCoefficients) Predict(u cluster.Util) float64 {
	u = u.Clamp()
	return c.Base + c.CPU*u.CPU + c.Mem*u.Mem + c.Disk*u.Disk + c.Net*u.Net
}

// Fit solves the least-squares problem for the linear node power model. It
// needs at least five observations spanning the utilisation space; an error
// is returned when the normal equations are singular (e.g. all observations
// share the same utilisation).
func Fit(obs []Observation) (LinearCoefficients, error) {
	const k = 5
	if len(obs) < k {
		return LinearCoefficients{}, fmt.Errorf("power: need at least %d observations, have %d", k, len(obs))
	}
	// Normal equations AᵀA x = Aᵀb with rows [1, cpu, mem, disk, net].
	var ata [k][k]float64
	var atb [k]float64
	for _, o := range obs {
		u := o.Util.Clamp()
		row := [k]float64{1, u.CPU, u.Mem, u.Disk, u.Net}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				ata[i][j] += row[i] * row[j]
			}
			atb[i] += row[i] * o.Watts
		}
	}
	x, err := solve5(ata, atb)
	if err != nil {
		return LinearCoefficients{}, err
	}
	return LinearCoefficients{Base: x[0], CPU: x[1], Mem: x[2], Disk: x[3], Net: x[4]}, nil
}

// solve5 is Gaussian elimination with partial pivoting for the fixed-size
// system the fit produces.
func solve5(a [5][5]float64, b [5]float64) ([5]float64, error) {
	const n = 5
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [5]float64{}, errors.New("power: singular calibration system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [5]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// RMSE returns the root-mean-square error of the fitted model over obs.
func (c LinearCoefficients) RMSE(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var s float64
	for _, o := range obs {
		d := c.Predict(o.Util) - o.Watts
		s += d * d
	}
	return math.Sqrt(s / float64(len(obs)))
}

// CalibrationSweep generates the standard set of single-component
// utilisation points used to collect calibration observations: idle, then
// each component alone at 25/50/75/100%, then two mixed points.
func CalibrationSweep() []cluster.Util {
	var out []cluster.Util
	out = append(out, cluster.Util{})
	levels := []float64{0.25, 0.5, 0.75, 1}
	for _, l := range levels {
		out = append(out,
			cluster.Util{CPU: l},
			cluster.Util{Mem: l},
			cluster.Util{Disk: l},
			cluster.Util{Net: l},
		)
	}
	out = append(out,
		cluster.Util{CPU: 0.8, Mem: 0.6, Disk: 0.2, Net: 0.3},
		cluster.Util{CPU: 0.4, Mem: 0.9, Disk: 0.7, Net: 0.1},
	)
	return out
}

// CalibrateModel runs the calibration sweep against a model and fits linear
// coefficients to the resulting node wall power, returning the fit and its
// RMSE. With the PSU curve enabled the node power is mildly nonlinear in
// utilisation, so a nonzero RMSE is expected; the fit is still what an
// operator would derive from wall readings of a real machine.
func CalibrateModel(m *Model) (LinearCoefficients, float64, error) {
	var obs []Observation
	for _, u := range CalibrationSweep() {
		obs = append(obs, Observation{Util: u, Watts: m.NodeWall(u)})
	}
	c, err := Fit(obs)
	if err != nil {
		return LinearCoefficients{}, 0, err
	}
	return c, c.RMSE(obs), nil
}
