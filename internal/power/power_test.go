package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/units"
)

func newFireModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(cluster.Fire())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelRejectsBadSpec(t *testing.T) {
	if _, err := NewModel(nil); err == nil {
		t.Error("nil spec accepted")
	}
	bad := cluster.Fire()
	bad.Nodes = -1
	if _, err := NewModel(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestNodePowerMonotone(t *testing.T) {
	m := newFireModel(t)
	idle := m.NodeDC(cluster.Util{})
	full := m.NodeDC(cluster.Util{CPU: 1, Mem: 1, Disk: 1, Net: 1})
	if idle <= 0 {
		t.Errorf("idle DC = %v", idle)
	}
	if full <= idle {
		t.Errorf("full DC %v not above idle %v", full, idle)
	}
	// Each component alone raises power above idle.
	for _, u := range []cluster.Util{{CPU: 1}, {Mem: 1}, {Disk: 1}, {Net: 1}} {
		if p := m.NodeDC(u); p <= idle {
			t.Errorf("util %+v power %v not above idle %v", u, p, idle)
		}
	}
}

func TestNodePowerMonotoneProperty(t *testing.T) {
	m := newFireModel(t)
	f := func(a, b, c, d, e, f2, g, h float64) bool {
		u1 := cluster.Util{CPU: frac(a), Mem: frac(b), Disk: frac(c), Net: frac(d)}
		u2 := cluster.Util{
			CPU:  math.Min(1, u1.CPU+frac(e)),
			Mem:  math.Min(1, u1.Mem+frac(f2)),
			Disk: math.Min(1, u1.Disk+frac(g)),
			Net:  math.Min(1, u1.Net+frac(h)),
		}
		return m.NodeDC(u2) >= m.NodeDC(u1)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(math.Mod(v, 1))
}

func TestWallAboveDC(t *testing.T) {
	m := newFireModel(t)
	for _, u := range CalibrationSweep() {
		dc := m.NodeDC(u)
		wall := m.NodeWall(u)
		if wall < dc {
			t.Errorf("wall %v below DC %v at %+v", wall, dc, u)
		}
	}
	m.DisablePSU = true
	u := cluster.Util{CPU: 0.5}
	if m.NodeWall(u) != m.NodeDC(u) {
		t.Error("DisablePSU did not bypass the PSU curve")
	}
}

func TestClusterPowerIncludesIdleNodesAndFabric(t *testing.T) {
	m := newFireModel(t)
	spec := m.Spec
	idleAll := float64(m.IdlePower())
	wantIdle := 8*m.NodeWall(cluster.Util{}) + spec.Interconnect.SwitchWatts + spec.Storage.Watts
	if math.Abs(idleAll-wantIdle) > 1e-9 {
		t.Errorf("idle cluster = %v, want %v", idleAll, wantIdle)
	}
	// Loading one node leaves the other seven at idle draw.
	one := m.ClusterPower([]cluster.Util{{CPU: 1}})
	wantOne := wantIdle - m.NodeWall(cluster.Util{}) + m.NodeWall(cluster.Util{CPU: 1})
	if math.Abs(float64(one)-wantOne) > 1e-9 {
		t.Errorf("one-node load = %v, want %v", one, wantOne)
	}
	if peak := m.PeakPower(); float64(peak) <= idleAll {
		t.Errorf("peak %v not above idle %v", peak, idleAll)
	}
}

func TestClusterPowerPlausibleRange(t *testing.T) {
	m := newFireModel(t)
	idle := float64(m.IdlePower())
	peak := float64(m.PeakPower())
	// An 8-node dual-socket cluster: idle ~1.5-2.5 kW, peak ~3-4.5 kW.
	if idle < 1200 || idle > 2600 {
		t.Errorf("Fire idle power %v W outside plausible range", idle)
	}
	if peak < 2800 || peak > 4800 {
		t.Errorf("Fire peak power %v W outside plausible range", peak)
	}
}

func TestCPUExponent(t *testing.T) {
	m := newFireModel(t)
	lin := m.NodeDC(cluster.Util{CPU: 0.5})
	m.CPUExponent = 2
	quad := m.NodeDC(cluster.Util{CPU: 0.5})
	if quad >= lin {
		t.Errorf("quadratic exponent at half load (%v) should be below linear (%v)", quad, lin)
	}
	// At the endpoints the exponent must not matter.
	m.CPUExponent = 1
	p0, p1 := m.NodeDC(cluster.Util{}), m.NodeDC(cluster.Util{CPU: 1})
	m.CPUExponent = 3
	if m.NodeDC(cluster.Util{}) != p0 || m.NodeDC(cluster.Util{CPU: 1}) != p1 {
		t.Error("exponent changed endpoint power")
	}
	m.CPUExponent = 1.5
	mid := m.NodeDC(cluster.Util{CPU: 0.5})
	if mid >= lin || mid <= quad {
		t.Errorf("exponent 1.5 power %v not between linear %v and quadratic %v", mid, lin, quad)
	}
}

func TestProfileTraceExactEnergy(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(10, 8, cluster.Util{CPU: 1}),
		cluster.UniformPhase(20, 8, cluster.Util{}),
	}}
	tr, err := m.ProfileTrace(lp)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tr.Energy()
	if err != nil {
		t.Fatal(err)
	}
	pFull := float64(m.ClusterPower(lp.Phases[0].NodeUtil))
	pIdle := float64(m.IdlePower())
	want := pFull*10 + pIdle*20
	if math.Abs(float64(e)-want) > 1e-6 {
		t.Errorf("profile energy = %v, want %v", e, want)
	}
}

func TestMeterConfigValidation(t *testing.T) {
	if _, err := NewMeter(MeterConfig{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewMeter(MeterConfig{Interval: 1, QuantumWatts: -1}); err == nil {
		t.Error("negative quantum accepted")
	}
	if _, err := NewMeter(MeterConfig{Interval: 1, DropRate: 1}); err == nil {
		t.Error("drop rate 1 accepted")
	}
	if _, err := NewMeter(WattsUpPRO(1)); err != nil {
		t.Errorf("WattsUpPRO config rejected: %v", err)
	}
}

func TestMeterEnergyCloseToExact(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(60, 8, cluster.Util{CPU: 0.9, Mem: 0.4}),
		cluster.UniformPhase(60, 4, cluster.Util{CPU: 0.2}),
	}}
	exact, err := m.ProfileTrace(lp)
	if err != nil {
		t.Fatal(err)
	}
	eExact, _ := exact.Energy()
	mt, err := NewMeter(WattsUpPRO(42))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := mt.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	eMeter, err := sampled.Energy()
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(eMeter-eExact)) / float64(eExact)
	if rel > 0.01 {
		t.Errorf("meter energy off by %.2f%%", rel*100)
	}
	// The meter covers the full window.
	start, end, _ := sampled.Span()
	if start != 0 || end != 120 {
		t.Errorf("meter span [%v, %v], want [0, 120]", start, end)
	}
}

func TestMeterDeterministic(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(30, 8, cluster.Util{CPU: 0.7}),
	}}
	mt1, _ := NewMeter(WattsUpPRO(7))
	mt2, _ := NewMeter(WattsUpPRO(7))
	a, err := mt1.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mt2.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
}

func TestMeterQuantisation(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(10, 8, cluster.Util{CPU: 0.5}),
	}}
	mt, _ := NewMeter(MeterConfig{Interval: 1, QuantumWatts: 0.1})
	tr, err := mt.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples() {
		v := float64(s.Power) * 10
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Fatalf("sample %v not quantised to 0.1 W", s.Power)
		}
	}
}

func TestMeterDropoutKeepsBoundaries(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(100, 8, cluster.Util{CPU: 0.5}),
	}}
	mt, _ := NewMeter(MeterConfig{Interval: 1, DropRate: 0.3, Seed: 3})
	tr, err := mt.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() >= 101 {
		t.Errorf("no samples dropped: %d", tr.Len())
	}
	if tr.Len() < 40 {
		t.Errorf("too many samples dropped: %d", tr.Len())
	}
	start, end, _ := tr.Span()
	if start != 0 || end != 100 {
		t.Errorf("span [%v, %v] lost boundaries", start, end)
	}
	// Energy is still within a few percent despite dropout.
	exact, _ := m.ProfileTrace(lp)
	eExact, _ := exact.Energy()
	eDrop, _ := tr.Energy()
	if rel := math.Abs(float64(eDrop-eExact)) / float64(eExact); rel > 0.02 {
		t.Errorf("dropout energy error %.2f%%", rel*100)
	}
}

func TestMeterGlitchConfig(t *testing.T) {
	if _, err := NewMeter(MeterConfig{Interval: 1, GlitchRate: 1}); err == nil {
		t.Error("glitch rate 1 accepted")
	}
	if _, err := NewMeter(MeterConfig{Interval: 1, GlitchRate: 0.1, GlitchWatts: -5}); err == nil {
		t.Error("negative glitch magnitude accepted")
	}
}

func TestMeterGlitchesPerturbSamples(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(200, 8, cluster.Util{CPU: 0.5}),
	}}
	clean := WattsUpPRO(11)
	glitchy := clean
	glitchy.GlitchRate = 0.05
	glitchy.GlitchWatts = 60
	mtClean, _ := NewMeter(clean)
	mtGlitchy, _ := NewMeter(glitchy)
	a, err := mtClean.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mtGlitchy.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("glitches changed sample count: %d vs %d", a.Len(), b.Len())
	}
	// With a 60 W spike stddev at 5% rate, some samples must differ from
	// the clean trace by far more than the 0.5 W gauge noise ever could.
	big := 0
	for i := 0; i < a.Len(); i++ {
		if math.Abs(float64(a.At(i).Power-b.At(i).Power)) > 10 {
			big++
		}
	}
	if big == 0 {
		t.Error("no glitched samples observed at 5% rate over 200 samples")
	}
	if big > a.Len()/2 {
		t.Errorf("%d of %d samples glitched at 5%% rate", big, a.Len())
	}
	// Determinism: the same glitchy config reproduces the same trace.
	mtAgain, _ := NewMeter(glitchy)
	c, err := mtAgain.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if b.At(i) != c.At(i) {
			t.Fatalf("glitchy meter not deterministic at sample %d", i)
		}
	}
}

func TestFitRecoversLinearModel(t *testing.T) {
	truth := LinearCoefficients{Base: 150, CPU: 160, Mem: 20, Disk: 6, Net: 5}
	var obs []Observation
	for _, u := range CalibrationSweep() {
		obs = append(obs, Observation{Util: u, Watts: truth.Predict(u)})
	}
	got, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, g, w float64) {
		if math.Abs(g-w) > 1e-6 {
			t.Errorf("%s = %v, want %v", name, g, w)
		}
	}
	check("base", got.Base, truth.Base)
	check("cpu", got.CPU, truth.CPU)
	check("mem", got.Mem, truth.Mem)
	check("disk", got.Disk, truth.Disk)
	check("net", got.Net, truth.Net)
	if rmse := got.RMSE(obs); rmse > 1e-6 {
		t.Errorf("rmse = %v on exact data", rmse)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	// Degenerate: every observation identical.
	same := make([]Observation, 10)
	for i := range same {
		same[i] = Observation{Util: cluster.Util{CPU: 0.5}, Watts: 100}
	}
	if _, err := Fit(same); err == nil {
		t.Error("singular system accepted")
	}
}

func TestCalibrateModelRoundTrip(t *testing.T) {
	m := newFireModel(t)
	m.DisablePSU = true // the DC model is exactly linear, so the fit is exact
	c, rmse, err := CalibrateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-6 {
		t.Errorf("rmse on linear model = %v", rmse)
	}
	wantIdle := m.NodeDC(cluster.Util{})
	if math.Abs(c.Base-wantIdle) > 1e-6 {
		t.Errorf("fitted base %v, want %v", c.Base, wantIdle)
	}
	// With the PSU curve the model is nonlinear; fit degrades but stays
	// within a few watts RMS.
	m.DisablePSU = false
	_, rmsePSU, err := CalibrateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if rmsePSU <= rmse {
		t.Error("PSU nonlinearity did not increase RMSE")
	}
	if rmsePSU > 10 {
		t.Errorf("PSU fit RMSE %v W implausibly large", rmsePSU)
	}
}

func TestEnergyOfMeasuredWindowMatchesMeanPower(t *testing.T) {
	m := newFireModel(t)
	lp := &cluster.LoadProfile{Phases: []cluster.Phase{
		cluster.UniformPhase(300, 8, cluster.Util{CPU: 1, Mem: 0.3, Net: 0.2}),
	}}
	mt, _ := NewMeter(WattsUpPRO(11))
	tr, err := mt.Measure(m, lp)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := tr.Energy()
	mean, _ := tr.MeanPower()
	if math.Abs(float64(e)-float64(mean)*300) > 1 {
		t.Errorf("energy %v inconsistent with mean power %v over 300 s", e, mean)
	}
	_ = units.Watts(0)
}
