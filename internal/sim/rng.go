package sim

import "math"

// RNG is a small, fast, deterministic random-number generator (splitmix64).
// The simulator cannot use math/rand's global source because experiment
// reproducibility requires every run to be a pure function of its seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	// Guard u1 away from zero so Log is finite.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormAt returns a normal variate with the given mean and standard deviation.
func (r *RNG) NormAt(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential variate with the given rate (λ).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Fork derives an independent child generator. Distinct labels give distinct
// streams; the parent's stream is unaffected. The child is returned by
// value (a single uint64 of state), so the per-attempt fork chain of a
// fault draw — Fork(bench).Fork(procs).Fork(attempt) — stays entirely on
// the stack and never allocates.
func (r RNG) Fork(label uint64) RNG {
	// Mix the label through the state without consuming parent entropy.
	z := r.state ^ (label * 0xd6e8feb86659fd93)
	z = (z ^ (z >> 32)) * 0xd6e8feb86659fd93
	return RNG{state: z ^ (z >> 32) ^ 0xabcdef0123456789}
}
