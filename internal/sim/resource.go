package sim

import (
	"errors"
	"math"
	"sort"

	"repro/internal/units"
)

// SharedResource models a capacity-limited device (a disk backend, a network
// link, a memory controller) under processor-sharing: the aggregate capacity
// is divided equally among active jobs, optionally capped per job (a single
// client cannot exceed its own link speed even when the backend is idle).
//
// Work is measured in abstract units (bytes, flops); capacity in units per
// second of virtual time. Completion callbacks fire inside the engine.
type SharedResource struct {
	eng       *Engine
	capacity  float64 // aggregate units/second
	perJobCap float64 // per-job ceiling; 0 means no ceiling
	jobs      map[*srJob]struct{}
	nextSeq   uint64
	last      units.Seconds
	pending   Handle
	doneWork  float64 // total units completed
	busyTime  float64 // ∫ utilization dt
}

type srJob struct {
	seq       uint64 // submission order; fixes completion-callback order
	remaining float64
	done      func()
}

// NewSharedResource creates a resource attached to an engine.
func NewSharedResource(eng *Engine, capacity, perJobCap float64) (*SharedResource, error) {
	if capacity <= 0 {
		return nil, errors.New("sim: resource capacity must be positive")
	}
	if perJobCap < 0 {
		return nil, errors.New("sim: negative per-job cap")
	}
	return &SharedResource{
		eng:       eng,
		capacity:  capacity,
		perJobCap: perJobCap,
		jobs:      make(map[*srJob]struct{}),
		last:      eng.Now(),
	}, nil
}

// rate returns the current per-job service rate.
func (r *SharedResource) rate() float64 {
	n := len(r.jobs)
	if n == 0 {
		return 0
	}
	share := r.capacity / float64(n)
	if r.perJobCap > 0 && share > r.perJobCap {
		share = r.perJobCap
	}
	return share
}

// Utilization returns the instantaneous fraction of capacity in use, in [0, 1].
func (r *SharedResource) Utilization() float64 {
	total := r.rate() * float64(len(r.jobs))
	return total / r.capacity
}

// TotalWorkDone returns the units of work completed so far (including partial
// progress of in-flight jobs up to the current virtual time).
func (r *SharedResource) TotalWorkDone() float64 {
	r.advance()
	return r.doneWork
}

// BusySeconds returns ∫ utilization dt, the device-busy time used by energy
// accounting.
func (r *SharedResource) BusySeconds() float64 {
	r.advance()
	return r.busyTime
}

// advance applies progress between the last bookkeeping point and now.
func (r *SharedResource) advance() {
	now := r.eng.Now()
	dt := float64(now - r.last)
	if dt <= 0 {
		r.last = now
		return
	}
	rate := r.rate()
	if rate > 0 {
		for j := range r.jobs {
			j.remaining -= rate * dt
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		r.doneWork += rate * dt * float64(len(r.jobs))
		r.busyTime += r.Utilization() * dt
	}
	r.last = now
}

// reschedule cancels any pending completion event and schedules the next one.
func (r *SharedResource) reschedule() {
	r.pending.Cancel()
	rate := r.rate()
	if rate <= 0 || len(r.jobs) == 0 {
		return
	}
	min := math.Inf(1)
	for j := range r.jobs {
		if j.remaining < min {
			min = j.remaining
		}
	}
	delay := units.Seconds(min / rate)
	h, err := r.eng.After(delay, r.complete)
	if err != nil {
		panic("sim: reschedule failed: " + err.Error())
	}
	r.pending = h
}

// complete fires when at least one job has drained. When several jobs
// drain at the same instant their done callbacks must fire in
// submission order: callback order decides the order resumed processes
// re-enter the event queue, so leaving it to map iteration would leak
// schedule nondeterminism into every downstream artifact.
func (r *SharedResource) complete() {
	r.advance()
	var finished []*srJob
	for j := range r.jobs {
		if j.remaining <= 1e-9 {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].seq < finished[k].seq })
	for _, j := range finished {
		delete(r.jobs, j)
	}
	r.reschedule()
	for _, j := range finished {
		if h := r.eng.hooks; h != nil && h.ProcessResumed != nil {
			h.ProcessResumed(r.eng.Now(), len(r.jobs))
		}
		if j.done != nil {
			j.done()
		}
	}
}

// Submit enqueues amount units of work; done (may be nil) fires at completion.
func (r *SharedResource) Submit(amount float64, done func()) error {
	if amount <= 0 {
		return errors.New("sim: non-positive work amount")
	}
	r.advance()
	j := &srJob{seq: r.nextSeq, remaining: amount, done: done}
	r.nextSeq++
	r.jobs[j] = struct{}{}
	if h := r.eng.hooks; h != nil {
		if h.ProcessBlocked != nil {
			h.ProcessBlocked(r.eng.Now(), len(r.jobs))
		}
		if h.ResourceContended != nil && len(r.jobs) > 1 {
			h.ResourceContended(r.eng.Now(), len(r.jobs))
		}
	}
	r.reschedule()
	return nil
}

// Active returns the number of in-flight jobs.
func (r *SharedResource) Active() int { return len(r.jobs) }

// Capacity returns the aggregate capacity in units per second.
func (r *SharedResource) Capacity() float64 { return r.capacity }
