package sim

import (
	"errors"

	"repro/internal/units"
)

// SharedResource models a capacity-limited device (a disk backend, a network
// link, a memory controller) under processor-sharing: the aggregate capacity
// is divided equally among active jobs, optionally capped per job (a single
// client cannot exceed its own link speed even when the backend is idle).
//
// Work is measured in abstract units (bytes, flops); capacity in units per
// second of virtual time. Completion callbacks fire inside the engine.
//
// Jobs live in a slice ordered by submission, so completion callbacks
// fire in submission order by construction — the deterministic dispatch
// the event queue depends on — and the steady-state hot path (submit,
// advance, complete) allocates nothing: the job slice, the finished
// scratch and the engine callback are all reused.
type SharedResource struct {
	eng        *Engine
	capacity   float64 // aggregate units/second
	perJobCap  float64 // per-job ceiling; 0 means no ceiling
	jobs       []srJob // in submission order
	last       units.Seconds
	pending    Handle
	doneWork   float64  // total units completed
	busyTime   float64  // ∫ utilization dt
	completeFn func()   // prebuilt r.complete, so reschedule never allocates
	finished   []func() // scratch: done callbacks drained by complete
}

type srJob struct {
	remaining float64
	done      func()
}

// NewSharedResource creates a resource attached to an engine.
func NewSharedResource(eng *Engine, capacity, perJobCap float64) (*SharedResource, error) {
	if capacity <= 0 {
		return nil, errors.New("sim: resource capacity must be positive")
	}
	if perJobCap < 0 {
		return nil, errors.New("sim: negative per-job cap")
	}
	r := &SharedResource{
		eng:       eng,
		capacity:  capacity,
		perJobCap: perJobCap,
		last:      eng.Now(),
	}
	r.completeFn = r.complete
	return r, nil
}

// Reconfigure returns the resource to the state NewSharedResource would
// construct — no jobs, counters zeroed, bookkeeping anchored at the
// engine's current time — while keeping the job and scratch storage.
// Call it after resetting the engine the resource is bound to; recycling
// a (engine, resource) pair across independent simulations behaves
// bit-identically to building fresh ones.
func (r *SharedResource) Reconfigure(capacity, perJobCap float64) error {
	if capacity <= 0 {
		return errors.New("sim: resource capacity must be positive")
	}
	if perJobCap < 0 {
		return errors.New("sim: negative per-job cap")
	}
	for i := range r.jobs {
		r.jobs[i] = srJob{}
	}
	for i := range r.finished {
		r.finished[i] = nil
	}
	r.capacity, r.perJobCap = capacity, perJobCap
	r.jobs = r.jobs[:0]
	r.finished = r.finished[:0]
	r.last = r.eng.Now()
	r.pending = Handle{}
	r.doneWork, r.busyTime = 0, 0
	return nil
}

// rate returns the current per-job service rate.
func (r *SharedResource) rate() float64 {
	n := len(r.jobs)
	if n == 0 {
		return 0
	}
	share := r.capacity / float64(n)
	if r.perJobCap > 0 && share > r.perJobCap {
		share = r.perJobCap
	}
	return share
}

// Utilization returns the instantaneous fraction of capacity in use, in [0, 1].
func (r *SharedResource) Utilization() float64 {
	total := r.rate() * float64(len(r.jobs))
	return total / r.capacity
}

// TotalWorkDone returns the units of work completed so far (including partial
// progress of in-flight jobs up to the current virtual time).
func (r *SharedResource) TotalWorkDone() float64 {
	r.advance()
	return r.doneWork
}

// BusySeconds returns ∫ utilization dt, the device-busy time used by energy
// accounting.
func (r *SharedResource) BusySeconds() float64 {
	r.advance()
	return r.busyTime
}

// advance applies progress between the last bookkeeping point and now.
func (r *SharedResource) advance() {
	now := r.eng.Now()
	dt := float64(now - r.last)
	if dt <= 0 {
		r.last = now
		return
	}
	rate := r.rate()
	if rate > 0 {
		for i := range r.jobs {
			j := &r.jobs[i]
			j.remaining -= rate * dt
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		r.doneWork += rate * dt * float64(len(r.jobs))
		r.busyTime += r.Utilization() * dt
	}
	r.last = now
}

// reschedule cancels any pending completion event and schedules the next one.
func (r *SharedResource) reschedule() {
	r.pending.Cancel()
	rate := r.rate()
	if rate <= 0 || len(r.jobs) == 0 {
		return
	}
	min := r.jobs[0].remaining
	for i := 1; i < len(r.jobs); i++ {
		if r.jobs[i].remaining < min {
			min = r.jobs[i].remaining
		}
	}
	delay := units.Seconds(min / rate)
	h, err := r.eng.After(delay, r.completeFn)
	if err != nil {
		panic("sim: reschedule failed: " + err.Error())
	}
	r.pending = h
}

// complete fires when at least one job has drained. The job slice is in
// submission order, so compacting it in place and draining the finished
// jobs' callbacks front to back fires them in submission order — the
// order resumed processes re-enter the event queue, which must not
// depend on scheduling accidents.
func (r *SharedResource) complete() {
	r.advance()
	r.finished = r.finished[:0]
	keep := r.jobs[:0]
	for _, j := range r.jobs {
		if j.remaining <= 1e-9 {
			r.finished = append(r.finished, j.done)
		} else {
			keep = append(keep, j)
		}
	}
	// Clear the vacated tail so finished jobs' callbacks are not retained.
	for i := len(keep); i < len(r.jobs); i++ {
		r.jobs[i] = srJob{}
	}
	r.jobs = keep
	r.reschedule()
	for _, done := range r.finished {
		if h := r.eng.hooks; h != nil && h.ProcessResumed != nil {
			h.ProcessResumed(r.eng.Now(), len(r.jobs))
		}
		if done != nil {
			done()
		}
	}
}

// Submit enqueues amount units of work; done (may be nil) fires at completion.
func (r *SharedResource) Submit(amount float64, done func()) error {
	if amount <= 0 {
		return errors.New("sim: non-positive work amount")
	}
	r.advance()
	r.jobs = append(r.jobs, srJob{remaining: amount, done: done})
	if h := r.eng.hooks; h != nil {
		if h.ProcessBlocked != nil {
			h.ProcessBlocked(r.eng.Now(), len(r.jobs))
		}
		if h.ResourceContended != nil && len(r.jobs) > 1 {
			h.ResourceContended(r.eng.Now(), len(r.jobs))
		}
	}
	r.reschedule()
	return nil
}

// Active returns the number of in-flight jobs.
func (r *SharedResource) Active() int { return len(r.jobs) }

// Capacity returns the aggregate capacity in units per second.
func (r *SharedResource) Capacity() float64 { return r.capacity }
