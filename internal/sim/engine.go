// Package sim is a small discrete-event simulation kernel: a virtual clock,
// an event queue, and a handful of primitives (resources, processes) that the
// cluster model builds on.
//
// The engine is strictly deterministic: events scheduled for the same time
// fire in the order they were scheduled (FIFO tie-break via a monotone
// sequence number), and all randomness flows through seeded sim.RNG streams.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// event is one arena slot. Slots are recycled through a free list; gen
// distinguishes the current occupant from a stale Handle to a previous
// one, and pos tracks the slot's position in the heap so cancellation
// can remove it in O(log n) without boxing or lazy dead-marking.
type event struct {
	at  units.Seconds
	seq uint64
	fn  func()
	gen uint32
	pos int32 // index in Engine.heap; -1 when the slot is free
}

// Hooks receives engine lifecycle callbacks — the observability layer's
// attachment points. Every field is optional; a nil Hooks (the default)
// costs one pointer comparison per event. Hooks observe, they must not
// schedule: the engine's determinism contract is that identical inputs
// dispatch identical event sequences with or without hooks attached.
type Hooks struct {
	// EventDispatched fires before each event's callback runs, with the
	// event's virtual time and the live queue depth behind it.
	EventDispatched func(at units.Seconds, queueDepth int)
	// ProcessBlocked fires when a job starts waiting on a shared
	// resource; active is the job count now contending for it.
	ProcessBlocked func(at units.Seconds, active int)
	// ProcessResumed fires when a job's resource wait completes.
	ProcessResumed func(at units.Seconds, active int)
	// ResourceContended fires when a submission makes a shared resource
	// multi-tenant (two or more jobs splitting its capacity).
	ResourceContended func(at units.Seconds, active int)
}

// Engine drives the virtual clock. The event queue is an intrusive
// min-heap of indices into a pooled event arena: scheduling an event
// reuses a free arena slot instead of allocating, and heap operations
// move plain int32 indices — no per-event allocation, no interface
// boxing. Slots are generation-checked so a Handle kept past its
// event's dispatch cannot cancel the slot's next occupant.
type Engine struct {
	now       units.Seconds
	arena     []event
	heap      []int32 // arena indices ordered by (at, seq)
	free      []int32 // recycled arena slots
	seq       uint64
	events    uint64
	limit     uint64
	peakDepth int
	hooks     *Hooks
}

// NewEngine returns an engine with the clock at zero. The engine refuses to
// process more than limit events (0 means a default of 50 million), a
// backstop against accidental infinite event loops.
func NewEngine(limit uint64) *Engine {
	if limit == 0 {
		limit = 50_000_000
	}
	return &Engine{limit: limit}
}

// Reset returns the engine to its initial state — clock at zero, queue
// empty, counters cleared — while keeping the event arena and heap
// storage for reuse. A reset engine behaves exactly like a fresh
// NewEngine(limit); recycling one across independent simulations is how
// the sweep scheduler's per-worker scratch avoids re-growing the arena
// for every cell.
func (e *Engine) Reset(limit uint64) {
	if limit == 0 {
		limit = 50_000_000
	}
	for i := range e.arena {
		e.arena[i].fn = nil
		e.arena[i].pos = -1
		e.arena[i].gen++
	}
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.arena {
		e.free = append(e.free, int32(i))
	}
	e.now, e.seq, e.events, e.peakDepth = 0, 0, 0, 0
	e.limit = limit
	e.hooks = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// SetHooks attaches lifecycle callbacks (nil detaches them).
func (e *Engine) SetHooks(h *Hooks) { e.hooks = h }

// Hooks returns the attached lifecycle callbacks, if any. Resources
// built on the engine use this to share its attachment point.
func (e *Engine) Hooks() *Hooks { return e.hooks }

// Stats is a point-in-time summary of the engine's work, exposed so
// event-driven benchmark models can report how hard the kernel worked
// and how close a run came to the event-limit backstop.
type Stats struct {
	// Events is the number of events dispatched so far.
	Events uint64 `json:"events"`
	// PeakQueueDepth is the largest number of events ever queued at once.
	PeakQueueDepth int `json:"peak_queue_depth"`
	// Limit is the engine's event budget.
	Limit uint64 `json:"limit"`
	// Headroom is how many more events the budget allows.
	Headroom uint64 `json:"headroom"`
}

// Stats returns the engine's current work summary.
func (e *Engine) Stats() Stats {
	s := Stats{Events: e.events, PeakQueueDepth: e.peakDepth, Limit: e.limit}
	if e.limit > e.events {
		s.Headroom = e.limit - e.events
	}
	return s
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	eng *Engine
	idx int32
	gen uint32
}

// Cancel removes the event from the queue. Cancelling an event that has
// already fired, been cancelled, or belongs to a zero Handle is a no-op:
// the generation check recognises a recycled arena slot and leaves its
// new occupant alone.
func (h Handle) Cancel() {
	if h.eng == nil {
		return
	}
	ev := &h.eng.arena[h.idx]
	if ev.gen != h.gen || ev.pos < 0 {
		return
	}
	h.eng.removeAt(int(ev.pos))
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrEventLimit is returned (wrapped) when the engine exhausts its event
// budget. Callers that impose a deliberate budget — the suite runner's
// per-benchmark timeout — detect it with errors.Is and treat the run as
// timed out rather than broken.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// less orders heap entries by (time, sequence): the engine's FIFO
// tie-break for simultaneous events.
func (e *Engine) less(i, j int32) bool {
	a, b := &e.arena[i], &e.arena[j]
	if a.at != b.at { //greenvet:allow floateq -- event-queue comparator: exact virtual-time tie broken by sequence number
		return a.at < b.at
	}
	return a.seq < b.seq
}

// place writes heap slot pos and keeps the arena's back-pointer in sync.
func (e *Engine) place(pos int, idx int32) {
	e.heap[pos] = idx
	e.arena[idx].pos = int32(pos)
}

// siftUp restores the heap property upward from pos.
func (e *Engine) siftUp(pos int) {
	idx := e.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if !e.less(idx, e.heap[parent]) {
			break
		}
		e.place(pos, e.heap[parent])
		pos = parent
	}
	e.place(pos, idx)
}

// siftDown restores the heap property downward from pos.
func (e *Engine) siftDown(pos int) {
	idx := e.heap[pos]
	n := len(e.heap)
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && e.less(e.heap[r], e.heap[child]) {
			child = r
		}
		if !e.less(e.heap[child], idx) {
			break
		}
		e.place(pos, e.heap[child])
		pos = child
	}
	e.place(pos, idx)
}

// removeAt deletes the heap entry at pos and recycles its arena slot.
func (e *Engine) removeAt(pos int) {
	idx := e.heap[pos]
	last := len(e.heap) - 1
	moved := e.heap[last]
	e.heap = e.heap[:last]
	if pos < last {
		e.place(pos, moved)
		e.siftDown(pos)
		e.siftUp(pos)
	}
	ev := &e.arena[idx]
	ev.fn = nil
	ev.pos = -1
	ev.gen++
	e.free = append(e.free, idx)
}

// At schedules fn to run at absolute virtual time at.
func (e *Engine) At(at units.Seconds, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: %v < now %v", ErrPast, at, e.now)
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{pos: -1})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.seq++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	if d := len(e.heap); d > e.peakDepth {
		e.peakDepth = d
	}
	return Handle{eng: e, idx: idx, gen: ev.gen}, nil
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay units.Seconds, fn func()) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("%w: negative delay %v", ErrPast, delay)
	}
	return e.At(e.now+delay, fn)
}

// Step processes the next event. It returns false when the queue is empty.
func (e *Engine) Step() (bool, error) {
	if len(e.heap) == 0 {
		return false, nil
	}
	if e.events >= e.limit {
		// Name the virtual time and queue state so a tripped backstop
		// is diagnosable: a runaway loop shows a frozen clock, a
		// genuinely huge workload a steadily advancing one.
		return false, fmt.Errorf(
			"%w: %d events dispatched (limit %d) at virtual time t=%v with %d still pending",
			ErrEventLimit, e.events, e.limit, e.now, len(e.heap))
	}
	root := &e.arena[e.heap[0]]
	at, fn := root.at, root.fn
	e.events++
	e.now = at
	e.removeAt(0)
	if h := e.hooks; h != nil && h.EventDispatched != nil {
		h.EventDispatched(at, len(e.heap))
	}
	fn()
	return true, nil
}

// Run processes events until the queue is empty or until the virtual clock
// would pass until (use a negative value for "no limit"). It returns the
// number of events processed.
func (e *Engine) Run(until units.Seconds) (uint64, error) {
	var n uint64
	for len(e.heap) > 0 {
		if until >= 0 && e.arena[e.heap[0]].at > until {
			e.now = until
			return n, nil
		}
		ok, err := e.Step()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
	return n, nil
}

// RunAll processes every remaining event.
func (e *Engine) RunAll() (uint64, error) { return e.Run(-1) }

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int { return len(e.heap) }
