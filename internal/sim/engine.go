// Package sim is a small discrete-event simulation kernel: a virtual clock,
// an event queue, and a handful of primitives (resources, processes) that the
// cluster model builds on.
//
// The engine is strictly deterministic: events scheduled for the same time
// fire in the order they were scheduled (FIFO tie-break via a monotone
// sequence number), and all randomness flows through seeded sim.RNG streams.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback.
type event struct {
	at   units.Seconds
	seq  uint64
	fn   func()
	dead bool
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine drives the virtual clock.
type Engine struct {
	now    units.Seconds
	queue  eventQueue
	seq    uint64
	events uint64
	limit  uint64
}

// NewEngine returns an engine with the clock at zero. The engine refuses to
// process more than limit events (0 means a default of 50 million), a
// backstop against accidental infinite event loops.
func NewEngine(limit uint64) *Engine {
	if limit == 0 {
		limit = 50_000_000
	}
	return &Engine{limit: limit}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel marks the event dead; it will be skipped when popped.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrEventLimit is returned (wrapped) when the engine exhausts its event
// budget. Callers that impose a deliberate budget — the suite runner's
// per-benchmark timeout — detect it with errors.Is and treat the run as
// timed out rather than broken.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// At schedules fn to run at absolute virtual time at.
func (e *Engine) At(at units.Seconds, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: %v < now %v", ErrPast, at, e.now)
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}, nil
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay units.Seconds, fn func()) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("%w: negative delay %v", ErrPast, delay)
	}
	return e.At(e.now+delay, fn)
}

// Step processes the next event. It returns false when the queue is empty.
func (e *Engine) Step() (bool, error) {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if e.events >= e.limit {
			return false, fmt.Errorf("%w: limit %d at t=%v", ErrEventLimit, e.limit, e.now)
		}
		e.events++
		e.now = ev.at
		ev.fn()
		return true, nil
	}
	return false, nil
}

// Run processes events until the queue is empty or until the virtual clock
// would pass until (use a negative value for "no limit"). It returns the
// number of events processed.
func (e *Engine) Run(until units.Seconds) (uint64, error) {
	var n uint64
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if until >= 0 && next.at > until {
			e.now = until
			return n, nil
		}
		ok, err := e.Step()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
	return n, nil
}

// RunAll processes every remaining event.
func (e *Engine) RunAll() (uint64, error) { return e.Run(-1) }

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
