// Package sim is a small discrete-event simulation kernel: a virtual clock,
// an event queue, and a handful of primitives (resources, processes) that the
// cluster model builds on.
//
// The engine is strictly deterministic: events scheduled for the same time
// fire in the order they were scheduled (FIFO tie-break via a monotone
// sequence number), and all randomness flows through seeded sim.RNG streams.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback.
type event struct {
	at   units.Seconds
	seq  uint64
	fn   func()
	dead bool
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at { //greenvet:allow floateq -- event-queue comparator: exact virtual-time tie broken by sequence number
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Hooks receives engine lifecycle callbacks — the observability layer's
// attachment points. Every field is optional; a nil Hooks (the default)
// costs one pointer comparison per event. Hooks observe, they must not
// schedule: the engine's determinism contract is that identical inputs
// dispatch identical event sequences with or without hooks attached.
type Hooks struct {
	// EventDispatched fires before each event's callback runs, with the
	// event's virtual time and the live queue depth behind it.
	EventDispatched func(at units.Seconds, queueDepth int)
	// ProcessBlocked fires when a job starts waiting on a shared
	// resource; active is the job count now contending for it.
	ProcessBlocked func(at units.Seconds, active int)
	// ProcessResumed fires when a job's resource wait completes.
	ProcessResumed func(at units.Seconds, active int)
	// ResourceContended fires when a submission makes a shared resource
	// multi-tenant (two or more jobs splitting its capacity).
	ResourceContended func(at units.Seconds, active int)
}

// Engine drives the virtual clock.
type Engine struct {
	now       units.Seconds
	queue     eventQueue
	seq       uint64
	events    uint64
	limit     uint64
	peakDepth int
	hooks     *Hooks
}

// NewEngine returns an engine with the clock at zero. The engine refuses to
// process more than limit events (0 means a default of 50 million), a
// backstop against accidental infinite event loops.
func NewEngine(limit uint64) *Engine {
	if limit == 0 {
		limit = 50_000_000
	}
	return &Engine{limit: limit}
}

// Now returns the current virtual time.
func (e *Engine) Now() units.Seconds { return e.now }

// SetHooks attaches lifecycle callbacks (nil detaches them).
func (e *Engine) SetHooks(h *Hooks) { e.hooks = h }

// Hooks returns the attached lifecycle callbacks, if any. Resources
// built on the engine use this to share its attachment point.
func (e *Engine) Hooks() *Hooks { return e.hooks }

// Stats is a point-in-time summary of the engine's work, exposed so
// event-driven benchmark models can report how hard the kernel worked
// and how close a run came to the event-limit backstop.
type Stats struct {
	// Events is the number of events dispatched so far.
	Events uint64 `json:"events"`
	// PeakQueueDepth is the largest number of events ever queued at once.
	PeakQueueDepth int `json:"peak_queue_depth"`
	// Limit is the engine's event budget.
	Limit uint64 `json:"limit"`
	// Headroom is how many more events the budget allows.
	Headroom uint64 `json:"headroom"`
}

// Stats returns the engine's current work summary.
func (e *Engine) Stats() Stats {
	s := Stats{Events: e.events, PeakQueueDepth: e.peakDepth, Limit: e.limit}
	if e.limit > e.events {
		s.Headroom = e.limit - e.events
	}
	return s
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel marks the event dead; it will be skipped when popped.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrEventLimit is returned (wrapped) when the engine exhausts its event
// budget. Callers that impose a deliberate budget — the suite runner's
// per-benchmark timeout — detect it with errors.Is and treat the run as
// timed out rather than broken.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// At schedules fn to run at absolute virtual time at.
func (e *Engine) At(at units.Seconds, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: %v < now %v", ErrPast, at, e.now)
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if d := len(e.queue); d > e.peakDepth {
		e.peakDepth = d
	}
	return Handle{ev: ev}, nil
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay units.Seconds, fn func()) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("%w: negative delay %v", ErrPast, delay)
	}
	return e.At(e.now+delay, fn)
}

// Step processes the next event. It returns false when the queue is empty.
func (e *Engine) Step() (bool, error) {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		if e.events >= e.limit {
			// Name the virtual time and queue state so a tripped backstop
			// is diagnosable: a runaway loop shows a frozen clock, a
			// genuinely huge workload a steadily advancing one.
			return false, fmt.Errorf(
				"%w: %d events dispatched (limit %d) at virtual time t=%v with %d still pending",
				ErrEventLimit, e.events, e.limit, e.now, e.queue.Len()+1)
		}
		e.events++
		e.now = ev.at
		if h := e.hooks; h != nil && h.EventDispatched != nil {
			h.EventDispatched(ev.at, e.queue.Len())
		}
		ev.fn()
		return true, nil
	}
	return false, nil
}

// Run processes events until the queue is empty or until the virtual clock
// would pass until (use a negative value for "no limit"). It returns the
// number of events processed.
func (e *Engine) Run(until units.Seconds) (uint64, error) {
	var n uint64
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if until >= 0 && next.at > until {
			e.now = until
			return n, nil
		}
		ok, err := e.Step()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		n++
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
	return n, nil
}

// RunAll processes every remaining event.
func (e *Engine) RunAll() (uint64, error) { return e.Run(-1) }

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
