package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestEngineStats(t *testing.T) {
	e := NewEngine(100)
	for i := 0; i < 5; i++ {
		if _, err := e.At(units.Seconds(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Events != 0 || s.PeakQueueDepth != 5 || s.Limit != 100 || s.Headroom != 100 {
		t.Errorf("pre-run stats = %+v", s)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.Events != 5 || s.PeakQueueDepth != 5 || s.Headroom != 95 {
		t.Errorf("post-run stats = %+v", s)
	}
}

func TestEngineStatsHeadroomAtLimit(t *testing.T) {
	e := NewEngine(2)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(0, reschedule)
	_, err := e.RunAll()
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v", err)
	}
	if s := e.Stats(); s.Headroom != 0 {
		t.Errorf("headroom at limit = %d", s.Headroom)
	}
}

func TestEngineLimitErrorNamesVirtualTime(t *testing.T) {
	e := NewEngine(3)
	var reschedule func()
	reschedule = func() { e.After(2, reschedule) }
	e.After(0, reschedule)
	_, err := e.RunAll()
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v", err)
	}
	msg := err.Error()
	// Three events dispatch at t=0, 2, 4; the fourth (t=6) trips the
	// backstop with the clock still at 4.
	for _, want := range []string{"t=4 s", "3 events dispatched", "limit 3", "pending"} {
		if !strings.Contains(msg, want) {
			t.Errorf("limit error %q missing %q", msg, want)
		}
	}
}

func TestEngineDispatchHook(t *testing.T) {
	e := NewEngine(0)
	var times []units.Seconds
	e.SetHooks(&Hooks{EventDispatched: func(at units.Seconds, depth int) {
		times = append(times, at)
		if depth < 0 {
			t.Errorf("negative queue depth %d", depth)
		}
	}})
	for _, at := range []units.Seconds{3, 1, 2} {
		if _, err := e.At(at, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 || times[0] != 1 || times[2] != 3 {
		t.Errorf("dispatch times = %v", times)
	}
}

func TestResourceHooks(t *testing.T) {
	e := NewEngine(0)
	var blocked, resumed, contended int
	e.SetHooks(&Hooks{
		ProcessBlocked:    func(units.Seconds, int) { blocked++ },
		ProcessResumed:    func(units.Seconds, int) { resumed++ },
		ResourceContended: func(at units.Seconds, active int) { contended++ },
	})
	r, err := NewSharedResource(e, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.Submit(10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if blocked != 3 || resumed != 3 {
		t.Errorf("blocked=%d resumed=%d, want 3/3", blocked, resumed)
	}
	// The second and third submissions make the resource multi-tenant.
	if contended != 2 {
		t.Errorf("contended = %d, want 2", contended)
	}
}

// TestHooksDoNotPerturbSchedule pins the determinism contract: the same
// workload dispatches identically with and without hooks attached.
func TestHooksDoNotPerturbSchedule(t *testing.T) {
	runIt := func(h *Hooks) []units.Seconds {
		e := NewEngine(0)
		e.SetHooks(h)
		r, err := NewSharedResource(e, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		var finish []units.Seconds
		for i := 0; i < 4; i++ {
			if err := r.Submit(float64(4+i), func() { finish = append(finish, e.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	bare := runIt(nil)
	hooked := runIt(&Hooks{
		EventDispatched:   func(units.Seconds, int) {},
		ProcessBlocked:    func(units.Seconds, int) {},
		ProcessResumed:    func(units.Seconds, int) {},
		ResourceContended: func(units.Seconds, int) {},
	})
	if len(bare) != len(hooked) {
		t.Fatalf("completion counts differ: %v vs %v", bare, hooked)
	}
	for i := range bare {
		if bare[i] != hooked[i] {
			t.Errorf("completion %d drifted: %v vs %v", i, bare[i], hooked[i])
		}
	}
}

// BenchmarkEngineDispatch measures the hot path: scheduling plus
// dispatching one event through the heap.
func BenchmarkEngineDispatch(b *testing.B) {
	e := NewEngine(uint64(b.N) + 1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	if _, err := e.After(0, tick); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
