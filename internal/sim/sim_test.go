package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(0)
	var order []int
	if _, err := e.At(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(3, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.At(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := NewEngine(0)
	if _, err := e.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(5, func() {}); err == nil {
		t.Error("past event accepted")
	}
	if _, err := e.After(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(0)
	fired := false
	h, err := e.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(0)
	var fired []units.Seconds
	for _, at := range []units.Seconds{1, 2, 3, 4, 5} {
		at := at
		if _, err := e.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(fired) != 3 {
		t.Errorf("n = %d, fired = %v", n, fired)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	// Remaining events still run afterwards.
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Errorf("total fired = %d", len(fired))
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine(10)
	var reschedule func()
	reschedule = func() {
		if _, err := e.After(1, reschedule); err != nil {
			t.Error(err)
		}
	}
	if _, err := e.After(1, reschedule); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err == nil {
		t.Error("infinite loop not caught by event limit")
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(0)
	if _, err := e.Run(42); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 42 {
		t.Errorf("idle clock = %v, want 42", e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformMean(t *testing.T) {
	r := NewRNG(42)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("exp mean = %v, want 0.5", mean)
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("forked streams with different labels coincide")
	}
	// Forking does not perturb the parent stream.
	ref := NewRNG(5)
	ref.Fork(1)
	ref.Fork(2)
	p2 := NewRNG(5)
	if parent.Uint64() != func() uint64 { p2.Fork(1); p2.Fork(2); return p2.Uint64() }() {
		t.Error("fork consumed parent entropy inconsistently")
	}
	_ = ref
}

func TestSharedResourceSingleJob(t *testing.T) {
	e := NewEngine(0)
	r, err := NewSharedResource(e, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt units.Seconds = -1
	if err := r.Submit(500, func() { doneAt = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(doneAt)-5) > 1e-9 {
		t.Errorf("single job done at %v, want 5", doneAt)
	}
}

func TestSharedResourceFairSharing(t *testing.T) {
	e := NewEngine(0)
	r, _ := NewSharedResource(e, 100, 0)
	var t1, t2 units.Seconds = -1, -1
	// Two equal jobs share capacity: each runs at 50 u/s, both finish at t=10.
	if err := r.Submit(500, func() { t1 = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(500, func() { t2 = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(t1)-10) > 1e-6 || math.Abs(float64(t2)-10) > 1e-6 {
		t.Errorf("shared jobs done at %v, %v; want 10, 10", t1, t2)
	}
}

func TestSharedResourceLateArrival(t *testing.T) {
	e := NewEngine(0)
	r, _ := NewSharedResource(e, 100, 0)
	var tA, tB units.Seconds = -1, -1
	if err := r.Submit(500, func() { tA = e.Now() }); err != nil {
		t.Fatal(err)
	}
	// Job B arrives at t=2.5: A has 250 left; both then run at 50 u/s.
	// A finishes at 2.5 + 250/50 = 7.5; B alone after that at 100 u/s:
	// B has 500 - 50*5 = 250 left at t=7.5, finishing at 10.
	if _, err := e.At(2.5, func() {
		if err := r.Submit(500, func() { tB = e.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tA)-7.5) > 1e-6 {
		t.Errorf("tA = %v, want 7.5", tA)
	}
	if math.Abs(float64(tB)-10) > 1e-6 {
		t.Errorf("tB = %v, want 10", tB)
	}
}

func TestSharedResourcePerJobCap(t *testing.T) {
	e := NewEngine(0)
	// Backend can do 1000 u/s but each client is capped at 100 u/s.
	r, _ := NewSharedResource(e, 1000, 100)
	var done units.Seconds = -1
	if err := r.Submit(500, func() { done = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(done)-5) > 1e-9 {
		t.Errorf("capped job done at %v, want 5", done)
	}
}

func TestSharedResourceAccounting(t *testing.T) {
	e := NewEngine(0)
	r, _ := NewSharedResource(e, 100, 0)
	if err := r.Submit(500, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if w := r.TotalWorkDone(); math.Abs(w-500) > 1e-6 {
		t.Errorf("work done = %v, want 500", w)
	}
	if b := r.BusySeconds(); math.Abs(b-5) > 1e-6 {
		t.Errorf("busy = %v, want 5", b)
	}
	if r.Active() != 0 {
		t.Errorf("active = %d after drain", r.Active())
	}
}

func TestSharedResourceRejectsBadInput(t *testing.T) {
	e := NewEngine(0)
	if _, err := NewSharedResource(e, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSharedResource(e, 10, -1); err == nil {
		t.Error("negative cap accepted")
	}
	r, _ := NewSharedResource(e, 10, 0)
	if err := r.Submit(0, nil); err == nil {
		t.Error("zero work accepted")
	}
}

// Work conservation: total completed work equals total submitted work
// regardless of arrival pattern.
func TestSharedResourceWorkConservation(t *testing.T) {
	f := func(sizes []uint16, gaps []uint16) bool {
		e := NewEngine(0)
		r, _ := NewSharedResource(e, 97, 0)
		total := 0.0
		at := units.Seconds(0)
		for i, s := range sizes {
			amt := float64(s%1000) + 1
			total += amt
			gap := 0.0
			if i < len(gaps) {
				gap = float64(gaps[i] % 50)
			}
			at += units.Seconds(gap)
			work := amt
			if _, err := e.At(at, func() {
				if err := r.Submit(work, nil); err != nil {
					panic(err)
				}
			}); err != nil {
				return false
			}
		}
		if _, err := e.RunAll(); err != nil {
			return false
		}
		return math.Abs(r.TotalWorkDone()-total) <= 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
