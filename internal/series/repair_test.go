package series

import (
	"math"
	"testing"

	"repro/internal/units"
)

// flatTrace builds an n-sample 1 Hz trace at constant power with a little
// deterministic ripple so the robust noise estimate is nonzero.
func flatTrace(t *testing.T, n int, base float64) *Trace {
	t.Helper()
	tr := New(n)
	for i := 0; i < n; i++ {
		ripple := 0.2 * math.Sin(float64(i))
		if err := tr.Append(units.Seconds(i), units.Watts(base+ripple)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestRepairRejectsGlitch(t *testing.T) {
	tr := flatTrace(t, 60, 250)
	// Inject a 80 W spike at sample 30 — far outside the 0.2 W ripple.
	tr.samples[30].Power += 80
	out, rep, err := tr.Repair(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutliersRejected != 1 {
		t.Errorf("OutliersRejected = %d, want 1", rep.OutliersRejected)
	}
	if rep.GapsFilled != 0 {
		t.Errorf("GapsFilled = %d, want 0", rep.GapsFilled)
	}
	got := float64(out.At(30).Power)
	want := 0.5 * float64(tr.At(29).Power+tr.At(31).Power)
	if math.Abs(got-want) > 0.5 {
		t.Errorf("repaired sample = %v, want ≈%v", got, want)
	}
	if out.Len() != tr.Len() {
		t.Errorf("repair changed sample count: %d vs %d", out.Len(), tr.Len())
	}
}

func TestRepairPreservesLoadStep(t *testing.T) {
	// A genuine load step: 200 W for 30 s, then 300 W for 30 s. The step
	// samples disagree with one neighbour but agree with the other — the
	// neighbour-agreement test must leave them alone.
	tr := New(60)
	for i := 0; i < 60; i++ {
		p := 200.0
		if i >= 30 {
			p = 300
		}
		p += 0.2 * math.Sin(float64(i))
		if err := tr.Append(units.Seconds(i), units.Watts(p)); err != nil {
			t.Fatal(err)
		}
	}
	out, rep, err := tr.Repair(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutliersRejected != 0 {
		t.Errorf("load step flagged as %d outlier(s)", rep.OutliersRejected)
	}
	for i := 0; i < out.Len(); i++ {
		if out.At(i).Power != tr.At(i).Power {
			t.Fatalf("sample %d changed: %v -> %v", i, tr.At(i).Power, out.At(i).Power)
		}
	}
}

func TestRepairFillsGaps(t *testing.T) {
	tr := flatTrace(t, 60, 250)
	// Drop three samples: one isolated, two adjacent.
	holed := tr.DropSamples(10, 40, 41)
	out, rep, err := holed.Repair(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GapsFilled != 3 {
		t.Errorf("GapsFilled = %d, want 3", rep.GapsFilled)
	}
	if out.Len() != tr.Len() {
		t.Errorf("repaired length %d, want %d", out.Len(), tr.Len())
	}
	// The filled samples sit on the meter cadence and interpolate their
	// neighbours.
	for i := 0; i < out.Len(); i++ {
		if out.At(i).At != units.Seconds(i) {
			t.Fatalf("sample %d at t=%v, want %v", i, out.At(i).At, units.Seconds(i))
		}
	}
	filled := float64(out.At(10).Power)
	want := 0.5 * float64(tr.At(9).Power+tr.At(11).Power)
	if math.Abs(filled-want) > 1e-9 {
		t.Errorf("filled sample = %v, want %v", filled, want)
	}
}

func TestRepairBoundariesUntouched(t *testing.T) {
	tr := flatTrace(t, 20, 250)
	// Even absurd boundary values survive: the trace must keep spanning the
	// benchmark window exactly.
	tr.samples[0].Power = 1000
	tr.samples[19].Power = 0
	out, rep, err := tr.Repair(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutliersRejected != 0 {
		t.Errorf("boundary samples rejected: %+v", rep)
	}
	if out.At(0).Power != 1000 || out.At(out.Len()-1).Power != 0 {
		t.Error("boundary samples modified")
	}
}

func TestRepairCleanTraceIsIdentity(t *testing.T) {
	tr := flatTrace(t, 60, 250)
	out, rep, err := tr.Repair(1, 0) // sigma 0 -> default 6
	if err != nil {
		t.Fatal(err)
	}
	if rep.GapsFilled != 0 || rep.OutliersRejected != 0 {
		t.Errorf("clean trace repaired: %+v", rep)
	}
	for i := 0; i < tr.Len(); i++ {
		if out.At(i) != tr.At(i) {
			t.Fatalf("sample %d changed", i)
		}
	}
}

func TestRepairEdgeCases(t *testing.T) {
	if _, _, err := flatTrace(t, 10, 250).Repair(0, 6); err == nil {
		t.Error("non-positive interval accepted")
	}
	// Tiny traces come back unchanged.
	tiny := flatTrace(t, 2, 250)
	out, rep, err := tiny.Repair(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || rep.GapsFilled != 0 || rep.OutliersRejected != 0 {
		t.Errorf("tiny trace mangled: len %d, report %+v", out.Len(), rep)
	}
}
