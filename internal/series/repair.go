package series

import (
	"errors"
	"math"
	"sort"

	"repro/internal/units"
)

// Gap locates one contiguous hole in a meter's sampling cadence: the
// surviving samples bracketing it and how many samples were synthesised
// inside. The observability layer turns these into trace events so an
// audited run shows *where* the measurement was reconstructed, not just
// how often.
type Gap struct {
	From   units.Seconds // last real sample before the hole
	To     units.Seconds // first real sample after the hole
	Filled int           // samples synthesised in between
}

// RepairReport counts what the gap-tolerant repair pass did to a trace.
type RepairReport struct {
	// GapsFilled is the number of samples synthesised where the meter's
	// fixed cadence had holes (dropped samples).
	GapsFilled int
	// OutliersRejected is the number of glitch samples replaced by the
	// interpolation of their neighbours.
	OutliersRejected int
	// Gaps locates each contiguous hole that was filled.
	Gaps []Gap
	// OutlierTimes records when each rejected glitch sample occurred.
	OutlierTimes []units.Seconds
}

// Repair makes a meter trace from a faulty measurement path usable: glitch
// samples (isolated spikes inconsistent with both neighbours) are replaced
// by neighbour interpolation, and gaps in the meter's fixed sampling
// cadence are filled with linearly-interpolated samples. interval is the
// meter's nominal sampling period; sigma the outlier threshold in robust
// noise units (the paper's Watts Up? PRO class meter has ~0.5 W gauge
// noise, so sigma≈6 rejects only multi-watt excursions). Both repairs are
// counted, not hidden: the report goes into the suite result so a degraded
// measurement is visibly degraded.
//
// The pass is conservative with real signal: a spike is rejected only when
// its two neighbours agree with each other better than with it, so genuine
// load steps (where the neighbours disagree) survive untouched. The first
// and last samples are never modified — the trace must keep spanning the
// benchmark window exactly.
func (t *Trace) Repair(interval units.Seconds, sigma float64) (*Trace, RepairReport, error) {
	var rep RepairReport
	if interval <= 0 {
		return nil, rep, errors.New("series: repair needs a positive meter interval")
	}
	if sigma <= 0 {
		sigma = 6
	}
	n := len(t.samples)
	if n < 3 {
		out := New(n)
		out.samples = append(out.samples, t.samples...)
		return out, rep, nil
	}

	// Robust local-noise scale from the median absolute second difference:
	// d_i = p_i - (p_{i-1}+p_{i+1})/2 is ~1.22×noise for white gauge noise
	// and (step/2) only at load steps, which the neighbour-agreement test
	// below excludes anyway.
	devs := make([]float64, 0, n-2)
	for i := 1; i < n-1; i++ {
		d := float64(t.samples[i].Power) -
			0.5*float64(t.samples[i-1].Power+t.samples[i+1].Power)
		devs = append(devs, math.Abs(d))
	}
	noise := 1.4826 * median(devs)

	// Pass 1: replace glitches in place.
	powers := make([]units.Watts, n)
	for i, s := range t.samples {
		powers[i] = s.Power
	}
	glitch := make([]bool, n)
	for i := 1; i < n-1; i++ {
		d := float64(t.samples[i].Power) -
			0.5*float64(t.samples[i-1].Power+t.samples[i+1].Power)
		spread := math.Abs(float64(t.samples[i+1].Power - t.samples[i-1].Power))
		if math.Abs(d) > sigma*noise && spread < math.Abs(d) {
			glitch[i] = true
		}
	}
	for i := 1; i < n-1; i++ {
		if !glitch[i] {
			continue
		}
		lo := i - 1
		for lo > 0 && glitch[lo] {
			lo--
		}
		hi := i + 1
		for hi < n-1 && glitch[hi] {
			hi++
		}
		a, b := t.samples[lo], t.samples[hi]
		if b.At == a.At { //greenvet:allow floateq -- exact duplicate-timestamp identity, not a tolerance test
			powers[i] = b.Power
		} else {
			frac := float64(t.samples[i].At-a.At) / float64(b.At-a.At)
			powers[i] = powers[lo] + units.Watts(frac)*(powers[hi]-powers[lo])
		}
		rep.OutliersRejected++
		rep.OutlierTimes = append(rep.OutlierTimes, t.samples[i].At)
	}

	// Pass 2: fill cadence gaps by linear interpolation between the
	// (already de-glitched) neighbours of each hole.
	out := New(n + 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			a, b := t.samples[i-1], t.samples[i]
			filled := 0
			for at := a.At + interval; at < b.At-interval/2; at += interval {
				frac := float64(at-a.At) / float64(b.At-a.At)
				p := powers[i-1] + units.Watts(frac)*(powers[i]-powers[i-1])
				if err := out.Append(at, p); err != nil {
					return nil, rep, err
				}
				rep.GapsFilled++
				filled++
			}
			if filled > 0 {
				rep.Gaps = append(rep.Gaps, Gap{From: a.At, To: b.At, Filled: filled})
			}
		}
		if err := out.Append(t.samples[i].At, powers[i]); err != nil {
			return nil, rep, err
		}
	}
	return out, rep, nil
}

// median returns the median of xs, mutating its order. Empty input
// returns 0.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return 0.5 * (xs[mid-1] + xs[mid])
}
