package series

import (
	"math"
	"testing"

	"repro/internal/units"
)

// BenchmarkRepair exercises the hot path of gap-tolerant metering: a
// 1 Hz hour-long trace with periodic glitches and dropped stretches.
func BenchmarkRepair(b *testing.B) {
	const n = 3600
	tr := New(n)
	at := units.Seconds(0)
	for i := 0; i < n; i++ {
		v := 250 + 0.2*math.Sin(float64(i))
		if i%97 == 0 {
			v += 120 // glitch spike
		}
		if i%53 == 0 && i > 0 && i < n-1 {
			at += 3 // dropped stretch: a 3 s hole in the 1 Hz stream
		} else {
			at += 1
		}
		if err := tr.Append(at, units.Watts(v)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Repair(1, 6); err != nil {
			b.Fatal(err)
		}
	}
}
