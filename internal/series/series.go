// Package series provides time-series support for power traces: the sample
// streams produced by a wall-plug power meter, integration of power into
// energy, resampling, and extraction of the window that corresponds to one
// benchmark run.
//
// The paper's measurement setup (Figure 1) places a Watts Up? PRO ES meter
// between the outlet and the system; the meter emits one aggregate power
// sample per second. Energy for a benchmark is the integral of those samples
// over the benchmark's execution window — this package is that integral.
package series

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Sample is one (time, power) observation from a meter.
type Sample struct {
	At    units.Seconds `json:"at"`
	Power units.Watts   `json:"power"`
}

// Trace is a time-ordered sequence of power samples.
type Trace struct {
	samples []Sample
}

// ErrUnordered is returned when samples are appended out of time order.
var ErrUnordered = errors.New("series: samples out of time order")

// ErrTooFew is returned when an operation needs more samples than available.
var ErrTooFew = errors.New("series: too few samples")

// New returns a Trace pre-sized for n samples.
func New(n int) *Trace {
	return &Trace{samples: make([]Sample, 0, n)}
}

// FromSamples builds a trace from a sample slice, which must be in
// nondecreasing time order.
func FromSamples(ss []Sample) (*Trace, error) {
	t := New(len(ss))
	for _, s := range ss {
		if err := t.Append(s.At, s.Power); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Append adds a sample. Samples must arrive in nondecreasing time order.
func (t *Trace) Append(at units.Seconds, p units.Watts) error {
	if n := len(t.samples); n > 0 && at < t.samples[n-1].At {
		return fmt.Errorf("%w: %v after %v", ErrUnordered, at, t.samples[n-1].At)
	}
	t.samples = append(t.samples, Sample{At: at, Power: p})
	return nil
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.samples) }

// Reset empties the trace in place, keeping its sample storage so a
// hot loop (the sweep scheduler's per-worker meter scratch) can refill
// it without reallocating. Any Samples() slice previously handed out
// aliases the storage and is invalidated.
func (t *Trace) Reset() { t.samples = t.samples[:0] }

// Samples returns the underlying samples. The slice must not be mutated.
func (t *Trace) Samples() []Sample { return t.samples }

// At returns the i-th sample.
func (t *Trace) At(i int) Sample { return t.samples[i] }

// Span returns the first and last sample times.
func (t *Trace) Span() (start, end units.Seconds, err error) {
	if len(t.samples) == 0 {
		return 0, 0, ErrTooFew
	}
	return t.samples[0].At, t.samples[len(t.samples)-1].At, nil
}

// Energy integrates the trace with the trapezoidal rule over its full span.
func (t *Trace) Energy() (units.Joules, error) {
	if len(t.samples) < 2 {
		return 0, ErrTooFew
	}
	var e float64
	for i := 1; i < len(t.samples); i++ {
		a, b := t.samples[i-1], t.samples[i]
		e += 0.5 * float64(a.Power+b.Power) * float64(b.At-a.At)
	}
	return units.Joules(e), nil
}

// MeanPower returns the time-weighted mean power over the trace span.
func (t *Trace) MeanPower() (units.Watts, error) {
	e, err := t.Energy()
	if err != nil {
		return 0, err
	}
	start, end, _ := t.Span()
	if end == start { //greenvet:allow floateq -- zero-span guard: start and end are the same stored sample time
		return t.samples[0].Power, nil
	}
	return units.MeanPower(e, end-start), nil
}

// PeakPower returns the maximum sampled power.
func (t *Trace) PeakPower() (units.Watts, error) {
	if len(t.samples) == 0 {
		return 0, ErrTooFew
	}
	max := t.samples[0].Power
	for _, s := range t.samples[1:] {
		if s.Power > max {
			max = s.Power
		}
	}
	return max, nil
}

// Interpolate returns the linearly-interpolated power at time at. Outside
// the span it clamps to the boundary sample.
func (t *Trace) Interpolate(at units.Seconds) (units.Watts, error) {
	n := len(t.samples)
	if n == 0 {
		return 0, ErrTooFew
	}
	if at <= t.samples[0].At {
		return t.samples[0].Power, nil
	}
	if at >= t.samples[n-1].At {
		return t.samples[n-1].Power, nil
	}
	i := sort.Search(n, func(k int) bool { return t.samples[k].At >= at })
	a, b := t.samples[i-1], t.samples[i]
	if b.At == a.At { //greenvet:allow floateq -- exact duplicate-timestamp identity, not a tolerance test
		return b.Power, nil
	}
	frac := float64(at-a.At) / float64(b.At-a.At)
	return a.Power + units.Watts(frac)*(b.Power-a.Power), nil
}

// Window extracts the sub-trace covering [start, end], adding interpolated
// boundary samples so the window integrates exactly over the requested
// interval. This is how a benchmark's execution window is aligned against a
// continuously-sampling wall meter.
func (t *Trace) Window(start, end units.Seconds) (*Trace, error) {
	if end < start {
		return nil, fmt.Errorf("series: window end %v before start %v", end, start)
	}
	if len(t.samples) == 0 {
		return nil, ErrTooFew
	}
	out := New(8)
	ps, err := t.Interpolate(start)
	if err != nil {
		return nil, err
	}
	if err := out.Append(start, ps); err != nil {
		return nil, err
	}
	for _, s := range t.samples {
		if s.At > start && s.At < end {
			if err := out.Append(s.At, s.Power); err != nil {
				return nil, err
			}
		}
	}
	pe, err := t.Interpolate(end)
	if err != nil {
		return nil, err
	}
	if err := out.Append(end, pe); err != nil {
		return nil, err
	}
	return out, nil
}

// Resample returns a new trace sampled at the fixed interval dt across the
// original span, using linear interpolation. A meter with a coarser clock is
// modelled by resampling a fine-grained model trace.
func (t *Trace) Resample(dt units.Seconds) (*Trace, error) {
	if dt <= 0 {
		return nil, errors.New("series: non-positive resample interval")
	}
	start, end, err := t.Span()
	if err != nil {
		return nil, err
	}
	n := int(math.Floor(float64(end-start)/float64(dt))) + 1
	out := New(n + 1)
	for i := 0; i < n; i++ {
		at := start + units.Seconds(float64(i)*float64(dt))
		p, err := t.Interpolate(at)
		if err != nil {
			return nil, err
		}
		if err := out.Append(at, p); err != nil {
			return nil, err
		}
	}
	if last := start + units.Seconds(float64(n-1)*float64(dt)); last < end {
		p, _ := t.Interpolate(end)
		if err := out.Append(end, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scale returns a new trace with every power value multiplied by k. Used to
// apply PSU efficiency or unit changes to a whole trace.
func (t *Trace) Scale(k float64) *Trace {
	out := New(len(t.samples))
	for _, s := range t.samples {
		out.samples = append(out.samples, Sample{At: s.At, Power: s.Power * units.Watts(k)})
	}
	return out
}

// Add returns the pointwise sum of two traces over the intersection of their
// spans, sampled at the union of their sample times. Summing per-node traces
// yields the cluster-level trace a wall meter would see.
func Add(a, b *Trace) (*Trace, error) {
	as, ae, err := a.Span()
	if err != nil {
		return nil, err
	}
	bs, be, err := b.Span()
	if err != nil {
		return nil, err
	}
	start := as
	if bs > start {
		start = bs
	}
	end := ae
	if be < end {
		end = be
	}
	if end < start {
		return nil, errors.New("series: traces do not overlap")
	}
	times := make([]float64, 0, a.Len()+b.Len())
	for _, s := range a.samples {
		if s.At >= start && s.At <= end {
			times = append(times, float64(s.At))
		}
	}
	for _, s := range b.samples {
		if s.At >= start && s.At <= end {
			times = append(times, float64(s.At))
		}
	}
	times = append(times, float64(start), float64(end))
	sort.Float64s(times)
	out := New(len(times))
	prev := math.Inf(-1)
	for _, tm := range times {
		if tm == prev { //greenvet:allow floateq -- exact duplicate-timestamp identity, not a tolerance test
			continue
		}
		prev = tm
		pa, err := a.Interpolate(units.Seconds(tm))
		if err != nil {
			return nil, err
		}
		pb, err := b.Interpolate(units.Seconds(tm))
		if err != nil {
			return nil, err
		}
		if err := out.Append(units.Seconds(tm), pa+pb); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Sum folds Add over one or more traces.
func Sum(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, ErrTooFew
	}
	acc := traces[0]
	var err error
	for _, t := range traces[1:] {
		acc, err = Add(acc, t)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// DropSamples returns a copy of the trace with the samples at the given
// indices removed, used by failure-injection tests to model meter dropout.
func (t *Trace) DropSamples(indices ...int) *Trace {
	drop := make(map[int]bool, len(indices))
	for _, i := range indices {
		drop[i] = true
	}
	out := New(len(t.samples))
	for i, s := range t.samples {
		if !drop[i] {
			out.samples = append(out.samples, s)
		}
	}
	return out
}
