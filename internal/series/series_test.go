package series

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func mustTrace(t *testing.T, pts ...float64) *Trace {
	t.Helper()
	if len(pts)%2 != 0 {
		t.Fatal("mustTrace needs (time, power) pairs")
	}
	tr := New(len(pts) / 2)
	for i := 0; i < len(pts); i += 2 {
		if err := tr.Append(units.Seconds(pts[i]), units.Watts(pts[i+1])); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendOrdering(t *testing.T) {
	tr := New(2)
	if err := tr.Append(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(0.5, 100); err == nil {
		t.Error("out-of-order append accepted")
	}
	// Equal timestamps are allowed (duplicate sample).
	if err := tr.Append(1, 120); err != nil {
		t.Errorf("equal-time append rejected: %v", err)
	}
}

func TestEnergyConstantPower(t *testing.T) {
	tr := mustTrace(t, 0, 100, 10, 100)
	e, err := tr.Energy()
	if err != nil || e != 1000 {
		t.Errorf("Energy = %v, %v; want 1000 J", e, err)
	}
}

func TestEnergyRamp(t *testing.T) {
	// Linear ramp 0→100 W over 10 s integrates to 500 J.
	tr := mustTrace(t, 0, 0, 10, 100)
	e, err := tr.Energy()
	if err != nil || e != 500 {
		t.Errorf("Energy = %v, %v; want 500 J", e, err)
	}
}

func TestEnergyTooFew(t *testing.T) {
	tr := mustTrace(t, 0, 100)
	if _, err := tr.Energy(); err != ErrTooFew {
		t.Errorf("Energy on 1 sample err = %v", err)
	}
}

func TestMeanAndPeakPower(t *testing.T) {
	tr := mustTrace(t, 0, 100, 5, 100, 10, 200)
	m, err := tr.MeanPower()
	if err != nil {
		t.Fatal(err)
	}
	// 5s at 100W + 5s ramp 100→200 (avg 150) = (500+750)/10 = 125 W.
	if m != 125 {
		t.Errorf("MeanPower = %v, want 125", m)
	}
	p, _ := tr.PeakPower()
	if p != 200 {
		t.Errorf("PeakPower = %v, want 200", p)
	}
}

func TestInterpolate(t *testing.T) {
	tr := mustTrace(t, 0, 100, 10, 200)
	cases := []struct {
		at   float64
		want float64
	}{
		{-5, 100}, // clamp left
		{0, 100},
		{5, 150},
		{10, 200},
		{99, 200}, // clamp right
	}
	for _, c := range cases {
		got, err := tr.Interpolate(units.Seconds(c.at))
		if err != nil || float64(got) != c.want {
			t.Errorf("Interpolate(%v) = %v, %v; want %v", c.at, got, err, c.want)
		}
	}
}

func TestWindowExactEnergy(t *testing.T) {
	tr := mustTrace(t, 0, 100, 10, 100, 20, 300)
	w, err := tr.Window(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := w.Energy()
	if err != nil {
		t.Fatal(err)
	}
	// 5s at 100 W + 5s ramp 100→200 (avg 150) = 500 + 750 = 1250 J.
	if math.Abs(float64(e)-1250) > 1e-9 {
		t.Errorf("window energy = %v, want 1250", e)
	}
	start, end, _ := w.Span()
	if start != 5 || end != 15 {
		t.Errorf("window span = [%v, %v]", start, end)
	}
}

func TestWindowAdditivity(t *testing.T) {
	// Energy over [a,c] = energy over [a,b] + energy over [b,c].
	tr := mustTrace(t, 0, 50, 3, 120, 7, 80, 12, 200, 20, 60)
	f := func(rawA, rawB, rawC float64) bool {
		ts := []float64{
			math.Abs(math.Mod(rawA, 20)),
			math.Abs(math.Mod(rawB, 20)),
			math.Abs(math.Mod(rawC, 20)),
		}
		a, b, c := ts[0], ts[1], ts[2]
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		whole, err := tr.Window(units.Seconds(a), units.Seconds(c))
		if err != nil {
			return false
		}
		left, err := tr.Window(units.Seconds(a), units.Seconds(b))
		if err != nil {
			return false
		}
		right, err := tr.Window(units.Seconds(b), units.Seconds(c))
		if err != nil {
			return false
		}
		we, err := whole.Energy()
		if err != nil {
			return true // degenerate zero-length window
		}
		le, err1 := left.Energy()
		re, err2 := right.Energy()
		var sum float64
		if err1 == nil {
			sum += float64(le)
		}
		if err2 == nil {
			sum += float64(re)
		}
		return math.Abs(float64(we)-sum) <= 1e-6*(1+math.Abs(float64(we)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResample(t *testing.T) {
	tr := mustTrace(t, 0, 0, 10, 100)
	rs, err := tr.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 11 {
		t.Fatalf("resampled len = %d, want 11", rs.Len())
	}
	// Linear trace resamples losslessly: energy preserved.
	e1, _ := tr.Energy()
	e2, _ := rs.Energy()
	if math.Abs(float64(e1-e2)) > 1e-9 {
		t.Errorf("resample changed energy: %v vs %v", e1, e2)
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestResampleCoversSpanEnd(t *testing.T) {
	tr := mustTrace(t, 0, 100, 10.5, 100)
	rs, err := tr.Resample(1)
	if err != nil {
		t.Fatal(err)
	}
	_, end, _ := rs.Span()
	if end != 10.5 {
		t.Errorf("resampled span end = %v, want 10.5", end)
	}
}

func TestScale(t *testing.T) {
	tr := mustTrace(t, 0, 100, 10, 100)
	s := tr.Scale(1.1)
	e, _ := s.Energy()
	if math.Abs(float64(e)-1100) > 1e-9 {
		t.Errorf("scaled energy = %v, want 1100", e)
	}
	// Original untouched.
	e0, _ := tr.Energy()
	if e0 != 1000 {
		t.Errorf("original mutated: %v", e0)
	}
}

func TestAddTraces(t *testing.T) {
	a := mustTrace(t, 0, 100, 10, 100)
	b := mustTrace(t, 0, 50, 10, 150)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := sum.Energy()
	// 1000 + (50+150)/2*10 = 2000 J.
	if math.Abs(float64(e)-2000) > 1e-9 {
		t.Errorf("sum energy = %v, want 2000", e)
	}
}

func TestAddPartialOverlap(t *testing.T) {
	a := mustTrace(t, 0, 100, 10, 100)
	b := mustTrace(t, 5, 200, 15, 200)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	start, end, _ := sum.Span()
	if start != 5 || end != 10 {
		t.Errorf("overlap span = [%v, %v], want [5, 10]", start, end)
	}
	m, _ := sum.MeanPower()
	if math.Abs(float64(m)-300) > 1e-9 {
		t.Errorf("overlap mean = %v, want 300", m)
	}
}

func TestAddDisjointErrors(t *testing.T) {
	a := mustTrace(t, 0, 100, 1, 100)
	b := mustTrace(t, 5, 100, 6, 100)
	if _, err := Add(a, b); err == nil {
		t.Error("disjoint traces added without error")
	}
}

func TestSum(t *testing.T) {
	a := mustTrace(t, 0, 10, 10, 10)
	b := mustTrace(t, 0, 20, 10, 20)
	c := mustTrace(t, 0, 30, 10, 30)
	s, err := Sum(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.MeanPower()
	if math.Abs(float64(m)-60) > 1e-9 {
		t.Errorf("Sum mean = %v, want 60", m)
	}
	if _, err := Sum(); err != ErrTooFew {
		t.Errorf("empty Sum err = %v", err)
	}
}

func TestDropSamples(t *testing.T) {
	tr := mustTrace(t, 0, 100, 1, 100, 2, 500, 3, 100)
	d := tr.DropSamples(2)
	if d.Len() != 3 {
		t.Fatalf("len after drop = %d", d.Len())
	}
	for _, s := range d.Samples() {
		if s.Power == 500 {
			t.Error("dropped sample still present")
		}
	}
	// Trace remains integrable after dropout.
	if _, err := d.Energy(); err != nil {
		t.Errorf("energy after dropout: %v", err)
	}
}

func TestFromSamples(t *testing.T) {
	tr, err := FromSamples([]Sample{{0, 1}, {1, 2}})
	if err != nil || tr.Len() != 2 {
		t.Errorf("FromSamples = %v, %v", tr, err)
	}
	if _, err := FromSamples([]Sample{{1, 1}, {0, 2}}); err == nil {
		t.Error("unordered FromSamples accepted")
	}
}
