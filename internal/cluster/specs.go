package cluster

// Predefined machine specifications.
//
// Fire and SystemG are digital twins of the two clusters in the paper
// (Section IV). Component-level power numbers are not given in the paper, so
// they are set from public data sheets of the parts (Opteron 6134, Xeon
// X5462, DDR2/DDR3 DIMM power, 7200-rpm disks, InfiniBand HCAs) and tuned so
// that the headline observables match the paper where the paper states them:
// Fire delivers ~0.9 TFLOPS on HPL at 128 cores (the paper's "90 GFLOPS" is
// OCR-damaged; peak is 1.18 TFLOPS, so 0.9 TFLOPS ≈ 76% HPL efficiency is
// the physically-consistent reading), and SystemG delivers ~8.1 TFLOPS at
// 1024 cores (Table I).

// Fire returns the system under test: an eight-node cluster, each node with
// two AMD Opteron 6134 processors (8 cores, 2.3 GHz) and 32 GB of memory;
// 128 cores in total. I/O goes to a shared NFS-style backend, which is what
// makes the cluster's I/O efficiency saturate early (DESIGN.md §4).
func Fire() *Spec {
	return &Spec{
		Name:  "Fire",
		Nodes: 8,
		Node: NodeSpec{
			Sockets: 2,
			CPU: CPUSpec{
				Model:          "AMD Opteron 6134",
				ClockHz:        2.3e9,
				CoresPerSocket: 8,
				FlopsPerCycle:  4, // SSE2: 2 mul + 2 add per cycle
				IdleWatts:      25,
				MaxWatts:       137, // TDP plus VRM losses at full tilt
			},
			Memory: MemorySpec{
				CapacityBytes: 32 * 1 << 30,
				BandwidthBps:  25e9, // DDR3-1333, 4 channels/socket, STREAM-sustained
				IdleWatts:     12,
				ActiveWatts:   22,
			},
			Disk: DiskSpec{
				BandwidthBps:  110e6,
				CapacityBytes: 500 * 1 << 30,
				IdleWatts:     6,
				ActiveWatts:   6,
			},
			NIC: NICSpec{
				BandwidthBps: 1.25e9, // 10 GbE
				LatencySec:   8e-6,
				IdleWatts:    4,
				ActiveWatts:  6,
			},
			BaseWatts: 50, // board, fans, glue logic
		},
		Interconnect: InterconnectSpec{
			Name:        "10 GbE",
			LinkBps:     1.25e9,
			LatencySec:  8e-6,
			SwitchWatts: 100,
		},
		Storage: StorageSpec{
			AggregateBps: 400e6, // shared NFS backend ceiling
			PerClientBps: 150e6,
			Watts:        80,
		},
		PSU: PSUSpec{EffAtIdle: 0.74, EffAtFull: 0.90, RatedDC: 520},
	}
}

// SystemG returns the reference system: the 128-node slice of Virginia
// Tech's SystemG used by the paper — Mac Pro nodes with two 2.8 GHz
// quad-core Intel Xeon X5462 processors and 8 GB of memory each, 1024 cores
// in total, QDR InfiniBand interconnect. Each node writes to its local disk
// during the I/O test, which is why the reference I/O efficiency is high and
// the Fire cluster's relative I/O efficiency (REE) comes out lowest of the
// three benchmarks, exactly the regime the paper analyses.
func SystemG() *Spec {
	return &Spec{
		Name:  "SystemG",
		Nodes: 128,
		Node: NodeSpec{
			Sockets: 2,
			CPU: CPUSpec{
				Model:          "Intel Xeon X5462",
				ClockHz:        2.8e9,
				CoresPerSocket: 4,
				FlopsPerCycle:  4, // SSE4: 2 mul + 2 add per cycle
				IdleWatts:      24,
				MaxWatts:       80, // TDP
			},
			Memory: MemorySpec{
				CapacityBytes: 8 * 1 << 30,
				BandwidthBps:  7.5e9, // FSB-limited (Harpertown) STREAM triad
				IdleWatts:     10,
				ActiveWatts:   14,
			},
			Disk: DiskSpec{
				BandwidthBps:  85e6,
				CapacityBytes: 320 * 1 << 30,
				IdleWatts:     6,
				ActiveWatts:   6,
			},
			NIC: NICSpec{
				BandwidthBps: 4e9, // QDR InfiniBand (32 Gb/s, ~4 GB/s effective)
				LatencySec:   1.5e-6,
				IdleWatts:    6,
				ActiveWatts:  8,
			},
			BaseWatts: 84, // Mac Pro chassis
		},
		Interconnect: InterconnectSpec{
			Name:        "QDR InfiniBand",
			LinkBps:     4e9,
			LatencySec:  1.5e-6,
			SwitchWatts: 900,
		},
		Storage: StorageSpec{
			AggregateBps: 0, // local disks only
			PerClientBps: 0,
			Watts:        0,
		},
		PSU: PSUSpec{EffAtIdle: 0.73, EffAtFull: 0.88, RatedDC: 620},
	}
}

// GreenGPU returns a GPU-accelerated cluster, the platform class the paper's
// future-work section singles out ("the suitability of TGI to various kinds
// of platforms, such as GPU based systems"). Each "socket" models one
// accelerator: high peak FLOPS, high memory bandwidth, large idle/active
// power swing. It exists so the toolkit can rank heterogeneous systems with
// the same pipeline.
func GreenGPU() *Spec {
	return &Spec{
		Name:  "GreenGPU",
		Nodes: 4,
		Node: NodeSpec{
			Sockets: 2,
			CPU: CPUSpec{
				Model:          "GPU accelerator (Fermi-class)",
				ClockHz:        1.15e9,
				CoresPerSocket: 16, // streaming multiprocessors
				FlopsPerCycle:  32, // fused multiply-add lanes per SM
				IdleWatts:      30,
				MaxWatts:       225,
			},
			Memory: MemorySpec{
				CapacityBytes: 48 * 1 << 30,
				BandwidthBps:  140e9, // GDDR5
				IdleWatts:     20,
				ActiveWatts:   40,
			},
			Disk: DiskSpec{
				BandwidthBps:  250e6, // early SSD
				CapacityBytes: 256 * 1 << 30,
				IdleWatts:     2,
				ActiveWatts:   3,
			},
			NIC: NICSpec{
				BandwidthBps: 4e9,
				LatencySec:   1.5e-6,
				IdleWatts:    6,
				ActiveWatts:  8,
			},
			BaseWatts: 110,
		},
		Interconnect: InterconnectSpec{
			Name:        "QDR InfiniBand",
			LinkBps:     4e9,
			LatencySec:  1.5e-6,
			SwitchWatts: 150,
		},
		Storage: StorageSpec{
			AggregateBps: 1e9,
			PerClientBps: 500e6,
			Watts:        180,
		},
		PSU: PSUSpec{EffAtIdle: 0.80, EffAtFull: 0.92, RatedDC: 900},
	}
}

// Testbed returns a deliberately small two-node cluster used by unit tests
// and the quickstart example; runs against it are fast and the numbers easy
// to verify by hand.
func Testbed() *Spec {
	return &Spec{
		Name:  "Testbed",
		Nodes: 2,
		Node: NodeSpec{
			Sockets: 1,
			CPU: CPUSpec{
				Model:          "Test CPU",
				ClockHz:        2e9,
				CoresPerSocket: 4,
				FlopsPerCycle:  2,
				IdleWatts:      20,
				MaxWatts:       60,
			},
			Memory: MemorySpec{
				CapacityBytes: 8 * 1 << 30,
				BandwidthBps:  10e9,
				IdleWatts:     5,
				ActiveWatts:   10,
			},
			Disk: DiskSpec{
				BandwidthBps:  100e6,
				CapacityBytes: 100 * 1 << 30,
				IdleWatts:     4,
				ActiveWatts:   4,
			},
			NIC: NICSpec{
				BandwidthBps: 1.25e9,
				LatencySec:   10e-6,
				IdleWatts:    2,
				ActiveWatts:  3,
			},
			BaseWatts: 40,
		},
		Interconnect: InterconnectSpec{
			Name:        "10 GbE",
			LinkBps:     1.25e9,
			LatencySec:  10e-6,
			SwitchWatts: 30,
		},
		Storage: StorageSpec{
			AggregateBps: 200e6,
			PerClientBps: 120e6,
			Watts:        40,
		},
		PSU: PSUSpec{EffAtIdle: 0.75, EffAtFull: 0.90, RatedDC: 250},
	}
}

// SiCortex returns a model of the low-power many-core system class behind
// TGI's genesis (the metric's reference [8] in the paper is a personal
// communication with SiCortex, whose machines topped early
// performance-per-watt discussions): many slow, efficient MIPS cores with
// a fast fabric and modest per-node power. It is the counterpoint spec —
// poor peak performance, excellent efficiency — that makes ranking
// exercises interesting.
func SiCortex() *Spec {
	return &Spec{
		Name:  "SiCortex",
		Nodes: 18, // SC648-class: 18 modules of six 6-core chips, 648 cores
		Node: NodeSpec{
			Sockets: 6,
			CPU: CPUSpec{
				Model:          "SiCortex ICE9 (MIPS64)",
				ClockHz:        0.7e9,
				CoresPerSocket: 6,
				FlopsPerCycle:  2,
				IdleWatts:      4,
				MaxWatts:       10,
			},
			Memory: MemorySpec{
				CapacityBytes: 8 * 1 << 30,
				BandwidthBps:  6.4e9,
				IdleWatts:     6,
				ActiveWatts:   8,
			},
			Disk: DiskSpec{
				BandwidthBps:  60e6,
				CapacityBytes: 160 * 1 << 30,
				IdleWatts:     4,
				ActiveWatts:   4,
			},
			NIC: NICSpec{
				BandwidthBps: 2e9, // Kautz-graph fabric
				LatencySec:   1e-6,
				IdleWatts:    3,
				ActiveWatts:  4,
			},
			BaseWatts: 25,
		},
		Interconnect: InterconnectSpec{
			Name:        "Kautz fabric",
			LinkBps:     2e9,
			LatencySec:  1e-6,
			SwitchWatts: 60,
		},
		Storage: StorageSpec{
			AggregateBps: 600e6,
			PerClientBps: 100e6,
			Watts:        90,
		},
		PSU: PSUSpec{EffAtIdle: 0.80, EffAtFull: 0.91, RatedDC: 400},
	}
}
