package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fire.json")
	if err := SaveSpec(path, Fire()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := Fire()
	if *back != *orig {
		t.Errorf("spec did not round-trip:\n%+v\n%+v", back, orig)
	}
}

func TestSaveSpecRejectsInvalid(t *testing.T) {
	bad := Fire()
	bad.Nodes = 0
	if err := SaveSpec(filepath.Join(t.TempDir(), "x.json"), bad); err == nil {
		t.Error("invalid spec saved")
	}
	if err := SaveSpec(filepath.Join(t.TempDir(), "y.json"), nil); err == nil {
		t.Error("nil spec saved")
	}
}

func TestLoadSpecErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(garbled); err == nil {
		t.Error("garbled file accepted")
	}
	// Valid JSON, invalid spec.
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"Name":"x","Nodes":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(invalid); err == nil {
		t.Error("invalid spec accepted")
	}
}
