package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecValidation(t *testing.T) {
	for _, spec := range []*Spec{Fire(), SystemG(), GreenGPU(), Testbed()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	bad := Fire()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-node spec validated")
	}
	bad2 := Fire()
	bad2.Node.CPU.MaxWatts = bad2.Node.CPU.IdleWatts - 1
	if err := bad2.Validate(); err == nil {
		t.Error("max < idle power validated")
	}
}

func TestFireMatchesPaper(t *testing.T) {
	f := Fire()
	if got := f.TotalCores(); got != 128 {
		t.Errorf("Fire cores = %d, want 128 (paper §IV)", got)
	}
	if f.Nodes != 8 {
		t.Errorf("Fire nodes = %d, want 8", f.Nodes)
	}
	if f.Node.CPU.ClockHz != 2.3e9 {
		t.Errorf("Fire clock = %v, want 2.3 GHz", f.Node.CPU.ClockHz)
	}
	// Peak must comfortably exceed the delivered ~0.9 TFLOPS HPL figure.
	peak := float64(f.PeakFLOPS())
	if peak < 1.1e12 || peak > 1.3e12 {
		t.Errorf("Fire peak = %v, want ~1.18 TFLOPS", peak)
	}
	if got := float64(f.TotalMemory()); got != 8*32*(1<<30) {
		t.Errorf("Fire memory = %v", got)
	}
}

func TestSystemGMatchesPaper(t *testing.T) {
	g := SystemG()
	if got := g.TotalCores(); got != 1024 {
		t.Errorf("SystemG cores = %d, want 1024 (paper §IV)", got)
	}
	if g.Nodes != 128 {
		t.Errorf("SystemG nodes = %d, want 128", g.Nodes)
	}
	peak := float64(g.PeakFLOPS())
	if peak < 11e12 || peak > 12e12 {
		t.Errorf("SystemG peak = %v, want ~11.5 TFLOPS", peak)
	}
}

func TestDistributeBlock(t *testing.T) {
	f := Fire() // 16 cores/node, 8 nodes
	dist, err := f.Distribute(40, Block)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 16, 8, 0, 0, 0, 0, 0}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("block dist = %v, want %v", dist, want)
		}
	}
	if ActiveNodes(dist) != 3 {
		t.Errorf("active = %d, want 3", ActiveNodes(dist))
	}
}

func TestDistributeCyclic(t *testing.T) {
	f := Fire()
	dist, err := f.Distribute(10, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 1, 1, 1, 1, 1, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("cyclic dist = %v, want %v", dist, want)
		}
	}
	if ActiveNodes(dist) != 8 {
		t.Errorf("active = %d, want 8", ActiveNodes(dist))
	}
}

func TestDistributeErrors(t *testing.T) {
	f := Fire()
	if _, err := f.Distribute(0, Block); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := f.Distribute(129, Block); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := f.Distribute(8, Placement(99)); err == nil {
		t.Error("unknown placement accepted")
	}
}

func TestDistributeConservesProcs(t *testing.T) {
	f := Fire()
	check := func(rawP uint8, cyclic bool) bool {
		p := int(rawP)%f.TotalCores() + 1
		pl := Block
		if cyclic {
			pl = Cyclic
		}
		dist, err := f.Distribute(p, pl)
		if err != nil {
			return false
		}
		sum := 0
		for _, d := range dist {
			if d < 0 || d > f.Node.Cores() {
				return false
			}
			sum += d
		}
		return sum == p
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPSUEfficiency(t *testing.T) {
	psu := PSUSpec{EffAtIdle: 0.7, EffAtFull: 0.9, RatedDC: 100}
	if e := psu.Efficiency(0); e != 0.7 {
		t.Errorf("eff(0) = %v", e)
	}
	if e := psu.Efficiency(100); e != 0.9 {
		t.Errorf("eff(100) = %v", e)
	}
	if e := psu.Efficiency(50); math.Abs(e-0.8) > 1e-12 {
		t.Errorf("eff(50) = %v", e)
	}
	// Beyond rated load clamps to the full-load efficiency.
	if e := psu.Efficiency(200); e != 0.9 {
		t.Errorf("eff(200) = %v", e)
	}
	// Disabled PSU model is an ideal supply.
	ideal := PSUSpec{}
	if e := ideal.Efficiency(123); e != 1 {
		t.Errorf("ideal eff = %v", e)
	}
}

func TestUtilClamp(t *testing.T) {
	u := Util{CPU: 1.5, Mem: -0.2, Disk: 0.5, Net: 0}.Clamp()
	if u.CPU != 1 || u.Mem != 0 || u.Disk != 0.5 || u.Net != 0 {
		t.Errorf("clamp = %+v", u)
	}
}

func TestLoadProfile(t *testing.T) {
	f := Fire()
	lp := &LoadProfile{Phases: []Phase{
		UniformPhase(10, 2, Util{CPU: 1}),
		UniformPhase(5, 8, Util{CPU: 0.5}),
	}}
	if err := lp.Validate(f); err != nil {
		t.Fatal(err)
	}
	if d := lp.Duration(); d != 15 {
		t.Errorf("duration = %v", d)
	}
	empty := &LoadProfile{}
	if err := empty.Validate(f); err == nil {
		t.Error("empty profile validated")
	}
	badDur := &LoadProfile{Phases: []Phase{{Duration: 0}}}
	if err := badDur.Validate(f); err == nil {
		t.Error("zero-duration phase validated")
	}
	tooWide := &LoadProfile{Phases: []Phase{UniformPhase(1, 9, Util{})}}
	if err := tooWide.Validate(f); err == nil {
		t.Error("profile wider than cluster validated")
	}
}

func TestPhaseFromDistribution(t *testing.T) {
	f := Fire()
	dist, _ := f.Distribute(24, Block) // 16 + 8
	ph := PhaseFromDistribution(10, f, dist, func(procs, cores int) Util {
		return Util{CPU: float64(procs) / float64(cores)}
	})
	if ph.NodeUtil[0].CPU != 1 {
		t.Errorf("node0 cpu = %v", ph.NodeUtil[0].CPU)
	}
	if ph.NodeUtil[1].CPU != 0.5 {
		t.Errorf("node1 cpu = %v", ph.NodeUtil[1].CPU)
	}
	for i := 2; i < 8; i++ {
		if ph.NodeUtil[i].CPU != 0 {
			t.Errorf("idle node %d has cpu %v", i, ph.NodeUtil[i].CPU)
		}
	}
}

func TestPlacementString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Error("placement names wrong")
	}
	if Placement(9).String() == "" {
		t.Error("unknown placement has empty name")
	}
}

func TestSiCortexSpec(t *testing.T) {
	s := SiCortex()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalCores() != 648 {
		t.Errorf("cores = %d, want 648 (SC648)", s.TotalCores())
	}
	// The design point: peak well below Fire's, but the full-load
	// power-per-peak-flop far better.
	fire := Fire()
	if float64(s.PeakFLOPS()) >= float64(fire.PeakFLOPS()) {
		t.Error("SiCortex peak should be below Fire's")
	}
}

func TestWithFrequency(t *testing.T) {
	base := Fire()
	half, err := WithFrequency(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.Node.CPU.ClockHz != base.Node.CPU.ClockHz/2 {
		t.Errorf("clock = %v", half.Node.CPU.ClockHz)
	}
	// Dynamic power falls superlinearly: less than half remains.
	dynBase := base.Node.CPU.MaxWatts - base.Node.CPU.IdleWatts
	dynHalf := half.Node.CPU.MaxWatts - half.Node.CPU.IdleWatts
	if dynHalf >= dynBase/2 {
		t.Errorf("dynamic power %v not superlinear vs %v", dynHalf, dynBase)
	}
	// Idle power untouched; original spec untouched.
	if half.Node.CPU.IdleWatts != base.Node.CPU.IdleWatts {
		t.Error("idle power changed")
	}
	if base.Node.CPU.ClockHz != 2.3e9 {
		t.Error("original spec mutated")
	}
	if half.Name == base.Name {
		t.Error("scaled spec not renamed")
	}
}

func TestWithFrequencyValidation(t *testing.T) {
	if _, err := WithFrequency(nil, 0.5); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := WithFrequency(Fire(), 0.1); err == nil {
		t.Error("factor 0.1 accepted")
	}
	if _, err := WithFrequency(Fire(), 2); err == nil {
		t.Error("factor 2 accepted")
	}
}
