// Package cluster defines the machine model: parameterised hardware
// specifications for HPC clusters (nodes, sockets, cores, memory, disks,
// NICs, interconnect, shared storage) plus process-placement and
// load-profile types consumed by the power model.
//
// Because the paper's experiments require physical clusters (the 8-node
// "Fire" system under test and the 128-node slice of "SystemG" used as the
// reference) and a wall-plug power meter, this package provides calibrated
// digital twins of both machines. TGI itself consumes only per-benchmark
// (performance, power, time, energy) tuples, so a machine model that yields
// realistic scaling curves for those tuples exercises the full metric
// pipeline. See DESIGN.md §2 for the substitution rationale.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// CPUSpec describes one processor socket.
type CPUSpec struct {
	Model          string  // marketing name, e.g. "AMD Opteron 6134"
	ClockHz        float64 // core clock
	CoresPerSocket int
	FlopsPerCycle  float64 // peak double-precision flops per core per cycle
	IdleWatts      float64 // socket power at idle
	MaxWatts       float64 // socket power at full load
}

// PeakFLOPS returns the socket's peak floating-point rate.
func (c CPUSpec) PeakFLOPS() units.FLOPS {
	return units.FLOPS(c.ClockHz * c.FlopsPerCycle * float64(c.CoresPerSocket))
}

// MemorySpec describes a node's memory system.
type MemorySpec struct {
	CapacityBytes float64 // installed DRAM per node
	BandwidthBps  float64 // sustainable (STREAM triad) bandwidth per node
	IdleWatts     float64 // DRAM background power per node
	ActiveWatts   float64 // additional power at full bandwidth
}

// DiskSpec describes a node's local disk.
type DiskSpec struct {
	BandwidthBps  float64 // sequential write bandwidth
	CapacityBytes float64
	IdleWatts     float64
	ActiveWatts   float64 // additional power while streaming
}

// NICSpec describes a node's network interface.
type NICSpec struct {
	BandwidthBps float64 // per-port bandwidth
	LatencySec   float64 // one-way small-message latency
	IdleWatts    float64
	ActiveWatts  float64 // additional power at full line rate
}

// NodeSpec aggregates the per-node components.
type NodeSpec struct {
	Sockets   int
	CPU       CPUSpec
	Memory    MemorySpec
	Disk      DiskSpec
	NIC       NICSpec
	BaseWatts float64 // motherboard, fans, glue logic
}

// Cores returns the number of cores in one node.
func (n NodeSpec) Cores() int { return n.Sockets * n.CPU.CoresPerSocket }

// PeakFLOPS returns the node's peak floating-point rate.
func (n NodeSpec) PeakFLOPS() units.FLOPS {
	return units.FLOPS(float64(n.Sockets)) * n.CPU.PeakFLOPS()
}

// StorageSpec describes the shared storage backend (an NFS-style file
// server): an aggregate bandwidth that all clients contend for, a per-client
// ceiling, and its own power draw. A zero AggregateBps means nodes use only
// their local disks.
type StorageSpec struct {
	AggregateBps float64 // backend ceiling across all clients
	PerClientBps float64 // per-node ceiling (client link / protocol bound)
	Watts        float64 // backend box, constant
}

// InterconnectSpec describes the cluster fabric.
type InterconnectSpec struct {
	Name        string
	LinkBps     float64 // per-link bandwidth
	LatencySec  float64
	SwitchWatts float64 // fabric switches, constant while powered
}

// PSUSpec describes the power-supply efficiency curve. Wall power is DC
// power divided by efficiency; efficiency is interpolated between the
// low-load and high-load points (real PSUs are least efficient near idle).
type PSUSpec struct {
	EffAtIdle float64 // efficiency at (near) zero DC load, e.g. 0.72
	EffAtFull float64 // efficiency at rated load, e.g. 0.90
	RatedDC   float64 // DC watts at which EffAtFull applies
}

// Efficiency returns the interpolated efficiency at the given DC load.
func (p PSUSpec) Efficiency(dcWatts float64) float64 {
	if p.RatedDC <= 0 || p.EffAtFull <= 0 {
		return 1 // disabled: ideal supply
	}
	frac := dcWatts / p.RatedDC
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return p.EffAtIdle + (p.EffAtFull-p.EffAtIdle)*frac
}

// Spec is a complete cluster description.
type Spec struct {
	Name         string
	Nodes        int
	Node         NodeSpec
	Interconnect InterconnectSpec
	Storage      StorageSpec
	PSU          PSUSpec // per node
}

// Validate checks the spec for obviously-broken parameters.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return errors.New("cluster: node count must be positive")
	case s.Node.Sockets <= 0:
		return errors.New("cluster: sockets per node must be positive")
	case s.Node.CPU.CoresPerSocket <= 0:
		return errors.New("cluster: cores per socket must be positive")
	case s.Node.CPU.ClockHz <= 0:
		return errors.New("cluster: clock must be positive")
	case s.Node.CPU.FlopsPerCycle <= 0:
		return errors.New("cluster: flops per cycle must be positive")
	case s.Node.CPU.MaxWatts < s.Node.CPU.IdleWatts:
		return errors.New("cluster: CPU max power below idle power")
	case s.Node.Memory.BandwidthBps <= 0:
		return errors.New("cluster: memory bandwidth must be positive")
	case s.Node.Memory.CapacityBytes <= 0:
		return errors.New("cluster: memory capacity must be positive")
	case s.Node.Disk.BandwidthBps <= 0:
		return errors.New("cluster: disk bandwidth must be positive")
	case s.Node.NIC.BandwidthBps <= 0:
		return errors.New("cluster: NIC bandwidth must be positive")
	}
	return nil
}

// TotalCores returns the cluster's core count.
func (s *Spec) TotalCores() int { return s.Nodes * s.Node.Cores() }

// PeakFLOPS returns the cluster's peak floating-point rate.
func (s *Spec) PeakFLOPS() units.FLOPS {
	return units.FLOPS(float64(s.Nodes)) * s.Node.PeakFLOPS()
}

// TotalMemory returns the cluster's installed DRAM in bytes.
func (s *Spec) TotalMemory() units.Bytes {
	return units.Bytes(float64(s.Nodes) * s.Node.Memory.CapacityBytes)
}

// Placement selects how MPI processes map onto nodes.
type Placement int

const (
	// Block placement fills each node before using the next (the common
	// default of cluster schedulers, and what the paper's core sweep does).
	Block Placement = iota
	// Cyclic placement deals processes round-robin across all nodes.
	Cyclic
)

func (p Placement) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Distribute maps procs MPI processes onto the cluster's nodes and returns
// the number of processes on each node. Nodes with zero processes are idle
// but still powered (the whole cluster sits behind the wall meter).
func (s *Spec) Distribute(procs int, pl Placement) ([]int, error) {
	return s.DistributeInto(procs, pl, nil)
}

// DistributeInto is Distribute filling a caller-provided buffer when it
// has the capacity (hot sweep loops recycle one buffer per worker); a
// nil or too-small buf allocates as Distribute does.
func (s *Spec) DistributeInto(procs int, pl Placement, buf []int) ([]int, error) {
	if procs <= 0 {
		return nil, errors.New("cluster: process count must be positive")
	}
	if procs > s.TotalCores() {
		return nil, fmt.Errorf("cluster: %d processes exceed %d cores", procs, s.TotalCores())
	}
	var out []int
	if cap(buf) >= s.Nodes {
		out = buf[:s.Nodes]
		for i := range out {
			out[i] = 0
		}
	} else {
		out = make([]int, s.Nodes)
	}
	perNode := s.Node.Cores()
	switch pl {
	case Block:
		left := procs
		for i := range out {
			n := perNode
			if n > left {
				n = left
			}
			out[i] = n
			left -= n
			if left == 0 {
				break
			}
		}
	case Cyclic:
		for i := 0; i < procs; i++ {
			out[i%s.Nodes]++
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement %v", pl)
	}
	return out, nil
}

// ActiveNodes returns how many entries of a distribution are non-zero.
func ActiveNodes(dist []int) int {
	n := 0
	for _, p := range dist {
		if p > 0 {
			n++
		}
	}
	return n
}

// Util is the instantaneous utilisation of one node's components, each in
// [0, 1]. The power model maps Util to watts.
type Util struct {
	CPU  float64 // fraction of peak core-cycles in use
	Mem  float64 // fraction of peak memory bandwidth in use
	Disk float64 // fraction of local-disk bandwidth in use
	Net  float64 // fraction of NIC bandwidth in use
}

// Clamp returns u with every component clamped to [0, 1].
func (u Util) Clamp() Util {
	c := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return Util{CPU: c(u.CPU), Mem: c(u.Mem), Disk: c(u.Disk), Net: c(u.Net)}
}

// Phase is a period of constant load across the cluster.
type Phase struct {
	Duration units.Seconds
	NodeUtil []Util // one entry per node; missing entries mean idle
}

// LoadProfile is a benchmark's load on the cluster over time: a sequence of
// constant-load phases. It is what the power model integrates.
type LoadProfile struct {
	Phases []Phase
}

// Duration returns the total profile duration.
func (lp *LoadProfile) Duration() units.Seconds {
	var d units.Seconds
	for _, p := range lp.Phases {
		d += p.Duration
	}
	return d
}

// Validate checks the profile against a spec.
func (lp *LoadProfile) Validate(s *Spec) error {
	if len(lp.Phases) == 0 {
		return errors.New("cluster: empty load profile")
	}
	for i, p := range lp.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("cluster: phase %d has non-positive duration", i)
		}
		if len(p.NodeUtil) > s.Nodes {
			return fmt.Errorf("cluster: phase %d has %d node entries for %d nodes",
				i, len(p.NodeUtil), s.Nodes)
		}
	}
	return nil
}

// UniformPhase builds a phase where the first activeNodes nodes carry u and
// the rest idle.
func UniformPhase(d units.Seconds, activeNodes int, u Util) Phase {
	nu := make([]Util, activeNodes)
	for i := range nu {
		nu[i] = u.Clamp()
	}
	return Phase{Duration: d, NodeUtil: nu}
}

// PhaseFromDistribution builds a phase where node i carries util scaled by
// its share of processes: a node running k of its c cores at full tilt has
// CPU utilisation k/c. The scale functions map the per-node process count to
// each component's utilisation.
func PhaseFromDistribution(d units.Seconds, spec *Spec, dist []int, f func(procs, cores int) Util) Phase {
	nu := make([]Util, len(dist))
	cores := spec.Node.Cores()
	for i, p := range dist {
		if p > 0 {
			nu[i] = f(p, cores).Clamp()
		}
	}
	return Phase{Duration: d, NodeUtil: nu}
}
