package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine specs serialise to plain JSON so users can describe their own
// clusters for cmd/greenbench without recompiling. The exported struct
// fields are the schema; LoadSpec validates on the way in.

// SaveSpec writes a spec to path as indented JSON.
func SaveSpec(path string, s *Spec) error {
	if s == nil {
		return fmt.Errorf("cluster: nil spec")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadSpec reads and validates a spec written by SaveSpec (or by hand).
func LoadSpec(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("cluster: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return &s, nil
}
