package cluster

import (
	"errors"
	"fmt"
	"math"
)

// WithFrequency returns a copy of the spec with every CPU clocked at
// factor × its nominal frequency, with dynamic power rescaled by the
// CMOS model P_dyn ∝ f·V² — and since voltage tracks frequency on a DVFS
// ladder, effectively P_dyn ∝ f^γ with γ ≈ 2.4 on real parts (pure
// theory says 3; leakage and fixed-voltage rails flatten it).
//
// This is the knob behind the "towards efficient supercomputing" line of
// work the paper builds on (Hsu & Feng, cited as [11]): running below
// nominal frequency trades performance for disproportionate power savings,
// and TGI makes the system-wide outcome of that trade a single number.
func WithFrequency(s *Spec, factor float64) (*Spec, error) {
	if s == nil {
		return nil, errors.New("cluster: nil spec")
	}
	if factor <= 0.2 || factor > 1.5 {
		return nil, fmt.Errorf("cluster: frequency factor %v outside (0.2, 1.5]", factor)
	}
	const gamma = 2.4
	out := *s // Spec contains no pointers or slices: value copy is deep
	out.Name = fmt.Sprintf("%s@%.0f%%", s.Name, factor*100)
	out.Node.CPU.ClockHz = s.Node.CPU.ClockHz * factor
	dyn := s.Node.CPU.MaxWatts - s.Node.CPU.IdleWatts
	out.Node.CPU.MaxWatts = s.Node.CPU.IdleWatts + dyn*math.Pow(factor, gamma)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}
