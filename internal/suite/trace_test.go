package suite

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// faultyConfig is a fixed-seed scenario exercising every span source:
// a scheduled crash (retry + backoff), a certain straggler, and meter
// faults (drops + glitches driving the repair pass).
func faultyConfig(procs int) Config {
	cfg := SeededConfig(cluster.Testbed(), procs, 23)
	cfg.Faults = &faults.Plan{
		Seed:      11,
		Crashes:   []faults.Crash{{Benchmark: BenchHPL, Node: 1, At: 50, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.9},
		Meter:     &faults.Meter{DropRate: 0.08, GlitchRate: 0.02, GlitchWatts: 400},
	}
	cfg.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 30}
	return cfg
}

// TestTracingIsInert is the golden inertness test: the sweep's JSON output
// must be byte-identical whether instrumentation is absent, discarded, or
// live — tracing can never change TGI values, retry decisions or RNG draws.
func TestTracingIsInert(t *testing.T) {
	marshal := func(rs []*Result) []byte {
		b, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sweep := func(rec obs.Recorder) []byte {
		var rs []*Result
		var cursor units.Seconds
		for _, p := range []int{2, 4, 8} {
			cfg := faultyConfig(p)
			cfg.Trace = rec
			cfg.TraceAt = cursor
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cursor = r.TraceEnd
			rs = append(rs, r)
		}
		return marshal(rs)
	}
	baseline := sweep(nil)
	if got := sweep(obs.Discard); !bytes.Equal(got, baseline) {
		t.Error("obs.Discard recorder changed the sweep output")
	}
	var nilTracer *obs.Tracer
	if got := sweep(nilTracer); !bytes.Equal(got, baseline) {
		t.Error("nil *obs.Tracer recorder changed the sweep output")
	}
	tracer := obs.NewTracer()
	if got := sweep(tracer); !bytes.Equal(got, baseline) {
		t.Error("live tracer changed the sweep output")
	}
	if len(tracer.Spans()) == 0 {
		t.Error("live tracer recorded nothing (instrumentation not wired?)")
	}
}

// TestGoldenChromeTrace pins the trace exporter's exact output for the
// fixed-seed fault scenario. Regenerate with: go test ./internal/suite
// -run TestGoldenChromeTrace -update
func TestGoldenChromeTrace(t *testing.T) {
	tracer := obs.NewTracer()
	cfg := faultyConfig(4)
	cfg.Trace = tracer
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tracer.Spans(), tracer.Events()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "faulty.trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverges from %s (regenerate with -update if intended)", golden)
	}
	// The golden trace is itself schema-valid and shows the retry attempts
	// and the injected crash as distinct entries.
	chk, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if chk.Spans == 0 || chk.Instants == 0 {
		t.Errorf("golden trace = %+v, want spans and fault events", chk)
	}
	s := buf.String()
	for _, want := range []string{"attempt 1", "attempt 2", "backoff", "fault: node crash", "window"} {
		if !strings.Contains(s, want) {
			t.Errorf("golden trace missing %q", want)
		}
	}
}

// TestTraceTimelineTiles checks the campaign-clock contract: a benchmark's
// span covers its attempts, backoffs and waste exactly, and consecutive
// runs of a sweep lay out end to end.
func TestTraceTimelineTiles(t *testing.T) {
	tracer := obs.NewTracer()
	cfg := faultyConfig(4)
	cfg.Trace = tracer
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total units.Seconds
	for _, b := range r.Runs {
		total += b.Measurement.Time + b.WastedTime
	}
	if r.TraceEnd != total {
		t.Errorf("TraceEnd = %v, want the accounted %v", r.TraceEnd, total)
	}
	// The run-level span covers [TraceAt, TraceEnd].
	found := false
	for _, s := range tracer.Spans() {
		if s.Track == "suite" {
			found = true
			if s.Start != 0 || s.End != r.TraceEnd {
				t.Errorf("run span = [%v, %v], want [0, %v]", s.Start, s.End, r.TraceEnd)
			}
		}
	}
	if !found {
		t.Error("no run-level span on the suite track")
	}
	// A second run offset by TraceAt starts where the first ended.
	tracer2 := obs.NewTracer()
	cfg2 := faultyConfig(4)
	cfg2.Trace = tracer2
	cfg2.TraceAt = r.TraceEnd
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := float64(r2.TraceEnd - 2*r.TraceEnd); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("offset run TraceEnd = %v, want %v", r2.TraceEnd, 2*r.TraceEnd)
	}
	for _, s := range tracer2.Spans() {
		if s.Start < r.TraceEnd {
			t.Errorf("offset run span %q starts at %v, before TraceAt %v", s.Name, s.Start, r.TraceEnd)
		}
	}
}
