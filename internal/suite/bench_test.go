package suite

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// BenchmarkSweep runs the whole three-benchmark pipeline at one process
// count — the unit of work a campaign repeats per sweep point.
func BenchmarkSweep(b *testing.B) {
	spec := cluster.Testbed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(DefaultConfig(spec, 4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepTraced is BenchmarkSweep under a live tracer; the delta
// between the two is the instrumentation overhead.
func BenchmarkSweepTraced(b *testing.B) {
	spec := cluster.Testbed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(spec, 4)
		cfg.Trace = obs.NewTracer()
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
