package suite

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// faultySweepArtifacts runs the fixed-seed faulty sweep under the given
// hub and returns every virtual-plane artefact: results JSON, Chrome
// trace bytes and the metrics snapshot JSON.
func faultySweepArtifacts(t *testing.T, workers int, hub *live.Hub) (results, trace, metrics []byte) {
	t.Helper()
	tracer := obs.NewTracer()
	rs, err := RunSweepPlan(SweepPlan{
		Axis:    []int{2, 4, 8},
		Workers: workers,
		Trace:   tracer,
		Live:    hub,
		Configure: func(ctx CellContext) (Config, error) {
			return faultyConfig(ctx.Procs), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err = json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var tbuf bytes.Buffer
	if err := obs.WriteChromeTrace(&tbuf, tracer.Spans(), tracer.Events()); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if err := tracer.Registry().Snapshot().WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	return results, tbuf.Bytes(), mbuf.Bytes()
}

// TestLiveHubIsInert extends the inertness invariant to the live plane:
// attaching a hub (event bus, progress, flight recorder, subscribers) to
// a sweep must leave results, trace and metrics byte-identical, under
// both the sequential and the parallel scheduler.
func TestLiveHubIsInert(t *testing.T) {
	baseRes, baseTrace, baseMetrics := faultySweepArtifacts(t, 1, nil)
	for _, workers := range []int{1, 3} {
		hub := live.NewHub()
		sub := hub.Bus().Subscribe(4) // deliberately tiny: forces drops
		res, trace, metrics := faultySweepArtifacts(t, workers, hub)
		if !bytes.Equal(res, baseRes) {
			t.Errorf("workers=%d: live hub changed the results JSON", workers)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("workers=%d: live hub changed the Chrome trace", workers)
		}
		if !bytes.Equal(metrics, baseMetrics) {
			t.Errorf("workers=%d: live hub changed the metrics snapshot", workers)
		}
		p := hub.Progress()
		if p.CellsDone != 3 || p.CellsTotal != 3 || !p.Done {
			t.Errorf("workers=%d: progress = %+v, want 3/3 done", workers, p)
		}
		// faultyConfig schedules a crash on attempt 0, so every cell
		// retries at least once; the backoff mirror must have counted it.
		if p.Retries == 0 {
			t.Errorf("workers=%d: live retries = 0, want > 0", workers)
		}
		if p.EventsPublished == 0 {
			t.Errorf("workers=%d: no live events published", workers)
		}
		// The undrained subscriber lost events — counted, never silent.
		if p.EventsDropped == 0 || sub.Dropped() == 0 {
			t.Errorf("workers=%d: expected counted drops on the tiny subscriber, got bus=%d sub=%d",
				workers, p.EventsDropped, sub.Dropped())
		}
		sub.Close()
	}
}

// TestSweepLiveLifecycle checks the scheduler publishes the cell
// lifecycle and that the flight recorder retains it for a dump.
func TestSweepLiveLifecycle(t *testing.T) {
	hub := live.NewHub()
	sub := hub.Bus().Subscribe(1024)
	defer sub.Close()
	faultySweepArtifacts(t, 2, hub)

	counts := map[live.Kind]int{}
drain:
	for {
		select {
		case e := <-sub.Events():
			counts[e.Kind]++
		default:
			break drain
		}
	}
	if counts[live.KindSweepStarted] != 1 || counts[live.KindSweepFinished] != 1 {
		t.Errorf("sweep lifecycle counts = %v", counts)
	}
	if counts[live.KindCellStarted] != 3 || counts[live.KindCellFinished] != 3 {
		t.Errorf("cell lifecycle counts = %v", counts)
	}
	if counts[live.KindMeterWindow] == 0 {
		t.Errorf("no meter windows mirrored: %v", counts)
	}
	if counts[live.KindCrash] == 0 || counts[live.KindBackoff] == 0 {
		t.Errorf("fault/retry mirrors missing: %v", counts)
	}

	dir := t.TempDir()
	path := dir + "/flight.json"
	if err := hub.DumpFlight(path, "test"); err != nil {
		t.Fatal(err)
	}
	var d live.FlightDump
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "test" || len(d.Events) == 0 {
		t.Fatalf("flight dump = reason %q with %d events", d.Reason, len(d.Events))
	}
	// The dump must include the most recent event published.
	if d.Events[len(d.Events)-1].Kind != live.KindSweepFinished {
		t.Errorf("last dumped event = %v, want sweep.finished", d.Events[len(d.Events)-1].Kind)
	}
}
