package suite

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
)

// cellScratch is the per-worker reusable state the scheduler threads
// through Config.scratch: buffers that survive from one cell to the next
// on the same worker, so steady-state cells stop paying construction
// costs. A scratch never crosses workers, and using one never changes
// results — it only recycles storage the runner has already drained.
type cellScratch struct {
	meter *power.Meter
	// steps caches the assembled benchmark steps; stepNames records the
	// list they were built from, so a plan whose Configure varies the
	// benchmark list per cell still rebuilds.
	steps     []benchStep
	stepNames []string
	// model caches the default power model, reusable while the
	// (fault-adjusted) spec pointer is unchanged.
	model *power.Model
	// dist is the process-distribution buffer recycled across cells; the
	// runner folds it into scalars before the next cell reuses it.
	dist []int
}

// LiveSink is the scheduler's view of a wall-clock telemetry plane.
// The suite package is on the deterministic side of the two-plane
// architecture, so it must not import internal/obs/live (greenvet's
// layering analyzer enforces this); instead the live plane's Hub
// satisfies this interface structurally and callers on the wall-clock
// side (cmd/greenbench, examples) plug it in. BeginCell returns a plain
// func — an unnamed type — precisely so that satisfaction needs no
// shared named types between the two planes.
//
// A sink must be inert with respect to the virtual plane: Tap forwards
// every record to inner verbatim, and nothing a sink does may change
// results, trace or metrics by a byte.
type LiveSink interface {
	// SweepStarted announces a sweep of total cells on workers goroutines.
	SweepStarted(total, workers int)
	// SweepFinished marks the sweep complete.
	SweepFinished()
	// Tap wraps a cell's recorder so the record stream is mirrored onto
	// the live plane; it must forward to inner unchanged.
	Tap(inner obs.Recorder, procs int) obs.Recorder
	// BeginCell announces a cell entering execution and returns the
	// function called exactly once with its outcome: a non-nil err for a
	// failed cell, otherwise the retry total and degraded flag.
	BeginCell(procs int) func(err error, retries int, degraded bool)
}

// CellContext is what SweepPlan.Configure receives for one sweep cell.
type CellContext struct {
	// Procs is the cell's process count (one value of SweepPlan.Axis).
	Procs int
	// Rec is the recorder the cell runs under: the campaign tracer itself
	// when the sweep is sequential, the worker's batch tracer when it is
	// parallel, nil when the plan has no tracer. A worker runs its cells
	// one after another, so Mark/Since pairs taken around one cell still
	// delimit exactly that cell's records; Configure uses them to wire
	// journaling hooks. The scheduler installs Rec as the run's
	// Config.Trace, overriding anything Configure set there.
	Rec *obs.Tracer
	// Origin is the campaign-clock time at which Rec's timeline begins
	// for this cell: the accumulated sweep time so far when sequential,
	// always zero when parallel. Subtracting it from times read off Rec
	// yields cell-relative (scheduler-invariant) times — what journals
	// store so a sweep can resume under either scheduler.
	Origin units.Seconds
}

// SweepPlan describes a process-count sweep: which cells to run, how to
// configure each, how many to run at once, and where the campaign's
// observability stream goes.
//
// Every cell of a sweep is independent by construction — fault draws are
// pure functions of (plan seed, benchmark, procs, attempt) and meter
// noise is seeded per process count — so cells may run in any order or
// concurrently without results changing. The scheduler exploits that:
// with Workers > 1 cells run on a worker pool, and the per-cell traces
// are merged back into the campaign tracer in axis order, reproducing
// the sequential schedule's results, trace and metrics byte-for-byte.
type SweepPlan struct {
	// Axis is the ordered process-count axis; results come back in this
	// order regardless of execution order.
	Axis []int
	// Workers caps concurrently-running cells. 0 or 1 runs the classic
	// sequential schedule; n > 1 runs up to n cells at once.
	Workers int
	// Trace, when non-nil, receives the campaign's spans, events and
	// metrics — laid out end to end on the virtual-time axis exactly as a
	// sequential sweep records them.
	Trace *obs.Tracer
	// Live, when non-nil, receives wall-clock telemetry: cell lifecycle
	// events plus a mirror of each cell's record stream (via Tap).
	// The live plane is strictly read-only over the virtual plane —
	// attaching a sink cannot change results, trace or metrics by a byte.
	Live LiveSink
	// Configure builds the Config for one cell. It must be safe for
	// concurrent calls when Workers > 1. The scheduler owns the returned
	// config's Trace and TraceAt fields.
	Configure func(ctx CellContext) (Config, error)
}

// RunSweepPlan executes the plan and returns one Result per axis entry,
// in axis order. With Workers > 1 the cells run concurrently but the
// returned results, the campaign trace and the campaign metrics are
// byte-identical to the sequential schedule's. On error the first
// failing cell in axis order is reported; under the parallel schedule
// later cells may already have run by then (they are discarded, and
// cells after the failure point may be skipped entirely), whereas the
// sequential schedule stops at the failure.
func RunSweepPlan(plan SweepPlan) ([]*Result, error) {
	if plan.Configure == nil {
		return nil, errors.New("suite: sweep plan has no Configure")
	}
	workers := plan.Workers
	if workers < 1 || len(plan.Axis) <= 1 {
		workers = 1
	}
	if plan.Live != nil {
		plan.Live.SweepStarted(len(plan.Axis), workers)
		defer plan.Live.SweepFinished()
	}
	if plan.Workers > 1 && len(plan.Axis) > 1 {
		return runSweepParallel(plan)
	}
	return runSweepSequential(plan)
}

// runCell executes one configured cell under the plan's live sink: the
// sink sees the cell start, the mirrored record stream (through the tap
// installed as cfg.Trace), and the completion or failure. With a nil
// sink this is exactly Run(cfg).
func runCell(plan SweepPlan, cfg Config, procs int) (*Result, error) {
	var done func(err error, retries int, degraded bool)
	if plan.Live != nil {
		cfg.Trace = plan.Live.Tap(cfg.Trace, procs)
		done = plan.Live.BeginCell(procs)
	}
	r, err := Run(cfg)
	if err != nil {
		if done != nil {
			done(err, 0, false)
		}
		return nil, err
	}
	if done != nil {
		done(nil, resultRetries(r), r.Degraded)
	}
	return r, nil
}

// resultRetries totals the re-run attempts across a result's benchmarks.
func resultRetries(r *Result) int {
	n := 0
	for _, b := range r.Runs {
		n += b.Retries
	}
	return n
}

func runSweepSequential(plan SweepPlan) ([]*Result, error) {
	out := make([]*Result, 0, len(plan.Axis))
	scratch := &cellScratch{}
	var cursor units.Seconds
	for _, p := range plan.Axis {
		ctx := CellContext{Procs: p, Rec: plan.Trace, Origin: cursor}
		cfg, err := plan.Configure(ctx)
		if err != nil {
			return nil, fmt.Errorf("suite: p=%d: %w", p, err)
		}
		if ctx.Rec != nil {
			cfg.Trace = ctx.Rec
			cfg.TraceAt = ctx.Origin
		}
		cfg.scratch = scratch
		r, err := runCell(plan, cfg, p)
		if err != nil {
			return nil, fmt.Errorf("suite: p=%d: %w", p, err)
		}
		cursor = r.TraceEnd
		out = append(out, r)
	}
	return out, nil
}

// runSweepParallel runs the axis on exactly plan.Workers goroutines.
// Workers claim contiguous axis-order chunks off an atomic cursor and
// run each chunk's cells back to back against worker-local state: one
// batch tracer collecting every cell the worker runs (delimited by
// per-cell marks) and one cellScratch recycling measurement buffers.
// Compared with a goroutine-per-cell pool this amortizes tracer and
// scratch construction across a whole batch and keeps adjacent cells'
// merges reading from the same arenas.
func runSweepParallel(plan SweepPlan) ([]*Result, error) {
	n := len(plan.Axis)
	workers := plan.Workers
	if workers > n {
		workers = n
	}
	// Several chunks per worker so a slow chunk doesn't serialise the
	// tail, while chunks stay large enough to amortize claim overhead.
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	type cellState struct {
		res      *Result
		rec      *obs.Tracer
		from, to obs.Mark
		err      error
	}
	cells := make([]cellState, n)
	var (
		next     atomic.Int64 // next unclaimed axis index
		failedAt atomic.Int64 // lowest failing axis index so far
		wg       sync.WaitGroup
	)
	failedAt.Store(int64(n))
	fail := func(i int) {
		for {
			cur := failedAt.Load()
			if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rec *obs.Tracer
			if plan.Trace != nil {
				rec = obs.NewTracer()
			}
			scratch := &cellScratch{}
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					// Cells after a failure are doomed to be discarded —
					// skip them. Cells before it still run, so the error
					// contract (first failing cell in axis order) holds.
					if int64(i) > failedAt.Load() {
						continue
					}
					p := plan.Axis[i]
					c := &cells[i]
					c.rec = rec
					c.from = rec.Mark()
					ctx := CellContext{Procs: p, Rec: rec}
					cfg, err := plan.Configure(ctx)
					if err != nil {
						c.err = fmt.Errorf("suite: p=%d: %w", p, err)
						fail(i)
						continue
					}
					if rec != nil {
						cfg.Trace = rec
						cfg.TraceAt = 0
					}
					cfg.scratch = scratch
					r, err := runCell(plan, cfg, p)
					if err != nil {
						c.err = fmt.Errorf("suite: p=%d: %w", p, err)
						fail(i)
						continue
					}
					c.res = r
					c.to = rec.Mark()
				}
			}
		}()
	}
	wg.Wait()
	for i := range cells {
		if cells[i].err != nil {
			return nil, cells[i].err
		}
	}
	// Merge in axis order: stream each cell's zero-based mark range end
	// to end onto the campaign clock, exactly where the sequential
	// schedule would have recorded it.
	out := make([]*Result, n)
	var cursor units.Seconds
	for i := range cells {
		cells[i].rec.MergeRangeInto(plan.Trace, cells[i].from, cells[i].to, cursor)
		cells[i].res.TraceEnd += cursor
		cursor = cells[i].res.TraceEnd
		out[i] = cells[i].res
	}
	return out, nil
}

// SweepParallel is Sweep on a worker pool: the same cells, seeds and
// results, executed up to workers at a time.
func SweepParallel(spec *cluster.Spec, procs []int, workers int) ([]*Result, error) {
	return RunSweepPlan(SweepPlan{
		Axis:    procs,
		Workers: workers,
		Configure: func(ctx CellContext) (Config, error) {
			return SeededConfig(spec, ctx.Procs, 17), nil
		},
	})
}
