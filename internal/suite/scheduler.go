package suite

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/units"
)

// LiveSink is the scheduler's view of a wall-clock telemetry plane.
// The suite package is on the deterministic side of the two-plane
// architecture, so it must not import internal/obs/live (greenvet's
// layering analyzer enforces this); instead the live plane's Hub
// satisfies this interface structurally and callers on the wall-clock
// side (cmd/greenbench, examples) plug it in. BeginCell returns a plain
// func — an unnamed type — precisely so that satisfaction needs no
// shared named types between the two planes.
//
// A sink must be inert with respect to the virtual plane: Tap forwards
// every record to inner verbatim, and nothing a sink does may change
// results, trace or metrics by a byte.
type LiveSink interface {
	// SweepStarted announces a sweep of total cells on workers goroutines.
	SweepStarted(total, workers int)
	// SweepFinished marks the sweep complete.
	SweepFinished()
	// Tap wraps a cell's recorder so the record stream is mirrored onto
	// the live plane; it must forward to inner unchanged.
	Tap(inner obs.Recorder, procs int) obs.Recorder
	// BeginCell announces a cell entering execution and returns the
	// function called exactly once with its outcome: a non-nil err for a
	// failed cell, otherwise the retry total and degraded flag.
	BeginCell(procs int) func(err error, retries int, degraded bool)
}

// CellContext is what SweepPlan.Configure receives for one sweep cell.
type CellContext struct {
	// Procs is the cell's process count (one value of SweepPlan.Axis).
	Procs int
	// Rec is the recorder the cell runs under: the campaign tracer itself
	// when the sweep is sequential, a fresh per-cell tracer when it is
	// parallel, nil when the plan has no tracer. Configure uses it to
	// wire journaling hooks (Mark/Since); the scheduler installs it as
	// the run's Config.Trace, overriding anything Configure set there.
	Rec *obs.Tracer
	// Origin is the campaign-clock time at which Rec's timeline begins
	// for this cell: the accumulated sweep time so far when sequential,
	// always zero when parallel. Subtracting it from times read off Rec
	// yields cell-relative (scheduler-invariant) times — what journals
	// store so a sweep can resume under either scheduler.
	Origin units.Seconds
}

// SweepPlan describes a process-count sweep: which cells to run, how to
// configure each, how many to run at once, and where the campaign's
// observability stream goes.
//
// Every cell of a sweep is independent by construction — fault draws are
// pure functions of (plan seed, benchmark, procs, attempt) and meter
// noise is seeded per process count — so cells may run in any order or
// concurrently without results changing. The scheduler exploits that:
// with Workers > 1 cells run on a worker pool, and the per-cell traces
// are merged back into the campaign tracer in axis order, reproducing
// the sequential schedule's results, trace and metrics byte-for-byte.
type SweepPlan struct {
	// Axis is the ordered process-count axis; results come back in this
	// order regardless of execution order.
	Axis []int
	// Workers caps concurrently-running cells. 0 or 1 runs the classic
	// sequential schedule; n > 1 runs up to n cells at once.
	Workers int
	// Trace, when non-nil, receives the campaign's spans, events and
	// metrics — laid out end to end on the virtual-time axis exactly as a
	// sequential sweep records them.
	Trace *obs.Tracer
	// Live, when non-nil, receives wall-clock telemetry: cell lifecycle
	// events plus a mirror of each cell's record stream (via Tap).
	// The live plane is strictly read-only over the virtual plane —
	// attaching a sink cannot change results, trace or metrics by a byte.
	Live LiveSink
	// Configure builds the Config for one cell. It must be safe for
	// concurrent calls when Workers > 1. The scheduler owns the returned
	// config's Trace and TraceAt fields.
	Configure func(ctx CellContext) (Config, error)
}

// RunSweepPlan executes the plan and returns one Result per axis entry,
// in axis order. With Workers > 1 the cells run concurrently but the
// returned results, the campaign trace and the campaign metrics are
// byte-identical to the sequential schedule's. On error the first
// failing cell in axis order is reported; under the parallel schedule
// later cells may already have run by then (they are discarded), whereas
// the sequential schedule stops at the failure.
func RunSweepPlan(plan SweepPlan) ([]*Result, error) {
	if plan.Configure == nil {
		return nil, errors.New("suite: sweep plan has no Configure")
	}
	workers := plan.Workers
	if workers < 1 || len(plan.Axis) <= 1 {
		workers = 1
	}
	if plan.Live != nil {
		plan.Live.SweepStarted(len(plan.Axis), workers)
		defer plan.Live.SweepFinished()
	}
	if plan.Workers > 1 && len(plan.Axis) > 1 {
		return runSweepParallel(plan)
	}
	return runSweepSequential(plan)
}

// runCell executes one configured cell under the plan's live sink: the
// sink sees the cell start, the mirrored record stream (through the tap
// installed as cfg.Trace), and the completion or failure. With a nil
// sink this is exactly Run(cfg).
func runCell(plan SweepPlan, cfg Config, procs int) (*Result, error) {
	var done func(err error, retries int, degraded bool)
	if plan.Live != nil {
		cfg.Trace = plan.Live.Tap(cfg.Trace, procs)
		done = plan.Live.BeginCell(procs)
	}
	r, err := Run(cfg)
	if err != nil {
		if done != nil {
			done(err, 0, false)
		}
		return nil, err
	}
	if done != nil {
		done(nil, resultRetries(r), r.Degraded)
	}
	return r, nil
}

// resultRetries totals the re-run attempts across a result's benchmarks.
func resultRetries(r *Result) int {
	n := 0
	for _, b := range r.Runs {
		n += b.Retries
	}
	return n
}

func runSweepSequential(plan SweepPlan) ([]*Result, error) {
	out := make([]*Result, 0, len(plan.Axis))
	var cursor units.Seconds
	for _, p := range plan.Axis {
		ctx := CellContext{Procs: p, Rec: plan.Trace, Origin: cursor}
		cfg, err := plan.Configure(ctx)
		if err != nil {
			return nil, fmt.Errorf("suite: p=%d: %w", p, err)
		}
		if ctx.Rec != nil {
			cfg.Trace = ctx.Rec
			cfg.TraceAt = ctx.Origin
		}
		r, err := runCell(plan, cfg, p)
		if err != nil {
			return nil, fmt.Errorf("suite: p=%d: %w", p, err)
		}
		cursor = r.TraceEnd
		out = append(out, r)
	}
	return out, nil
}

func runSweepParallel(plan SweepPlan) ([]*Result, error) {
	type cell struct {
		res *Result
		rec *obs.Tracer
		err error
	}
	cells := make([]cell, len(plan.Axis))
	sem := make(chan struct{}, plan.Workers)
	var wg sync.WaitGroup
	for i, p := range plan.Axis {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var rec *obs.Tracer
			if plan.Trace != nil {
				rec = obs.NewTracer()
			}
			ctx := CellContext{Procs: p, Rec: rec}
			cfg, err := plan.Configure(ctx)
			if err != nil {
				cells[i].err = fmt.Errorf("suite: p=%d: %w", p, err)
				return
			}
			if rec != nil {
				cfg.Trace = rec
				cfg.TraceAt = 0
			}
			r, err := runCell(plan, cfg, p)
			if err != nil {
				cells[i].err = fmt.Errorf("suite: p=%d: %w", p, err)
				return
			}
			cells[i] = cell{res: r, rec: rec}
		}()
	}
	wg.Wait()
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
	}
	// Merge in axis order: lay each cell's zero-based trace end to end on
	// the campaign clock, exactly where the sequential schedule would
	// have recorded it.
	out := make([]*Result, len(cells))
	var cursor units.Seconds
	for i := range cells {
		cells[i].rec.MergeInto(plan.Trace, cursor)
		cells[i].res.TraceEnd += cursor
		cursor = cells[i].res.TraceEnd
		out[i] = cells[i].res
	}
	return out, nil
}

// SweepParallel is Sweep on a worker pool: the same cells, seeds and
// results, executed up to workers at a time.
func SweepParallel(spec *cluster.Spec, procs []int, workers int) ([]*Result, error) {
	return RunSweepPlan(SweepPlan{
		Axis:    procs,
		Workers: workers,
		Configure: func(ctx CellContext) (Config, error) {
			return SeededConfig(spec, ctx.Procs, 17), nil
		},
	})
}
