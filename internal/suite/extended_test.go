package suite

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestRunExtendedSevenBenchmarks(t *testing.T) {
	res, err := RunExtendedOn(cluster.Fire(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 7 {
		t.Fatalf("got %d runs, want 7", len(res.Runs))
	}
	for i, name := range ExtendedOrder {
		m := res.Runs[i].Measurement
		if m.Benchmark != name {
			t.Errorf("run %d = %q, want %q", i, m.Benchmark, name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunExtendedMetricLabels(t *testing.T) {
	res, err := RunExtendedOn(cluster.Fire(), 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		BenchHPL:          "GFLOPS",
		BenchDGEMM:        "GFLOPS",
		BenchSTREAM:       "MBPS",
		BenchPTRANS:       "MBPS",
		BenchRandomAccess: "GUPS",
		BenchFFT:          "GFLOPS",
		BenchIOzone:       "MBPS",
	}
	for _, b := range res.Runs {
		if got := b.Measurement.Metric; got != want[b.Measurement.Benchmark] {
			t.Errorf("%s metric = %q, want %q", b.Measurement.Benchmark, got, want[b.Measurement.Benchmark])
		}
	}
}

func TestRunExtendedOrderingConsistency(t *testing.T) {
	// DGEMM must outperform HPL (no comm/pivoting); FFT must be far below
	// both on the same machine.
	res, err := RunExtendedOn(cluster.Fire(), 128)
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]float64{}
	for _, b := range res.Runs {
		perf[b.Measurement.Benchmark] = b.Measurement.Performance
	}
	if perf[BenchDGEMM] <= perf[BenchHPL] {
		t.Errorf("DGEMM %v not above HPL %v", perf[BenchDGEMM], perf[BenchHPL])
	}
	if perf[BenchFFT] >= perf[BenchHPL]/2 {
		t.Errorf("FFT %v implausibly close to HPL %v", perf[BenchFFT], perf[BenchHPL])
	}
}

func TestExtendedTGI(t *testing.T) {
	ref, err := RunExtendedOn(cluster.SystemG(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	test, err := RunExtendedOn(cluster.Fire(), 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Scheme{core.ArithmeticMean, core.TimeWeighted,
		core.EnergyWeighted, core.PowerWeighted} {
		c, err := core.Compute(test.Measurements(), ref.Measurements(), s, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if c.TGI <= 0 || math.IsNaN(c.TGI) {
			t.Errorf("%v: TGI = %v", s, c.TGI)
		}
		if len(c.Benchmarks) != 7 {
			t.Errorf("%v: %d components", s, len(c.Benchmarks))
		}
	}
	// Anchor: reference against itself is 1 with seven components too.
	c, err := core.Compute(ref.Measurements(), ref.Measurements(), core.ArithmeticMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TGI-1) > 1e-9 {
		t.Errorf("extended self-TGI = %v", c.TGI)
	}
}

func TestRunExtendedDeterministic(t *testing.T) {
	a, err := RunExtendedOn(cluster.Fire(), 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExtendedOn(cluster.Fire(), 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Measurement != b.Runs[i].Measurement {
			t.Errorf("run %d not deterministic", i)
		}
	}
}
