package suite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
)

func marshalResults(t *testing.T, rs []*Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fireFaultyPlan is a fixed-seed fault scenario on the Fire axis: a
// scheduled crash forcing a retry, a certain straggler and meter faults.
func fireFaultyPlan() *faults.Plan {
	return &faults.Plan{
		Seed:      11,
		Crashes:   []faults.Crash{{Benchmark: BenchHPL, Node: 1, At: 50, Attempt: 0}},
		Straggler: &faults.Straggler{Prob: 1, ClockFactor: 0.9},
		Meter:     &faults.Meter{DropRate: 0.08, GlitchRate: 0.02, GlitchWatts: 400},
	}
}

// TestParallelFireSweepByteIdentical is the scheduler's golden test: the
// paper's Fire sweep under -workers N must serialise byte-for-byte like
// the sequential schedule — with and without an active fault plan.
func TestParallelFireSweepByteIdentical(t *testing.T) {
	spec := cluster.Fire()
	cases := []struct {
		name string
		plan *faults.Plan
	}{
		{"clean", nil},
		{"faulty", fireFaultyPlan()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			configure := func(ctx CellContext) (Config, error) {
				cfg := SeededConfig(spec, ctx.Procs, 17)
				if tc.plan != nil {
					cfg.Faults = tc.plan
					cfg.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 30}
				}
				return cfg, nil
			}
			seq, err := RunSweepPlan(SweepPlan{Axis: FireSweep(), Configure: configure})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 9} {
				par, err := RunSweepPlan(SweepPlan{
					Axis: FireSweep(), Workers: workers, Configure: configure,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(marshalResults(t, seq), marshalResults(t, par)) {
					t.Errorf("workers=%d sweep output differs from sequential", workers)
				}
			}
		})
	}
}

// TestParallelSweepTraceByteIdentical: the merged campaign trace and
// metrics of a parallel sweep must reproduce the sequential recording
// byte-for-byte — spans laid end to end on the virtual-time axis and
// metric accumulation replayed in axis order.
func TestParallelSweepTraceByteIdentical(t *testing.T) {
	axis := []int{2, 4, 8}
	sweep := func(workers int) (*obs.Tracer, []*Result) {
		tracer := obs.NewTracer()
		rs, err := RunSweepPlan(SweepPlan{
			Axis:    axis,
			Workers: workers,
			Trace:   tracer,
			Configure: func(ctx CellContext) (Config, error) {
				return faultyConfig(ctx.Procs), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tracer, rs
	}
	chrome := func(tr *obs.Tracer) []byte {
		path := filepath.Join(t.TempDir(), "trace.json")
		if err := obs.WriteChromeTraceFile(path, tr.Spans(), tr.Events()); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	metrics := func(tr *obs.Tracer) []byte {
		var buf bytes.Buffer
		if err := tr.Registry().Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seqTracer, seqResults := sweep(1)
	parTracer, parResults := sweep(3)
	if !bytes.Equal(marshalResults(t, seqResults), marshalResults(t, parResults)) {
		t.Error("traced parallel sweep results differ from sequential")
	}
	if !bytes.Equal(chrome(seqTracer), chrome(parTracer)) {
		t.Error("parallel campaign trace differs from sequential recording")
	}
	if !bytes.Equal(metrics(seqTracer), metrics(parTracer)) {
		t.Errorf("parallel campaign metrics differ from sequential:\n%s\n%s",
			metrics(seqTracer), metrics(parTracer))
	}
	// TraceEnd bookkeeping must tile the campaign axis identically too.
	// It is never serialised (json:"-") and the merge associates its
	// floating-point additions differently from the in-place sequential
	// clock, so equality here is to ulp-level tolerance; all serialised
	// artefacts (results JSON, trace, metrics) are byte-compared above.
	for i := range seqResults {
		s, p := float64(seqResults[i].TraceEnd), float64(parResults[i].TraceEnd)
		if diff := math.Abs(s - p); diff > 1e-6 {
			t.Errorf("p=%d: TraceEnd %v (sequential) != %v (parallel), diff %g",
				seqResults[i].Procs, s, p, diff)
		}
	}
}

// TestParallelSweepSharedJournal exercises the worker pool against one
// shared journal — the greenbench checkpointing path — and is the
// scheduler's data-race canary under `go test -race`.
func TestParallelSweepSharedJournal(t *testing.T) {
	spec := cluster.Testbed()
	axis := []int{2, 3, 4, 5, 6, 8}
	journal, err := OpenJournal(filepath.Join(t.TempDir(), "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Bind(PaperOrder()); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	rs, err := RunSweepPlan(SweepPlan{
		Axis:    axis,
		Workers: 8,
		Trace:   tracer,
		Configure: func(ctx CellContext) (Config, error) {
			cfg := SeededConfig(spec, ctx.Procs, 17)
			mark := ctx.Rec.Mark()
			cfg.OnBenchmark = func(bench string, run BenchmarkRun) error {
				spans, events := ctx.Rec.Since(mark)
				mark = ctx.Rec.Mark()
				key := CellKey(spec.Name, ctx.Procs, cfg.Placement.String(), bench)
				journal.SetTrace(key, CellTrace{
					Spans:  obs.ShiftedSpans(spans, -ctx.Origin),
					Events: obs.ShiftedEvents(events, -ctx.Origin),
				})
				return journal.Record(key, run)
			}
			return cfg, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(axis) {
		t.Fatalf("got %d results, want %d", len(rs), len(axis))
	}
	if want := len(axis) * 3; journal.Len() != want {
		t.Errorf("journal holds %d cells, want %d", journal.Len(), want)
	}
	// Every cell trace landed, relative to its own cell origin.
	for _, p := range axis {
		for _, b := range PaperOrder() {
			tr, ok := journal.LookupTrace(CellKey(spec.Name, p, "cyclic", b))
			if !ok {
				t.Errorf("no journaled trace for p=%d %s", p, b)
				continue
			}
			if len(tr.Spans) == 0 {
				t.Errorf("empty journaled trace for p=%d %s", p, b)
			}
		}
	}
}

// TestSweepPlanErrors: a failing cell reports the first axis position
// that failed, wrapped with its process count, and Configure is required.
func TestSweepPlanErrors(t *testing.T) {
	if _, err := RunSweepPlan(SweepPlan{Axis: []int{2}}); err == nil {
		t.Error("plan without Configure accepted")
	}
	spec := cluster.Testbed()
	for _, workers := range []int{1, 4} {
		_, err := RunSweepPlan(SweepPlan{
			Axis:    []int{2, 4, 6},
			Workers: workers,
			Configure: func(ctx CellContext) (Config, error) {
				cfg := SeededConfig(spec, ctx.Procs, 17)
				if ctx.Procs >= 4 {
					cfg.Procs = -1 // invalid: fails Validate inside Run
				}
				return cfg, nil
			},
		})
		if err == nil {
			t.Fatalf("workers=%d: invalid cell accepted", workers)
		}
		if !strings.Contains(err.Error(), "p=4") {
			t.Errorf("workers=%d: error does not name the first failing cell: %v", workers, err)
		}
	}
}

// TestSweepSeededViaPlanUnchanged pins the refactored SweepSeeded to its
// historical output: routing the classic entry points through the
// scheduler must not change a single byte.
func TestSweepSeededViaPlanUnchanged(t *testing.T) {
	spec := cluster.Testbed()
	procs := []int{2, 4, 8}
	direct := make([]*Result, 0, len(procs))
	for _, p := range procs {
		r, err := Run(SeededConfig(spec, p, 17))
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, r)
	}
	viaPlan, err := SweepSeeded(spec, procs, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalResults(t, direct), marshalResults(t, viaPlan)) {
		t.Error("SweepSeeded output changed after scheduler refactor")
	}
	viaParallel, err := SweepParallel(spec, procs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalResults(t, direct), marshalResults(t, viaParallel)) {
		t.Error("SweepParallel output differs from direct runs")
	}
}

// TestSweepWorkerEdgeCases pins the scheduler's degenerate worker
// counts: one worker (which must take the sequential path) and more
// workers than cells (which must clamp) both serialise results, trace
// and metrics byte-identically to the sequential schedule.
func TestSweepWorkerEdgeCases(t *testing.T) {
	axis := []int{2, 4, 8}
	sweep := func(workers int) ([]byte, []byte, []byte) {
		tracer := obs.NewTracer()
		rs, err := RunSweepPlan(SweepPlan{
			Axis:    axis,
			Workers: workers,
			Trace:   tracer,
			Configure: func(ctx CellContext) (Config, error) {
				return faultyConfig(ctx.Procs), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var metrics bytes.Buffer
		if err := tracer.Registry().Snapshot().WriteJSON(&metrics); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "trace.json")
		if err := obs.WriteChromeTraceFile(path, tracer.Spans(), tracer.Events()); err != nil {
			t.Fatal(err)
		}
		chrome, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return marshalResults(t, rs), chrome, metrics.Bytes()
	}
	baseRes, baseSpans, baseMetrics := sweep(0) // classic sequential schedule
	for _, workers := range []int{1, len(axis) + 5} {
		res, spans, metrics := sweep(workers)
		if !bytes.Equal(res, baseRes) {
			t.Errorf("workers=%d: results differ from sequential", workers)
		}
		if !bytes.Equal(spans, baseSpans) {
			t.Errorf("workers=%d: trace differs from sequential", workers)
		}
		if !bytes.Equal(metrics, baseMetrics) {
			t.Errorf("workers=%d: metrics differ from sequential", workers)
		}
	}
}

// TestSweepParallelErrorNoLeak: a sweep with failing cells must report
// the first failure in axis order, terminate every worker goroutine,
// and never deadlock the merge — with a live campaign tracer attached,
// so the failure path is also a -race canary.
func TestSweepParallelErrorNoLeak(t *testing.T) {
	spec := cluster.Testbed()
	before := runtime.NumGoroutine()
	_, err := RunSweepPlan(SweepPlan{
		Axis:    []int{2, 3, 4, 5, 6, 8},
		Workers: 4,
		Trace:   obs.NewTracer(),
		Configure: func(ctx CellContext) (Config, error) {
			cfg := SeededConfig(spec, ctx.Procs, 17)
			if ctx.Procs >= 4 {
				cfg.Procs = -1 // invalid: fails Validate inside Run
			}
			return cfg, nil
		},
	})
	if err == nil {
		t.Fatal("sweep with failing cells returned no error")
	}
	if !strings.Contains(err.Error(), "p=4") {
		t.Errorf("error does not name the first failing cell in axis order: %v", err)
	}
	// The worker goroutines hold no channels open and exit once the axis
	// cursor runs out; give the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("worker goroutines leaked: %d running, %d before the sweep", g, before)
	}
}

// BenchmarkSweepAxisSequential runs the paper's full Fire campaign on
// one worker — the baseline the parallel scheduler is compared against
// (make bench graphs the two side by side in BENCH_sweep.json).
func BenchmarkSweepAxisSequential(b *testing.B) {
	benchmarkSweepAxis(b, FireSweep(), 1)
}

// BenchmarkSweepAxisParallel is the same campaign on four workers.
func BenchmarkSweepAxisParallel(b *testing.B) {
	benchmarkSweepAxis(b, FireSweep(), 4)
}

// BenchmarkSweepMatrix spans the cells×workers plane: the paper's
// 9-cell axis and a production-sized 32-cell axis, each at 1/2/4/8
// workers. The per-op numbers feed the scheduler-performance table in
// EXPERIMENTS.md; allocs/op divided by the cell count is the per-cell
// allocation budget the hot-path refactor is held to.
func BenchmarkSweepMatrix(b *testing.B) {
	spec := cluster.Fire()
	axes := []struct {
		name string
		axis []int
	}{
		{"cells=9", FireSweep()},
		{"cells=32", denseFireAxis(spec)},
	}
	for _, ax := range axes {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", ax.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := SweepParallel(spec, ax.axis, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// denseFireAxis is the production-sized sweep: every multiple of four
// processes up to the Fire cluster's full core count (32 cells).
func denseFireAxis(spec *cluster.Spec) []int {
	axis := make([]int, 0, spec.TotalCores()/4)
	for p := 4; p <= spec.TotalCores(); p += 4 {
		axis = append(axis, p)
	}
	return axis
}

func benchmarkSweepAxis(b *testing.B, axis []int, workers int) {
	spec := cluster.Fire()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepParallel(spec, axis, workers); err != nil {
			b.Fatal(err)
		}
	}
}
