package suite

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d cells", j.Len())
	}
	run := BenchmarkRun{
		Measurement: core.Measurement{Benchmark: "HPL", Metric: "GFLOPS",
			Performance: 13.7, Power: 297, Time: 516, Energy: 153885},
		PeakPower: 299.4,
		Samples:   518,
	}
	key := CellKey("testbed", 4, "cyclic", "HPL")
	if err := j.Record(key, run); err != nil {
		t.Fatal(err)
	}
	// A second journal process (the resumed sweep) sees the cell.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := j2.Lookup(key)
	if !ok {
		t.Fatal("recorded cell not found after reopen")
	}
	if got != run {
		t.Errorf("round trip mangled run:\n%+v\n%+v", got, run)
	}
	if _, ok := j2.Lookup(CellKey("testbed", 8, "cyclic", "HPL")); ok {
		t.Error("lookup matched a different cell")
	}
	if err := j2.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("Remove left the journal behind")
	}
	// Removing an already-removed journal is fine.
	if err := j2.Remove(); err != nil {
		t.Errorf("double remove: %v", err)
	}
}

func TestJournalFailedRunsAreCheckpointedToo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _ := OpenJournal(path)
	failed := BenchmarkRun{
		Measurement: core.Measurement{Benchmark: "STREAM", Metric: "MBPS"},
		Status:      StatusFailed,
		Retries:     2,
		Error:       "node 1 crashed at t=50s of 816s",
		WastedTime:  150,
	}
	key := CellKey("testbed", 4, "cyclic", "STREAM")
	if err := j.Record(key, failed); err != nil {
		t.Fatal(err)
	}
	j2, _ := OpenJournal(path)
	got, ok := j2.Lookup(key)
	if !ok || got.Status != StatusFailed || got.Error != failed.Error {
		t.Errorf("failed run did not survive the journal: %+v", got)
	}
}

func TestJournalCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Error("corrupt journal opened")
	} else if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), "delete it") {
		t.Errorf("unhelpful corrupt-journal error: %v", err)
	}
}

func TestJournalNoTempFileResidue(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(filepath.Join(dir, "sweep.journal"))
	for i := 0; i < 5; i++ {
		key := CellKey("testbed", i, "cyclic", "HPL")
		if err := j.Record(key, BenchmarkRun{Samples: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.journal" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only sweep.journal", names)
	}
}
