package suite

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d cells", j.Len())
	}
	run := BenchmarkRun{
		Measurement: core.Measurement{Benchmark: "HPL", Metric: "GFLOPS",
			Performance: 13.7, Power: 297, Time: 516, Energy: 153885},
		PeakPower: 299.4,
		Samples:   518,
	}
	key := CellKey("testbed", 4, "cyclic", "HPL")
	if err := j.Record(key, run); err != nil {
		t.Fatal(err)
	}
	// A second journal process (the resumed sweep) sees the cell.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := j2.Lookup(key)
	if !ok {
		t.Fatal("recorded cell not found after reopen")
	}
	if got != run {
		t.Errorf("round trip mangled run:\n%+v\n%+v", got, run)
	}
	if _, ok := j2.Lookup(CellKey("testbed", 8, "cyclic", "HPL")); ok {
		t.Error("lookup matched a different cell")
	}
	if err := j2.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("Remove left the journal behind")
	}
	// Removing an already-removed journal is fine.
	if err := j2.Remove(); err != nil {
		t.Errorf("double remove: %v", err)
	}
}

func TestJournalFailedRunsAreCheckpointedToo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _ := OpenJournal(path)
	failed := BenchmarkRun{
		Measurement: core.Measurement{Benchmark: "STREAM", Metric: "MBPS"},
		Status:      StatusFailed,
		Retries:     2,
		Error:       "node 1 crashed at t=50s of 816s",
		WastedTime:  150,
	}
	key := CellKey("testbed", 4, "cyclic", "STREAM")
	if err := j.Record(key, failed); err != nil {
		t.Fatal(err)
	}
	j2, _ := OpenJournal(path)
	got, ok := j2.Lookup(key)
	if !ok || got.Status != StatusFailed || got.Error != failed.Error {
		t.Errorf("failed run did not survive the journal: %+v", got)
	}
}

func TestJournalTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _ := OpenJournal(path)
	key := CellKey("testbed", 4, "cyclic", "HPL")
	tr := CellTrace{
		Spans: []obs.Span{{Track: "HPL", Name: "attempt 1", Start: 10, End: 30,
			Attrs: []obs.Attr{obs.Str("outcome", "ok")}}},
		Events: []obs.Event{{Track: "HPL", Name: "fault: straggler", At: 12}},
	}
	j.SetTrace(key, tr)
	if err := j.Record(key, BenchmarkRun{Samples: 3}); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := j2.LookupTrace(key)
	if !ok {
		t.Fatal("trace not found after reopen")
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("trace round trip mangled:\n%+v\n%+v", got, tr)
	}
	if _, ok := j2.LookupTrace(CellKey("testbed", 8, "cyclic", "HPL")); ok {
		t.Error("LookupTrace matched a different cell")
	}
	// An empty trace is not staged at all.
	j2.SetTrace(CellKey("testbed", 8, "cyclic", "HPL"), CellTrace{})
	if _, ok := j2.LookupTrace(CellKey("testbed", 8, "cyclic", "HPL")); ok {
		t.Error("empty trace was staged")
	}
}

func TestJournalReadsLegacyFormat(t *testing.T) {
	// A pre-trace journal is a bare map of cell key to run.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	legacy := `{"testbed|4|cyclic|HPL": {"measurement": {"benchmark": "HPL", "metric": "GFLOPS"}, "peak_power": 0, "samples": 7}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("legacy journal rejected: %v", err)
	}
	run, ok := j.Lookup(CellKey("testbed", 4, "cyclic", "HPL"))
	if !ok || run.Samples != 7 {
		t.Fatalf("legacy cell not found: %+v ok=%v", run, ok)
	}
	// Recording upgrades the file to the current layout in place.
	if err := j.Record(CellKey("testbed", 8, "cyclic", "HPL"), BenchmarkRun{Samples: 9}); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Errorf("upgraded journal has %d cells, want 2", j2.Len())
	}
}

func TestJournalCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Error("corrupt journal opened")
	} else if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), "delete it") {
		t.Errorf("unhelpful corrupt-journal error: %v", err)
	}
}

func TestJournalNoTempFileResidue(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(filepath.Join(dir, "sweep.journal"))
	for i := 0; i < 5; i++ {
		key := CellKey("testbed", i, "cyclic", "HPL")
		if err := j.Record(key, BenchmarkRun{Samples: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "sweep.journal" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only sweep.journal", names)
	}
}
