package suite

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/report"
)

// BuildReport flattens suite results into the human-readable run report:
// one row per (run, benchmark) breaking the campaign down into the time,
// energy, retries and meter repairs behind each TGI input, plus a totals
// block.
func BuildReport(title string, results []*Result) *report.RunReport {
	r := &report.RunReport{Title: title}
	var (
		benchmarks, recovered, failed int
		retries, gaps, outliers       int
		seconds, wasted, energy       float64
	)
	for _, res := range results {
		for _, b := range res.Runs {
			m := b.Measurement
			r.Rows = append(r.Rows, report.RunRow{
				System:           res.System,
				Procs:            res.Procs,
				Bench:            m.Benchmark,
				Status:           statusLabel(b.Status),
				Perf:             m.Performance,
				Metric:           m.Metric,
				MeanWatts:        float64(m.Power),
				PeakWatts:        float64(b.PeakPower),
				Seconds:          float64(m.Time),
				WastedSeconds:    float64(b.WastedTime),
				EnergyJ:          float64(m.Energy),
				Retries:          b.Retries,
				GapsFilled:       b.GapsFilled,
				OutliersRejected: b.OutliersRejected,
			})
			benchmarks++
			switch b.Status {
			case StatusRecovered:
				recovered++
			case StatusFailed:
				failed++
			}
			retries += b.Retries
			gaps += b.GapsFilled
			outliers += b.OutliersRejected
			seconds += float64(m.Time)
			wasted += float64(b.WastedTime)
			energy += float64(m.Energy)
		}
	}
	r.Summary = []report.KV{
		{Key: "runs", Value: fmt.Sprintf("%d", len(results))},
		{Key: "benchmarks", Value: fmt.Sprintf("%d (%d recovered, %d failed)",
			benchmarks, recovered, failed)},
		{Key: "retries", Value: fmt.Sprintf("%d", retries)},
		{Key: "virtual time", Value: fmt.Sprintf("%.6g s productive + %.6g s wasted",
			seconds, wasted)},
		{Key: "energy", Value: fmt.Sprintf("%.6g J", energy)},
		{Key: "meter repairs", Value: fmt.Sprintf("%d gap(s) filled, %d outlier(s) rejected",
			gaps, outliers)},
	}
	return r
}

// attemptSecondsPrefix names the per-benchmark attempt-duration
// histograms the suite runner observes; the suffix is the benchmark name.
const attemptSecondsPrefix = "suite.attempt_seconds."

// AttachPercentiles adds per-benchmark p50/p95/p99 attempt-duration rows
// to the report from a campaign metrics snapshot. The estimates come from
// the "suite.attempt_seconds.<bench>" histograms the runner observes on
// every attempt (retried and failed ones included). Snapshots without
// those histograms (e.g. an untraced run) leave the report unchanged.
func AttachPercentiles(r *report.RunReport, snap obs.Snapshot) {
	for _, h := range snap.Histograms {
		bench, ok := strings.CutPrefix(h.Name, attemptSecondsPrefix)
		if !ok || bench == "" {
			continue
		}
		p50, ok := h.Quantile(0.50)
		if !ok {
			continue
		}
		p95, _ := h.Quantile(0.95)
		p99, _ := h.Quantile(0.99)
		r.Percentiles = append(r.Percentiles, report.PercentileRow{
			Bench: bench,
			Count: h.Count,
			P50:   p50,
			P95:   p95,
			P99:   p99,
		})
	}
}
