package suite

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/series"
	"repro/internal/sim"
	"repro/internal/units"
)

// RetryPolicy governs how the suite runner reacts to injected faults and
// runaway benchmarks. All waiting happens in virtual time — the policy
// shapes the simulated campaign, not wall-clock execution.
type RetryPolicy struct {
	// MaxAttempts bounds how often one benchmark is tried; values below 1
	// mean a single attempt (no retries).
	MaxAttempts int
	// Backoff is the virtual-time delay before the first retry; each
	// further retry multiplies it by BackoffFactor (default 2). The delay
	// is charged to the benchmark's WastedTime, modelling the node
	// reboot/drain a real campaign waits through.
	Backoff       units.Seconds
	BackoffFactor float64
	// Timeout fails an attempt whose simulated runtime exceeds it (0: no
	// limit) — the straggler guard of a real suite harness.
	Timeout units.Seconds
	// EventBudget caps the discrete-event engine's event count for
	// event-driven benchmark models (IOzone's shared-storage simulation);
	// exceeding it counts as a timeout, not a hard error. 0 keeps the
	// engine default.
	EventBudget uint64
}

// Validate checks the policy's parameters.
func (p RetryPolicy) Validate() error {
	switch {
	case p.Backoff < 0:
		return fmt.Errorf("suite: negative retry backoff %v", p.Backoff)
	case p.BackoffFactor < 0:
		return fmt.Errorf("suite: negative backoff factor %v", p.BackoffFactor)
	case p.Timeout < 0:
		return fmt.Errorf("suite: negative timeout %v", p.Timeout)
	}
	return nil
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay returns the virtual-time backoff charged before attempt (1-based
// retry index).
func (p RetryPolicy) delay(attempt int) units.Seconds {
	factor := p.BackoffFactor
	if factor == 0 {
		factor = 2
	}
	return p.Backoff * units.Seconds(math.Pow(factor, float64(attempt-1)))
}

// simulated is what a benchmark model hands the measurement stage.
type simulated struct {
	metric  string
	perf    float64
	profile *cluster.LoadProfile
	// engine, when the model ran on the discrete-event kernel, carries
	// its work stats for the attempt's trace span.
	engine *sim.Stats
}

// benchStep is one benchmark of a suite: a name, its metric unit, and
// the registered workload whose performance model it runs. Steps carry
// no per-run state — the run's environment is threaded in at simulate
// time — so one assembled step list serves every cell of a sweep.
type benchStep struct {
	name   string
	metric string
	w      bench.Workload
}

// simulate runs the step's performance model against a (possibly
// fault-degraded) spec under cfg's environment.
func (st *benchStep) simulate(cfg *Config, spec *cluster.Spec) (simulated, error) {
	sm, err := st.w.Simulate(spec, bench.Env{
		Procs:       cfg.Procs,
		Placement:   cfg.Placement,
		Override:    cfg.Tunables.override(st.name),
		EventBudget: cfg.Retry.EventBudget,
	})
	if err != nil {
		return simulated{}, err
	}
	return simulated{perf: sm.Perf, profile: sm.Profile, engine: sm.Engine}, nil
}

// runSuite executes steps under the config's fault plan and retry policy.
func runSuite(cfg Config, steps []benchStep) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The benchmark models see the degraded fabric; the meter sees the
	// injected measurement faults. With an empty plan both are the
	// originals and the pipeline is bit-for-bit the fault-free one.
	spec := cfg.Faults.ApplySpec(cfg.Spec)
	model := cfg.PowerModel
	if model == nil {
		// A scratch-cached default model is reused only while the spec
		// pointer is unchanged (an injected fault plan derives a new
		// spec, which forces a rebuild). NewModel's output is a pure
		// function of the spec and nothing here mutates it.
		if sc := cfg.scratch; sc != nil && sc.model != nil && sc.model.Spec == spec {
			model = sc.model
		} else {
			var err error
			if model, err = power.NewModel(spec); err != nil {
				return nil, err
			}
			if sc := cfg.scratch; sc != nil {
				sc.model = model
			}
		}
	}
	meterCfg := cfg.Faults.ApplyMeter(cfg.Meter)
	var meter *power.Meter
	if sc := cfg.scratch; sc != nil && sc.meter != nil {
		// Scheduler-owned scratch: recycle the previous cell's meter (and
		// its sample buffers). Reconfigure restores NewMeter semantics, so
		// the sampled traces are bit-identical to a fresh meter's.
		meter = sc.meter
		if err := meter.Reconfigure(meterCfg); err != nil {
			return nil, err
		}
	} else {
		m, err := power.NewMeter(meterCfg)
		if err != nil {
			return nil, err
		}
		meter = m
		if sc := cfg.scratch; sc != nil {
			// The runner folds each sampled trace into scalars before the
			// next measurement, so buffer recycling is safe here.
			meter.ReuseSampleBuffer()
			sc.meter = meter
		}
	}
	var distBuf []int
	if sc := cfg.scratch; sc != nil {
		distBuf = sc.dist
	}
	dist, err := spec.DistributeInto(cfg.Procs, cfg.Placement, distBuf)
	if err != nil {
		return nil, err
	}
	if sc := cfg.scratch; sc != nil {
		sc.dist = dist
	}

	rec := cfg.Trace
	meter.Instrument(rec)
	clock := cfg.TraceAt

	res := &Result{
		System:      spec.Name,
		Procs:       cfg.Procs,
		ActiveNodes: cluster.ActiveNodes(dist),
		Placement:   cfg.Placement.String(),
		Runs:        make([]BenchmarkRun, 0, len(steps)),
	}
	for _, st := range steps {
		if cfg.Lookup != nil {
			if cached, ok := cfg.Lookup(st.name); ok {
				res.Runs = append(res.Runs, cached)
				// Advance the campaign clock past the cached cell so the
				// rest of the timeline lands where the original run put it
				// (resumed sweeps replay the cached cells' spans verbatim).
				clock += cached.Measurement.Time + cached.WastedTime
				continue
			}
		}
		benchStart := clock
		run, err := runStep(&cfg, spec, model, meter, meterCfg, st, &clock)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			rec.Span(obs.Span{
				Track: st.name,
				Name:  st.name,
				Start: benchStart,
				End:   clock,
				Attrs: []obs.Attr{
					obs.Str("status", statusLabel(run.Status)),
					obs.Int("retries", run.Retries),
					obs.Secs("wasted", run.WastedTime),
					obs.F64("energy_joules", float64(run.Measurement.Energy)),
				},
			})
			rec.Count("suite.benchmarks", 1)
			rec.Count("suite.retries", float64(run.Retries))
			rec.Count("suite.wasted_seconds", float64(run.WastedTime))
			rec.Count("suite.energy_joules", float64(run.Measurement.Energy))
			switch run.Status {
			case StatusRecovered:
				rec.Count("suite.benchmarks_recovered", 1)
			case StatusFailed:
				rec.Count("suite.benchmarks_failed", 1)
			}
		}
		if cfg.OnBenchmark != nil {
			if err := cfg.OnBenchmark(st.name, run); err != nil {
				return nil, fmt.Errorf("suite: checkpointing %s: %w", st.name, err)
			}
		}
		res.Runs = append(res.Runs, run)
	}
	for _, b := range res.Runs {
		if !b.OK() {
			res.Degraded = true
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"%s failed after %d attempt(s): %s",
				b.Measurement.Benchmark, b.Retries+1, b.Error))
		}
	}
	res.TraceEnd = clock
	if rec != nil {
		rec.Span(obs.Span{
			Track: obs.TrackSuite,
			Name:  fmt.Sprintf("run p=%d", cfg.Procs),
			Start: cfg.TraceAt,
			End:   clock,
			Attrs: []obs.Attr{
				obs.Str("system", res.System),
				obs.Int("procs", res.Procs),
				obs.Str("placement", res.Placement),
				obs.Str("degraded", fmt.Sprintf("%t", res.Degraded)),
			},
		})
		rec.Count("suite.runs", 1)
	}
	return res, nil
}

// statusLabel renders a Status for span attributes (the zero value
// serialises to nothing in JSON but a trace wants an explicit word).
func statusLabel(s Status) string {
	if s == StatusOK {
		return "ok"
	}
	return string(s)
}

// runStep executes one benchmark with retries. Injected faults (crashes,
// timeouts, event-budget blowouts) are retryable and, once the attempt
// budget is exhausted, degrade to a failed BenchmarkRun; model and
// measurement errors remain hard errors — they indicate a broken
// configuration, not an injected failure.
//
// clock is the campaign's virtual-time cursor: every attempt, backoff
// wait and crash advances it by exactly the time the accounting charges,
// so the recorded spans tile the timeline the way the simulated campaign
// spent it.
func runStep(cfg *Config, spec *cluster.Spec, model *power.Model,
	meter *power.Meter, meterCfg power.MeterConfig, st benchStep,
	clock *units.Seconds) (BenchmarkRun, error) {
	rec := cfg.Trace
	var wasted units.Seconds
	var lastErr error
	attempts := cfg.Retry.attempts()
	// attemptSpan charges elapsed to the campaign clock and records the
	// attempt's span with its outcome.
	attemptSpan := func(attempt int, elapsed units.Seconds, outcome string, extra ...obs.Attr) {
		if rec != nil {
			attrs := append([]obs.Attr{
				obs.Str("outcome", outcome),
				obs.Int("procs", cfg.Procs),
			}, extra...)
			rec.Span(obs.Span{
				Track: st.name,
				Name:  fmt.Sprintf("%s%d", obs.AttemptPrefix, attempt+1),
				Start: *clock,
				End:   *clock + elapsed,
				Attrs: attrs,
			})
			rec.Count("suite.attempts", 1)
			rec.Observe("suite.attempt_seconds", float64(elapsed))
			// Per-benchmark histogram: the run report surfaces its
			// p50/p95/p99 per benchmark row.
			rec.Observe("suite.attempt_seconds."+st.name, float64(elapsed))
		}
		*clock += elapsed
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := cfg.Retry.delay(attempt)
			wasted += delay
			if rec != nil {
				rec.Span(obs.Span{
					Track: st.name,
					Name:  obs.NameBackoff,
					Start: *clock,
					End:   *clock + delay,
					Attrs: []obs.Attr{obs.Int("before_attempt", attempt+1)},
				})
			}
			*clock += delay
		}
		sm, err := st.simulate(cfg, spec)
		if err != nil {
			if errors.Is(err, sim.ErrEventLimit) {
				// The event budget is a deliberate timeout, not a bug.
				wasted += cfg.Retry.Timeout
				lastErr = fmt.Errorf("attempt %d: event budget exhausted: %v", attempt+1, err)
				attemptSpan(attempt, cfg.Retry.Timeout, "event-budget", obs.Str("error", err.Error()))
				continue
			}
			return BenchmarkRun{}, fmt.Errorf("suite: %s: %w", st.name, err)
		}
		inj := cfg.Faults.Draw(st.name, cfg.Procs, attempt, sm.profile.Duration(), spec.Nodes)
		if inj.Slowdown > 1 {
			sm.perf /= inj.Slowdown
			sm.profile = stretchProfile(sm.profile, inj.Slowdown)
		}
		dur := sm.profile.Duration()
		inj.Record(rec, st.name, attempt, *clock, dur)
		if cfg.Retry.Timeout > 0 && dur > cfg.Retry.Timeout {
			wasted += cfg.Retry.Timeout
			lastErr = fmt.Errorf("attempt %d: runtime %v exceeds timeout %v (slowdown ×%.2f)",
				attempt+1, dur, cfg.Retry.Timeout, inj.Slowdown)
			attemptSpan(attempt, cfg.Retry.Timeout, "timeout", obs.F64("slowdown", inj.Slowdown))
			continue
		}
		if inj.CrashAt >= 0 && inj.CrashAt < dur {
			wasted += inj.CrashAt
			lastErr = fmt.Errorf("attempt %d: node %d crashed at t=%v of %v",
				attempt+1, inj.CrashNode, inj.CrashAt, dur)
			attemptSpan(attempt, inj.CrashAt, "crashed", obs.Int("node", inj.CrashNode))
			continue
		}
		meter.SetOrigin(*clock)
		run, err := measureStep(cfg, model, meter, meterCfg, st, sm, *clock)
		if err != nil {
			return BenchmarkRun{}, err
		}
		run.Retries = attempt
		run.WastedTime = wasted
		if attempt > 0 {
			run.Status = StatusRecovered
		}
		if rec == nil {
			// Attribute values are rendered eagerly (FormatFloat and
			// friends), so an untraced run must not build them at all.
			attemptSpan(attempt, dur, "ok")
			return run, nil
		}
		okAttrs := []obs.Attr{
			obs.F64("perf", run.Measurement.Performance),
			obs.Str("metric", run.Measurement.Metric),
			obs.F64("mean_watts", float64(run.Measurement.Power)),
		}
		if sm.engine != nil {
			okAttrs = append(okAttrs,
				obs.Int64("engine_events", int64(sm.engine.Events)),
				obs.Int("engine_peak_queue", sm.engine.PeakQueueDepth),
				obs.Int64("engine_headroom", int64(sm.engine.Headroom)))
		}
		attemptSpan(attempt, dur, "ok", okAttrs...)
		return run, nil
	}
	return BenchmarkRun{
		Measurement: failedMeasurement(st),
		Status:      StatusFailed,
		Retries:     attempts - 1,
		WastedTime:  wasted,
		Error:       lastErr.Error(),
	}, nil
}

// measureStep meters a successful attempt: sample the load profile, repair
// the trace when the fault plan perturbs the measurement path, optionally
// lift to facility power, and fold into a measurement. origin is where the
// attempt sits on the campaign's virtual-time axis; repair events are
// placed relative to it.
func measureStep(cfg *Config, model *power.Model, meter *power.Meter,
	meterCfg power.MeterConfig, st benchStep, sm simulated,
	origin units.Seconds) (BenchmarkRun, error) {
	trace, err := meter.Measure(model, sm.profile)
	if err != nil {
		return BenchmarkRun{}, fmt.Errorf("suite: metering %s: %w", st.name, err)
	}
	var rep series.RepairReport
	if cfg.Faults.MeterFaulty() {
		if trace, rep, err = trace.Repair(meterCfg.Interval, 0); err != nil {
			return BenchmarkRun{}, fmt.Errorf("suite: repairing %s trace: %w", st.name, err)
		}
		if rec := cfg.Trace; rec != nil {
			for _, g := range rep.Gaps {
				rec.Event(obs.Event{
					Track: obs.TrackMeter,
					Name:  obs.EventGapFilled,
					At:    origin + g.From,
					Attrs: []obs.Attr{
						obs.Str("bench", st.name),
						obs.Secs("from", g.From),
						obs.Secs("to", g.To),
						obs.Int("filled", g.Filled),
					},
				})
			}
			for _, at := range rep.OutlierTimes {
				rec.Event(obs.Event{
					Track: obs.TrackMeter,
					Name:  obs.EventOutlier,
					At:    origin + at,
					Attrs: []obs.Attr{obs.Str("bench", st.name)},
				})
			}
			rec.Count("repair.gaps_filled", float64(rep.GapsFilled))
			rec.Count("repair.outliers_rejected", float64(rep.OutliersRejected))
		}
	}
	if cfg.Facility != nil {
		if trace, err = cfg.Facility.ApplyTrace(trace); err != nil {
			return BenchmarkRun{}, fmt.Errorf("suite: facility model for %s: %w", st.name, err)
		}
	}
	run, err := fromTrace(trace, st.name, st.metric, sm.perf, sm.profile.Duration())
	if err != nil {
		return BenchmarkRun{}, err
	}
	run.GapsFilled = rep.GapsFilled
	run.OutliersRejected = rep.OutliersRejected
	return run, nil
}

// failedMeasurement returns an empty measurement that still names the
// benchmark, so a failed run's identity survives serialisation and
// journaling.
func failedMeasurement(st benchStep) (m core.Measurement) {
	m.Benchmark, m.Metric = st.name, st.metric
	return m
}

// stretchProfile scales a load profile's time axis by factor (a straggler
// slows the whole bulk-synchronous run down).
func stretchProfile(lp *cluster.LoadProfile, factor float64) *cluster.LoadProfile {
	out := &cluster.LoadProfile{Phases: make([]cluster.Phase, len(lp.Phases))}
	for i, ph := range lp.Phases {
		out.Phases[i] = cluster.Phase{
			Duration: ph.Duration * units.Seconds(factor),
			NodeUtil: ph.NodeUtil,
		}
	}
	return out
}

// fromTrace builds a BenchmarkRun from an already-sampled trace.
func fromTrace(trace *series.Trace, name, metric string, perf float64,
	dur units.Seconds) (BenchmarkRun, error) {
	energy, err := trace.Energy()
	if err != nil {
		return BenchmarkRun{}, fmt.Errorf("suite: integrating %s: %w", name, err)
	}
	mean, err := trace.MeanPower()
	if err != nil {
		return BenchmarkRun{}, err
	}
	peak, err := trace.PeakPower()
	if err != nil {
		return BenchmarkRun{}, err
	}
	return BenchmarkRun{
		Measurement: core.Measurement{
			Benchmark:   name,
			Metric:      metric,
			Performance: perf,
			Power:       mean,
			Time:        dur,
			Energy:      energy,
		},
		PeakPower: peak,
		Samples:   trace.Len(),
	}, nil
}
