package suite

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/series"
	"repro/internal/sim"
	"repro/internal/units"
)

// RetryPolicy governs how the suite runner reacts to injected faults and
// runaway benchmarks. All waiting happens in virtual time — the policy
// shapes the simulated campaign, not wall-clock execution.
type RetryPolicy struct {
	// MaxAttempts bounds how often one benchmark is tried; values below 1
	// mean a single attempt (no retries).
	MaxAttempts int
	// Backoff is the virtual-time delay before the first retry; each
	// further retry multiplies it by BackoffFactor (default 2). The delay
	// is charged to the benchmark's WastedTime, modelling the node
	// reboot/drain a real campaign waits through.
	Backoff       units.Seconds
	BackoffFactor float64
	// Timeout fails an attempt whose simulated runtime exceeds it (0: no
	// limit) — the straggler guard of a real suite harness.
	Timeout units.Seconds
	// EventBudget caps the discrete-event engine's event count for
	// event-driven benchmark models (IOzone's shared-storage simulation);
	// exceeding it counts as a timeout, not a hard error. 0 keeps the
	// engine default.
	EventBudget uint64
}

// Validate checks the policy's parameters.
func (p RetryPolicy) Validate() error {
	switch {
	case p.Backoff < 0:
		return fmt.Errorf("suite: negative retry backoff %v", p.Backoff)
	case p.BackoffFactor < 0:
		return fmt.Errorf("suite: negative backoff factor %v", p.BackoffFactor)
	case p.Timeout < 0:
		return fmt.Errorf("suite: negative timeout %v", p.Timeout)
	}
	return nil
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay returns the virtual-time backoff charged before attempt (1-based
// retry index).
func (p RetryPolicy) delay(attempt int) units.Seconds {
	factor := p.BackoffFactor
	if factor == 0 {
		factor = 2
	}
	return p.Backoff * units.Seconds(math.Pow(factor, float64(attempt-1)))
}

// simulated is what a benchmark model hands the measurement stage.
type simulated struct {
	metric  string
	perf    float64
	profile *cluster.LoadProfile
}

// benchStep is one benchmark of a suite: a name plus the closure that runs
// its performance model against a (possibly fault-degraded) spec.
type benchStep struct {
	name     string
	metric   string
	simulate func(spec *cluster.Spec) (simulated, error)
}

// runSuite executes steps under the config's fault plan and retry policy.
func runSuite(cfg Config, steps []benchStep) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The benchmark models see the degraded fabric; the meter sees the
	// injected measurement faults. With an empty plan both are the
	// originals and the pipeline is bit-for-bit the fault-free one.
	spec := cfg.Faults.ApplySpec(cfg.Spec)
	model := cfg.PowerModel
	if model == nil {
		var err error
		if model, err = power.NewModel(spec); err != nil {
			return nil, err
		}
	}
	meterCfg := cfg.Faults.ApplyMeter(cfg.Meter)
	meter, err := power.NewMeter(meterCfg)
	if err != nil {
		return nil, err
	}
	dist, err := spec.Distribute(cfg.Procs, cfg.Placement)
	if err != nil {
		return nil, err
	}

	res := &Result{
		System:      spec.Name,
		Procs:       cfg.Procs,
		ActiveNodes: cluster.ActiveNodes(dist),
		Placement:   cfg.Placement.String(),
	}
	for _, st := range steps {
		if cfg.Lookup != nil {
			if cached, ok := cfg.Lookup(st.name); ok {
				res.Runs = append(res.Runs, cached)
				continue
			}
		}
		run, err := runStep(&cfg, spec, model, meter, meterCfg, st)
		if err != nil {
			return nil, err
		}
		if cfg.OnBenchmark != nil {
			if err := cfg.OnBenchmark(st.name, run); err != nil {
				return nil, fmt.Errorf("suite: checkpointing %s: %w", st.name, err)
			}
		}
		res.Runs = append(res.Runs, run)
	}
	for _, b := range res.Runs {
		if !b.OK() {
			res.Degraded = true
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"%s failed after %d attempt(s): %s",
				b.Measurement.Benchmark, b.Retries+1, b.Error))
		}
	}
	return res, nil
}

// runStep executes one benchmark with retries. Injected faults (crashes,
// timeouts, event-budget blowouts) are retryable and, once the attempt
// budget is exhausted, degrade to a failed BenchmarkRun; model and
// measurement errors remain hard errors — they indicate a broken
// configuration, not an injected failure.
func runStep(cfg *Config, spec *cluster.Spec, model *power.Model,
	meter *power.Meter, meterCfg power.MeterConfig, st benchStep) (BenchmarkRun, error) {
	var wasted units.Seconds
	var lastErr error
	attempts := cfg.Retry.attempts()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wasted += cfg.Retry.delay(attempt)
		}
		sm, err := st.simulate(spec)
		if err != nil {
			if errors.Is(err, sim.ErrEventLimit) {
				// The event budget is a deliberate timeout, not a bug.
				wasted += cfg.Retry.Timeout
				lastErr = fmt.Errorf("attempt %d: event budget exhausted: %v", attempt+1, err)
				continue
			}
			return BenchmarkRun{}, fmt.Errorf("suite: %s: %w", st.name, err)
		}
		inj := cfg.Faults.Draw(st.name, cfg.Procs, attempt, sm.profile.Duration(), spec.Nodes)
		if inj.Slowdown > 1 {
			sm.perf /= inj.Slowdown
			sm.profile = stretchProfile(sm.profile, inj.Slowdown)
		}
		dur := sm.profile.Duration()
		if cfg.Retry.Timeout > 0 && dur > cfg.Retry.Timeout {
			wasted += cfg.Retry.Timeout
			lastErr = fmt.Errorf("attempt %d: runtime %v exceeds timeout %v (slowdown ×%.2f)",
				attempt+1, dur, cfg.Retry.Timeout, inj.Slowdown)
			continue
		}
		if inj.CrashAt >= 0 && inj.CrashAt < dur {
			wasted += inj.CrashAt
			lastErr = fmt.Errorf("attempt %d: node %d crashed at t=%v of %v",
				attempt+1, inj.CrashNode, inj.CrashAt, dur)
			continue
		}
		run, err := measureStep(cfg, model, meter, meterCfg, st, sm)
		if err != nil {
			return BenchmarkRun{}, err
		}
		run.Retries = attempt
		run.WastedTime = wasted
		if attempt > 0 {
			run.Status = StatusRecovered
		}
		return run, nil
	}
	return BenchmarkRun{
		Measurement: failedMeasurement(st),
		Status:      StatusFailed,
		Retries:     attempts - 1,
		WastedTime:  wasted,
		Error:       lastErr.Error(),
	}, nil
}

// measureStep meters a successful attempt: sample the load profile, repair
// the trace when the fault plan perturbs the measurement path, optionally
// lift to facility power, and fold into a measurement.
func measureStep(cfg *Config, model *power.Model, meter *power.Meter,
	meterCfg power.MeterConfig, st benchStep, sm simulated) (BenchmarkRun, error) {
	trace, err := meter.Measure(model, sm.profile)
	if err != nil {
		return BenchmarkRun{}, fmt.Errorf("suite: metering %s: %w", st.name, err)
	}
	var rep series.RepairReport
	if cfg.Faults.MeterFaulty() {
		if trace, rep, err = trace.Repair(meterCfg.Interval, 0); err != nil {
			return BenchmarkRun{}, fmt.Errorf("suite: repairing %s trace: %w", st.name, err)
		}
	}
	if cfg.Facility != nil {
		if trace, err = cfg.Facility.ApplyTrace(trace); err != nil {
			return BenchmarkRun{}, fmt.Errorf("suite: facility model for %s: %w", st.name, err)
		}
	}
	run, err := fromTrace(trace, st.name, st.metric, sm.perf, sm.profile.Duration())
	if err != nil {
		return BenchmarkRun{}, err
	}
	run.GapsFilled = rep.GapsFilled
	run.OutliersRejected = rep.OutliersRejected
	return run, nil
}

// failedMeasurement returns an empty measurement that still names the
// benchmark, so a failed run's identity survives serialisation and
// journaling.
func failedMeasurement(st benchStep) (m core.Measurement) {
	m.Benchmark, m.Metric = st.name, st.metric
	return m
}

// stretchProfile scales a load profile's time axis by factor (a straggler
// slows the whole bulk-synchronous run down).
func stretchProfile(lp *cluster.LoadProfile, factor float64) *cluster.LoadProfile {
	out := &cluster.LoadProfile{Phases: make([]cluster.Phase, len(lp.Phases))}
	for i, ph := range lp.Phases {
		out.Phases[i] = cluster.Phase{
			Duration: ph.Duration * units.Seconds(factor),
			NodeUtil: ph.NodeUtil,
		}
	}
	return out
}

// fromTrace builds a BenchmarkRun from an already-sampled trace.
func fromTrace(trace *series.Trace, name, metric string, perf float64,
	dur units.Seconds) (BenchmarkRun, error) {
	energy, err := trace.Energy()
	if err != nil {
		return BenchmarkRun{}, fmt.Errorf("suite: integrating %s: %w", name, err)
	}
	mean, err := trace.MeanPower()
	if err != nil {
		return BenchmarkRun{}, err
	}
	peak, err := trace.PeakPower()
	if err != nil {
		return BenchmarkRun{}, err
	}
	return BenchmarkRun{
		Measurement: core.Measurement{
			Benchmark:   name,
			Metric:      metric,
			Performance: perf,
			Power:       mean,
			Time:        dur,
			Energy:      energy,
		},
		PeakPower: peak,
		Samples:   trace.Len(),
	}, nil
}
