package suite

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
)

// CampaignSpec describes one journal-backed campaign run — the
// job-scoped entry point shared by the greenbench CLI and the campaign
// server (internal/campaign). Both front ends build a CampaignSpec and
// call RunCampaign, so a sweep submitted over HTTP executes the exact
// code path of the same sweep run from the command line and produces
// byte-identical artefacts.
//
// The spec stays on the deterministic side of the two-plane
// architecture: everything wall-clock (pacing, cancellation, shard
// supervision, status lines) is injected through the hook fields, which
// the deterministic core invokes but never implements. All hooks are
// optional; the zero hook set runs the campaign silently to completion.
type CampaignSpec struct {
	// Spec is the cluster under test (required).
	Spec *cluster.Spec
	// Placement is the process placement policy.
	Placement cluster.Placement
	// Benchmarks is the ordered benchmark list (empty: the paper's three).
	Benchmarks []string
	// Faults injects the campaign's fault scenario (nil: none).
	Faults *faults.Plan
	// Retry governs per-benchmark retries, backoff and timeouts.
	Retry RetryPolicy

	// Sweep selects the process-count sweep; false runs one point.
	Sweep bool
	// Procs is the single-run process count (0: all cores). Ignored for
	// sweeps.
	Procs int
	// Axis overrides the sweep's process axis (nil: DefaultAxis(Spec)).
	Axis []int
	// Workers caps concurrently-running sweep cells (0 or 1: sequential).
	Workers int

	// JournalPath checkpoints completed sweep cells ("" for none; only
	// sweeps journal).
	JournalPath string
	// Resume skips cells already checkpointed in the journal.
	Resume bool
	// KeepQuarantined reuses journaled quarantined cells instead of
	// re-running them — set by the sharded supervisor's render pass.
	KeepQuarantined bool

	// Trace, when non-nil, records the campaign's deterministic
	// observability stream (spans, events, metrics).
	Trace *obs.Tracer
	// Live, when non-nil, receives wall-clock telemetry (see LiveSink).
	Live LiveSink

	// PauseCell, when non-nil, runs before each cell — wall-clock pacing
	// for demos and e2e tests; it cannot affect virtual results.
	PauseCell func()
	// Check, when non-nil, runs before each cell; a non-nil error aborts
	// the campaign. This is the cancellation hook of the campaign server.
	// It must be safe for concurrent calls when Workers > 1.
	Check func() error
	// AfterCell, when non-nil, runs after each freshly-executed
	// (non-journal-hit) cell with the running count of such cells; a
	// non-nil error aborts the campaign. Tests use it to simulate a
	// killed process mid-sweep.
	AfterCell func(done int64) error
	// Supervise, when non-nil, runs the sweep axis out of process before
	// the in-process pass — the sharded supervisor hook. On success the
	// campaign switches to Resume + KeepQuarantined and renders entirely
	// from the journal the supervisor filled.
	Supervise func(axis []int) error
	// Logf, when non-nil, receives human-readable status lines (resume
	// notices). Artefact bytes never pass through it.
	Logf func(format string, args ...any)

	// Render, when non-nil, writes the campaign's user-facing output. It
	// runs after the results exist and before the journal is removed, so
	// an interrupted render leaves the journal behind for a resume.
	Render func(results []*Result) error
}

// CampaignOutcome is what RunCampaign reports beyond the results slice.
type CampaignOutcome struct {
	// Results holds one entry per axis point (or the single run).
	Results []*Result
	// Quarantined counts benchmark cells lost to a poison shard.
	Quarantined int
	// JournalKept names the journal left behind for a later resume
	// (quarantined cells pending); "" when the journal was removed or
	// never existed.
	JournalKept string
}

// DefaultAxis returns the campaign's process axis for a cluster: the
// paper's canonical Fire axis when the machine has its 128 cores,
// otherwise the same eight-step shape scaled to the machine's size.
func DefaultAxis(spec *cluster.Spec) []int {
	if spec.TotalCores() == 128 {
		return FireSweep()
	}
	axis := make([]int, 0, 8)
	for i := 1; i <= 8; i++ {
		axis = append(axis, spec.TotalCores()*i/8)
	}
	return axis
}

// CountQuarantined totals the quarantined benchmark cells across results.
func CountQuarantined(results []*Result) int {
	n := 0
	for _, r := range results {
		for _, b := range r.Runs {
			if b.Status == StatusQuarantined {
				n++
			}
		}
	}
	return n
}

func (cs *CampaignSpec) logf(format string, args ...any) {
	if cs.Logf != nil {
		cs.Logf(format, args...)
	}
}

// configure builds the base Config for one process count.
func (cs *CampaignSpec) configure(procs int) Config {
	cfg := DefaultConfig(cs.Spec, procs)
	cfg.Placement = cs.Placement
	cfg.Benchmarks = cs.Benchmarks
	cfg.Faults = cs.Faults
	cfg.Retry = cs.Retry
	return cfg
}

// RunCampaign executes the campaign described by cs: a single suite run
// or a journal-backed (optionally sharded, optionally resumed) sweep.
// Render runs once the results exist; the journal is then removed unless
// quarantined cells remain, in which case it is kept as the handle for
// retrying them and the outcome names it.
func RunCampaign(cs CampaignSpec) (*CampaignOutcome, error) {
	if cs.Spec == nil {
		return nil, fmt.Errorf("suite: campaign has no cluster spec")
	}
	var results []*Result
	var journal *Journal
	var err error
	if cs.Sweep {
		results, journal, err = cs.runSweep()
	} else {
		results, err = cs.runSingle()
	}
	if err != nil {
		return nil, err
	}
	if cs.Render != nil {
		if err := cs.Render(results); err != nil {
			return nil, err
		}
	}
	out := &CampaignOutcome{Results: results, Quarantined: CountQuarantined(results)}
	// The campaign completed and its output (if any) is safely rendered:
	// the journal has served its purpose — unless cells were quarantined,
	// in which case it is the handle for retrying them.
	if journal != nil {
		if out.Quarantined > 0 {
			out.JournalKept = journal.Path()
			return out, nil
		}
		if err := journal.Remove(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runSingle executes the campaign's one-point form: a single suite run,
// presented to the live plane as a one-cell sweep.
func (cs *CampaignSpec) runSingle() ([]*Result, error) {
	procs := cs.Procs
	if procs == 0 {
		procs = cs.Spec.TotalCores()
	}
	cfg := cs.configure(procs)
	if cs.Trace != nil {
		cfg.Trace = cs.Trace
	}
	var done func(err error, retries int, degraded bool)
	if cs.Live != nil {
		cfg.Trace = cs.Live.Tap(cfg.Trace, procs)
		cs.Live.SweepStarted(1, 1)
		done = cs.Live.BeginCell(procs)
	}
	if cs.Check != nil {
		if err := cs.Check(); err != nil {
			if done != nil {
				done(err, 0, false)
			}
			return nil, err
		}
	}
	if cs.PauseCell != nil {
		cs.PauseCell()
	}
	r, err := Run(cfg)
	if err != nil {
		if done != nil {
			done(err, 0, false)
		}
		return nil, err
	}
	if done != nil {
		done(nil, resultRetries(r), r.Degraded)
		cs.Live.SweepFinished()
	}
	return []*Result{r}, nil
}

// runSweep executes the campaign's sweep form, optionally sharded out of
// process first (Supervise) and optionally resumed from a journal. The
// returned journal is non-nil when one was opened; the caller decides
// whether it is removed or kept.
func (cs *CampaignSpec) runSweep() ([]*Result, *Journal, error) {
	axis := cs.Axis
	if axis == nil {
		axis = DefaultAxis(cs.Spec)
	}
	// A sharded sweep runs the axis as supervised worker processes first,
	// merging their journal segments (and quarantine records for cells
	// lost to a poison shard) into the canonical journal. The ordinary
	// resume path below then renders the campaign entirely from that
	// journal — every cell a Lookup hit — so sharded output is
	// byte-identical to a single-process sequential run by construction.
	resume, keepQuarantined := cs.Resume, cs.KeepQuarantined
	if cs.Supervise != nil {
		if err := cs.Supervise(axis); err != nil {
			return nil, nil, err
		}
		resume, keepQuarantined = true, true
	}
	// Checkpoint completed (procs, benchmark) cells so an interrupted
	// sweep can resume instead of re-simulating finished work.
	var journal *Journal
	if cs.JournalPath != "" {
		var err error
		if journal, err = OpenJournal(cs.JournalPath); err != nil {
			return nil, nil, err
		}
		if err := journal.Bind(cs.Benchmarks); err != nil {
			return nil, nil, err
		}
		if cs.Workers > 1 && journal.LegacyTraces() {
			return nil, nil, fmt.Errorf("journal %s stores traces in the pre-v3 absolute-time layout; resume it with -workers 1, or delete it to start over", journal.Path())
		}
		if resume && journal.Len() > 0 {
			cs.logf("resuming: %d cell(s) already in %s", journal.Len(), journal.Path())
		}
	}
	var cells atomic.Int64
	plan := SweepPlan{
		Axis:    axis,
		Workers: cs.Workers,
		Trace:   cs.Trace,
		Live:    cs.Live,
		Configure: func(ctx CellContext) (Config, error) {
			if cs.Check != nil {
				if err := cs.Check(); err != nil {
					return Config{}, err
				}
			}
			// A wall-clock pause paces demo and e2e runs so there is a
			// window to watch the live plane mid-campaign. It happens before
			// the virtual simulation and cannot touch its results.
			if cs.PauseCell != nil {
				cs.PauseCell()
			}
			cfg := cs.configure(ctx.Procs)
			if journal == nil {
				return cfg, nil
			}
			key := func(bench string) string {
				return CellKey(cs.Spec.Name, ctx.Procs, cs.Placement.String(), bench)
			}
			// Journaled traces are cell-relative; the cell origin rebases
			// them onto this run's campaign clock. Legacy journals recorded
			// absolute campaign times — replay those verbatim (the
			// sequential schedule reproduces them).
			origin := ctx.Origin
			if journal.LegacyTraces() {
				origin = 0
			}
			// mark fences the recorder per benchmark cell, so each cell's
			// spans are journaled with it and replayed on resume.
			mark := ctx.Rec.Mark()
			if resume {
				cfg.Lookup = func(bench string) (BenchmarkRun, bool) {
					run, ok := journal.Lookup(key(bench))
					// A quarantined cell is an artifact of a lost shard
					// worker, not a simulation outcome: a user-driven resume
					// re-runs it. Only the sharded supervisor's own render
					// pass keeps it cached.
					if ok && run.Status == StatusQuarantined && !keepQuarantined {
						return BenchmarkRun{}, false
					}
					if ok && ctx.Rec != nil {
						if tr, hasTrace := journal.LookupTrace(key(bench)); hasTrace {
							ctx.Rec.Replay(obs.ShiftedSpans(tr.Spans, origin),
								obs.ShiftedEvents(tr.Events, origin))
							ctx.Rec.ReplayOps(tr.Ops)
							mark = ctx.Rec.Mark()
						}
					}
					return run, ok
				}
			}
			cfg.OnBenchmark = func(bench string, run BenchmarkRun) error {
				if ctx.Rec != nil {
					spans, events := ctx.Rec.Since(mark)
					ops := ctx.Rec.OpsSince(mark)
					mark = ctx.Rec.Mark()
					journal.SetTrace(key(bench), CellTrace{
						Spans:  obs.ShiftedSpans(spans, -ctx.Origin),
						Events: obs.ShiftedEvents(events, -ctx.Origin),
						Ops:    ops,
					})
				}
				if err := journal.Record(key(bench), run); err != nil {
					return err
				}
				done := cells.Add(1)
				if cs.AfterCell != nil {
					return cs.AfterCell(done)
				}
				return nil
			}
			return cfg, nil
		},
	}
	results, err := RunSweepPlan(plan)
	if err != nil {
		return nil, nil, err
	}
	return results, journal, nil
}
